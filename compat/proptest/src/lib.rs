//! A dependency-free, deterministic subset of the `proptest` API.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so the real `proptest` cannot be fetched. This crate
//! re-implements exactly the surface the workspace's property tests
//! use — strategies over ranges and tuples, `prop_map` / `prop_flat_map`
//! / `prop_filter`, `collection::vec`, `option::of`, `any`, the
//! `proptest!` macro and the `prop_assert*` macros — on top of a
//! deterministic splitmix64 generator.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its inputs but is not
//!   minimized;
//! * **fixed deterministic seeding** — each test derives its stream from
//!   a hash of its module path and name, so failures are reproducible
//!   across runs and machines (set `PROPTEST_SEED` to perturb);
//! * **rejection by retry** — `prop_filter` retries up to 1000 times and
//!   panics if the predicate is never satisfied.

use std::fmt;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic splitmix64 stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform draw from `[0, bound)` (`bound > 0`); modulo bias is
    /// irrelevant at test-case scale.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        self.next_u128() % bound
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Config and runner
// ---------------------------------------------------------------------

/// Subset of proptest's configuration: the case count.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Drives one property test: holds the RNG stream and case count.
#[derive(Debug)]
pub struct TestRunner {
    rng: TestRng,
    cases: u32,
}

impl TestRunner {
    /// Creates a runner whose stream is derived from the test's name.
    pub fn new(config: ProptestConfig, test_name: &str) -> TestRunner {
        let extra = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        TestRunner {
            rng: TestRng::new(fnv1a(test_name) ^ extra),
            cases: config.cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The generator stream.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A failed property-test case (carried out of the test body by the
/// `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A generator of random values (the real crate's `Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f`.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `pred` (retrying; `reason` is reported if
    /// generation starves).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter starved after 1000 rejections: {}", self.reason);
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                (lo + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

// u128 ranges can exceed i128; handled separately on the u128 lattice.
impl Strategy for std::ops::Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below_u128(self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        if lo == 0 && hi == u128::MAX {
            return rng.next_u128();
        }
        lo + rng.below_u128(hi - lo + 1)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------
// collection / option
// ---------------------------------------------------------------------

/// Vec strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec()`].
    pub trait SizeRange {
        /// `(min, max)` inclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below_u128((self.max - self.min + 1) as u128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`: `None` one time in four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let mut runner = $crate::TestRunner::new(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}:\n  {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        runner.cases(),
                        e,
                        inputs,
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// `assert!` that fails the current property case instead of panicking
/// directly (so the harness can report the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` in [`prop_assert!`] style.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// `assert_ne!` in [`prop_assert!`] style.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng, TestRunner,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_per_name() {
        let mut a = TestRunner::new(ProptestConfig::with_cases(4), "x");
        let mut b = TestRunner::new(ProptestConfig::with_cases(4), "x");
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..500 {
            let v = (3u32..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (-5i128..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn filter_and_map_compose() {
        let strat = (0u32..100)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_map(|v| v + 1);
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(a in 1u64..50, b in 1u64..50) {
            prop_assert!(a + b >= 2);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
