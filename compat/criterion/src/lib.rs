//! A dependency-free subset of the `criterion` benchmarking API.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so the real `criterion` cannot be fetched. This crate
//! keeps the workspace's `[[bench]]` targets compiling and running: it
//! implements the group/`bench_with_input`/`iter` surface with a simple
//! calibrated wall-clock loop and plain-text reporting (median of a
//! fixed number of samples — no outlier analysis, plots, or baselines).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark.
const SAMPLES: usize = 15;
/// Target wall time per sample during calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
    }

    /// Benchmarks `f`, labeled by `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), f);
    }

    /// Ends the group (reporting is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark label (stand-in for `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` label.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only label.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// The per-benchmark measurement handle.
#[derive(Debug)]
pub struct Bencher {
    /// Calibrated iterations per sample.
    iters: u64,
    /// Collected per-iteration sample durations (seconds).
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, running it enough times for stable wall-clock
    /// sampling. The closure's return value is dropped (passing it
    /// through `std::hint::black_box` first defeats dead-code
    /// elimination, as with real criterion).
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        // Calibrate: grow the batch until one batch takes TARGET_SAMPLE.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                (TARGET_SAMPLE.as_secs_f64() / elapsed.as_secs_f64()).ceil() as u64
            };
            iters = iters.saturating_mul(grow.clamp(2, 16)).max(iters + 1);
        }
        self.iters = iters;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

fn run_one<F>(label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: 0,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label}: no measurement (iter never called)");
        return;
    }
    b.samples.sort_by(|a, b| a.total_cmp(b));
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "  {label}: {} [{} .. {}] ({} iters/sample)",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi),
        b.iters
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Builds a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Builds the `main` for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(3u32), &3u32, |b, &k| {
            b.iter(|| (0..k).sum::<u32>());
        });
        group.bench_function("direct", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top", |b| b.iter(|| 2 * 2));
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("a", 7).label, "a/7");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
