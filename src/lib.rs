//! Facade crate re-exporting the postal workspace.
pub use postal_algos as algos;
pub use postal_mc as mc;
pub use postal_model as model;
pub use postal_runtime as runtime;
pub use postal_sim as sim;
pub use postal_verify as verify;
