//! Differential acceptance grid for the **topology-aware** lint path.
//!
//! `--topology complete` must be a no-op in the strongest sense: both
//! the batch pass manager (`lint_schedule_with_topology`) and the
//! streaming engine (`lint_schedule_streaming_with_topology`) must be
//! **byte-identical** — same diagnostics, same rendered report, same
//! `--format json` output — to their topology-free counterparts on the
//! complete graph, over the full acceptance grid (every shipped
//! broadcast algorithm, n ≤ 64, λ ∈ {1, 2, 5/2, 7/3}, m ≤ 4) and over
//! adversarially dirtied schedules where `P0001`–`P0007` actually fire.
//!
//! The property half pins the sparse graphs themselves: a BFS-tree
//! schedule built from a ring / torus / hypercube oracle only ever
//! sends along edges of that graph, so it must be `P0017`- and
//! `P0019`-clean (and free of hard validity errors) for random shapes
//! and latencies.

use postal::algos::{
    flood_schedule, run_bcast, run_dtree, run_pack, run_pipeline, run_repeat, run_repeat_greedy,
    BroadcastTree, ToSchedule,
};
use postal::model::lint::{lint_schedule_streaming, lint_schedule_streaming_with_topology};
use postal::model::schedule::{Schedule, TimedSend};
use postal::model::{Latency, Time, Topology, TopologySpec};
use postal::verify::{
    json, lint_schedule, lint_schedule_with_topology, render, LintCode, LintOptions, Severity,
};
use proptest::prelude::*;

fn lambdas() -> Vec<Latency> {
    vec![
        Latency::from_int(1),
        Latency::from_int(2),
        Latency::from_ratio(5, 2),
        Latency::from_ratio(7, 3),
    ]
}

/// Asserts that handing both engines the complete graph changes not a
/// byte: batch-with-topology vs batch, streaming-with-topology vs
/// streaming, rendered report and JSON array included.
fn assert_complete_identical(schedule: &Schedule, opts: &LintOptions, context: &str) {
    let complete = Topology::complete(schedule.n());

    let batch = lint_schedule(schedule, opts);
    let batch_topo = lint_schedule_with_topology(schedule, opts, &complete);
    assert_eq!(batch_topo, batch, "batch diagnostics diverge: {context}");

    let streamed = lint_schedule_streaming(schedule, opts);
    let streamed_topo = lint_schedule_streaming_with_topology(schedule, opts, &complete);
    assert_eq!(
        streamed_topo, streamed,
        "streaming diagnostics diverge: {context}"
    );

    assert_eq!(
        render::render_report(&batch_topo, context),
        render::render_report(&batch, context),
        "rendered report diverges: {context}"
    );
    assert_eq!(
        json::diagnostics_to_json(&batch_topo),
        json::diagnostics_to_json(&batch),
        "JSON output diverges: {context}"
    );
    assert_eq!(
        render::render_report(&streamed_topo, context),
        render::render_report(&streamed, context),
        "streaming rendered report diverges: {context}"
    );
    assert_eq!(
        json::diagnostics_to_json(&streamed_topo),
        json::diagnostics_to_json(&streamed),
        "streaming JSON output diverges: {context}"
    );
}

#[test]
fn single_message_grid_is_byte_identical_on_complete() {
    for lam in lambdas() {
        for n in 2..=64u64 {
            let opts = LintOptions::default();
            let report = run_bcast(n as usize, lam);
            let bcast = report.trace.to_schedule(n as u32, lam);
            assert_complete_identical(&bcast, &opts, &format!("bcast n={n} λ={lam}"));

            let tree = BroadcastTree::build(n, lam).to_schedule();
            assert_complete_identical(&tree, &opts, &format!("tree n={n} λ={lam}"));

            let flood = flood_schedule(n, lam);
            assert_complete_identical(&flood.schedule, &opts, &format!("flood n={n} λ={lam}"));
        }
    }
}

#[test]
fn multi_message_grid_is_byte_identical_on_complete() {
    for lam in lambdas() {
        for &n in &[2usize, 5, 9, 14, 24, 33, 48, 64] {
            for m in 1..=4u32 {
                let opts = LintOptions::broadcast_of(m as u64);
                for (name, report) in [
                    ("repeat", run_repeat(n, m, lam)),
                    ("repeat-greedy", run_repeat_greedy(n, m, lam)),
                    ("pack", run_pack(n, m, lam)),
                    ("pipeline", run_pipeline(n, m, lam)),
                    ("line", run_dtree(n, m, lam, 1)),
                    ("binary", run_dtree(n, m, lam, 2)),
                    ("star", run_dtree(n, m, lam, n as u64 - 1)),
                ] {
                    let schedule = report.report.trace.to_schedule(n as u32, lam);
                    assert_complete_identical(
                        &schedule,
                        &opts,
                        &format!("{name} n={n} m={m} λ={lam}"),
                    );
                }
            }
        }
    }
}

/// Shifts send `idx` one unit earlier, keeping everything else intact.
fn shift_back_one(schedule: &Schedule, idx: usize) -> Schedule {
    let mut sends: Vec<TimedSend> = schedule.sends().to_vec();
    sends[idx].send_start -= Time::ONE;
    Schedule::new(schedule.n(), schedule.latency(), sends)
}

/// Drops send `idx`, typically uninforming a subtree (`P0005`).
fn drop_send(schedule: &Schedule, idx: usize) -> Schedule {
    let mut sends: Vec<TimedSend> = schedule.sends().to_vec();
    sends.remove(idx);
    Schedule::new(schedule.n(), schedule.latency(), sends)
}

/// Redirects send `idx` out of range (`P0004`).
fn corrupt_dst(schedule: &Schedule, idx: usize) -> Schedule {
    let mut sends: Vec<TimedSend> = schedule.sends().to_vec();
    sends[idx].dst = schedule.n() + 7;
    Schedule::new(schedule.n(), schedule.latency(), sends)
}

#[test]
fn dirty_schedules_are_byte_identical_on_complete() {
    // The complete-graph no-op must hold on *broken* inputs too — where
    // suppression kicks in and report ordering actually matters.
    for lam in lambdas() {
        for n in 2..=24u64 {
            let tree = BroadcastTree::build(n, lam).to_schedule();
            for idx in 0..tree.len() {
                for (what, dirty) in [
                    ("shift", shift_back_one(&tree, idx)),
                    ("drop", drop_send(&tree, idx)),
                    ("corrupt", corrupt_dst(&tree, idx)),
                ] {
                    for opts in [LintOptions::default(), LintOptions::ports_only()] {
                        assert_complete_identical(
                            &dirty,
                            &opts,
                            &format!("{what} idx={idx} tree n={n} λ={lam}"),
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Property half: BFS-tree schedules on the sparse constructions.
// ---------------------------------------------------------------------

/// Builds the greedy BFS-tree broadcast schedule for `topo` from p0:
/// BFS order fixes each processor's parent, and every informed
/// processor then sends to its BFS children back-to-back, one unit
/// apart, starting no earlier than the instant it was informed. Every
/// transfer follows a tree edge, so the schedule is edge-respecting by
/// construction.
fn bfs_tree_schedule(topo: &Topology, lam: Latency) -> Schedule {
    let n = topo.n();
    let mut parent = vec![u32::MAX; n as usize];
    let mut order = vec![0u32];
    let mut seen = vec![false; n as usize];
    seen[0] = true;
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        for v in topo.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                parent[v as usize] = u;
                order.push(v);
            }
        }
    }
    assert_eq!(order.len(), n as usize, "construction graphs are connected");

    let mut informed = vec![Time::ZERO; n as usize];
    let mut next_free = vec![Time::ZERO; n as usize];
    let mut sends = Vec::with_capacity(n as usize - 1);
    for &v in order.iter().skip(1) {
        let u = parent[v as usize];
        let start = informed[u as usize].max(next_free[u as usize]);
        next_free[u as usize] = start + Time::ONE;
        informed[v as usize] = start + lam.as_time();
        sends.push(TimedSend {
            src: u,
            dst: v,
            send_start: start,
        });
    }
    Schedule::new(n, lam, sends)
}

/// Random λ = p/q with 1 ≤ λ ≤ 8 and a small lattice (q ≤ 4).
fn arb_latency8() -> impl Strategy<Value = Latency> {
    (1i128..=4, 1i128..=8).prop_map(|(q, mult)| Latency::from_ratio(q * mult, q))
}

fn assert_topology_clean(topo: &Topology, lam: Latency) -> Result<(), TestCaseError> {
    let schedule = bfs_tree_schedule(topo, lam);
    let diags = lint_schedule_with_topology(&schedule, &LintOptions::default(), topo);
    prop_assert!(
        !diags.iter().any(|d| matches!(
            d.code,
            LintCode::NonEdgeSend | LintCode::TopologyPartitionUnreachable
        )),
        "{}: BFS tree tripped a topology code: {:?}",
        topo.spec(),
        diags
    );
    // The graph bound may leave a P0018 *warning* (port serialization
    // is not in the BFS bound), but nothing may be an error.
    prop_assert!(
        diags.iter().all(|d| d.severity < Severity::Error),
        "{}: BFS tree not error-clean: {:?}",
        topo.spec(),
        diags
    );
    // The streaming engine agrees byte-for-byte on sparse graphs too.
    let streamed = lint_schedule_streaming_with_topology(&schedule, &LintOptions::default(), topo);
    prop_assert_eq!(streamed, diags);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ring_bfs_trees_are_topology_clean(lam in arb_latency8(), n in 2u32..=96) {
        let topo = TopologySpec::Ring.instantiate(n).unwrap();
        assert_topology_clean(&topo, lam)?;
    }

    #[test]
    fn torus_bfs_trees_are_topology_clean(
        lam in arb_latency8(),
        rows in 1u32..=10,
        cols in 1u32..=10,
    ) {
        let topo = TopologySpec::Torus { rows, cols }
            .instantiate(rows * cols)
            .unwrap();
        assert_topology_clean(&topo, lam)?;
    }

    #[test]
    fn hypercube_bfs_trees_are_topology_clean(lam in arb_latency8(), dim in 0u32..=7) {
        let topo = TopologySpec::Hypercube { dim }.instantiate(1 << dim).unwrap();
        assert_topology_clean(&topo, lam)?;
    }

    #[test]
    fn mbg_bfs_trees_are_topology_clean(lam in arb_latency8(), half in 1u32..=48) {
        // The Knödel construction needs an even processor count.
        let n = 2 * half;
        let topo = TopologySpec::Mbg { n }.instantiate(n).unwrap();
        assert_topology_clean(&topo, lam)?;
    }
}
