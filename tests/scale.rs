//! Scale tests: the implementation must stay exact and fast well beyond
//! paper-sized examples.

use postal::algos::{bcast_programs, flood_schedule, run_bcast, BroadcastTree, ToSchedule};
use postal::model::{runtimes, GenFib, Latency};
use postal::sim::prelude::*;

#[test]
fn bcast_simulation_at_fifty_thousand_processors() {
    let lam = Latency::from_ratio(5, 2);
    let n = 50_000usize;
    let report = run_bcast(n, lam);
    report.assert_model_clean();
    assert_eq!(report.completion, runtimes::bcast_time(n as u128, lam));
    assert_eq!(report.messages(), n - 1);
}

#[test]
fn tree_and_flood_at_scale() {
    let lam = Latency::from_int(3);
    let n = 100_000u64;
    let tree = BroadcastTree::build(n, lam);
    assert_eq!(tree.root.size(), n as usize);
    let schedule = tree.to_schedule();
    postal::verify::assert_broadcast_clean(&schedule, "tree at scale");
    let flood = flood_schedule(n, lam);
    assert_eq!(flood.completion(), tree.completion());
    assert!(flood.informed_curve_matches(n));
}

#[test]
fn index_function_at_astronomical_n() {
    // u128-scale processor counts evaluate instantly and stay inside the
    // Theorem 7 sandwich.
    for lam in [
        Latency::TELEPHONE,
        Latency::from_ratio(5, 2),
        Latency::from_int(50),
    ] {
        let g = GenFib::new(lam);
        let n = u128::MAX;
        let f = g.index(n).to_f64();
        assert!(postal::model::bounds::index_lower_bound(n, lam) <= f + 1e-6);
        assert!(f <= postal::model::bounds::index_upper_bound(n, lam) + 1e-6);
    }
}

/// The headline gate for the calendar-queue engine: a full BCAST at one
/// million processors, observed through a sampled sharded ring so the
/// recorder cannot become the bottleneck.
///
/// `#[ignore]` by default (it simulates two million events and takes
/// seconds); CI's perf job opts in with `cargo test --release --
/// --ignored`. Checks three things: the run is model-clean, the
/// completion time *equals* the paper's closed form `f_λ(n)` (exact
/// rational equality, not approximation), and the recorder's
/// `recorded + dropped == attempted` accounting stays honest under
/// sampling pressure.
#[test]
#[ignore = "million-processor smoke: run explicitly or via CI's --ignored pass"]
fn bcast_simulation_at_one_million_processors() {
    let lam = Latency::from_int(2);
    let n = 1_000_000usize;
    let ring = postal_obs::RingRecorder::with_config(
        4096,
        8,
        postal_obs::SampleSpec {
            mode: postal_obs::SampleMode::Tail,
            every: 1024,
        },
    );
    let report = Simulation::new(n, &Uniform(lam))
        .observe(&ring)
        .run(bcast_programs(n, lam))
        .expect("million-processor BCAST must complete");
    report.assert_model_clean();
    assert_eq!(report.completion, runtimes::bcast_time(n as u128, lam));
    assert_eq!(report.messages(), n - 1);

    // Ring accounting: the counters must agree with what the ring
    // actually holds — every attempted event is either in the snapshot
    // or counted as dropped, none vanish unaccounted.
    assert_eq!(
        ring.attempted_events(),
        2 * (n as u64 - 1),
        "send + recv per message"
    );
    assert!(
        ring.dropped_events() > 0,
        "rate sampling at 2M events must drop"
    );
    let held = ring.snapshot(postal_obs::RunMeta::new("event", n as u32));
    assert_eq!(
        held.events().len() as u64,
        ring.recorded_events(),
        "recorded counter disagrees with the events actually held"
    );
}

#[test]
fn pipeline_with_many_messages() {
    let lam = Latency::from_int(2);
    let (n, m) = (64usize, 256u32);
    let r = postal::algos::run_pipeline(n, m, lam);
    r.verify().unwrap();
    assert_eq!(
        r.completion(),
        runtimes::pipeline_time(n as u128, m as u64, lam)
    );
}
