//! Differential acceptance grid for the **streaming** lint engine.
//!
//! `lint_schedule_streaming` (bounded-memory watermark engine) must be
//! **byte-identical** to the batch pass manager `lint_schedule` — not
//! just same-verdict but same rendered report and same `--format json`
//! output, diagnostic for diagnostic. This suite drives both engines
//! over the full acceptance grid (every shipped broadcast algorithm,
//! n ≤ 64, λ ∈ {1, 2, 5/2, 7/3}, m ≤ 4), over adversarially dirtied
//! schedules where every code `P0001`–`P0007` actually fires, and over
//! **event-level** replays through the ring recorder — where sampling
//! and truncation downgrades must land identically on both paths.

use postal::algos::{
    flood_schedule, run_bcast, run_dtree, run_pack, run_pipeline, run_repeat, run_repeat_greedy,
    BroadcastTree, ToSchedule,
};
use postal::model::lint::lint_schedule_streaming;
use postal::model::schedule::{Schedule, TimedSend};
use postal::model::{Latency, Time};
use postal::sim::log_from_report;
use postal::verify::{
    downgrade_partial_trace, downgrade_truncated_trace, json, jsonl_to_schedule_file,
    lint_schedule, render, Diagnostic, LintOptions,
};
use postal_obs::{
    to_jsonl, LintStream, ObsEvent, ObsLog, Recorder, RingRecorder, RunMeta, SampleSpec,
    StreamOrdering,
};

fn lambdas() -> Vec<Latency> {
    vec![
        Latency::from_int(1),
        Latency::from_int(2),
        Latency::from_ratio(5, 2),
        Latency::from_ratio(7, 3),
    ]
}

/// Asserts the two engines emit the same bytes for `schedule`:
/// rendered report and JSON array, plus the raw diagnostic values.
fn assert_identical(schedule: &Schedule, opts: &LintOptions, context: &str) {
    let batch = lint_schedule(schedule, opts);
    let streamed = lint_schedule_streaming(schedule, opts);
    assert_eq!(streamed, batch, "diagnostics diverge: {context}");
    assert_eq!(
        render::render_report(&streamed, context),
        render::render_report(&batch, context),
        "rendered report diverges: {context}"
    );
    assert_eq!(
        json::diagnostics_to_json(&streamed),
        json::diagnostics_to_json(&batch),
        "JSON output diverges: {context}"
    );
}

#[test]
fn single_message_grid_is_byte_identical() {
    for lam in lambdas() {
        for n in 2..=64u64 {
            let opts = LintOptions::default();
            let report = run_bcast(n as usize, lam);
            let bcast = report.trace.to_schedule(n as u32, lam);
            assert_identical(&bcast, &opts, &format!("bcast n={n} λ={lam}"));

            let tree = BroadcastTree::build(n, lam).to_schedule();
            assert_identical(&tree, &opts, &format!("tree n={n} λ={lam}"));

            let flood = flood_schedule(n, lam);
            assert_identical(&flood.schedule, &opts, &format!("flood n={n} λ={lam}"));
        }
    }
}

#[test]
fn multi_message_grid_is_byte_identical() {
    for lam in lambdas() {
        for &n in &[2usize, 5, 9, 14, 24, 33, 48, 64] {
            for m in 1..=4u32 {
                let opts = LintOptions::broadcast_of(m as u64);
                for (name, report) in [
                    ("repeat", run_repeat(n, m, lam)),
                    ("repeat-greedy", run_repeat_greedy(n, m, lam)),
                    ("pack", run_pack(n, m, lam)),
                    ("pipeline", run_pipeline(n, m, lam)),
                    ("line", run_dtree(n, m, lam, 1)),
                    ("binary", run_dtree(n, m, lam, 2)),
                    ("star", run_dtree(n, m, lam, n as u64 - 1)),
                ] {
                    let schedule = report.report.trace.to_schedule(n as u32, lam);
                    assert_identical(&schedule, &opts, &format!("{name} n={n} m={m} λ={lam}"));
                }
            }
        }
    }
}

/// Shifts send `idx` one unit earlier, keeping everything else intact.
fn shift_back_one(schedule: &Schedule, idx: usize) -> Schedule {
    let mut sends: Vec<TimedSend> = schedule.sends().to_vec();
    sends[idx].send_start -= Time::ONE;
    Schedule::new(schedule.n(), schedule.latency(), sends)
}

/// Drops send `idx`, typically uninforming a subtree (`P0005`).
fn drop_send(schedule: &Schedule, idx: usize) -> Schedule {
    let mut sends: Vec<TimedSend> = schedule.sends().to_vec();
    sends.remove(idx);
    Schedule::new(schedule.n(), schedule.latency(), sends)
}

/// Redirects send `idx` out of range (`P0004`).
fn corrupt_dst(schedule: &Schedule, idx: usize) -> Schedule {
    let mut sends: Vec<TimedSend> = schedule.sends().to_vec();
    sends[idx].dst = schedule.n() + 7;
    Schedule::new(schedule.n(), schedule.latency(), sends)
}

#[test]
fn dirty_schedules_are_byte_identical() {
    // Every mutation of every tree schedule in the small grid: the
    // engines must agree on *broken* inputs — where diagnostics exist,
    // suppression kicks in, and finalization order actually matters.
    for lam in lambdas() {
        for n in 2..=24u64 {
            let tree = BroadcastTree::build(n, lam).to_schedule();
            for idx in 0..tree.len() {
                for (what, dirty) in [
                    ("shift", shift_back_one(&tree, idx)),
                    ("drop", drop_send(&tree, idx)),
                    ("corrupt", corrupt_dst(&tree, idx)),
                ] {
                    for opts in [LintOptions::default(), LintOptions::ports_only()] {
                        assert_identical(
                            &dirty,
                            &opts,
                            &format!("{what} idx={idx} tree n={n} λ={lam}"),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn idle_and_gap_warnings_are_byte_identical() {
    // A deliberately lazy line schedule: valid, but full of P0006 idle
    // gaps and a P0007 optimality gap — the quality-stage codes the
    // clean grid rarely exercises.
    for lam in lambdas() {
        for n in 3..=16u32 {
            let mut sends = Vec::new();
            for p in 0..n - 1 {
                // Each hop waits two extra units after learning.
                let start = Time::from_int(p as i128 * 4) + lam.as_time();
                sends.push(TimedSend {
                    src: p,
                    dst: p + 1,
                    send_start: start,
                });
            }
            let lazy = Schedule::new(n, lam, sends);
            assert_identical(
                &lazy,
                &LintOptions::default(),
                &format!("lazy n={n} λ={lam}"),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Event-level parity: recorder logs, sampling, truncation.
//
// The batch path is exactly what `postal-cli lint` does to a JSONL log:
// serialize, reduce to a schedule file, lint, downgrade. The streaming
// path is exactly what `lint --stream` does: fold the events through a
// `LintStream` and apply the same downgrades from the stream's own
// accounting. The two must stay byte-identical even when the log is a
// partial or truncated trace.
// ---------------------------------------------------------------------

/// Batch-lints a log the way `postal-cli lint` does: via JSONL text,
/// `jsonl_to_schedule_file`, and both downgrades.
fn batch_report(log: &ObsLog, opts: &LintOptions) -> Vec<Diagnostic> {
    let text = to_jsonl(log);
    let file = jsonl_to_schedule_file(std::io::Cursor::new(text)).expect("well-formed log");
    let diags = lint_schedule(&file.schedule, opts);
    let dropped = file.dropped_events.unwrap_or(0);
    downgrade_truncated_trace(downgrade_partial_trace(diags, dropped), file.truncated)
}

/// Streams a log through `LintStream` the way `lint --stream` does,
/// applying the same downgrades from the stream's own accounting.
fn streamed_report(log: &ObsLog, opts: &LintOptions) -> Vec<Diagnostic> {
    let meta = log.meta();
    let lam = meta.lambda.expect("uniform lambda");
    let mut stream = LintStream::new(meta.n, lam, *opts, StreamOrdering::Live);
    for ev in log.events() {
        stream.on_event(ev);
    }
    assert!(!stream.out_of_order(), "sorted log must not trip ordering");
    let truncated = stream.truncated();
    let dropped = meta.dropped_events.unwrap_or(0);
    downgrade_truncated_trace(downgrade_partial_trace(stream.finish(), dropped), truncated)
}

/// Asserts the batch JSONL path and the streaming path agree on `log`,
/// bytes included.
fn assert_log_identical(log: &ObsLog, opts: &LintOptions, context: &str) {
    let batch = batch_report(log, opts);
    let streamed = streamed_report(log, opts);
    assert_eq!(streamed, batch, "log diagnostics diverge: {context}");
    assert_eq!(
        render::render_report(&streamed, context),
        render::render_report(&batch, context),
        "log rendered report diverges: {context}"
    );
    assert_eq!(
        json::diagnostics_to_json(&streamed),
        json::diagnostics_to_json(&batch),
        "log JSON output diverges: {context}"
    );
}

/// A full (unsampled) event log for an optimal BCAST(n, λ) run.
fn bcast_log(n: usize, lam: Latency) -> ObsLog {
    let report = run_bcast(n, lam);
    log_from_report(&report, "event", n as u32, Some(lam), Some(1))
}

/// Replays `log` through a `RingRecorder` configured with `spec` and
/// per-shard capacity `cap`, yielding the sampled/overflowed log the
/// CLI's `--sample`/ring paths would have produced.
fn resample(log: &ObsLog, spec: SampleSpec, cap: usize) -> ObsLog {
    let ring = RingRecorder::with_spec(cap, spec);
    for ev in log.events() {
        ring.record(ev.clone());
    }
    let meta = RunMeta::new(log.meta().engine.as_str(), log.meta().n)
        .latency(log.meta().lambda.expect("uniform lambda"))
        .messages(log.meta().messages.unwrap_or(1));
    ring.into_log(meta)
}

#[test]
fn full_logs_agree_with_batch() {
    for lam in lambdas() {
        for n in [2usize, 5, 14, 33, 64] {
            let log = bcast_log(n, lam);
            assert_log_identical(
                &log,
                &LintOptions::default(),
                &format!("full log n={n} λ={lam}"),
            );
        }
    }
}

#[test]
fn sampled_logs_downgrade_identically() {
    // Sampling drops events, so absence lints (P0003, P0005) fire and
    // must be downgraded to warnings with the same note on both paths.
    for lam in lambdas() {
        for n in [9usize, 24, 48] {
            let full = bcast_log(n, lam);
            for spec_text in ["rate:2", "rate:3", "head,rate:2"] {
                let spec = SampleSpec::parse(spec_text).expect("valid spec");
                let sampled = resample(&full, spec, 1 << 12);
                assert!(
                    sampled.meta().is_partial(),
                    "rate sampling on n={n} must drop events"
                );
                assert_log_identical(
                    &sampled,
                    &LintOptions::default(),
                    &format!("sampled {spec_text} n={n} λ={lam}"),
                );
            }
        }
    }
}

#[test]
fn ring_overflow_downgrades_identically() {
    // A tiny tail ring overwrites the oldest events: dropped > 0 with
    // no explicit sampling. Both paths must see the same partial trace.
    let lam = Latency::from_ratio(5, 2);
    let full = bcast_log(48, lam);
    let tiny = resample(&full, SampleSpec::all(), 4);
    assert!(tiny.meta().is_partial(), "tiny ring must overflow");
    assert_log_identical(&tiny, &LintOptions::default(), "ring overflow n=48");
}

#[test]
fn truncated_logs_downgrade_identically() {
    // Cut a clean run short and latch a Truncated marker: the stream
    // must pick the flag up from the event, the batch path from the
    // JSONL line, and both must emit the same combined downgrade note.
    let lam = Latency::from_int(2);
    let full = bcast_log(24, lam);
    let keep = full.len() / 2;
    let mut events: Vec<ObsEvent> = full.events()[..keep].to_vec();
    let at = events.last().map(|e| e.at()).unwrap_or(Time::ZERO);
    events.push(ObsEvent::Truncated {
        processed: keep as u64,
        limit: keep as u64,
        at,
    });

    // Truncation alone (complete recorder, early stop)...
    let meta = RunMeta::new("event", 24)
        .latency(lam)
        .messages(1)
        .dropped(0);
    let log = ObsLog::new(meta, events.clone());
    assert_log_identical(&log, &LintOptions::default(), "truncated n=24");

    // ...and truncation *composed with* sampling drops: the downgrade
    // must collapse both causes into one combined note on both paths.
    let meta = RunMeta::new("event", 24)
        .latency(lam)
        .messages(1)
        .dropped(7)
        .sampled("rate:3");
    let log = ObsLog::new(meta, events);
    assert_log_identical(&log, &LintOptions::default(), "truncated+sampled n=24");
}

#[test]
fn zero_event_logs_agree_with_batch() {
    // Nothing but a header: every finish-time pass (coverage, origin)
    // runs against an empty index. P0005 must fire identically for the
    // n−1 uninformed processors on both paths.
    for n in [1u32, 4, 16] {
        let meta = RunMeta::new("event", n)
            .latency(Latency::from_int(2))
            .messages(1)
            .dropped(0);
        let log = ObsLog::new(meta, Vec::new());
        assert_log_identical(&log, &LintOptions::default(), &format!("empty log n={n}"));
    }
}
