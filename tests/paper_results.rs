//! End-to-end integration tests: every numbered result of the paper,
//! asserted across crate boundaries through the `postal` facade.

use postal::algos::{
    run_bcast, run_dtree, run_line, run_pack, run_pipeline, run_repeat, run_star, BroadcastTree,
};
use postal::model::{bounds, runtimes, GenFib, Latency, Time};

const LAMBDAS: &[(i128, i128)] = &[(1, 1), (3, 2), (2, 1), (5, 2), (7, 3), (4, 1), (10, 1)];

fn lambdas() -> impl Iterator<Item = Latency> {
    LAMBDAS.iter().map(|&(p, q)| Latency::from_ratio(p, q))
}

#[test]
fn figure1_full_reproduction() {
    // The paper's one figure: MPS(14, 5/2), completion 7½, root split 9.
    let lam = Latency::from_ratio(5, 2);
    let fib = GenFib::new(lam);
    assert_eq!(fib.index(14), Time::new(15, 2));
    assert_eq!(fib.bcast_split(14), 9);

    let tree = BroadcastTree::build(14, lam);
    assert_eq!(tree.completion(), Time::new(15, 2));

    let report = run_bcast(14, lam);
    report.assert_model_clean();
    assert_eq!(report.completion, Time::new(15, 2));
}

#[test]
fn theorem6_bcast_is_optimal_and_exact() {
    for lam in lambdas() {
        for n in [1usize, 2, 3, 4, 7, 13, 14, 32, 100, 255, 512] {
            let report = run_bcast(n, lam);
            report.assert_model_clean();
            assert_eq!(report.completion, runtimes::bcast_time(n as u128, lam));
            assert_eq!(report.messages(), n - 1);
        }
    }
}

#[test]
fn theorem7_sandwich_holds_end_to_end() {
    for lam in lambdas() {
        let g = GenFib::new(lam);
        for n in [2u128, 10, 100, 1000, 100_000] {
            let f = g.index(n).to_f64();
            assert!(bounds::index_lower_bound(n, lam) <= f + 1e-9);
            assert!(f <= bounds::index_upper_bound(n, lam) + 1e-9);
        }
    }
}

#[test]
fn lemma8_no_algorithm_beats_the_lower_bound() {
    for lam in lambdas() {
        for n in [2usize, 5, 14, 33] {
            for m in [1u32, 2, 5, 9] {
                let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam);
                for (name, t) in [
                    ("REPEAT", run_repeat(n, m, lam).completion()),
                    ("PACK", run_pack(n, m, lam).completion()),
                    ("PIPELINE", run_pipeline(n, m, lam).completion()),
                    ("LINE", run_line(n, m, lam).completion()),
                    ("STAR", run_star(n, m, lam).completion()),
                ] {
                    assert!(t >= lb, "{name} beat Lemma 8 at n={n} m={m} λ={lam}");
                }
            }
        }
    }
}

#[test]
fn lemmas_10_12_14_16_exact_equalities() {
    for lam in lambdas() {
        for n in [2usize, 5, 14, 33] {
            for m in [1u32, 2, 5, 9] {
                let (n1, m1) = (n as u128, m as u64);
                let r = run_repeat(n, m, lam);
                r.verify().unwrap();
                assert_eq!(r.completion(), runtimes::repeat_time(n1, m1, lam));

                let r = run_pack(n, m, lam);
                r.verify().unwrap();
                assert_eq!(r.completion(), runtimes::pack_time(n1, m1, lam));

                let r = run_pipeline(n, m, lam);
                r.verify().unwrap();
                assert_eq!(r.completion(), runtimes::pipeline_time(n1, m1, lam));
            }
        }
    }
}

#[test]
fn lemma18_dtree_bound_and_exact_degenerate_degrees() {
    for lam in lambdas() {
        for n in [2usize, 7, 20] {
            for m in [1u32, 3, 6] {
                for d in 1..n as u64 {
                    let r = run_dtree(n, m, lam, d);
                    r.verify().unwrap();
                    assert!(
                        r.completion()
                            <= runtimes::dtree_time_bound(n as u128, m as u64, lam, d as u128)
                    );
                }
                assert_eq!(
                    run_line(n, m, lam).completion(),
                    runtimes::line_time(n as u128, m as u64, lam)
                );
                assert_eq!(
                    run_star(n, m, lam).completion(),
                    runtimes::star_time(n as u128, m as u64, lam)
                );
            }
        }
    }
}

#[test]
fn section43_degree_regimes() {
    // d = 1 best for m → ∞; d = n−1 best for λ → ∞; d = ⌈λ⌉+1 within 3×
    // of optimal for m ≤ log n / log(⌈λ⌉+1).
    let n = 16usize;
    let best = |m: u32, lam: Latency| -> u64 {
        (1..n as u64)
            .min_by_key(|&d| run_dtree(n, m, lam, d).completion())
            .unwrap()
    };
    assert_eq!(best(128, Latency::from_int(2)), 1);
    assert_eq!(best(1, Latency::from_int(100)), n as u64 - 1);

    let lam = Latency::from_ratio(5, 2);
    let d = runtimes::latency_matched_degree(n as u128, lam) as u64;
    // m ≤ log₂16/log₂4 = 2.
    for m in [1u32, 2] {
        let t = run_dtree(n, m, lam, d).completion();
        let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam);
        assert!(
            t.to_f64() <= 3.0 * lb.to_f64(),
            "latency-matched DTREE exceeded 3× optimal: {t} vs {lb}"
        );
    }
}

#[test]
fn order_preservation_is_universal() {
    // "All the algorithms described in this paper are practical
    // event-driven algorithms that preserve the order of messages."
    let lam = Latency::from_ratio(5, 2);
    let (n, m) = (40usize, 7u32);
    run_repeat(n, m, lam).verify().unwrap();
    run_pack(n, m, lam).verify().unwrap();
    run_pipeline(n, m, lam).verify().unwrap();
    for d in [1u64, 2, 4, 39] {
        run_dtree(n, m, lam, d).verify().unwrap();
    }
}

#[test]
fn telephone_model_reduction() {
    // "For λ = 1, the postal model reduces to the telephone model":
    // binomial-tree broadcast in ⌈log₂ n⌉ rounds.
    for n in 2usize..=64 {
        let report = run_bcast(n, Latency::TELEPHONE);
        let expected = (n as f64).log2().ceil() as i128;
        assert_eq!(report.completion, Time::from_int(expected), "n={n}");
    }
}

#[test]
fn exhaustive_small_space_theorem6() {
    // Every n ≤ 40 and every λ = p/q with q ≤ 4, λ ≤ 5: simulation,
    // closed form, tree, and flood all agree. This is a deterministic
    // exhaustive sweep complementing the randomized property tests.
    for q in 1i128..=4 {
        for p in q..=(5 * q) {
            let lam = Latency::from_ratio(p, q);
            let fib = GenFib::new(lam);
            for n in 1usize..=40 {
                let expected = fib.index(n as u128);
                assert_eq!(run_bcast(n, lam).completion, expected, "sim λ={lam} n={n}");
                assert_eq!(
                    BroadcastTree::build(n as u64, lam).completion(),
                    expected,
                    "tree λ={lam} n={n}"
                );
                assert_eq!(
                    postal::algos::flood_schedule(n as u64, lam).completion(),
                    if n == 1 { Time::ZERO } else { expected },
                    "flood λ={lam} n={n}"
                );
            }
        }
    }
}

#[test]
fn facade_reexports_are_usable() {
    // The `postal` crate is the one-stop dependency downstream users take.
    let lam = postal::model::Latency::from_ratio(5, 2);
    let fib = postal::model::GenFib::new(lam);
    assert_eq!(fib.bcast_split(14), 9);
    let tree = postal::algos::BroadcastTree::build(14, lam);
    assert!(tree.render().contains("p9"));
}
