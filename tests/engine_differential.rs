//! Differential harness pinning the fast calendar-queue engine to the
//! seed binary-heap engine.
//!
//! [`Simulation::run`] (fast: `FastTime` fixed-point arithmetic, O(1)
//! bucket queue, u32 processor ids) and [`Simulation::run_reference`]
//! (the original exact-`Ratio` engine, kept verbatim) must be
//! *behaviorally indistinguishable*: same completion time, same trace
//! (every transfer field, in the same order), same violations, same
//! per-processor statistics, same per-port occupancy, and the same
//! observability event stream — across every paper algorithm, both
//! port-contention modes, fault plans, jittered latency, off-lattice λ
//! (which routes the fast engine through its exact fallback), and
//! event-budget truncation.
//!
//! Any future change to the fast path that shifts an event by half a
//! tick, reorders a tie, or drops an observability record fails here
//! with the first diverging case named in the panic message.

use postal::algos::dtree::dtree_programs;
use postal::algos::pack::pack_programs;
use postal::algos::pipeline::pipeline_programs;
use postal::algos::repeat::repeat_programs;
use postal::algos::{bcast_programs, Pacing};
use postal::model::{runtimes, Latency, Time};
use postal::sim::prelude::*;
use postal::sim::SimError;
use postal_obs::{MemoryRecorder, ObsEvent, RunMeta};

/// Everything that configures a run besides the programs themselves.
struct Setup<'a> {
    n: usize,
    latency: &'a dyn LatencyModel,
    port_mode: PortMode,
    faults: FaultPlan,
    max_events: Option<u64>,
}

impl<'a> Setup<'a> {
    fn strict(n: usize, latency: &'a dyn LatencyModel) -> Setup<'a> {
        Setup {
            n,
            latency,
            port_mode: PortMode::Strict,
            faults: FaultPlan::none(),
            max_events: None,
        }
    }

    fn build(&self, rec: &'a dyn postal_obs::Recorder) -> Simulation<'a> {
        let mut sim = Simulation::new(self.n, self.latency)
            .port_mode(self.port_mode)
            .faults(self.faults.clone())
            .observe(rec);
        if let Some(cap) = self.max_events {
            sim = sim.max_events(cap);
        }
        sim
    }
}

/// Runs the same program set on both engines and asserts that every
/// observable output is identical. Returns the two recorded streams so
/// callers can make extra, case-specific assertions.
fn assert_engines_agree<P, F>(label: &str, setup: &Setup, mk: F) -> (Vec<ObsEvent>, Vec<ObsEvent>)
where
    P: Clone + std::fmt::Debug,
    F: Fn() -> Vec<Box<dyn Program<P>>>,
{
    let fast_rec = MemoryRecorder::new();
    let fast = setup.build(&fast_rec).run(mk());
    let ref_rec = MemoryRecorder::new();
    let reference = setup.build(&ref_rec).run_reference(mk());

    match (&fast, &reference) {
        (Ok(f), Ok(r)) => {
            assert_eq!(f.completion, r.completion, "completion diverged: {label}");
            assert_eq!(f.events, r.events, "event count diverged: {label}");
            assert_eq!(f.violations, r.violations, "violations diverged: {label}");
            assert_eq!(f.proc_stats, r.proc_stats, "proc stats diverged: {label}");
            assert_eq!(
                f.trace.len(),
                r.trace.len(),
                "trace length diverged: {label}"
            );
            for (i, (a, b)) in f
                .trace
                .transfers()
                .iter()
                .zip(r.trace.transfers())
                .enumerate()
            {
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "transfer {i} diverged: {label}"
                );
            }
            assert_eq!(
                f.trace.port_busy_times(setup.n),
                r.trace.port_busy_times(setup.n),
                "per-port occupancy diverged: {label}"
            );
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "errors diverged: {label}"),
        (f, r) => panic!("engines disagree on success: {label}\nfast: {f:?}\nreference: {r:?}"),
    }

    let fast_log = fast_rec.snapshot(RunMeta::new("event", setup.n as u32));
    let ref_log = ref_rec.snapshot(RunMeta::new("event", setup.n as u32));
    assert_eq!(
        fast_log.events(),
        ref_log.events(),
        "observability streams diverged: {label}"
    );
    (fast_log.events().to_vec(), ref_log.events().to_vec())
}

/// The CLI spellings of the nine paper workloads, in grid order.
const ALGOS: [&str; 9] = [
    "bcast",
    "repeat",
    "repeat-greedy",
    "pack",
    "pipeline",
    "line",
    "binary",
    "star",
    "dtree",
];

/// Mirrors the model checker's degree clamp (`postal-mc`): a tree
/// degree is at least 1 and at most `n − 1`.
fn degree(n: usize, d: u64) -> u64 {
    d.clamp(1, (n as u64).saturating_sub(1).max(1))
}

/// Instantiates one named workload and runs it through both engines.
fn run_case(algo: &str, m: u32, lam: Latency, setup: &Setup) {
    let n = setup.n;
    let label = format!(
        "{algo} n={n} m={m} lam={lam:?} mode={:?} faults={} jitter/exact per-latency",
        setup.port_mode,
        !setup.faults.is_empty(),
    );
    match algo {
        "bcast" => {
            assert_engines_agree(&label, setup, || bcast_programs(n, lam));
        }
        "repeat" => {
            assert_engines_agree(&label, setup, || {
                repeat_programs(n, m, lam, Pacing::PaperExact)
            });
        }
        "repeat-greedy" => {
            assert_engines_agree(&label, setup, || repeat_programs(n, m, lam, Pacing::Greedy));
        }
        "pack" => {
            assert_engines_agree(&label, setup, || pack_programs(n, m, lam));
        }
        "pipeline" => {
            assert_engines_agree(&label, setup, || pipeline_programs(n, m, lam));
        }
        "line" => {
            assert_engines_agree(&label, setup, || dtree_programs(n, m, degree(n, 1)));
        }
        "binary" => {
            assert_engines_agree(&label, setup, || dtree_programs(n, m, degree(n, 2)));
        }
        "star" => {
            assert_engines_agree(&label, setup, || dtree_programs(n, m, degree(n, n as u64)));
        }
        "dtree" => {
            let d = degree(n, runtimes::latency_matched_degree(n as u128, lam) as u64);
            assert_engines_agree(&label, setup, || dtree_programs(n, m, d));
        }
        other => panic!("unknown algo {other}"),
    }
}

fn lambdas() -> [Latency; 4] {
    [
        Latency::from_int(1),
        Latency::from_int(2),
        Latency::from_ratio(5, 2),
        // Off the half-unit lattice: every event time takes the fast
        // engine's exact-`Ratio` fallback.
        Latency::from_ratio(7, 3),
    ]
}

/// The full grid: 9 algorithms × n ≤ 64 × λ ∈ {1, 2, 5/2, 7/3} × m ≤ 4,
/// strict ports, no faults. BCAST ignores `m`, so it runs once per
/// `(n, λ)`.
#[test]
fn full_grid_matches_reference() {
    for n in [2usize, 3, 5, 8, 13, 33, 64] {
        for lam in lambdas() {
            let uni = Uniform(lam);
            let setup = Setup::strict(n, &uni);
            for algo in ALGOS {
                for m in [1u32, 2, 4] {
                    if algo == "bcast" && m > 1 {
                        continue;
                    }
                    run_case(algo, m, lam, &setup);
                }
            }
        }
    }
}

/// Queued input ports change receive times (contention delays instead
/// of violations); both engines must queue identically.
#[test]
fn queued_ports_match_reference() {
    for n in [5usize, 16, 33] {
        for lam in [Latency::from_int(2), Latency::from_ratio(5, 2)] {
            let uni = Uniform(lam);
            let mut setup = Setup::strict(n, &uni);
            setup.port_mode = PortMode::Queued;
            for algo in ALGOS {
                run_case(algo, 2, lam, &setup);
            }
        }
    }
}

/// Message drops and crashes prune different subtrees of the event
/// cascade; the engines must prune the same ones.
#[test]
fn fault_plans_match_reference() {
    for n in [8usize, 33] {
        for lam in [Latency::from_int(2), Latency::from_ratio(5, 2)] {
            let uni = Uniform(lam);
            let faults = FaultPlan::none()
                .dropping(0)
                .dropping(3)
                .dropping(7)
                .crashing(ProcId(1), Time::from_int(2))
                .crashing(ProcId(n as u32 / 2), Time::new(5, 2));
            let mut setup = Setup::strict(n, &uni);
            setup.faults = faults;
            for algo in ["bcast", "pipeline", "dtree", "star", "repeat"] {
                run_case(algo, 2, lam, &setup);
            }
        }
    }
}

/// Deterministic bounded jitter perturbs per-message latency, so tie
/// patterns shift run to run; the engines must still agree event for
/// event.
#[test]
fn jittered_latency_matches_reference() {
    for n in [8usize, 33] {
        for lam in [Latency::from_int(2), Latency::from_ratio(5, 2)] {
            for seed in [1u64, 0xDEAD_BEEF] {
                let jit = Jittered::new(lam, 3, seed);
                let setup = Setup::strict(n, &jit);
                for algo in ["bcast", "star", "repeat-greedy", "binary"] {
                    run_case(algo, 2, lam, &setup);
                }
            }
        }
    }
}

/// λ = 7/3 leaves the half-unit lattice entirely, so the fast engine's
/// calendar never fires and every event rides the exact-`Ratio`
/// fallback heap — the run must still be reference-identical (covered
/// by the grid) and the latency really must be off-lattice (guarded
/// here, so the grid cannot silently stop exercising the fallback).
#[test]
fn off_lattice_lambda_exercises_the_exact_fallback() {
    let lam = Latency::from_ratio(7, 3);
    assert_eq!(
        lam.as_fast_time().as_half_units(),
        None,
        "7/3 must be off the half-unit lattice"
    );
    let uni = Uniform(lam);
    let setup = Setup::strict(33, &uni);
    run_case("bcast", 1, lam, &setup);
    run_case("pipeline", 3, lam, &setup);
}

/// Hitting `max_events` must surface identically on both engines: the
/// same `EventLimitExceeded` error and a `truncated` marker in the
/// recorded stream, so a cut-short trace can never read as a quietly
/// finished run.
#[test]
fn truncation_matches_reference_and_is_recorded() {
    let lam = Latency::from_int(2);
    let uni = Uniform(lam);
    let mut setup = Setup::strict(16, &uni);
    setup.max_events = Some(10);

    let fast_rec = MemoryRecorder::new();
    let fast = setup.build(&fast_rec).run(bcast_programs(16, lam));
    let ref_rec = MemoryRecorder::new();
    let reference = setup.build(&ref_rec).run_reference(bcast_programs(16, lam));

    assert!(matches!(
        fast,
        Err(SimError::EventLimitExceeded { limit: 10 })
    ));
    assert!(matches!(
        reference,
        Err(SimError::EventLimitExceeded { limit: 10 })
    ));

    let fast_log = fast_rec.snapshot(RunMeta::new("event", 16));
    let ref_log = ref_rec.snapshot(RunMeta::new("event", 16));
    assert_eq!(
        fast_log.events(),
        ref_log.events(),
        "truncated streams diverged"
    );
    let marker = fast_log
        .events()
        .iter()
        .find_map(|e| match *e {
            ObsEvent::Truncated {
                processed, limit, ..
            } => Some((processed, limit)),
            _ => None,
        })
        .expect("truncated run must record an ObsEvent::Truncated marker");
    assert_eq!(marker.1, 10);
    assert!(marker.0 > 10, "processed count includes the fatal event");

    // And the summary layer flags it as partial.
    let summary = postal_obs::MetricsSummary::from_log(&fast_log);
    assert!(summary.truncated);
    assert!(summary.is_partial());
}
