//! Cross-substrate consistency: the same program objects must produce
//! the same *communication structure* on the discrete-event simulator
//! and on the threaded runtime (timing on threads is approximate, so
//! structure — who received what, in what order — is the contract).

use postal::algos::bcast::{BcastPayload, BcastProgram};
use postal::algos::pipeline::PipelineProgram;
use postal::algos::MultiPacket;
use postal::model::{runtimes, Latency};
use postal::runtime::{run_threaded, send_programs_from, RuntimeConfig};
use postal::sim::{ProcId, Program, Simulation, Uniform};
use std::collections::BTreeMap;
use std::time::Duration;

fn fast() -> RuntimeConfig {
    RuntimeConfig {
        unit: Duration::from_millis(2),
    }
}

#[test]
fn bcast_edges_agree_between_substrates() {
    let lam = Latency::from_ratio(5, 2);
    let n = 20usize;

    // Simulator.
    let model = Uniform(lam);
    let sim_report = Simulation::new(n, &model)
        .run(postal::algos::bcast_programs(n, lam))
        .unwrap();
    let mut sim_edges: Vec<(u32, u32)> = sim_report
        .trace
        .transfers()
        .iter()
        .map(|t| (t.src.0, t.dst.0))
        .collect();
    sim_edges.sort_unstable();

    // Threads.
    let programs = send_programs_from(n, |id| {
        Box::new(BcastProgram::new(
            lam,
            (id == ProcId::ROOT).then_some(n as u64),
        )) as Box<dyn Program<BcastPayload> + Send>
    });
    let thr_report = run_threaded(lam, fast(), programs);
    let mut thr_edges: Vec<(u32, u32)> = thr_report
        .deliveries
        .iter()
        .map(|d| (d.from.0, d.to.0))
        .collect();
    thr_edges.sort_unstable();

    assert_eq!(sim_edges, thr_edges, "broadcast trees must be identical");
}

#[test]
fn pipeline_delivery_multiset_agrees() {
    let lam = Latency::from_int(2);
    let (n, m) = (12usize, 5u32);

    let sim = postal::algos::run_pipeline(n, m, lam);
    sim.verify().unwrap();

    let programs = send_programs_from(n, |id| {
        Box::new(PipelineProgram::new(
            lam,
            m,
            (id == ProcId::ROOT).then_some(n as u64),
        )) as Box<dyn Program<MultiPacket> + Send>
    });
    let thr = run_threaded(lam, fast(), programs);

    // Per-processor multiset of received message indices must agree.
    let mut sim_recv: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for t in sim.report.trace.transfers() {
        sim_recv.entry(t.dst.0).or_default().push(t.payload.msg);
    }
    let mut thr_recv: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for d in &thr.deliveries {
        thr_recv.entry(d.to.0).or_default().push(d.payload.msg);
    }
    for v in sim_recv.values_mut() {
        v.sort_unstable();
    }
    for v in thr_recv.values_mut() {
        v.sort_unstable();
    }
    assert_eq!(sim_recv, thr_recv);
}

#[test]
fn threaded_bcast_time_tracks_model_prediction() {
    let lam = Latency::from_int(2);
    let n = 16usize;
    let model_units = runtimes::bcast_time(n as u128, lam).to_f64();

    let programs = send_programs_from(n, |id| {
        Box::new(BcastProgram::new(
            lam,
            (id == ProcId::ROOT).then_some(n as u64),
        )) as Box<dyn Program<BcastPayload> + Send>
    });
    let report = run_threaded(lam, fast(), programs);

    // Lower bound is hard (sleeps enforce model minimums); upper bound
    // is generous to absorb scheduler jitter on loaded machines.
    assert!(
        report.elapsed_units >= model_units - 0.05,
        "impossibly fast: {} < {model_units}",
        report.elapsed_units
    );
    assert!(
        report.elapsed_units <= model_units * 4.0 + 10.0,
        "far too slow: {} vs {model_units}",
        report.elapsed_units
    );
}
