//! Property tests for the lint engine and analyzer: every algorithm's
//! schedule is lint-clean at error severity for random (n, λ, m), and
//! an adversarially mutated schedule — one send shifted a unit early —
//! always trips one of the hard validity codes.

use postal::algos::{
    flood_schedule, run_bcast, run_dtree, run_pack, run_pipeline, run_repeat, BroadcastTree,
    ToSchedule,
};
use postal::model::schedule::{Schedule, TimedSend};
use postal::model::{Latency, Time};
use postal::verify::{is_clean, lint_schedule, LintCode, LintOptions, Severity};
use proptest::prelude::*;

/// Random λ = p/q with 1 ≤ λ ≤ 8 and a small lattice (q ≤ 4).
fn arb_latency8() -> impl Strategy<Value = Latency> {
    (1i128..=4, 1i128..=8).prop_map(|(q, mult)| Latency::from_ratio(q * mult, q))
}

fn assert_error_clean(schedule: &Schedule, opts: &LintOptions) -> Result<(), TestCaseError> {
    let diags = lint_schedule(schedule, opts);
    prop_assert!(
        is_clean(&diags, Severity::Error),
        "schedule not error-clean: {:?}",
        diags
    );
    Ok(())
}

/// Shifts send `idx` one unit earlier, keeping everything else intact.
fn shift_back_one(schedule: &Schedule, idx: usize) -> Schedule {
    let mut sends: Vec<TimedSend> = schedule.sends().to_vec();
    sends[idx].send_start -= Time::ONE;
    Schedule::new(schedule.n(), schedule.latency(), sends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn static_broadcast_schedules_are_error_clean(lam in arb_latency8(), n in 2u64..=512) {
        let tree = BroadcastTree::build(n, lam).to_schedule();
        assert_error_clean(&tree, &LintOptions::default())?;
        let flood = flood_schedule(n, lam);
        assert_error_clean(&flood.schedule, &LintOptions::default())?;
    }

    #[test]
    fn simulated_algorithms_are_error_clean(
        lam in arb_latency8(),
        n in 2usize..=96,
        m in 1u32..=8,
        which in 0usize..5,
    ) {
        let (name, report) = match which {
            0 => ("repeat", run_repeat(n, m, lam)),
            1 => ("pack", run_pack(n, m, lam)),
            2 => ("pipeline", run_pipeline(n, m, lam)),
            3 => ("line", run_dtree(n, m, lam, 1)),
            _ => ("binary", run_dtree(n, m, lam, 2)),
        };
        prop_assert!(report.verify().is_ok(), "{name}: engine verify failed");
        let schedule = report.report.trace.to_schedule(n as u32, lam);
        let diags = lint_schedule(&schedule, &LintOptions::broadcast_of(m as u64));
        prop_assert!(is_clean(&diags, Severity::Error), "{name}: {:?}", diags);
    }

    #[test]
    fn bcast_trace_schedule_is_error_clean(lam in arb_latency8(), n in 2usize..=512) {
        let report = run_bcast(n, lam);
        let schedule = report.trace.to_schedule(n as u32, lam);
        assert_error_clean(&schedule, &LintOptions::default())?;
    }

    #[test]
    fn shifting_any_send_early_always_trips_a_hard_lint(
        lam in arb_latency8(),
        n in 3u64..=512,
        pick in 0usize..10_000,
    ) {
        // Mutate one send of an optimal broadcast schedule one unit
        // earlier. Any such mutation must trip a hard validity code:
        // the sender's port double-books (P0001), a receive window
        // collides (P0002), or the sender now transmits before it holds
        // the message (P0003). Sends starting before t = 1 are excluded
        // (shifting those goes negative, which is P0004's domain).
        let schedule = BroadcastTree::build(n, lam).to_schedule();
        let eligible: Vec<usize> = (0..schedule.len())
            .filter(|&i| schedule.sends()[i].send_start >= Time::ONE)
            .collect();
        prop_assert!(!eligible.is_empty(), "n ≥ 3 always has a send at t ≥ 1");
        let idx = eligible[pick % eligible.len()];
        let mutated = shift_back_one(&schedule, idx);
        let diags = lint_schedule(&mutated, &LintOptions::default());
        prop_assert!(
            diags.iter().any(|d| matches!(
                d.code,
                LintCode::OutputPortOverlap
                    | LintCode::InputWindowOverlap
                    | LintCode::CausalityViolation
            )),
            "mutating send #{idx} tripped nothing hard: {:?}",
            diags
        );
    }
}
