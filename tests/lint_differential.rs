//! Differential acceptance grid for the single-sweep lint engine.
//!
//! The pass manager behind `lint_schedule` must be **byte-identical**
//! to the retained seed engine (`lint::reference`) — not just
//! same-verdict but same rendered report and same `--format json`
//! output, diagnostic for diagnostic. This suite drives both engines
//! over the full acceptance grid (every shipped broadcast algorithm,
//! n ≤ 64, λ ∈ {1, 2, 5/2}, m ≤ 4) and over adversarially dirtied
//! schedules where every code `P0001`–`P0007` actually fires, comparing
//! the exact bytes the CLI would print.

use postal::algos::{
    flood_schedule, run_bcast, run_dtree, run_pack, run_pipeline, run_repeat, run_repeat_greedy,
    BroadcastTree, ToSchedule,
};
use postal::model::lint::reference::lint_schedule_reference;
use postal::model::schedule::{Schedule, TimedSend};
use postal::model::{Latency, Time};
use postal::verify::{json, lint_schedule, render, LintOptions};

fn lambdas() -> Vec<Latency> {
    vec![
        Latency::from_int(1),
        Latency::from_int(2),
        Latency::from_ratio(5, 2),
    ]
}

/// Asserts the two engines emit the same bytes for `schedule`:
/// rendered report and JSON array, plus the raw diagnostic values.
fn assert_identical(schedule: &Schedule, opts: &LintOptions, context: &str) {
    let fast = lint_schedule(schedule, opts);
    let slow = lint_schedule_reference(schedule, opts);
    assert_eq!(fast, slow, "diagnostics diverge: {context}");
    assert_eq!(
        render::render_report(&fast, context),
        render::render_report(&slow, context),
        "rendered report diverges: {context}"
    );
    assert_eq!(
        json::diagnostics_to_json(&fast),
        json::diagnostics_to_json(&slow),
        "JSON output diverges: {context}"
    );
}

#[test]
fn single_message_grid_is_byte_identical() {
    for lam in lambdas() {
        for n in 2..=64u64 {
            let opts = LintOptions::default();
            let report = run_bcast(n as usize, lam);
            let bcast = report.trace.to_schedule(n as u32, lam);
            assert_identical(&bcast, &opts, &format!("bcast n={n} λ={lam}"));

            let tree = BroadcastTree::build(n, lam).to_schedule();
            assert_identical(&tree, &opts, &format!("tree n={n} λ={lam}"));

            let flood = flood_schedule(n, lam);
            assert_identical(&flood.schedule, &opts, &format!("flood n={n} λ={lam}"));
        }
    }
}

#[test]
fn multi_message_grid_is_byte_identical() {
    for lam in lambdas() {
        for &n in &[2usize, 5, 9, 14, 24, 33, 48, 64] {
            for m in 1..=4u32 {
                let opts = LintOptions::broadcast_of(m as u64);
                for (name, report) in [
                    ("repeat", run_repeat(n, m, lam)),
                    ("repeat-greedy", run_repeat_greedy(n, m, lam)),
                    ("pack", run_pack(n, m, lam)),
                    ("pipeline", run_pipeline(n, m, lam)),
                    ("line", run_dtree(n, m, lam, 1)),
                    ("binary", run_dtree(n, m, lam, 2)),
                    ("star", run_dtree(n, m, lam, n as u64 - 1)),
                ] {
                    let schedule = report.report.trace.to_schedule(n as u32, lam);
                    assert_identical(&schedule, &opts, &format!("{name} n={n} m={m} λ={lam}"));
                }
            }
        }
    }
}

/// Shifts send `idx` one unit earlier, keeping everything else intact.
fn shift_back_one(schedule: &Schedule, idx: usize) -> Schedule {
    let mut sends: Vec<TimedSend> = schedule.sends().to_vec();
    sends[idx].send_start -= Time::ONE;
    Schedule::new(schedule.n(), schedule.latency(), sends)
}

/// Drops send `idx`, typically uninforming a subtree (`P0005`).
fn drop_send(schedule: &Schedule, idx: usize) -> Schedule {
    let mut sends: Vec<TimedSend> = schedule.sends().to_vec();
    sends.remove(idx);
    Schedule::new(schedule.n(), schedule.latency(), sends)
}

/// Redirects send `idx` out of range (`P0004`).
fn corrupt_dst(schedule: &Schedule, idx: usize) -> Schedule {
    let mut sends: Vec<TimedSend> = schedule.sends().to_vec();
    sends[idx].dst = schedule.n() + 7;
    Schedule::new(schedule.n(), schedule.latency(), sends)
}

#[test]
fn dirty_schedules_are_byte_identical() {
    // Every mutation of every tree schedule in the small grid: the
    // engines must agree on *broken* inputs — where diagnostics exist,
    // suppression kicks in, and ordering rules actually matter.
    for lam in lambdas() {
        for n in 2..=24u64 {
            let tree = BroadcastTree::build(n, lam).to_schedule();
            for idx in 0..tree.len() {
                for (what, dirty) in [
                    ("shift", shift_back_one(&tree, idx)),
                    ("drop", drop_send(&tree, idx)),
                    ("corrupt", corrupt_dst(&tree, idx)),
                ] {
                    for opts in [LintOptions::default(), LintOptions::ports_only()] {
                        assert_identical(
                            &dirty,
                            &opts,
                            &format!("{what} idx={idx} tree n={n} λ={lam}"),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn idle_and_gap_warnings_are_byte_identical() {
    // A deliberately lazy line schedule: valid, but full of P0006 idle
    // gaps and a P0007 optimality gap — the quality-stage codes the
    // clean grid rarely exercises.
    for lam in lambdas() {
        for n in 3..=16u32 {
            let mut sends = Vec::new();
            for p in 0..n - 1 {
                // Each hop waits two extra units after learning.
                let start = Time::from_int(p as i128 * 4) + lam.as_time();
                sends.push(TimedSend {
                    src: p,
                    dst: p + 1,
                    send_start: start,
                });
            }
            let lazy = Schedule::new(n, lam, sends);
            assert_identical(
                &lazy,
                &LintOptions::default(),
                &format!("lazy n={n} λ={lam}"),
            );
        }
    }
}
