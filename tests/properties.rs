//! Property-based tests over the core invariants, with randomized
//! latencies λ = p/q, processor counts and message counts.

use postal::algos::{
    cascade, run_bcast, run_dtree, run_pack, run_pipeline, run_repeat, BroadcastTree, Orientation,
};
use postal::model::{bounds, runtimes, GenFib, Latency, Time};
use proptest::prelude::*;

/// Random λ = p/q with 1 ≤ λ ≤ 16 and a small lattice (q ≤ 6).
fn arb_latency() -> impl Strategy<Value = Latency> {
    (1i128..=6, 1i128..=16).prop_map(|(q, mult)| {
        // p between q and 16q keeps 1 ≤ λ ≤ 16.
        Latency::from_ratio(q * mult, q)
    })
}

/// Richer λ: arbitrary p/q in lowest terms with λ ≥ 1.
fn arb_latency_fine() -> impl Strategy<Value = Latency> {
    (1i128..=8, 0i128..=40).prop_map(|(q, extra)| Latency::from_ratio(q + extra, q))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fib_is_monotone_and_claim1_holds(lam in arb_latency_fine(), n in 1u128..5000) {
        let g = GenFib::new(lam);
        let f = g.index_ticks(n);
        // Claim 1(3): F(f(n)) ≥ n.
        prop_assert!(g.value_at_ticks(f) >= n);
        // Claim 1(4): F(f(n) − ε) < n.
        if f > 0 {
            prop_assert!(g.value_at_ticks(f - 1) < n);
        }
        // Monotonicity in n.
        if n > 1 {
            prop_assert!(g.index_ticks(n - 1) <= f);
        }
    }

    #[test]
    fn theorem7_bounds_hold(lam in arb_latency_fine(), n in 1u128..100_000) {
        let g = GenFib::new(lam);
        let f = g.index(n).to_f64();
        prop_assert!(bounds::index_lower_bound(n, lam) <= f + 1e-6);
        prop_assert!(f <= bounds::index_upper_bound(n, lam) + 1e-6);
    }

    #[test]
    fn fib_value_bounds_hold(lam in arb_latency(), t in 0i128..200) {
        let g = GenFib::new(lam);
        let tt = Time::from_int(t);
        let v = g.value(tt);
        prop_assert!(bounds::fib_lower_bound(tt, lam) <= v);
        prop_assert!(v <= bounds::fib_upper_bound(tt, lam));
    }

    #[test]
    fn cascade_partitions_range(lam in arb_latency_fine(), size in 1u64..2000,
                                swapped in any::<bool>()) {
        let g = GenFib::new(lam);
        let orientation = if swapped { Orientation::Swapped } else { Orientation::Standard };
        let sends = cascade(&g, size, orientation);
        prop_assert!(postal::algos::cascade::covers_range(&sends, size));
    }

    #[test]
    fn bcast_simulation_equals_theorem6(lam in arb_latency(), n in 1usize..200) {
        let report = run_bcast(n, lam);
        prop_assert!(report.violations.is_empty());
        prop_assert_eq!(report.completion, runtimes::bcast_time(n as u128, lam));
        prop_assert_eq!(report.messages(), n - 1);
    }

    #[test]
    fn tree_simulation_agreement(lam in arb_latency(), n in 1u64..150) {
        let tree = BroadcastTree::build(n, lam);
        prop_assert_eq!(tree.root.size(), n as usize);
        prop_assert_eq!(tree.completion(), runtimes::bcast_time(n as u128, lam));
    }

    #[test]
    fn repeat_matches_lemma10(lam in arb_latency(), n in 2usize..60, m in 1u32..8) {
        let r = run_repeat(n, m, lam);
        prop_assert!(r.verify().is_ok());
        prop_assert_eq!(r.completion(), runtimes::repeat_time(n as u128, m as u64, lam));
    }

    #[test]
    fn pack_matches_lemma12(lam in arb_latency(), n in 2usize..60, m in 1u32..8) {
        let r = run_pack(n, m, lam);
        prop_assert!(r.verify().is_ok());
        prop_assert_eq!(r.completion(), runtimes::pack_time(n as u128, m as u64, lam));
    }

    #[test]
    fn pipeline_matches_lemmas14_16(lam in arb_latency(), n in 2usize..60, m in 1u32..12) {
        let r = run_pipeline(n, m, lam);
        prop_assert!(r.verify().is_ok());
        prop_assert_eq!(r.completion(), runtimes::pipeline_time(n as u128, m as u64, lam));
    }

    #[test]
    fn dtree_within_lemma18(lam in arb_latency(), n in 2usize..50, m in 1u32..6,
                            d_seed in 1u64..50) {
        let d = 1 + d_seed % (n as u64 - 1).max(1);
        let d = d.min(n as u64 - 1);
        let r = run_dtree(n, m, lam, d);
        prop_assert!(r.verify().is_ok());
        prop_assert!(
            r.completion() <= runtimes::dtree_time_bound(n as u128, m as u64, lam, d as u128)
        );
    }

    #[test]
    fn lower_bound_dominated_by_everything(lam in arb_latency(), n in 2usize..60, m in 1u32..8) {
        let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam);
        prop_assert!(runtimes::repeat_time(n as u128, m as u64, lam) >= lb);
        prop_assert!(runtimes::pack_time(n as u128, m as u64, lam) >= lb);
        prop_assert!(runtimes::pipeline_time(n as u128, m as u64, lam) >= lb);
        prop_assert!(runtimes::line_time(n as u128, m as u64, lam) >= lb);
        prop_assert!(runtimes::star_time(n as u128, m as u64, lam) >= lb);
    }

    #[test]
    fn combine_is_exact_reversal(lam in arb_latency(), n in 1usize..80, seed in any::<u64>()) {
        let values: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed % 1000 + 1)).collect();
        let outcome = postal::algos::ext::combine::run_combine(&values, lam);
        prop_assert!(outcome.report.violations.is_empty());
        prop_assert_eq!(outcome.root_total, values.iter().sum::<u64>());
        let expected = if n == 1 { Time::ZERO } else { runtimes::bcast_time(n as u128, lam) };
        prop_assert_eq!(outcome.report.completion, expected);
    }

    #[test]
    fn gossip_completes(lam in arb_latency(), n in 1usize..40) {
        let values: Vec<u64> = (0..n as u64).map(|i| 7 * i + 1).collect();
        let outcome = postal::algos::ext::gossip::run_gossip(&values, lam);
        prop_assert!(outcome.report.violations.is_empty());
        prop_assert!(outcome.complete(&values));
    }

    #[test]
    fn tree_schedule_flood_triangle(lam in arb_latency(), n in 1u64..120) {
        // Three independent derivations of the optimal broadcast must
        // agree: the Fibonacci tree, its extracted schedule (validated
        // and replayed on the engine), and the greedy flood of Lemma 5.
        use postal::algos::{flood_schedule, replay, ToSchedule};
        use postal::verify::{is_clean, lint_schedule, LintOptions, Severity};
        let tree = BroadcastTree::build(n, lam);
        let schedule = tree.to_schedule();
        let diags = lint_schedule(&schedule, &LintOptions::default());
        prop_assert!(is_clean(&diags, Severity::Error), "{:?}", diags);
        let replayed = replay(&schedule);
        prop_assert!(replayed.violations.is_empty());
        prop_assert_eq!(replayed.completion, schedule.completion());
        let flood = flood_schedule(n, lam);
        let diags = lint_schedule(&flood.schedule, &LintOptions::default());
        prop_assert!(is_clean(&diags, Severity::Error), "{:?}", diags);
        prop_assert_eq!(flood.completion(), tree.completion());
        prop_assert!(flood.informed_curve_matches(n));
    }

    #[test]
    fn allreduce_is_twice_bcast(lam in arb_latency(), n in 1usize..60, seed in any::<u32>()) {
        use postal::algos::ext::allreduce::{allreduce_time, run_allreduce};
        let values: Vec<u64> = (0..n as u64).map(|i| (i + seed as u64) % 977).collect();
        let expected: u64 = values.iter().sum();
        let o = run_allreduce(&values, lam);
        prop_assert!(o.report.violations.is_empty());
        prop_assert_eq!(o.report.completion, allreduce_time(n as u128, lam));
        for t in &o.totals {
            prop_assert_eq!(*t, Some(expected));
        }
    }

    #[test]
    fn adaptive_delivers_under_random_profiles(
        n in 2usize..80,
        steps in proptest::collection::vec((1i128..12, 1i128..30), 1..5),
    ) {
        use postal::sim::TimeVarying;
        // Build a strictly increasing profile from random (gap, λ) pairs.
        let mut t = postal::model::Time::ZERO;
        let mut profile = Vec::new();
        for (i, (gap, lam)) in steps.into_iter().enumerate() {
            if i > 0 {
                t += postal::model::Time::from_int(gap);
            }
            profile.push((t, postal::model::Latency::from_int(lam)));
        }
        let profile = TimeVarying::new(profile);
        let report = postal::algos::ext::adaptive::run_adaptive(n, &profile);
        prop_assert!(postal::algos::ext::adaptive::delivered_everywhere(&report, n));
    }

    #[test]
    fn bcast_survives_random_jitter(n in 2usize..60, seed in any::<u64>(),
                                    extra in 0u32..8) {
        use postal::sim::{Jittered, PortMode, Simulation};
        let base = postal::model::Latency::from_int(2);
        let model = Jittered::new(base, extra, seed);
        let report = Simulation::new(n, &model)
            .port_mode(PortMode::Queued)
            .run(postal::algos::bcast_programs(n, base))
            .unwrap();
        for i in 1..n {
            prop_assert_eq!(
                report.trace.received_by(postal::sim::ProcId::from(i)).count(),
                1
            );
        }
        // Completion bounded by optimum and optimum stretched by the
        // worst-case extra latency per hop (depth ≤ f_λ(n)/λ ≤ f).
        let f = postal::model::runtimes::bcast_time(n as u128, base);
        prop_assert!(report.completion >= f);
    }

    #[test]
    fn fault_free_plan_changes_nothing(lam in arb_latency(), n in 1usize..60) {
        use postal::sim::{FaultPlan, Simulation, Uniform};
        let model = Uniform(lam);
        let clean = postal::algos::run_bcast(n, lam);
        let with_empty_plan = Simulation::new(n, &model)
            .faults(FaultPlan::none())
            .run(postal::algos::bcast_programs(n, lam))
            .unwrap();
        prop_assert_eq!(clean.completion, with_empty_plan.completion);
        prop_assert_eq!(clean.messages(), with_empty_plan.messages());
    }

    #[test]
    fn any_single_drop_loses_a_contiguous_nonempty_set(
        lam in arb_latency(), n in 2usize..40, drop_seed in any::<u64>()
    ) {
        use postal::sim::{FaultPlan, Simulation, Uniform};
        let model = Uniform(lam);
        let seq = drop_seed % (n as u64 - 1);
        let report = Simulation::new(n, &model)
            .faults(FaultPlan::none().dropping(seq))
            .run(postal::algos::bcast_programs(n, lam))
            .unwrap();
        let first = report.trace.first_receipt_times(n);
        let lost: Vec<usize> = (1..n).filter(|&i| first[i].is_none()).collect();
        // Exactly one subtree goes dark: nonempty, and BCAST delegates
        // contiguous ranges, so the lost set is a contiguous run.
        prop_assert!(!lost.is_empty());
        for w in lost.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn claim1_holds_for_arbitrary_step_functions(
        q in 1i128..5,
        increments in proptest::collection::vec(0u128..4, 1..60),
    ) {
        use postal::model::step_fn::{check_claim1, TableStep};
        // Build a random nondecreasing table starting at 1.
        let mut values = Vec::with_capacity(increments.len());
        let mut v: u128 = 1;
        for inc in increments {
            v += inc;
            values.push(v);
        }
        let g = TableStep::new(q, values);
        prop_assert_eq!(check_claim1(&g, 100, 200), None);
    }

    #[test]
    fn corollaries_dominate_exact_times(lam in arb_latency(), n in 2u128..200, m in 1u64..16) {
        use postal::model::corollaries;
        prop_assert!(
            runtimes::repeat_time(n, m, lam).to_f64()
                <= corollaries::repeat_upper_bound(n, m, lam) + 1e-9
        );
        prop_assert!(
            runtimes::pack_time(n, m, lam).to_f64()
                <= corollaries::pack_upper_bound(n, m, lam) + 1e-9
        );
        let m_ratio = postal::model::Ratio::from_int(m as i128);
        if m_ratio <= lam.value() {
            prop_assert!(
                runtimes::pipeline1_time(n, m, lam).unwrap().to_f64()
                    <= corollaries::pipeline1_upper_bound(n, m, lam) + 1e-9
            );
        }
        if m_ratio >= lam.value() {
            prop_assert!(
                runtimes::pipeline2_time(n, m, lam).unwrap().to_f64()
                    <= corollaries::pipeline2_upper_bound(n, m, lam) + 1e-9
            );
        }
    }

    #[test]
    fn ratio_arithmetic_is_exact(a in -1000i128..1000, b in 1i128..1000,
                                 c in -1000i128..1000, d in 1i128..1000) {
        use postal::model::Ratio;
        let x = Ratio::new(a, b);
        let y = Ratio::new(c, d);
        // Field axioms on a random sample.
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x + y) - y, x);
        prop_assert_eq!(x * y, y * x);
        if !y.is_zero() {
            prop_assert_eq!((x / y) * y, x);
        }
        // Ordering consistency with f64 (coarse).
        if x < y {
            prop_assert!(x.to_f64() <= y.to_f64() + 1e-9);
        }
    }

    #[test]
    fn latency_parse_roundtrip(p in 1i128..500, q in 1i128..60) {
        let lam = Latency::from_ratio(p * q.max(1), q); // ≥ 1 by construction
        let s = lam.to_string();
        let parsed: Latency = s.parse().unwrap();
        prop_assert_eq!(parsed, lam);
    }
}
