//! The ISSUE's acceptance criteria, verbatim:
//!
//! * for every acceptance-grid point (all 9 algorithms × n ≤ 12 ×
//!   λ ∈ {1, 2, 5/2} × m ≤ 3), the abstract completion interval
//!   contains the reference simulator's and the model checker's
//!   concrete completion times;
//! * all 9 paper algorithms analyze clean (no `P0012`–`P0016`) over
//!   λ ∈ [1, 4];
//! * each seeded mutation (dead send, orphaned receive, detached
//!   subtree, inflated DTREE degree) triggers exactly its designated
//!   code.

use postal_abs::{
    analyze_algo, analyze_dtree_inflated, cross_check_point, cross_check_range, AbsConfig,
    AbsMutation,
};
use postal_mc::Algo;
use postal_model::lint::LintCode;
use postal_model::{Interval, Latency, Ratio, Time};

fn grid_lambdas() -> [Latency; 3] {
    [
        Latency::from_int(1),
        Latency::from_int(2),
        Latency::from_ratio(5, 2),
    ]
}

#[test]
fn abstract_interval_contains_concrete_completions_on_the_grid() {
    let cfg = AbsConfig::default();
    // To keep the model-checking side of the cross-check tractable the
    // full n-sweep runs a coarse bounded exploration; the DPOR engine
    // still visits every Mazurkiewicz class for the small n.
    for algo in Algo::all() {
        for n in 2..=12u32 {
            for m in 1..=3u32 {
                for lam in grid_lambdas() {
                    let out = cross_check_point(algo, n, m, lam, &cfg);
                    assert!(
                        out.sound(),
                        "{algo} n={n} m={m} λ={lam}: abstract {} misses concrete {}",
                        out.bracket,
                        out.reference
                    );
                    // The degenerate range must also collapse to a point:
                    // the analysis at [λ, λ] is exact.
                    assert!(out.bracket.is_point(), "{algo} n={n} m={m} λ={lam}");
                }
            }
        }
    }
}

#[test]
fn range_subintervals_contain_concrete_completions() {
    let cfg = AbsConfig::default();
    let range = Interval::new(Ratio::ONE, Ratio::from_int(4));
    for algo in Algo::all() {
        for lam in grid_lambdas() {
            let out = cross_check_range(algo, 8, 2, lam, range, &cfg);
            assert!(
                out.sound(),
                "{algo} λ={lam} over {range}: abstract {} misses concrete {}",
                out.bracket,
                out.reference
            );
        }
    }
}

#[test]
fn all_nine_algorithms_are_clean_over_one_to_four() {
    let cfg = AbsConfig::default();
    let range = Interval::new(Ratio::ONE, Ratio::from_int(4));
    for algo in Algo::all() {
        for n in [2u32, 7, 12] {
            for m in 1..=3u32 {
                let report = analyze_algo(algo, n, m, range, None, &cfg);
                assert!(
                    report.is_clean(),
                    "{algo} n={n} m={m}: {:?}",
                    report.diagnostics
                );
                assert!(!report.truncated, "{algo} n={n} m={m}");
            }
        }
    }
}

fn codes_of(algo: Algo, n: u32, m: u32, mutation: AbsMutation) -> Vec<LintCode> {
    let report = analyze_algo(
        algo,
        n,
        m,
        Interval::new(Ratio::ONE, Ratio::from_int(2)),
        Some(mutation),
        &AbsConfig::default(),
    );
    let mut codes: Vec<LintCode> = report.diagnostics.iter().map(|d| d.code).collect();
    codes.dedup();
    codes
}

#[test]
fn dead_send_triggers_exactly_p0012() {
    assert_eq!(
        codes_of(Algo::Bcast, 8, 1, AbsMutation::DeadSend { seq: 0 }),
        vec![LintCode::DeadSend]
    );
}

#[test]
fn orphaned_receive_triggers_exactly_p0016() {
    assert_eq!(
        codes_of(Algo::Bcast, 8, 1, AbsMutation::OrphanReceive { proc: 5 }),
        vec![LintCode::UnboundedWait]
    );
}

#[test]
fn detached_subtree_triggers_exactly_p0013() {
    assert_eq!(
        codes_of(Algo::Binary, 8, 2, AbsMutation::DetachSubtree { proc: 1 }),
        vec![LintCode::UnreachableProcessor]
    );
}

#[test]
fn stalled_start_triggers_exactly_p0014() {
    assert_eq!(
        codes_of(
            Algo::Bcast,
            8,
            1,
            AbsMutation::StallStart {
                proc: 0,
                by: Time::from_int(10),
            }
        ),
        vec![LintCode::SymbolicOptimalityGap]
    );
}

#[test]
fn inflated_degree_triggers_exactly_p0015() {
    let report = analyze_dtree_inflated(
        8,
        2,
        Interval::new(Ratio::ONE, Ratio::from_int(2)),
        &AbsConfig::default(),
    );
    let codes: Vec<LintCode> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![LintCode::DegreeBoundViolation]);
}

#[test]
fn mutated_reports_carry_witness_intervals() {
    let report = analyze_algo(
        Algo::Bcast,
        8,
        1,
        Interval::new(Ratio::ONE, Ratio::from_int(2)),
        Some(AbsMutation::DeadSend { seq: 0 }),
        &AbsConfig::default(),
    );
    for d in &report.diagnostics {
        let w = d.witness.expect("symbolic diagnostics carry a witness");
        assert!(Interval::new(Ratio::ONE, Ratio::from_int(2)).contains_interval(w));
    }
}
