//! # postal-abs
//!
//! An abstract interpreter for postal-model programs: interval-domain
//! analysis over the `postal_sim::Program` IR, parametric over an exact
//! rational λ-range `[λ_lo, λ_hi]`, with no simulation of any single
//! execution.
//!
//! Every existing analysis in this workspace judges one grid point —
//! `postal-verify` lints one observed schedule (`P0001`–`P0007`),
//! `postal-mc` explores one state space (`P0008`–`P0011`) — but the
//! paper's claims (Theorem 6, Lemmas 8–18) quantify over *all* λ. This
//! crate closes that gap: it propagates per-processor busy intervals,
//! per-port send/receive occupancy, in-flight message counts, and
//! reachability through the program IR with every clock an
//! [`postal_model::Interval`] over exact rationals, and surfaces five
//! symbolic properties as stable codes in [`postal_model::lint`]:
//!
//! | property | code |
//! |---|---|
//! | every send is eventually received | `P0012` |
//! | every processor is abstractly reachable | `P0013` |
//! | completion respects Lemma 8 and the family envelope over the whole range | `P0014` |
//! | DTREE fan-out and Lemma 18's envelope hold over the whole range | `P0015` |
//! | no processor waits on a receive nothing can match | `P0016` |
//!
//! Under a sparse [`postal_model::Topology`] (see
//! [`analyze_algo_with_topology`]), processors the graph cuts off from
//! the originator are additionally reported as `P0019`, which
//! suppresses the per-run `P0013` for them — the partition, not any
//! particular run, is the root cause.
//!
//! Each finding carries a **witness λ sub-interval** in
//! [`Diagnostic::witness`](postal_model::lint::Diagnostic), rendered by
//! `postal-verify` as `= witness: lambda in [a, b]`.
//!
//! ## How it stays sound
//!
//! Programs are opaque code, so the engine drives callbacks at a
//! concrete *witness* λ while propagating interval clocks
//! ([`engine::AbsEngine`]). The analysis layer ([`mod@analyze`]) runs both
//! endpoints of every λ sub-interval and compares structure signatures:
//! equal signatures mean the program's decisions are constant on the
//! sub-interval, and since every clock is a monotone nondecreasing
//! function of λ (constants and nonnegative multiples of λ combined
//! through `+` and `max`), the endpoint completions bracket the whole
//! sub-interval exactly. Disagreeing sub-intervals are bisected, then
//! widened at maximum depth. The soundness glue ([`soundness`])
//! cross-checks the bracket against the concrete simulator and the
//! model checker on the acceptance grid.
//!
//! ## Quick example
//!
//! ```
//! use postal_abs::{analyze_algo, AbsConfig};
//! use postal_mc::Algo;
//! use postal_model::{Interval, Ratio};
//!
//! let report = analyze_algo(
//!     Algo::Bcast,
//!     8,
//!     1,
//!     Interval::new(Ratio::ONE, Ratio::from_int(4)),
//!     None,
//!     &AbsConfig::default(),
//! );
//! assert!(report.is_clean());
//! // The completion hull brackets f_λ(8) for every λ in [1, 4].
//! assert!(report.completion.contains(
//!     postal_model::runtimes::bcast_time(8, postal_model::Latency::from_int(2)).as_ratio()
//! ));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod engine;
pub mod mutation;
pub mod soundness;
pub mod workload;

pub use analyze::{analyze, AbsConfig, AbsReport, SubReport, TreeSpec, Workload};
pub use engine::{AbsEngine, AbsRun, AbsSend, Signature};
pub use mutation::AbsMutation;
pub use soundness::{cross_check_point, cross_check_range, SoundnessOutcome};
pub use workload::{analyze_algo, analyze_algo_with_topology, analyze_dtree_inflated};
