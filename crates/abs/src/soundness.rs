//! Soundness glue: the abstract bracket must contain every concrete
//! completion the other engines produce.
//!
//! Two checks, both used by the acceptance-grid test suite and the
//! `exp_abs` bench:
//!
//! * [`cross_check_point`] — analyze at the degenerate range `[λ, λ]`
//!   and require the bracket to contain the reference simulator's
//!   completion *and* every completion the model checker observes
//!   across interleavings;
//! * [`cross_check_range`] — analyze over a wide range, find the
//!   sub-interval containing a concrete λ, and require both that
//!   sub-interval's bracket and the global hull to contain the
//!   reference completion.

use crate::analyze::AbsConfig;
use crate::workload::analyze_algo;
use postal_mc::{check_algo, Algo, McConfig};
use postal_model::{Interval, Latency, Time};

/// The verdict of one abstract-vs-concrete comparison.
#[derive(Debug, Clone)]
pub struct SoundnessOutcome {
    /// Workload tag.
    pub algo: Algo,
    /// Grid point.
    pub n: u32,
    /// Grid point.
    pub m: u32,
    /// The concrete λ checked.
    pub lambda: Latency,
    /// The abstract completion bracket that was tested.
    pub bracket: Interval,
    /// The reference simulator's completion.
    pub reference: Time,
    /// Whether the bracket contains the reference completion.
    pub contains_reference: bool,
    /// Whether the bracket contains every model-checker completion.
    pub contains_all_mc: bool,
}

impl SoundnessOutcome {
    /// True when the abstract bracket contains every concrete completion.
    pub fn sound(&self) -> bool {
        self.contains_reference && self.contains_all_mc
    }
}

/// Point check: analyze at `[λ, λ]` and compare against the simulator
/// and the model checker at the same grid point.
pub fn cross_check_point(
    algo: Algo,
    n: u32,
    m: u32,
    lam: Latency,
    cfg: &AbsConfig,
) -> SoundnessOutcome {
    let mc = check_algo(algo, n, m, lam, None, &McConfig::default());
    let abs = analyze_algo(algo, n, m, Interval::point(lam.value()), None, cfg);
    SoundnessOutcome {
        algo,
        n,
        m,
        lambda: lam,
        bracket: abs.completion,
        reference: mc.reference_completion,
        contains_reference: abs.completion.contains(mc.reference_completion.as_ratio()),
        contains_all_mc: mc
            .completions
            .iter()
            .all(|t| abs.completion.contains(t.as_ratio())),
    }
}

/// Range check: analyze over `range` and require the sub-interval
/// containing `lam` (and the global hull) to contain the reference
/// simulator's completion at `lam`.
pub fn cross_check_range(
    algo: Algo,
    n: u32,
    m: u32,
    lam: Latency,
    range: Interval,
    cfg: &AbsConfig,
) -> SoundnessOutcome {
    assert!(range.contains(lam.value()), "λ must lie inside the range");
    let mc = check_algo(algo, n, m, lam, None, &McConfig::default());
    let abs = analyze_algo(algo, n, m, range, None, cfg);
    let sub = abs
        .subintervals
        .iter()
        .find(|s| s.lambda.contains(lam.value()))
        .expect("sub-intervals cover the range");
    let contained = sub.completion.contains(mc.reference_completion.as_ratio())
        && abs.completion.contains(mc.reference_completion.as_ratio());
    SoundnessOutcome {
        algo,
        n,
        m,
        lambda: lam,
        bracket: sub.completion,
        reference: mc.reference_completion,
        contains_reference: contained,
        contains_all_mc: mc
            .completions
            .iter()
            .all(|t| abs.completion.contains(t.as_ratio())),
    }
}
