//! Fault injection for the abstract interpreter.
//!
//! Each variant is designed to trip exactly one of the symbolic lint
//! codes `P0012`–`P0016`, so the soundness tests can assert that every
//! code fires on its designated defect and on nothing else. The
//! inflated-degree defect for `P0015` lives at the workload level (build
//! a `DTREE(d+1)` but declare `d`), not here, because it changes the
//! program under analysis rather than the engine's behavior.

use postal_model::Time;

/// A seeded defect applied inside the abstract engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsMutation {
    /// The send with this sequence number is issued (recorded, port
    /// occupied) but its delivery never happens — the receiver provably
    /// never reads it. Trips `P0012`.
    DeadSend {
        /// Sequence number of the doomed send.
        seq: u64,
    },
    /// The processor registers one phantom expected receive that no
    /// send ever matches. Trips `P0016`.
    OrphanReceive {
        /// The waiting processor.
        proc: u32,
    },
    /// Every send *to* this processor is silently suppressed — not
    /// recorded, not delivered — so the processor (and anything only it
    /// would have informed) drops out of the reachability graph.
    /// Trips `P0013`.
    DetachSubtree {
        /// The detached processor.
        proc: u32,
    },
    /// The processor's `on_start` callback runs at time `by` instead of
    /// time 0, delaying everything downstream of it. Applied to the
    /// originator of a clean algorithm this inflates the completion
    /// past the family envelope without breaking any structural rule.
    /// Trips `P0014`.
    StallStart {
        /// The delayed processor.
        proc: u32,
        /// The start delay.
        by: Time,
    },
}
