//! Analysis entry points for the nine paper workloads.
//!
//! Mirrors `postal_mc::workload`: the same [`Algo`] grid, the same
//! program factories, but analyzed abstractly over a λ-range instead of
//! model-checked at a point. Each family is held to its own proven
//! envelope — BCAST to Theorem 6's `f_λ(n)`, REPEAT/PACK/PIPELINE to
//! Lemmas 10–16, and the DTREE shapes to Lemma 18 — and every workload
//! to the Lemma 8 lower bound `(m−1) + f_λ(n)`.

use crate::analyze::{analyze, AbsConfig, AbsReport, TreeSpec, Workload};
use crate::mutation::AbsMutation;
use postal_algos::dtree::dtree_programs;
use postal_algos::pack::pack_programs;
use postal_algos::pipeline::pipeline_programs;
use postal_algos::repeat::repeat_programs;
use postal_algos::{bcast_programs, Pacing};
use postal_mc::Algo;
use postal_model::{runtimes, Interval, Latency, Time, Topology};

/// Abstractly analyzes one paper algorithm over the λ-range `lambda`.
///
/// `Bcast` ignores `m` (it is the single-message algorithm); the tree
/// shapes pick their degree from the variant exactly as
/// [`postal_mc::check_algo`] does, so the two analyses always see the
/// same programs at any witness λ.
pub fn analyze_algo(
    algo: Algo,
    n: u32,
    m: u32,
    lambda: Interval,
    mutation: Option<AbsMutation>,
    cfg: &AbsConfig,
) -> AbsReport {
    analyze_algo_with_topology(algo, n, m, lambda, mutation, None, cfg)
}

/// Like [`analyze_algo`], but holds the workload to a sparse
/// communication graph: processors the topology cuts off from the
/// originator are reported as `P0019` (suppressing the per-run `P0013`
/// for them), and quality envelopes are suppressed under a partition.
/// `topology: None` (or the complete graph) recovers [`analyze_algo`]
/// exactly.
pub fn analyze_algo_with_topology(
    algo: Algo,
    n: u32,
    m: u32,
    lambda: Interval,
    mutation: Option<AbsMutation>,
    topology: Option<&Topology>,
    cfg: &AbsConfig,
) -> AbsReport {
    let nu = n as usize;
    let nn = n as u128;
    let m = m.max(1);
    let eff_m = if algo == Algo::Bcast { 1 } else { m as u64 };
    let clamp = move |d: u64| d.clamp(1, (n as u64).saturating_sub(1).max(1));

    let general = GeneralSpec {
        name: algo.name(),
        n,
        m: eff_m,
        lambda,
        mutation,
        topology,
    };

    match algo {
        Algo::Bcast => general.analyze(cfg, &|lam| bcast_programs(nu, lam), &|lam| {
            runtimes::bcast_time(nn, lam)
        }),
        Algo::Repeat => general.analyze(
            cfg,
            &|lam| repeat_programs(nu, m, lam, Pacing::PaperExact),
            &|lam| runtimes::repeat_time(nn, m as u64, lam),
        ),
        Algo::RepeatGreedy => general.analyze(
            cfg,
            &|lam| repeat_programs(nu, m, lam, Pacing::Greedy),
            &|lam| runtimes::repeat_time(nn, m as u64, lam),
        ),
        Algo::Pack => general.analyze(cfg, &|lam| pack_programs(nu, m, lam), &|lam| {
            runtimes::pack_time(nn, m as u64, lam)
        }),
        Algo::Pipeline => general.analyze(cfg, &|lam| pipeline_programs(nu, m, lam), &|lam| {
            runtimes::pipeline_time(nn, m as u64, lam)
        }),
        Algo::Line => analyze_tree(algo, n, m, lambda, mutation, topology, cfg, &move |_| {
            clamp(1)
        }),
        Algo::Binary => analyze_tree(algo, n, m, lambda, mutation, topology, cfg, &move |_| {
            clamp(2)
        }),
        Algo::Star => analyze_tree(algo, n, m, lambda, mutation, topology, cfg, &move |_| {
            clamp(n as u64)
        }),
        Algo::Dtree => analyze_tree(algo, n, m, lambda, mutation, topology, cfg, &move |lam| {
            clamp(runtimes::latency_matched_degree(nn, lam) as u64)
        }),
    }
}

/// Shared parameters of the non-tree workloads, with a generic analyze
/// step (closures cannot be generic over the payload type).
struct GeneralSpec<'a> {
    name: &'a str,
    n: u32,
    m: u64,
    lambda: Interval,
    mutation: Option<AbsMutation>,
    topology: Option<&'a Topology>,
}

impl GeneralSpec<'_> {
    fn analyze<P>(
        &self,
        cfg: &AbsConfig,
        factory: &dyn Fn(Latency) -> Vec<Box<dyn postal_sim::Program<P>>>,
        envelope: &dyn Fn(Latency) -> Time,
    ) -> AbsReport {
        analyze(
            &Workload {
                name: self.name,
                n: self.n,
                m: self.m,
                factory,
                envelope: Some(envelope),
                tree: None,
                mutation: self.mutation,
                topology: self.topology,
            },
            self.lambda,
            cfg,
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn analyze_tree(
    algo: Algo,
    n: u32,
    m: u32,
    lambda: Interval,
    mutation: Option<AbsMutation>,
    topology: Option<&Topology>,
    cfg: &AbsConfig,
    degree: &dyn Fn(Latency) -> u64,
) -> AbsReport {
    let nu = n as usize;
    let nn = n as u128;
    let factory = |lam: Latency| dtree_programs(nu, m, degree(lam));
    let bound = |lam: Latency| runtimes::dtree_time_bound(nn, m as u64, lam, degree(lam) as u128);
    analyze(
        &Workload {
            name: algo.name(),
            n,
            m: m as u64,
            factory: &factory,
            envelope: None,
            tree: Some(TreeSpec {
                degree,
                bound: &bound,
            }),
            mutation,
            topology,
        },
        lambda,
        cfg,
    )
}

/// The workload-level `P0015` defect: builds a binary tree (`d = 2`)
/// while declaring a line (`d = 1`), so the observed fan-out exceeds
/// the declared degree bound at every λ.
pub fn analyze_dtree_inflated(n: u32, m: u32, lambda: Interval, cfg: &AbsConfig) -> AbsReport {
    assert!(
        n >= 3,
        "an inflated-degree tree needs at least 3 processors"
    );
    let nu = n as usize;
    let nn = n as u128;
    let factory = |lam: Latency| {
        let _ = lam;
        dtree_programs(nu, m, 2)
    };
    let degree = |_: Latency| 1u64;
    let bound = |lam: Latency| runtimes::dtree_time_bound(nn, m.max(1) as u64, lam, 1);
    analyze(
        &Workload {
            name: "dtree-inflated",
            n,
            m: m.max(1) as u64,
            factory: &factory,
            envelope: None,
            tree: Some(TreeSpec {
                degree: &degree,
                bound: &bound,
            }),
            mutation: None,
            topology: None,
        },
        lambda,
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::lint::LintCode;
    use postal_model::Ratio;

    #[test]
    fn all_algorithms_analyze_clean_over_the_paper_range() {
        let lambda = Interval::new(Ratio::ONE, Ratio::from_int(4));
        for algo in Algo::all() {
            let report = analyze_algo(algo, 8, 2, lambda, None, &AbsConfig::default());
            assert!(report.is_clean(), "{algo}: {:?}", report.diagnostics);
        }
    }

    #[test]
    fn inflated_degree_trips_p0015_only() {
        let report = analyze_dtree_inflated(
            8,
            2,
            Interval::new(Ratio::ONE, Ratio::from_int(2)),
            &AbsConfig::default(),
        );
        let codes: Vec<LintCode> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![LintCode::DegreeBoundViolation], "{codes:?}");
    }
}
