//! The interval-domain abstract engine.
//!
//! One abstract run drives the same event-driven [`Program`]s the
//! simulator and the model checker run, but every clock in the engine is
//! an [`Interval`] over the λ-range under analysis: a send issued with
//! abstract start `S` finishes receiving in `S + [λ_lo, λ_hi]`, output
//! ports serialize interval-wise (`start = max(now, free)` endpoint by
//! endpoint), and the completion time comes out as an interval that
//! bounds the concrete completion for *every* λ in the range — provided
//! the program makes the same decisions at every λ in the range.
//!
//! That proviso is the crux. Programs are opaque code, so the engine
//! drives their callbacks at one concrete *witness* λ (an endpoint of
//! the range) and records a structure signature — the `(src, dst)` send
//! sequence, per-processor arrival counts, and wake counts. The analysis
//! layer ([`mod@crate::analyze`]) runs the engine at both endpoints of each
//! λ sub-interval and only trusts the interval arithmetic where the two
//! signatures agree; where they disagree it bisects, because a program
//! whose structure is constant on a sub-interval has event times that
//! are monotone nondecreasing functions of λ (every clock is built from
//! constants and nonnegative multiples of λ through `+` and `max`), so
//! endpoint evaluation brackets the whole sub-interval exactly.
//!
//! Wake-ups requested via [`postal_sim::Context::wake_at`] are the one
//! place a program can feed a λ-dependent value back into the engine as
//! an opaque scalar; the engine abstracts the requested time as
//! `now + (t − now_witness)`, i.e. it treats the *offset* from the
//! callback instant as λ-independent. A λ-dependent offset shows up as
//! a signature or completion mismatch between the endpoint runs and is
//! handled by subdivision, never silently.

use crate::mutation::AbsMutation;
use postal_model::{Interval, Latency, Time};
use postal_sim::{Context, ProcId, Program};
use std::collections::{BTreeMap, BTreeSet};

/// One recorded send, with abstract and witness clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsSend {
    /// Creation-order sequence number.
    pub seq: u64,
    /// Sender.
    pub src: u32,
    /// Receiver.
    pub dst: u32,
    /// Abstract send-start interval (output port busy in `start + [0, 1]`).
    pub start: Interval,
    /// Abstract receive-finish interval (input port busy in `finish − [0, 1]`).
    pub finish: Interval,
    /// Concrete send start at the witness λ.
    pub start_w: Time,
    /// Whether the delivery ever fires. `false` only under a
    /// [`AbsMutation::DeadSend`] seeding.
    pub delivered: bool,
}

/// The structure signature of one abstract run: everything the program's
/// decisions determine, none of the clocks. Two runs with equal
/// signatures executed the same communication structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// `(src, dst)` of every recorded send, in sequence order.
    pub sends: Vec<(u32, u32)>,
    /// Deliveries per processor.
    pub arrivals: Vec<u64>,
    /// Wake-ups per processor.
    pub wakes: Vec<u64>,
}

/// The result of one abstract run at a fixed witness λ.
#[derive(Debug)]
pub struct AbsRun {
    /// The witness λ that drove program decisions.
    pub witness: Latency,
    /// Every recorded send.
    pub sends: Vec<AbsSend>,
    /// Deliveries per processor.
    pub arrivals: Vec<u64>,
    /// Abstract first-arrival interval per processor, when it got one.
    pub first_arrival: Vec<Option<Interval>>,
    /// Abstract hull of each processor's port occupancy (sending or
    /// receiving), when it was ever busy.
    pub busy: Vec<Option<Interval>>,
    /// Completion at the witness λ: the latest concrete receive finish.
    pub completion_w: Time,
    /// Abstract completion: hull of every receive-finish interval.
    pub completion: Interval,
    /// Peak number of simultaneously in-flight messages (witness order).
    pub peak_in_flight: usize,
    /// Largest number of distinct receivers any one sender addressed.
    pub max_fanout: u64,
    /// Processors left with an unmatched phantom receive expectation
    /// (seeded by [`AbsMutation::OrphanReceive`]).
    pub unmet_waits: Vec<u32>,
    /// The run's structure signature.
    pub signature: Signature,
    /// `true` if the event budget was exhausted before quiescence.
    pub truncated: bool,
}

enum Ev<P> {
    Start {
        proc: u32,
        at: Interval,
    },
    Deliver {
        dst: u32,
        finish: Interval,
        src: u32,
        payload: P,
    },
    Wake {
        proc: u32,
        at: Interval,
    },
}

struct AbsCtx<P> {
    me: ProcId,
    n: usize,
    now: Time,
    outbox: Vec<(ProcId, P)>,
    wakes: Vec<Time>,
}

impl<P> Context<P> for AbsCtx<P> {
    fn me(&self) -> ProcId {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn now(&self) -> Time {
        self.now
    }

    fn send(&mut self, dst: ProcId, payload: P) {
        assert!(dst.index() < self.n, "send out of range");
        assert!(dst != self.me, "the postal model has no self-sends");
        self.outbox.push((dst, payload));
    }

    fn wake_at(&mut self, t: Time) {
        self.wakes.push(t.max(self.now));
    }
}

/// The abstract engine: interval clocks driven at a concrete witness λ.
pub struct AbsEngine<P> {
    n: usize,
    lam_w: Time,
    lam: Interval,
    witness: Latency,
    programs: Vec<Box<dyn Program<P>>>,
    out_free_w: Vec<Time>,
    out_free: Vec<Interval>,
    events: BTreeMap<(Time, u64), Ev<P>>,
    next_id: u64,
    next_seq: u64,
    sends: Vec<AbsSend>,
    arrivals: Vec<u64>,
    wake_counts: Vec<u64>,
    first_arrival: Vec<Option<Interval>>,
    busy: Vec<Option<Interval>>,
    fanout: Vec<BTreeSet<u32>>,
    completion_w: Time,
    completion: Option<Interval>,
    in_flight: usize,
    peak_in_flight: usize,
    max_events: usize,
    executed: usize,
    truncated: bool,
    mutation: Option<AbsMutation>,
}

impl<P> AbsEngine<P> {
    /// Builds an engine over `lam` with decisions driven at `witness`
    /// (which must lie inside `lam`).
    pub fn new(
        n: u32,
        lam: Interval,
        witness: Latency,
        programs: Vec<Box<dyn Program<P>>>,
        mutation: Option<AbsMutation>,
        max_events: usize,
    ) -> AbsEngine<P> {
        assert_eq!(programs.len(), n as usize, "one program per processor");
        assert!(
            lam.contains(witness.value()),
            "witness λ must lie inside the λ-range"
        );
        let n = n as usize;
        AbsEngine {
            n,
            lam_w: witness.as_time(),
            lam,
            witness,
            programs,
            out_free_w: vec![Time::ZERO; n],
            out_free: vec![Interval::ZERO; n],
            events: BTreeMap::new(),
            next_id: 0,
            next_seq: 0,
            sends: Vec::new(),
            arrivals: vec![0; n],
            wake_counts: vec![0; n],
            first_arrival: vec![None; n],
            busy: vec![None; n],
            fanout: vec![BTreeSet::new(); n],
            completion_w: Time::ZERO,
            completion: None,
            in_flight: 0,
            peak_in_flight: 0,
            max_events,
            executed: 0,
            truncated: false,
            mutation,
        }
    }

    /// Runs the programs to quiescence (or the event budget) and returns
    /// the run record.
    pub fn run(mut self) -> AbsRun {
        for proc in 0..self.n as u32 {
            let at = match self.mutation {
                Some(AbsMutation::StallStart { proc: p, by }) if p == proc => by,
                _ => Time::ZERO,
            };
            let id = self.next_id;
            self.next_id += 1;
            self.events.insert(
                (at, id),
                Ev::Start {
                    proc,
                    at: Interval::point(at.as_ratio()),
                },
            );
        }
        while let Some(((now_w, _), ev)) = self.events.pop_first() {
            if self.executed >= self.max_events {
                self.truncated = true;
                break;
            }
            self.executed += 1;
            match ev {
                Ev::Start { proc, at } => {
                    let mut ctx = self.ctx(proc, now_w);
                    self.programs[proc as usize].on_start(&mut ctx);
                    self.apply(proc, now_w, at, ctx);
                }
                Ev::Deliver {
                    dst,
                    finish,
                    src,
                    payload,
                } => {
                    self.in_flight -= 1;
                    self.arrivals[dst as usize] += 1;
                    let window = Interval::new(finish.lo() - postal_model::Ratio::ONE, finish.hi());
                    self.touch(dst, window);
                    let fa = &mut self.first_arrival[dst as usize];
                    if fa.is_none() {
                        *fa = Some(finish);
                    }
                    self.completion_w = self.completion_w.max(now_w);
                    // Elementwise max: completion is the latest receive
                    // finish at every λ, not the hull of all finishes.
                    self.completion = Some(match self.completion {
                        None => finish,
                        Some(c) => c.max(finish),
                    });
                    let mut ctx = self.ctx(dst, now_w);
                    self.programs[dst as usize].on_receive(&mut ctx, ProcId(src), payload);
                    self.apply(dst, now_w, finish, ctx);
                }
                Ev::Wake { proc, at } => {
                    let mut ctx = self.ctx(proc, now_w);
                    self.programs[proc as usize].on_wake(&mut ctx);
                    self.apply(proc, now_w, at, ctx);
                }
            }
        }
        let unmet_waits = match self.mutation {
            Some(AbsMutation::OrphanReceive { proc }) => vec![proc],
            _ => Vec::new(),
        };
        let signature = Signature {
            sends: self.sends.iter().map(|s| (s.src, s.dst)).collect(),
            arrivals: self.arrivals.clone(),
            wakes: self.wake_counts.clone(),
        };
        AbsRun {
            witness: self.witness,
            sends: self.sends,
            arrivals: self.arrivals,
            first_arrival: self.first_arrival,
            busy: self.busy,
            completion_w: self.completion_w,
            completion: self.completion.unwrap_or(Interval::ZERO),
            peak_in_flight: self.peak_in_flight,
            max_fanout: self
                .fanout
                .iter()
                .map(|d| d.len() as u64)
                .max()
                .unwrap_or(0),
            unmet_waits,
            signature,
            truncated: self.truncated,
        }
    }

    fn ctx(&self, proc: u32, now: Time) -> AbsCtx<P> {
        AbsCtx {
            me: ProcId(proc),
            n: self.n,
            now,
            outbox: Vec::new(),
            wakes: Vec::new(),
        }
    }

    fn touch(&mut self, proc: u32, window: Interval) {
        let b = &mut self.busy[proc as usize];
        *b = Some(match *b {
            None => window,
            Some(cur) => cur.widen(window),
        });
    }

    /// Applies a callback's buffered sends and wakes with interval port
    /// serialization (mirrors the checker's `McEngine::apply`).
    fn apply(&mut self, src: u32, now_w: Time, now: Interval, ctx: AbsCtx<P>) {
        let one = Interval::point(postal_model::Ratio::ONE);
        for (dst, payload) in ctx.outbox {
            if matches!(
                self.mutation,
                Some(AbsMutation::DetachSubtree { proc }) if proc == dst.0
            ) {
                continue;
            }
            let s = src as usize;
            let start_w = now_w.max(self.out_free_w[s]);
            let start = now.max(self.out_free[s]);
            self.out_free_w[s] = start_w + Time::ONE;
            self.out_free[s] = start + one;
            self.touch(
                src,
                start + Interval::new(postal_model::Ratio::ZERO, postal_model::Ratio::ONE),
            );
            let finish_w = start_w + self.lam_w;
            let finish = start + self.lam;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.fanout[s].insert(dst.0);
            let dead = matches!(
                self.mutation,
                Some(AbsMutation::DeadSend { seq: dseq }) if dseq == seq
            );
            self.sends.push(AbsSend {
                seq,
                src,
                dst: dst.0,
                start,
                finish,
                start_w,
                delivered: !dead,
            });
            if dead {
                continue;
            }
            self.in_flight += 1;
            self.peak_in_flight = self.peak_in_flight.max(self.in_flight);
            let id = self.next_id;
            self.next_id += 1;
            self.events.insert(
                (finish_w, id),
                Ev::Deliver {
                    dst: dst.0,
                    finish,
                    src,
                    payload,
                },
            );
        }
        for t in ctx.wakes {
            self.wake_counts[src as usize] += 1;
            let offset = t - now_w;
            let at = now + Interval::point(offset.as_ratio());
            let id = self.next_id;
            self.next_id += 1;
            self.events.insert((t, id), Ev::Wake { proc: src, at });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_algos::bcast_programs;
    use postal_model::{runtimes, Ratio};

    fn run_bcast(n: u32, witness: Latency, lam: Interval) -> AbsRun {
        AbsEngine::new(
            n,
            lam,
            witness,
            bcast_programs(n as usize, witness),
            None,
            100_000,
        )
        .run()
    }

    #[test]
    fn point_interval_matches_closed_form() {
        let lam = Latency::from_ratio(5, 2);
        let run = run_bcast(14, lam, Interval::point(lam.value()));
        let expect = runtimes::bcast_time(14, lam);
        assert_eq!(run.completion_w, expect);
        assert_eq!(run.completion, Interval::point(expect.as_ratio()));
        assert!(run.sends.iter().all(|s| s.delivered));
        assert_eq!(run.arrivals.iter().filter(|&&a| a > 0).count(), 13);
    }

    #[test]
    fn wide_interval_brackets_the_witness_completion() {
        let witness = Latency::from_int(2);
        let run = run_bcast(8, witness, Interval::new(Ratio::ONE, Ratio::from_int(2)));
        assert!(run
            .completion
            .contains(runtimes::bcast_time(8, witness).as_ratio()));
        assert!(run.completion.width() > Ratio::ZERO);
    }

    #[test]
    fn dead_send_is_recorded_but_not_delivered() {
        let lam = Latency::from_int(2);
        let run = AbsEngine::new(
            4,
            Interval::point(lam.value()),
            lam,
            bcast_programs(4, lam),
            Some(AbsMutation::DeadSend { seq: 0 }),
            100_000,
        )
        .run();
        let dead: Vec<&AbsSend> = run.sends.iter().filter(|s| !s.delivered).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].seq, 0);
    }

    #[test]
    fn detach_suppresses_the_send_record() {
        let lam = Latency::from_int(2);
        let run = AbsEngine::new(
            4,
            Interval::point(lam.value()),
            lam,
            bcast_programs(4, lam),
            Some(AbsMutation::DetachSubtree { proc: 3 }),
            100_000,
        )
        .run();
        assert!(run.sends.iter().all(|s| s.dst != 3));
        assert_eq!(run.arrivals[3], 0);
    }
}
