//! λ-range analysis: adaptive subdivision, soundness bracketing, and
//! synthesis of the symbolic lint codes `P0012`–`P0016`.
//!
//! [`analyze`] runs the abstract engine at both endpoints of the λ-range
//! and compares [`Signature`](crate::engine::Signature)s. Where the
//! endpoint runs executed the
//! same communication structure, every event time is a monotone
//! nondecreasing function of λ (clocks are built from constants and
//! nonnegative multiples of λ through `+` and `max`), so the two
//! endpoint completions bracket the completion for every λ in between
//! *exactly*. Where the structures differ — BCAST's optimal split,
//! PIPELINE's regime choice, and DTREE's latency-matched degree all
//! switch at rational thresholds — the range is bisected up to
//! [`AbsConfig::max_depth`]; a leaf that still disagrees is *widened*
//! (hulled) and flagged inexact. Widened leaves are sound under the same
//! monotone-completion assumption, which every paper family satisfies;
//! the soundness test suite cross-checks the bracket against the
//! concrete simulator and the model checker on the acceptance grid.

use crate::engine::{AbsEngine, AbsRun};
use crate::mutation::AbsMutation;
use postal_model::lint::{Diagnostic, LintCode, Severity};
use postal_model::schedule::TimedSend;
use postal_model::topology::UNREACHABLE;
use postal_model::{runtimes, Interval, Latency, Ratio, Time, Topology};
use postal_sim::Program;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Knobs for the subdivision and the event budget.
#[derive(Debug, Clone, Copy)]
pub struct AbsConfig {
    /// Maximum bisection depth before a disagreeing leaf is widened.
    pub max_depth: u32,
    /// Event budget per abstract run (a runaway-program backstop).
    pub max_events: usize,
}

impl Default for AbsConfig {
    fn default() -> AbsConfig {
        AbsConfig {
            max_depth: 6,
            max_events: 200_000,
        }
    }
}

/// The tree-family contract for `P0015`: the declared degree and the
/// Lemma 18 envelope, both as functions of λ (the latency-matched
/// DTREE picks its degree from λ).
pub struct TreeSpec<'a> {
    /// Declared fan-out bound `d` at a given λ.
    pub degree: &'a dyn Fn(Latency) -> u64,
    /// Lemma 18's `d(m−1) + (d−1+λ)⌈log_d n⌉` at a given λ.
    pub bound: &'a dyn Fn(Latency) -> Time,
}

/// A workload under abstract analysis: how to build the programs at a
/// witness λ, and which proven envelopes to hold them to.
pub struct Workload<'a, P> {
    /// Workload tag (algorithm name).
    pub name: &'a str,
    /// Processor count.
    pub n: u32,
    /// Effective message count for the Lemma 8 lower bound.
    pub m: u64,
    /// Builds one program per processor, specialized to a witness λ.
    #[allow(clippy::type_complexity)]
    pub factory: &'a dyn Fn(Latency) -> Vec<Box<dyn Program<P>>>,
    /// The family's closed-form upper envelope (`P0014` when exceeded);
    /// `None` for the tree family, whose envelope belongs to `P0015`.
    pub envelope: Option<&'a dyn Fn(Latency) -> Time>,
    /// Tree-family contract, when the workload is a DTREE shape.
    pub tree: Option<TreeSpec<'a>>,
    /// Seeded defect, if any.
    pub mutation: Option<AbsMutation>,
    /// Communication graph, when the system is sparse. Processors with
    /// no path from the originator are reported as `P0019` (which
    /// suppresses the per-run `P0013` for those processors — the
    /// partition is the root cause). `None` means the complete graph.
    pub topology: Option<&'a Topology>,
}

/// One analyzed λ sub-interval.
#[derive(Debug, Clone, Copy)]
pub struct SubReport {
    /// The sub-interval of λ.
    pub lambda: Interval,
    /// Abstract completion bracket over this sub-interval.
    pub completion: Interval,
    /// `true` when the endpoint structures agreed (the bracket is exact).
    pub exact: bool,
    /// Sends recorded at the low-endpoint witness.
    pub sends: usize,
    /// Peak in-flight messages across the endpoint witnesses.
    pub peak_in_flight: usize,
}

/// The result of analyzing one workload over a λ-range.
#[derive(Debug)]
pub struct AbsReport {
    /// Workload tag.
    pub name: String,
    /// Processor count.
    pub n: u32,
    /// Effective message count.
    pub m: u64,
    /// The analyzed λ-range.
    pub lambda: Interval,
    /// The sub-intervals, in λ order.
    pub subintervals: Vec<SubReport>,
    /// Hull of every sub-interval's completion bracket.
    pub completion: Interval,
    /// The Lemma 8 lower bound `(m−1) + f_λ(n)` at the range endpoints.
    pub lower_bound: Interval,
    /// Gap between completion and the Lemma 8 bound at the endpoints
    /// (report data, not a diagnostic — the bound is not always
    /// attainable).
    pub gap: Interval,
    /// `true` if any leaf had to be widened (endpoint structures still
    /// disagreed at maximum depth).
    pub widened: bool,
    /// `true` if any run exhausted its event budget.
    pub truncated: bool,
    /// The `P0012`–`P0016` findings, in code order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AbsReport {
    /// True when no symbolic property was violated.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Multi-line human-readable analysis summary (without the
    /// diagnostics, which callers render separately).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "abstract analysis: {} n = {} m = {} lambda in {}\n",
            self.name, self.n, self.m, self.lambda
        ));
        let widened = self.subintervals.iter().filter(|s| !s.exact).count();
        out.push_str(&format!(
            "  sub-intervals         {}{}\n",
            self.subintervals.len(),
            if widened > 0 {
                format!(" ({widened} widened)")
            } else {
                String::new()
            }
        ));
        out.push_str(&format!("  completion            {}\n", self.completion));
        out.push_str(&format!("  lemma 8 lower bound   {}\n", self.lower_bound));
        out.push_str(&format!("  gap to lower bound    {}\n", self.gap));
        let sends = self.subintervals.iter().map(|s| s.sends).max().unwrap_or(0);
        let peak = self
            .subintervals
            .iter()
            .map(|s| s.peak_in_flight)
            .max()
            .unwrap_or(0);
        out.push_str(&format!("  sends (witness)       {sends}\n"));
        out.push_str(&format!("  peak in flight        {peak}\n"));
        if self.truncated {
            out.push_str("  event budget exhausted: results are partial\n");
        }
        out
    }
}

struct Leaf {
    lambda: Interval,
    lo: AbsRun,
    hi: AbsRun,
    exact: bool,
}

fn latency_at(x: Ratio) -> Latency {
    Latency::new(x).expect("λ-range endpoints must satisfy λ ≥ 1")
}

/// Analyzes `w` over the λ-range `lambda`.
///
/// # Panics
/// Panics when `lambda.lo() < 1` (the postal model requires λ ≥ 1).
pub fn analyze<P>(w: &Workload<'_, P>, lambda: Interval, cfg: &AbsConfig) -> AbsReport {
    let mut leaves = Vec::new();
    subdivide(w, lambda, 0, cfg, &mut leaves);

    let mut subintervals = Vec::with_capacity(leaves.len());
    let mut completion: Option<Interval> = None;
    for leaf in &leaves {
        let bracket = leaf_completion(leaf);
        subintervals.push(SubReport {
            lambda: leaf.lambda,
            completion: bracket,
            exact: leaf.exact,
            sends: leaf.lo.sends.len(),
            peak_in_flight: leaf.lo.peak_in_flight.max(leaf.hi.peak_in_flight),
        });
        completion = Some(match completion {
            None => bracket,
            Some(c) => c.widen(bracket),
        });
    }
    let completion = completion.unwrap_or(Interval::ZERO);

    let (a, b) = (latency_at(lambda.lo()), latency_at(lambda.hi()));
    let nn = w.n as u128;
    let (lb_lo, lb_hi) = if w.n >= 2 {
        (
            runtimes::multi_lower_bound(nn, w.m, a),
            runtimes::multi_lower_bound(nn, w.m, b),
        )
    } else {
        (Time::ZERO, Time::ZERO)
    };
    let lower_bound = Interval::new(
        lb_lo.as_ratio().min(lb_hi.as_ratio()),
        lb_lo.as_ratio().max(lb_hi.as_ratio()),
    );
    let gap_lo = completion.lo() - lower_bound.lo();
    let gap_hi = completion.hi() - lower_bound.hi();
    let gap = Interval::new(gap_lo.min(gap_hi), gap_lo.max(gap_hi));

    let diagnostics = synthesize(w, &leaves, cfg);

    AbsReport {
        name: w.name.to_string(),
        n: w.n,
        m: w.m,
        lambda,
        subintervals,
        completion,
        lower_bound,
        gap,
        widened: leaves.iter().any(|l| !l.exact),
        truncated: leaves.iter().any(|l| l.lo.truncated || l.hi.truncated),
        diagnostics,
    }
}

fn subdivide<P>(
    w: &Workload<'_, P>,
    lambda: Interval,
    depth: u32,
    cfg: &AbsConfig,
    out: &mut Vec<Leaf>,
) {
    let run = |wit: Latency| {
        AbsEngine::new(
            w.n,
            lambda,
            wit,
            (w.factory)(wit),
            w.mutation,
            cfg.max_events,
        )
        .run()
    };
    let lo = run(latency_at(lambda.lo()));
    if lambda.is_point() {
        let hi = run(latency_at(lambda.hi()));
        out.push(Leaf {
            lambda,
            lo,
            hi,
            exact: true,
        });
        return;
    }
    let hi = run(latency_at(lambda.hi()));
    let agree = lo.signature == hi.signature;
    if agree || depth >= cfg.max_depth {
        out.push(Leaf {
            lambda,
            lo,
            hi,
            exact: agree,
        });
    } else {
        let mid = lambda.midpoint();
        subdivide(w, Interval::new(lambda.lo(), mid), depth + 1, cfg, out);
        subdivide(w, Interval::new(mid, lambda.hi()), depth + 1, cfg, out);
    }
}

/// The completion bracket of one leaf: the endpoint-witness completions
/// bracket every λ in between when the structures agree (monotonicity);
/// a widened leaf additionally hulls in the interval-arithmetic
/// completions of both runs, which bound each run's own structure over
/// the whole sub-interval.
fn leaf_completion(leaf: &Leaf) -> Interval {
    let (ca, cb) = (
        leaf.lo.completion_w.as_ratio(),
        leaf.hi.completion_w.as_ratio(),
    );
    let bracket = Interval::new(ca.min(cb), ca.max(cb));
    if leaf.exact {
        bracket
    } else {
        bracket.widen(leaf.lo.completion).widen(leaf.hi.completion)
    }
}

fn send_evidence(s: &crate::engine::AbsSend) -> TimedSend {
    TimedSend {
        src: s.src,
        dst: s.dst,
        send_start: s.start_w,
    }
}

/// Synthesizes `P0012`–`P0016` (and, under a sparse topology, `P0019`)
/// from the leaves, with root-cause suppression mirroring `model::lint`:
/// dead sends (`P0012`) explain cascading unreachability and unmatched
/// waits, so they suppress `P0013`/`P0016`; a topology partition
/// (`P0019`) explains a processor's unreachability in *every* run, so
/// it suppresses `P0013` for the partitioned processors; any structural
/// error suppresses the quality codes `P0014`/`P0015`'s envelope checks.
fn synthesize<P>(w: &Workload<'_, P>, leaves: &[Leaf], _cfg: &AbsConfig) -> Vec<Diagnostic> {
    let mut merged: BTreeMap<(LintCode, Option<u32>), Diagnostic> = BTreeMap::new();
    let mut push = |d: Diagnostic| {
        let key = (d.code, d.proc);
        match merged.get_mut(&key) {
            Some(existing) => {
                existing.witness = match (existing.witness, d.witness) {
                    (Some(a), Some(b)) => Some(a.widen(b)),
                    (a, b) => a.or(b),
                };
            }
            None => {
                merged.insert(key, d);
            }
        }
    };

    let truncated = leaves.iter().any(|l| l.lo.truncated || l.hi.truncated);
    let mut any_dead = false;
    let mut any_unreachable = false;

    // Processors cut off from the originator by the communication graph
    // itself. Their unreachability is a property of the topology, not of
    // any particular run, so it is diagnosed once as `P0019` below and
    // excluded from the per-run `P0013` sweep.
    let mut partitioned: BTreeSet<u32> = BTreeSet::new();
    if let Some(topo) = w.topology {
        if !topo.is_complete() {
            let dist = topo.bfs_distances(0);
            for p in 1..w.n {
                if dist.get(p as usize).copied().unwrap_or(UNREACHABLE) == UNREACHABLE {
                    partitioned.insert(p);
                }
            }
        }
    }
    let any_partition = !partitioned.is_empty();

    // P0012 — dead sends.
    for leaf in leaves {
        for run in [&leaf.lo, &leaf.hi] {
            let dead: Vec<&crate::engine::AbsSend> =
                run.sends.iter().filter(|s| !s.delivered).collect();
            if let Some(first) = dead.first() {
                any_dead = true;
                push(Diagnostic {
                    code: LintCode::DeadSend,
                    severity: Severity::Error,
                    proc: Some(first.src),
                    sends: vec![send_evidence(first)],
                    related_time: None,
                    witness: Some(leaf.lambda),
                    message: format!(
                        "p{} sends to p{} at t = {} but the message is never \
                         received ({} dead send{} in total)",
                        first.src,
                        first.dst,
                        first.start_w,
                        dead.len(),
                        if dead.len() == 1 { "" } else { "s" },
                    ),
                });
            }
        }
    }

    // P0013 — unreachable processors: zero arrivals and no path in the
    // recorded-send graph (dead sends count as edges: their
    // unreachability is already explained by P0012).
    let mut suppressed_p0013: BTreeSet<u32> = BTreeSet::new();
    if !any_dead {
        for leaf in leaves {
            for run in [&leaf.lo, &leaf.hi] {
                let unreached: Vec<u32> = unreachable_procs(w.n, run)
                    .into_iter()
                    .filter(|p| {
                        if partitioned.contains(p) {
                            suppressed_p0013.insert(*p);
                            false
                        } else {
                            true
                        }
                    })
                    .collect();
                if let Some(&first) = unreached.first() {
                    any_unreachable = true;
                    push(Diagnostic {
                        code: LintCode::UnreachableProcessor,
                        severity: Severity::Error,
                        proc: Some(first),
                        sends: Vec::new(),
                        related_time: None,
                        witness: Some(leaf.lambda),
                        message: format!(
                            "no abstract message path reaches p{first} for any \
                             lambda in {} ({} unreachable in total)",
                            leaf.lambda,
                            unreached.len(),
                        ),
                    });
                }
            }
        }
    }

    // P0016 — unmatched waits, unless a dead send to the same processor
    // already explains the silence.
    let mut any_wait = false;
    if !any_dead {
        for leaf in leaves {
            for run in [&leaf.lo, &leaf.hi] {
                for &p in &run.unmet_waits {
                    any_wait = true;
                    push(Diagnostic {
                        code: LintCode::UnboundedWait,
                        severity: Severity::Error,
                        proc: Some(p),
                        sends: Vec::new(),
                        related_time: None,
                        witness: Some(leaf.lambda),
                        message: format!(
                            "p{p} waits for a receive that no abstractly-reachable \
                             send ever matches, for any lambda in {}",
                            leaf.lambda,
                        ),
                    });
                }
            }
        }
    }

    // P0019 — topology partition. λ-independent: the witness is the
    // whole analyzed range, and the finding holds for every schedule the
    // workload could produce, not just the recorded runs.
    if let Some(topo) = w.topology {
        let hull = match (leaves.first(), leaves.last()) {
            (Some(a), Some(b)) => Some(Interval::new(a.lambda.lo(), b.lambda.hi())),
            _ => None,
        };
        for &p in &partitioned {
            let note = if suppressed_p0013.contains(&p) {
                " (suppresses the per-run P0013)"
            } else {
                ""
            };
            push(Diagnostic {
                code: LintCode::TopologyPartitionUnreachable,
                severity: Severity::Error,
                proc: Some(p),
                sends: Vec::new(),
                related_time: None,
                witness: hull,
                message: format!(
                    "p{p} has no path from the originator p0 in the {} topology — \
                     no schedule can inform it, for any lambda{note}",
                    topo.spec(),
                ),
            });
        }
    }

    let structural = any_dead || any_unreachable || any_wait || any_partition;

    // Quality codes reason about completion; they are only meaningful
    // for a structurally sound run on a system with someone to inform.
    if !structural && !truncated && w.n >= 2 {
        let nn = w.n as u128;
        for leaf in leaves {
            let bracket = leaf_completion(leaf);
            let (a, b) = (latency_at(leaf.lambda.lo()), latency_at(leaf.lambda.hi()));

            // P0014 (error): bracket dips below the Lemma 8 bound — a
            // sound analysis of a valid broadcast cannot do that. Exact
            // leaves only: a widened bracket's low end is already
            // conservative.
            if leaf.exact {
                let lb = runtimes::multi_lower_bound(nn, w.m, a);
                if bracket.lo() < lb.as_ratio() {
                    push(Diagnostic {
                        code: LintCode::SymbolicOptimalityGap,
                        severity: Severity::Error,
                        proc: None,
                        sends: Vec::new(),
                        related_time: Some(lb),
                        witness: Some(leaf.lambda),
                        message: format!(
                            "abstract completion {bracket} falls below the Lemma 8 \
                             lower bound {lb} at lambda = {} — the program cannot \
                             be a full {}-message broadcast",
                            a.value(),
                            w.m,
                        ),
                    });
                }
            }

            // P0014 (warn): the family's own proven envelope is exceeded
            // somewhere in the sub-interval. Exact leaves only: a
            // widened bracket's high end is conservative by
            // construction, so comparing it against the envelope would
            // report the analysis's own imprecision, not the program's.
            if let Some(env) = w.envelope {
                let bound = env(b);
                if leaf.exact && bracket.hi() > bound.as_ratio() {
                    push(Diagnostic {
                        code: LintCode::SymbolicOptimalityGap,
                        severity: Severity::Warn,
                        proc: None,
                        sends: Vec::new(),
                        related_time: Some(bound),
                        witness: Some(leaf.lambda),
                        message: format!(
                            "abstract completion {bracket} exceeds the family \
                             envelope {bound} at lambda = {} (gap {} units)",
                            b.value(),
                            bracket.hi() - bound.as_ratio(),
                        ),
                    });
                }
            }

            // P0015 — tree family: observed fan-out vs declared degree
            // (error), and Lemma 18's envelope (warn).
            if let Some(tree) = &w.tree {
                for (run, lam) in [(&leaf.lo, a), (&leaf.hi, b)] {
                    let d = (tree.degree)(lam);
                    if run.max_fanout > d {
                        push(Diagnostic {
                            code: LintCode::DegreeBoundViolation,
                            severity: Severity::Error,
                            proc: None,
                            sends: Vec::new(),
                            related_time: None,
                            witness: Some(leaf.lambda),
                            message: format!(
                                "observed fan-out {} exceeds the declared DTREE \
                                 degree d = {d} at lambda = {}",
                                run.max_fanout,
                                lam.value(),
                            ),
                        });
                    }
                }
                let bound = (tree.bound)(b);
                if leaf.exact && bracket.hi() > bound.as_ratio() {
                    push(Diagnostic {
                        code: LintCode::DegreeBoundViolation,
                        severity: Severity::Warn,
                        proc: None,
                        sends: Vec::new(),
                        related_time: Some(bound),
                        witness: Some(leaf.lambda),
                        message: format!(
                            "abstract completion {bracket} exceeds the Lemma 18 \
                             envelope {bound} at lambda = {}",
                            b.value(),
                        ),
                    });
                }
            }
        }
    }

    merged.into_values().collect()
}

/// Non-originator processors with zero deliveries and no path from the
/// originator in the recorded-send graph, in index order.
fn unreachable_procs(n: u32, run: &AbsRun) -> Vec<u32> {
    let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for s in &run.sends {
        adj.entry(s.src).or_default().push(s.dst);
    }
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    seen.insert(0);
    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(0);
    while let Some(p) = queue.pop_front() {
        for &q in adj.get(&p).into_iter().flatten() {
            if seen.insert(q) {
                queue.push_back(q);
            }
        }
    }
    (1..n)
        .filter(|p| run.arrivals[*p as usize] == 0 && !seen.contains(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_algos::bcast_programs;

    #[allow(clippy::type_complexity)]
    fn bcast_workload(
        n: u32,
    ) -> (
        impl Fn(Latency) -> Vec<Box<dyn Program<postal_algos::bcast::BcastPayload>>>,
        impl Fn(Latency) -> Time,
    ) {
        let nu = n as usize;
        let nn = n as u128;
        (
            move |lam: Latency| bcast_programs(nu, lam),
            move |lam: Latency| runtimes::bcast_time(nn, lam),
        )
    }

    #[test]
    fn bcast_point_range_is_exact_and_clean() {
        let (factory, env) = bcast_workload(14);
        let report = analyze(
            &Workload {
                name: "bcast",
                n: 14,
                m: 1,
                factory: &factory,
                envelope: Some(&env),
                tree: None,
                mutation: None,
                topology: None,
            },
            Interval::point(Ratio::new(5, 2)),
            &AbsConfig::default(),
        );
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(
            report.completion,
            Interval::point(runtimes::bcast_time(14, Latency::from_ratio(5, 2)).as_ratio())
        );
        assert!(!report.widened);
    }

    #[test]
    fn bcast_wide_range_subdivides_and_brackets() {
        let (factory, env) = bcast_workload(8);
        let report = analyze(
            &Workload {
                name: "bcast",
                n: 8,
                m: 1,
                factory: &factory,
                envelope: Some(&env),
                tree: None,
                mutation: None,
                topology: None,
            },
            Interval::new(Ratio::ONE, Ratio::from_int(4)),
            &AbsConfig::default(),
        );
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(
            report.subintervals.len() > 1,
            "BCAST structure varies with λ"
        );
        // Every concrete completion on the range lies inside the hull.
        for lam in [
            Latency::from_int(1),
            Latency::from_int(2),
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
        ] {
            let t = runtimes::bcast_time(8, lam);
            assert!(
                report.completion.contains(t.as_ratio()),
                "completion {} not in {} at λ = {}",
                t,
                report.completion,
                lam
            );
        }
    }

    #[test]
    fn topology_partition_trips_p0019_and_suppresses_p0013() {
        use postal_sim::{Context, Idle, ProcId, Program};

        // p0 informs p1 only; p2 stays silent. On the complete graph
        // that is a per-run P0013; with a 2-processor ring oracle over a
        // 3-processor system, p2 is partitioned and the graph-level
        // P0019 takes over as the root cause.
        struct SendOnce;
        impl Program<u8> for SendOnce {
            fn on_start(&mut self, ctx: &mut dyn Context<u8>) {
                ctx.send(ProcId(1), 0);
            }
            fn on_receive(&mut self, _ctx: &mut dyn Context<u8>, _from: ProcId, _p: u8) {}
        }
        let factory = |_lam: Latency| -> Vec<Box<dyn Program<u8>>> {
            vec![Box::new(SendOnce), Box::new(Idle), Box::new(Idle)]
        };
        let lambda = Interval::new(Ratio::ONE, Ratio::from_int(2));
        let plain = analyze(
            &Workload {
                name: "partial",
                n: 3,
                m: 1,
                factory: &factory,
                envelope: None,
                tree: None,
                mutation: None,
                topology: None,
            },
            lambda,
            &AbsConfig::default(),
        );
        let codes: Vec<LintCode> = plain.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![LintCode::UnreachableProcessor], "{codes:?}");

        let topo = "ring"
            .parse::<postal_model::TopologySpec>()
            .unwrap()
            .instantiate(2)
            .unwrap();
        let sparse = analyze(
            &Workload {
                name: "partial",
                n: 3,
                m: 1,
                factory: &factory,
                envelope: None,
                tree: None,
                mutation: None,
                topology: Some(&topo),
            },
            lambda,
            &AbsConfig::default(),
        );
        let codes: Vec<LintCode> = sparse.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![LintCode::TopologyPartitionUnreachable],
            "{codes:?}"
        );
        let d = &sparse.diagnostics[0];
        assert_eq!(d.proc, Some(2));
        assert!(
            d.message.ends_with("(suppresses the per-run P0013)"),
            "{}",
            d.message
        );
        assert_eq!(d.witness, Some(lambda));
    }

    #[test]
    fn stalled_start_trips_p0014_only() {
        let (factory, env) = bcast_workload(8);
        let report = analyze(
            &Workload {
                name: "bcast",
                n: 8,
                m: 1,
                factory: &factory,
                envelope: Some(&env),
                tree: None,
                mutation: Some(AbsMutation::StallStart {
                    proc: 0,
                    by: Time::from_int(10),
                }),
                topology: None,
            },
            Interval::new(Ratio::ONE, Ratio::from_int(2)),
            &AbsConfig::default(),
        );
        let codes: Vec<LintCode> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![LintCode::SymbolicOptimalityGap], "{codes:?}");
        assert!(report.diagnostics[0].witness.is_some());
    }
}
