//! Streaming-lint parity under the recorder's failure and concurrency
//! modes.
//!
//! The top-level differential suite pins `LintStream` to the batch
//! engine over clean, sampled, and truncated logs. These tests cover
//! what that suite cannot: real threads interleaving writes across
//! recorder shards, writer threads that die mid-run, concurrent feeds
//! into a [`LintSink`], and runs that record **nothing** — where every
//! diagnostic comes from a finish-time pass over an empty index.

use postal_model::lint::{lint_schedule, Diagnostic, LintCode, LintOptions, Severity};
use postal_model::schedule::{Schedule, TimedSend};
use postal_model::{Latency, Time};
use postal_obs::{
    LintSink, LintStream, ObsEvent, Recorder, RingRecorder, RunMeta, SampleSpec, StreamOrdering,
};
use std::sync::Arc;
use std::thread;

fn lam() -> Latency {
    Latency::from_int(2)
}

/// The star broadcast from processor 0 over `MPS(n, 2)`: send `k`
/// occupies `[k-1, k]`, so ports never overlap and everyone is
/// informed. Returns the schedule and its live-order event stream
/// (sends announced at issue time, receives at completion).
fn star(n: u32) -> (Schedule, Vec<ObsEvent>) {
    let t = Time::from_int;
    let mut sends = Vec::new();
    let mut events = Vec::new();
    for k in 1..n {
        let start = (k - 1) as i128;
        sends.push(TimedSend {
            src: 0,
            dst: k,
            send_start: t(start),
        });
        events.push(ObsEvent::Send {
            seq: (k - 1) as u64,
            src: 0,
            dst: k,
            start: t(start),
            finish: t(start + 1),
        });
        events.push(ObsEvent::Recv {
            seq: (k - 1) as u64,
            src: 0,
            dst: k,
            arrival: t(start + 1),
            start: t(start + 1),
            finish: t(start + 2),
            queued: false,
        });
    }
    // Interleave into emission order: each receive lands λ after its
    // send started, so sort by the instant the engine would emit it
    // (sends at issue time, receives at arrival).
    events.sort_by_key(|e| match *e {
        ObsEvent::Send { start, .. } => (start, 0u8),
        ObsEvent::Recv { arrival, .. } => (arrival, 1u8),
        _ => (Time::ZERO, 2u8),
    });
    (Schedule::new(n, lam(), sends), events)
}

fn batch(schedule: &Schedule) -> Vec<Diagnostic> {
    lint_schedule(schedule, &LintOptions::default())
}

/// Replays a log's events through a `LintStream` and returns the report.
fn replay(n: u32, events: &[ObsEvent], ordering: StreamOrdering) -> Vec<Diagnostic> {
    let mut stream = LintStream::new(n, lam(), LintOptions::default(), ordering);
    for ev in events {
        stream.on_event(ev);
    }
    assert!(!stream.out_of_order(), "replay must not trip ordering");
    stream.finish()
}

#[test]
fn interleaved_shard_writes_replay_to_the_batch_report() {
    // Threads scatter one run's events across the recorder's shards in
    // nondeterministic global order; the sorted snapshot must still
    // replay to the exact batch report under both orderings.
    let n = 33;
    let (schedule, events) = star(n);
    let ring = Arc::new(RingRecorder::with_spec(1 << 12, SampleSpec::all()));
    thread::scope(|s| {
        for chunk in events.chunks(events.len() / 4 + 1) {
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                for ev in chunk {
                    ring.record(ev.clone());
                }
            });
        }
    });
    assert_eq!(ring.dropped_events(), 0, "capacity must hold the run");
    let ring = Arc::try_unwrap(ring).expect("threads joined");
    let log = ring.into_log(RunMeta::new("test", n).latency(lam()));

    let want = batch(&schedule);
    assert_eq!(
        replay(n, log.events(), StreamOrdering::SortedLog),
        want,
        "sorted replay diverges from batch"
    );
    // Live over a time-sorted feed is also sound: arrivals never
    // precede the position's timestamp, so nothing finalizes early.
    assert_eq!(
        replay(n, log.events(), StreamOrdering::Live),
        want,
        "live replay of the sorted log diverges from batch"
    );
}

#[test]
fn dead_writer_thread_loses_nothing_already_recorded() {
    // A writer panics after recording its share: the recorder must
    // recover its locks and the replay must still match batch over the
    // full run.
    let n = 16;
    let (schedule, events) = star(n);
    let half = events.len() / 2;
    let ring = Arc::new(RingRecorder::with_spec(1 << 10, SampleSpec::all()));

    let writer = Arc::clone(&ring);
    let first: Vec<ObsEvent> = events[..half].to_vec();
    let handle = thread::spawn(move || {
        for ev in first {
            writer.record(ev);
        }
        panic!("writer dies mid-run");
    });
    assert!(handle.join().is_err(), "writer must have panicked");

    for ev in &events[half..] {
        ring.record(ev.clone());
    }
    let ring = Arc::try_unwrap(ring).expect("threads joined");
    let log = ring.into_log(RunMeta::new("test", n).latency(lam()));
    assert_eq!(log.len(), events.len(), "no recorded event may be lost");
    assert_eq!(
        replay(n, log.events(), StreamOrdering::SortedLog),
        batch(&schedule)
    );
}

#[test]
fn sink_fed_by_a_dying_thread_still_finishes_the_report() {
    // Same failure against the inline sink: the feeder panics after
    // its half, the main thread finishes the feed, and `finish` must
    // recover the (potentially poisoned) stream with the full report.
    let n = 16;
    let (schedule, events) = star(n);
    let half = events.len() / 2;
    let sink = Arc::new(LintSink::new(n, lam(), LintOptions::default()));

    let feeder = Arc::clone(&sink);
    let first: Vec<ObsEvent> = events[..half].to_vec();
    let handle = thread::spawn(move || {
        for ev in first {
            feeder.record(ev);
        }
        panic!("feeder dies mid-run");
    });
    assert!(handle.join().is_err(), "feeder must have panicked");

    for ev in &events[half..] {
        sink.record(ev.clone());
    }
    let stream = Arc::try_unwrap(sink)
        .ok()
        .expect("feeder joined; sole owner")
        .finish();
    assert!(!stream.out_of_order());
    assert_eq!(stream.finish(), batch(&schedule));
}

#[test]
fn concurrent_sink_feeds_are_honest() {
    // Threads race disjoint slices of one run into a live sink. The
    // interleaving may break the live watermark's ordering contract —
    // that is allowed — but then the sink must SAY so: either the
    // out_of_order flag is up, or the report equals batch. It must
    // never silently diverge.
    let n = 33;
    let (schedule, events) = star(n);
    let want = batch(&schedule);
    for _ in 0..8 {
        let sink = Arc::new(LintSink::new(n, lam(), LintOptions::default()));
        thread::scope(|s| {
            for chunk in events.chunks(events.len() / 4 + 1) {
                let sink = Arc::clone(&sink);
                s.spawn(move || {
                    for ev in chunk {
                        sink.record(ev.clone());
                    }
                });
            }
        });
        let stream = Arc::try_unwrap(sink)
            .ok()
            .expect("threads joined; sole owner")
            .finish();
        if !stream.out_of_order() {
            assert_eq!(stream.finish(), want, "in-order concurrent feed diverged");
        }
    }
}

#[test]
fn zero_event_run_reports_from_finish_time_passes_alone() {
    // Nothing recorded: the online passes never fire and the whole
    // report comes from finish-time passes over an empty index. It must
    // equal batch over the empty schedule — P0005 errors for every
    // uninformed processor past the originator.
    for n in [1u32, 4, 16] {
        let sink = LintSink::new(n, lam(), LintOptions::default());
        let stream = sink.finish();
        assert!(!stream.out_of_order());
        assert!(!stream.truncated());
        let diags = stream.finish();
        assert_eq!(diags, batch(&Schedule::new(n, lam(), Vec::new())));
        let coverage_errors = diags
            .iter()
            .filter(|d| d.code == LintCode::UninformedProcessor && d.severity == Severity::Error)
            .count();
        assert_eq!(
            coverage_errors,
            n as usize - 1,
            "empty run over n={n} must flag every uninformed processor"
        );
    }
}
