//! Concurrency stress tests for the sharded ring recorder.
//!
//! Real threads hammer one [`RingRecorder`] and the tests check the two
//! properties the whole observability story rests on:
//!
//! 1. **Honest accounting** — `recorded + dropped == attempted`, no
//!    matter how the threads interleave. A drop may be invisible in the
//!    log, but never in the counters.
//! 2. **Per-shard ordering** — events routed to one shard keep their
//!    arrival order, and tail mode keeps exactly the most recent
//!    `capacity` of them.

use postal_model::Time;
use postal_obs::{ObsEvent, Recorder, RingRecorder, RunMeta, SampleSpec};
use std::sync::Arc;
use std::thread;

const THREADS: u64 = 8;
const EVENTS_PER_THREAD: u64 = 1000;

fn wake(proc: u32, at: i128) -> ObsEvent {
    ObsEvent::Wake {
        proc,
        at: Time::from_int(at),
    }
}

/// Spawns `THREADS` threads, each recording `EVENTS_PER_THREAD` wake
/// events for its own processor id, and joins them.
fn hammer(ring: &Arc<RingRecorder>, procs_per_thread: impl Fn(u64) -> u32 + Copy + Send) {
    thread::scope(|s| {
        for t in 0..THREADS {
            let ring = Arc::clone(ring);
            s.spawn(move || {
                let proc = procs_per_thread(t);
                for i in 0..EVENTS_PER_THREAD {
                    ring.record(wake(proc, i as i128));
                }
            });
        }
    });
}

#[test]
fn accounting_invariant_holds_under_contention() {
    // Every thread targets its own shard (distinct procs, 16 shards).
    let ring = Arc::new(RingRecorder::with_spec(64, SampleSpec::tail(1)));
    hammer(&ring, |t| t as u32);
    let attempted = ring.attempted_events();
    assert_eq!(attempted, THREADS * EVENTS_PER_THREAD);
    assert_eq!(ring.recorded_events() + ring.dropped_events(), attempted);
    // Tail mode keeps exactly `capacity` per active shard.
    assert_eq!(ring.recorded_events(), THREADS * 64);
    for stat in ring.shard_stats().iter().filter(|s| s.attempted > 0) {
        assert_eq!(stat.recorded + stat.dropped, stat.attempted);
    }
}

#[test]
fn accounting_invariant_holds_when_all_threads_share_one_shard() {
    // Worst case: every thread fights over the same shard lock.
    let ring = Arc::new(RingRecorder::with_spec(128, SampleSpec::tail(1)));
    hammer(&ring, |_| 5);
    let attempted = ring.attempted_events();
    assert_eq!(attempted, THREADS * EVENTS_PER_THREAD);
    assert_eq!(ring.recorded_events() + ring.dropped_events(), attempted);
    assert_eq!(ring.recorded_events(), 128);
}

#[test]
fn head_mode_with_rate_sampling_counts_every_rejection() {
    let ring = Arc::new(RingRecorder::with_spec(32, SampleSpec::head(4)));
    hammer(&ring, |t| t as u32);
    let attempted = ring.attempted_events();
    assert_eq!(attempted, THREADS * EVENTS_PER_THREAD);
    assert_eq!(ring.recorded_events() + ring.dropped_events(), attempted);
    // rate:4 offers 250 events per shard; head keeps the first 32.
    assert_eq!(ring.recorded_events(), THREADS * 32);
}

#[test]
fn tail_mode_keeps_each_shards_most_recent_events_in_order() {
    const CAP: usize = 64;
    let ring = Arc::new(RingRecorder::with_spec(CAP, SampleSpec::tail(1)));
    hammer(&ring, |t| t as u32);
    let dropped = ring.dropped_events();
    let ring = Arc::try_unwrap(ring).expect("threads joined");
    let log = ring.into_log(RunMeta::new("test", THREADS as u32));
    assert_eq!(log.meta().dropped_events, Some(dropped));

    // Per processor (== per shard here): exactly the last CAP events,
    // in arrival order.
    for p in 0..THREADS as u32 {
        let times: Vec<i128> = log
            .events()
            .iter()
            .filter_map(|e| match *e {
                ObsEvent::Wake { proc, at } if proc == p => Some(at.to_f64() as i128),
                _ => None,
            })
            .collect();
        let expect: Vec<i128> =
            ((EVENTS_PER_THREAD as i128 - CAP as i128)..EVENTS_PER_THREAD as i128).collect();
        assert_eq!(times, expect, "proc {p} lost its per-shard order");
    }
}

#[test]
fn snapshot_mid_hammer_never_breaks_the_invariant() {
    // A reader snapshotting while writers are live must still see
    // internally consistent metadata (dropped ≤ attempted, and the
    // snapshot's event count never exceeds what was recorded).
    let ring = Arc::new(RingRecorder::with_spec(16, SampleSpec::tail(2)));
    thread::scope(|s| {
        for t in 0..THREADS {
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                for i in 0..EVENTS_PER_THREAD {
                    ring.record(wake(t as u32, i as i128));
                }
            });
        }
        for _ in 0..20 {
            let snap = ring.snapshot(RunMeta::new("test", THREADS as u32));
            let dropped = snap.meta().dropped_events.unwrap();
            assert!(dropped <= ring.attempted_events());
            assert!(snap.events().len() as u64 <= ring.attempted_events());
        }
    });
    assert_eq!(
        ring.recorded_events() + ring.dropped_events(),
        ring.attempted_events()
    );
}
