//! Golden-file test for the Chrome trace exporter: the exact bytes for
//! a fixed BCAST(3, λ=5/2) log are pinned so format drift is caught.
//!
//! To re-bless after an intentional format change:
//! `UPDATE_GOLDEN=1 cargo test -p postal-obs --test chrome_golden`

use postal_model::{Latency, Time};
use postal_obs::{to_chrome_trace, ObsEvent, ObsLog, RunMeta};

fn bcast3_log() -> ObsLog {
    // BCAST on 3 processors at λ = 5/2: p0 sends to p1 at t=0 and to
    // p2 at t=1; each receive occupies [start+3/2, start+5/2).
    let lam = Latency::from_ratio(5, 2);
    let pair = |seq: u64, src: u32, dst: u32, at: Time| {
        vec![
            ObsEvent::Send {
                seq,
                src,
                dst,
                start: at,
                finish: at + Time::ONE,
            },
            ObsEvent::Recv {
                seq,
                src,
                dst,
                arrival: at + Time::new(3, 2),
                start: at + Time::new(3, 2),
                finish: at + Time::new(5, 2),
                queued: false,
            },
        ]
    };
    let mut events = pair(0, 0, 1, Time::ZERO);
    events.extend(pair(1, 0, 2, Time::ONE));
    ObsLog::new(RunMeta::new("event", 3).latency(lam).messages(1), events)
}

#[test]
fn chrome_export_matches_golden() {
    let got = to_chrome_trace(&bcast3_log());
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_bcast3.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        got, want,
        "chrome exporter output drifted from golden; \
         re-bless with UPDATE_GOLDEN=1 if intentional"
    );
}

#[test]
fn golden_is_valid_json() {
    // The workspace is hermetic, so validate shape with a bracket/brace
    // balance check plus a few structural anchors rather than a parser.
    let text = to_chrome_trace(&bcast3_log());
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '"' => in_str = !in_str,
            '{' if !in_str => depth_obj += 1,
            '}' if !in_str => depth_obj -= 1,
            '[' if !in_str => depth_arr += 1,
            ']' if !in_str => depth_arr -= 1,
            _ => {}
        }
        assert!(depth_obj >= 0 && depth_arr >= 0);
    }
    assert_eq!(depth_obj, 0);
    assert_eq!(depth_arr, 0);
    assert!(!in_str);
    assert!(text.contains("\"traceEvents\""));
}
