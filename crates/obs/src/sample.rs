//! Sampling policies for bounded-memory recording.
//!
//! At n = 10⁶ processors a full event log is gigabytes; tracing must
//! not dominate the run it observes. A [`SampleSpec`] describes which
//! events a [`crate::RingRecorder`] keeps:
//!
//! * **mode** — what happens when a shard's ring fills: [`SampleMode::Head`]
//!   keeps the *first* `capacity` events per shard (the broadcast
//!   front, where the paper's structure lives) and drops the rest;
//!   [`SampleMode::Tail`] overwrites the oldest event, keeping the most
//!   *recent* `capacity` (the steady state, where contention lives);
//! * **rate** — `1/every` pre-sampling on the hot path: only every
//!   `every`-th event (per shard, in arrival order) is even offered to
//!   the ring. `every = 1` offers everything.
//!
//! Every event a policy rejects is **counted, never silently lost**:
//! the recorder's per-shard `dropped` counters flow into
//! [`crate::RunMeta::dropped_events`], the JSONL header, the Prometheus
//! exposition and `postal-cli stats`, so a consumer always knows how
//! much of the run it is looking at.
//!
//! The textual grammar (accepted by `postal-cli simulate --sample` and
//! [`SampleSpec::parse`]) is a comma-separated list:
//!
//! ```text
//! all            keep everything the ring has room for (head mode, rate 1)
//! head           keep the first events per shard (same as all)
//! tail           keep the most recent events per shard
//! rate:<k>       keep one event in k (combines with head/tail)
//! tail,rate:8    e.g.: every 8th event, most recent kept on overflow
//! ```

use std::fmt;

/// What a full ring does with the next kept event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleMode {
    /// Keep the first `capacity` events per shard; drop later ones.
    #[default]
    Head,
    /// Keep the most recent `capacity` events per shard; overwrite (and
    /// count as dropped) the oldest.
    Tail,
}

/// A complete sampling policy: overflow mode plus rate pre-sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Overflow behavior once a shard's ring is full.
    pub mode: SampleMode,
    /// Keep one event in `every` (per shard). `1` keeps all.
    pub every: u64,
}

impl Default for SampleSpec {
    fn default() -> SampleSpec {
        SampleSpec {
            mode: SampleMode::Head,
            every: 1,
        }
    }
}

impl SampleSpec {
    /// The keep-everything policy (subject only to ring capacity).
    pub fn all() -> SampleSpec {
        SampleSpec::default()
    }

    /// Head mode at the given rate.
    pub fn head(every: u64) -> SampleSpec {
        SampleSpec {
            mode: SampleMode::Head,
            every: every.max(1),
        }
    }

    /// Tail mode at the given rate.
    pub fn tail(every: u64) -> SampleSpec {
        SampleSpec {
            mode: SampleMode::Tail,
            every: every.max(1),
        }
    }

    /// Whether the `k`-th event offered to a shard (0-based, in arrival
    /// order) passes the rate pre-sampler.
    pub fn keeps(&self, k: u64) -> bool {
        self.every <= 1 || k.is_multiple_of(self.every)
    }

    /// Parses the textual grammar (see the module docs).
    ///
    /// # Errors
    /// A human-readable message naming the offending term.
    pub fn parse(text: &str) -> Result<SampleSpec, String> {
        let mut spec = SampleSpec::default();
        for term in text.split(',') {
            let term = term.trim();
            match term {
                "all" | "head" => spec.mode = SampleMode::Head,
                "tail" => spec.mode = SampleMode::Tail,
                _ => {
                    if let Some(k) = term.strip_prefix("rate:") {
                        let every: u64 = k.parse().map_err(|_| {
                            format!("bad sample rate {k:?} (want rate:<positive integer>)")
                        })?;
                        if every == 0 {
                            return Err("sample rate must be ≥ 1".into());
                        }
                        spec.every = every;
                    } else {
                        return Err(format!(
                            "unknown sample term {term:?} (want all|head|tail|rate:<k>)"
                        ));
                    }
                }
            }
        }
        Ok(spec)
    }
}

impl fmt::Display for SampleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = match self.mode {
            SampleMode::Head => "head",
            SampleMode::Tail => "tail",
        };
        if self.every <= 1 {
            f.write_str(mode)
        } else {
            write!(f, "{mode},rate:{}", self.every)
        }
    }
}

impl std::str::FromStr for SampleSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<SampleSpec, String> {
        SampleSpec::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_grammar_form() {
        assert_eq!(SampleSpec::parse("all").unwrap(), SampleSpec::all());
        assert_eq!(SampleSpec::parse("head").unwrap(), SampleSpec::head(1));
        assert_eq!(SampleSpec::parse("tail").unwrap(), SampleSpec::tail(1));
        assert_eq!(SampleSpec::parse("rate:8").unwrap(), SampleSpec::head(8));
        assert_eq!(
            SampleSpec::parse("tail,rate:8").unwrap(),
            SampleSpec::tail(8)
        );
        assert_eq!(
            SampleSpec::parse(" head , rate:3 ").unwrap(),
            SampleSpec::head(3)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(SampleSpec::parse("warp").is_err());
        assert!(SampleSpec::parse("rate:0").is_err());
        assert!(SampleSpec::parse("rate:x").is_err());
    }

    #[test]
    fn display_round_trips() {
        for text in ["head", "tail", "head,rate:8", "tail,rate:100"] {
            let spec = SampleSpec::parse(text).unwrap();
            assert_eq!(spec.to_string(), text);
            assert_eq!(SampleSpec::parse(&spec.to_string()).unwrap(), spec);
        }
        // "all" and "rate:8" normalize to head forms.
        assert_eq!(SampleSpec::parse("all").unwrap().to_string(), "head");
        assert_eq!(
            SampleSpec::parse("rate:8").unwrap().to_string(),
            "head,rate:8"
        );
    }

    #[test]
    fn rate_keeps_every_kth() {
        let spec = SampleSpec::head(4);
        let kept: Vec<u64> = (0..12).filter(|&k| spec.keeps(k)).collect();
        assert_eq!(kept, vec![0, 4, 8]);
        assert!((0..100).all(|k| SampleSpec::all().keeps(k)));
    }
}
