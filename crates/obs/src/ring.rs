//! The sharded ring-buffer recorder: bounded-memory tracing that stays
//! off the hot path.
//!
//! [`RingRecorder`] is the scale successor to
//! [`crate::MemoryRecorder`]: instead of one mutex-guarded, unbounded
//! `Vec` shared by every thread, events are routed by processor id to
//! one of `S` **shards**, each a fixed-capacity ring. A `record` costs:
//!
//! 1. one relaxed `fetch_add` on the shard's attempt cursor (the
//!    rate pre-sampler and drop accounting hang off this single atomic
//!    sequence — a rate-sampled-out event touches nothing else);
//! 2. for kept events only, one *per-shard* mutex acquisition around a
//!    slot write. Threads recording for different shards never contend,
//!    and there is no global lock anywhere on the path.
//!
//! Memory is `S × capacity` events, fixed at construction; overflow
//! follows the configured [`SampleSpec`] (head-keep or tail-overwrite).
//!
//! ## Honest drop accounting
//!
//! Sampling only works if it cannot silently bias downstream analysis.
//! Every event the recorder rejects — rate-sampled, head-overflowed or
//! tail-overwritten — increments its shard's `dropped` counter, and
//! `recorded + dropped == attempted` is a hard invariant (tested under
//! an 8-thread hammer). [`RingRecorder::into_log`] stamps the totals
//! and the sampling spec into [`RunMeta`], from which they surface in
//! the JSONL header, the Prometheus exposition, the Chrome trace
//! metadata and `postal-cli stats`; `postal-verify` uses the same
//! marker to downgrade coverage lints that a partial trace cannot
//! support (see `docs/observability.md`).

use crate::event::ObsEvent;
use crate::log::{ObsLog, RunMeta};
use crate::recorder::{sort_events, Recorder};
use crate::sample::{SampleMode, SampleSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default shard count (rounded up to a power of two).
pub const DEFAULT_SHARDS: usize = 16;

/// Default per-shard ring capacity.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One shard: an attempt cursor, a drop counter, and a fixed ring.
#[derive(Debug)]
struct Shard {
    /// Events ever routed here (the rate pre-sampler indexes off this).
    attempted: AtomicU64,
    /// Events rejected: rate-sampled, head-overflowed or overwritten.
    dropped: AtomicU64,
    ring: Mutex<RingBuf>,
}

/// The fixed-capacity ring proper. `head` is the oldest slot once the
/// ring has wrapped (tail mode only).
#[derive(Debug)]
struct RingBuf {
    slots: Vec<ObsEvent>,
    head: usize,
}

/// Per-shard counters, for dashboards and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Events routed to this shard.
    pub attempted: u64,
    /// Events currently held in the ring.
    pub recorded: u64,
    /// Events rejected or overwritten.
    pub dropped: u64,
}

/// A sharded, sampling, fixed-memory event recorder.
#[derive(Debug)]
pub struct RingRecorder {
    shards: Vec<Shard>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u32,
    capacity: usize,
    spec: SampleSpec,
}

impl Default for RingRecorder {
    fn default() -> RingRecorder {
        RingRecorder::new(DEFAULT_CAPACITY)
    }
}

impl RingRecorder {
    /// A recorder with [`DEFAULT_SHARDS`] shards of `capacity` events
    /// each and no rate sampling (head overflow).
    pub fn new(capacity: usize) -> RingRecorder {
        RingRecorder::with_config(capacity, DEFAULT_SHARDS, SampleSpec::all())
    }

    /// Full configuration: per-shard `capacity`, shard count (rounded
    /// up to a power of two, min 1) and sampling policy.
    pub fn with_config(capacity: usize, shards: usize, spec: SampleSpec) -> RingRecorder {
        let shards = shards.max(1).next_power_of_two();
        let capacity = capacity.max(1);
        RingRecorder {
            shards: (0..shards)
                .map(|_| Shard {
                    attempted: AtomicU64::new(0),
                    dropped: AtomicU64::new(0),
                    ring: Mutex::new(RingBuf {
                        slots: Vec::with_capacity(capacity),
                        head: 0,
                    }),
                })
                .collect(),
            mask: (shards - 1) as u32,
            capacity,
            spec,
        }
    }

    /// Same configuration, different sampling policy.
    pub fn with_spec(capacity: usize, spec: SampleSpec) -> RingRecorder {
        RingRecorder::with_config(capacity, DEFAULT_SHARDS, spec)
    }

    /// The sampling policy in force.
    pub fn spec(&self) -> SampleSpec {
        self.spec
    }

    /// Per-shard ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Events offered to the recorder so far.
    pub fn attempted_events(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.attempted.load(Ordering::Relaxed))
            .sum()
    }

    /// Events rejected so far (rate-sampled, overflowed, overwritten).
    pub fn dropped_events(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Events currently held (`attempted − dropped`).
    pub fn recorded_events(&self) -> u64 {
        self.attempted_events() - self.dropped_events()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded_events() == 0
    }

    /// Counters for every shard, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let attempted = s.attempted.load(Ordering::Relaxed);
                let dropped = s.dropped.load(Ordering::Relaxed);
                ShardStats {
                    attempted,
                    dropped,
                    recorded: attempted - dropped,
                }
            })
            .collect()
    }

    /// Drains the recorder into an [`ObsLog`] sorted like
    /// [`crate::MemoryRecorder::into_log`], stamping
    /// [`RunMeta::dropped_events`] and [`RunMeta::sample`] so the log
    /// carries its own completeness accounting.
    pub fn into_log(self, meta: RunMeta) -> ObsLog {
        let mut meta = meta
            .dropped(self.dropped_events())
            .sampled(&self.spec.to_string());
        meta.ring_capacity = Some(self.capacity as u64);
        let mut events = Vec::with_capacity(self.recorded_events() as usize);
        for shard in self.shards {
            let ring = shard.ring.into_inner().unwrap_or_else(|e| e.into_inner());
            let head = ring.head;
            let (newer, older) = ring.slots.split_at(head);
            // Oldest-first within the shard: the slots from `head` on
            // predate the wrapped slots before it.
            events.extend_from_slice(older);
            events.extend_from_slice(newer);
        }
        sort_events(&mut events);
        ObsLog::new(meta, events)
    }

    /// Copies the current contents into an [`ObsLog`] without consuming
    /// the recorder (counters keep advancing afterwards).
    pub fn snapshot(&self, meta: RunMeta) -> ObsLog {
        let mut meta = meta
            .dropped(self.dropped_events())
            .sampled(&self.spec.to_string());
        meta.ring_capacity = Some(self.capacity as u64);
        let mut events = Vec::with_capacity(self.recorded_events() as usize);
        for shard in &self.shards {
            let ring = shard.ring.lock().unwrap_or_else(|e| e.into_inner());
            let (newer, older) = ring.slots.split_at(ring.head);
            events.extend_from_slice(older);
            events.extend_from_slice(newer);
        }
        sort_events(&mut events);
        ObsLog::new(meta, events)
    }
}

impl Recorder for RingRecorder {
    fn record(&self, event: ObsEvent) {
        let shard = &self.shards[(event.proc() & self.mask) as usize];
        // The one atomic sequence every record performs: claim an
        // attempt index; the rate pre-sampler keys off it.
        let k = shard.attempted.fetch_add(1, Ordering::Relaxed);
        if !self.spec.keeps(k) {
            shard.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut ring = shard.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.slots.len() < self.capacity {
            ring.slots.push(event);
            return;
        }
        match self.spec.mode {
            SampleMode::Head => {
                drop(ring);
                shard.dropped.fetch_add(1, Ordering::Relaxed);
            }
            SampleMode::Tail => {
                let head = ring.head;
                ring.slots[head] = event;
                ring.head = (head + 1) % self.capacity;
                drop(ring);
                shard.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::{Latency, Time};

    fn wake(proc: u32, at: i128) -> ObsEvent {
        ObsEvent::Wake {
            proc,
            at: Time::from_int(at),
        }
    }

    fn meta() -> RunMeta {
        RunMeta::new("test", 8).latency(Latency::from_int(2))
    }

    #[test]
    fn records_and_sorts_like_memory_recorder() {
        let rec = RingRecorder::new(16);
        rec.record(wake(3, 5));
        rec.record(wake(1, 2));
        rec.record(wake(2, 9));
        assert_eq!(rec.recorded_events(), 3);
        assert_eq!(rec.dropped_events(), 0);
        let log = rec.into_log(meta());
        let times: Vec<Time> = log.events().iter().map(|e| e.at()).collect();
        assert_eq!(
            times,
            vec![Time::from_int(2), Time::from_int(5), Time::from_int(9)]
        );
        assert_eq!(log.meta().dropped_events, Some(0));
        assert_eq!(log.meta().sample.as_deref(), Some("head"));
        assert_eq!(log.meta().ring_capacity, Some(16));
    }

    #[test]
    fn head_mode_keeps_the_first_events() {
        // One shard so capacity applies globally.
        let rec = RingRecorder::with_config(4, 1, SampleSpec::all());
        for i in 0..10 {
            rec.record(wake(0, i));
        }
        assert_eq!(rec.attempted_events(), 10);
        assert_eq!(rec.recorded_events(), 4);
        assert_eq!(rec.dropped_events(), 6);
        let log = rec.into_log(meta());
        let times: Vec<i128> = (0..4).collect();
        assert_eq!(
            log.events().iter().map(|e| e.at()).collect::<Vec<_>>(),
            times.into_iter().map(Time::from_int).collect::<Vec<_>>()
        );
        assert_eq!(log.meta().dropped_events, Some(6));
    }

    #[test]
    fn tail_mode_keeps_the_most_recent_events() {
        let rec = RingRecorder::with_config(4, 1, SampleSpec::tail(1));
        for i in 0..10 {
            rec.record(wake(0, i));
        }
        assert_eq!(rec.recorded_events(), 4);
        assert_eq!(rec.dropped_events(), 6);
        let log = rec.into_log(meta());
        assert_eq!(
            log.events().iter().map(|e| e.at()).collect::<Vec<_>>(),
            (6..10).map(Time::from_int).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rate_sampling_skips_without_locking() {
        let rec = RingRecorder::with_config(100, 1, SampleSpec::head(4));
        for i in 0..16 {
            rec.record(wake(0, i));
        }
        assert_eq!(rec.recorded_events(), 4);
        assert_eq!(rec.dropped_events(), 12);
        let log = rec.into_log(meta());
        assert_eq!(
            log.events().iter().map(|e| e.at()).collect::<Vec<_>>(),
            [0, 4, 8, 12].map(Time::from_int).to_vec()
        );
    }

    #[test]
    fn events_route_to_shards_by_processor() {
        let rec = RingRecorder::with_config(8, 4, SampleSpec::all());
        for p in 0..8u32 {
            rec.record(wake(p, p as i128));
        }
        let stats = rec.shard_stats();
        assert_eq!(stats.len(), 4);
        // p and p+4 share shard p & 3.
        assert!(stats.iter().all(|s| s.attempted == 2 && s.dropped == 0));
        let total: u64 = stats.iter().map(|s| s.recorded).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn snapshot_does_not_consume() {
        let rec = RingRecorder::new(8);
        rec.record(wake(0, 1));
        let log = rec.snapshot(meta());
        assert_eq!(log.len(), 1);
        rec.record(wake(0, 2));
        assert_eq!(rec.recorded_events(), 2);
    }

    #[test]
    fn accounting_invariant_holds() {
        let rec = RingRecorder::with_config(3, 2, SampleSpec::tail(2));
        for i in 0..100 {
            rec.record(wake((i % 5) as u32, i));
        }
        assert_eq!(
            rec.recorded_events() + rec.dropped_events(),
            rec.attempted_events()
        );
        assert_eq!(rec.attempted_events(), 100);
    }
}
