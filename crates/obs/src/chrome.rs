//! Chrome trace-event JSON export.
//!
//! Produces the [Trace Event Format] consumed by `chrome://tracing` and
//! Perfetto. One *process* per postal-model processor, with two
//! *threads* per process — thread 0 is the output port, thread 1 the
//! input port — so the viewer shows exactly the paper's port-occupancy
//! picture: every send a complete (`ph: "X"`) span on the out-port
//! track, every receive a span on the in-port track, and violations,
//! drops and crashes as instant (`ph: "i"`) markers.
//!
//! Model time maps to trace microseconds at 1 unit = 1000 µs, so a
//! λ = 5/2 broadcast completing at 15/2 units spans 7.5 ms in the UI.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::ObsEvent;
use crate::log::ObsLog;
use postal_model::{Ratio, Time};
use std::fmt::Write as _;

/// Microseconds per model unit in the exported trace.
const US_PER_UNIT: i128 = 1000;

fn ts(t: Time) -> String {
    fmt_f64((t.as_ratio() * Ratio::from_int(US_PER_UNIT)).to_f64())
}

/// Formats a nonnegative f64 without a trailing `.0` when integral.
fn fmt_f64(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i128)
    } else {
        format!("{x}")
    }
}

/// Serializes a log as Chrome trace-event JSON.
pub fn to_chrome_trace(log: &ObsLog) -> String {
    let meta = log.meta();
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {");
    let _ = write!(
        out,
        " \"engine\": \"{}\", \"n\": \"{}\"",
        meta.engine, meta.n
    );
    if let Some(lam) = meta.lambda {
        let _ = write!(out, ", \"lambda\": \"{lam}\"");
    }
    if let Some(m) = meta.messages {
        let _ = write!(out, ", \"messages\": \"{m}\"");
    }
    if let Some(d) = meta.dropped_events {
        let _ = write!(out, ", \"dropped_events\": \"{d}\"");
    }
    if let Some(s) = &meta.sample {
        let _ = write!(out, ", \"sample\": \"{s}\"");
    }
    out.push_str(" },\n  \"traceEvents\": [\n");

    let mut lines: Vec<String> = Vec::new();
    for p in 0..meta.n {
        lines.push(format!(
            "    {{ \"ph\": \"M\", \"pid\": {p}, \"tid\": 0, \"name\": \"process_name\", \
             \"args\": {{ \"name\": \"p{p}\" }} }}"
        ));
        lines.push(format!(
            "    {{ \"ph\": \"M\", \"pid\": {p}, \"tid\": 0, \"name\": \"thread_name\", \
             \"args\": {{ \"name\": \"out port\" }} }}"
        ));
        lines.push(format!(
            "    {{ \"ph\": \"M\", \"pid\": {p}, \"tid\": 1, \"name\": \"thread_name\", \
             \"args\": {{ \"name\": \"in port\" }} }}"
        ));
    }
    for e in log.events() {
        match *e {
            ObsEvent::Send {
                seq,
                src,
                dst,
                start,
                finish,
            } => lines.push(format!(
                "    {{ \"ph\": \"X\", \"pid\": {src}, \"tid\": 0, \"ts\": {}, \"dur\": {}, \
                 \"name\": \"send #{seq} -> p{dst}\", \
                 \"args\": {{ \"seq\": {seq}, \"dst\": {dst}, \"start\": \"{start}\" }} }}",
                ts(start),
                ts(finish - start),
            )),
            ObsEvent::Recv {
                seq,
                src,
                dst,
                arrival,
                start,
                finish,
                queued,
            } => lines.push(format!(
                "    {{ \"ph\": \"X\", \"pid\": {dst}, \"tid\": 1, \"ts\": {}, \"dur\": {}, \
                 \"name\": \"recv #{seq} <- p{src}\", \
                 \"args\": {{ \"seq\": {seq}, \"src\": {src}, \"arrival\": \"{arrival}\", \
                 \"queued\": {queued} }} }}",
                ts(start),
                ts(finish - start),
            )),
            ObsEvent::Wake { proc, at } => lines.push(format!(
                "    {{ \"ph\": \"i\", \"pid\": {proc}, \"tid\": 0, \"ts\": {}, \"s\": \"t\", \
                 \"name\": \"wake\" }}",
                ts(at),
            )),
            ObsEvent::Violation {
                seq,
                dst,
                arrival,
                busy_until,
            } => lines.push(format!(
                "    {{ \"ph\": \"i\", \"pid\": {dst}, \"tid\": 1, \"ts\": {}, \"s\": \"p\", \
                 \"name\": \"violation #{seq}\", \
                 \"args\": {{ \"busy_until\": \"{busy_until}\" }} }}",
                ts(arrival),
            )),
            ObsEvent::Drop { seq, src, dst, at } => lines.push(format!(
                "    {{ \"ph\": \"i\", \"pid\": {dst}, \"tid\": 1, \"ts\": {}, \"s\": \"p\", \
                 \"name\": \"drop #{seq} <- p{src}\" }}",
                ts(at),
            )),
            ObsEvent::Crash { proc, at } => lines.push(format!(
                "    {{ \"ph\": \"i\", \"pid\": {proc}, \"tid\": 0, \"ts\": {}, \"s\": \"p\", \
                 \"name\": \"crash\" }}",
                ts(at),
            )),
            ObsEvent::Truncated {
                processed, limit, ..
            } => lines.push(format!(
                "    {{ \"ph\": \"i\", \"pid\": 0, \"tid\": 0, \"ts\": {}, \"s\": \"g\", \
                 \"name\": \"truncated: event budget exhausted\", \
                 \"args\": {{ \"processed\": {processed}, \"limit\": {limit} }} }}",
                ts(e.at()),
            )),
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{ObsLog, RunMeta};
    use postal_model::Latency;

    fn sample_log() -> ObsLog {
        ObsLog::new(
            RunMeta::new("event", 2).latency(Latency::from_ratio(5, 2)),
            vec![
                ObsEvent::Send {
                    seq: 0,
                    src: 0,
                    dst: 1,
                    start: Time::ZERO,
                    finish: Time::ONE,
                },
                ObsEvent::Recv {
                    seq: 0,
                    src: 0,
                    dst: 1,
                    arrival: Time::new(3, 2),
                    start: Time::new(3, 2),
                    finish: Time::new(5, 2),
                    queued: false,
                },
            ],
        )
    }

    #[test]
    fn spans_land_on_port_tracks() {
        let json = to_chrome_trace(&sample_log());
        assert!(json.contains("\"displayTimeUnit\": \"ms\""));
        // Send on p0's out track, 1 unit = 1000 µs.
        assert!(
            json.contains("\"pid\": 0, \"tid\": 0, \"ts\": 0, \"dur\": 1000"),
            "{json}"
        );
        // Receive on p1's in track at 3/2 units = 1500 µs.
        assert!(
            json.contains("\"pid\": 1, \"tid\": 1, \"ts\": 1500, \"dur\": 1000"),
            "{json}"
        );
        assert!(json.contains("\"lambda\": \"5/2\""));
        assert!(json.contains("thread_name"));
    }

    #[test]
    fn sampled_logs_declare_dropped_events() {
        let mut log = sample_log();
        let meta = log.meta().clone().dropped(9).sampled("head,rate:4");
        log = ObsLog::new(meta, log.events().to_vec());
        let json = to_chrome_trace(&log);
        assert!(json.contains("\"dropped_events\": \"9\""), "{json}");
        assert!(json.contains("\"sample\": \"head,rate:4\""), "{json}");
    }

    #[test]
    fn fractional_timestamps_survive() {
        assert_eq!(ts(Time::new(1, 3)), format!("{}", 1000.0 / 3.0));
        assert_eq!(ts(Time::new(15, 2)), "7500");
    }
}
