//! # postal-obs
//!
//! Unified tracing, metrics and profiling for postal-model runs.
//!
//! Every execution substrate in the workspace — the discrete-event
//! engine, the lockstep tick engine, and the threaded wall-clock
//! executor — emits the same [`ObsEvent`] stream through a [`Recorder`].
//! The assembled [`ObsLog`] then feeds:
//!
//! * [`chrome`] — Chrome trace-event JSON (`chrome://tracing`,
//!   Perfetto), one track per processor port;
//! * [`prometheus`] — text-exposition counters, gauges and histograms;
//! * [`jsonl`] — a streaming line-per-event log with exact-rational
//!   timestamps that round-trips losslessly and re-ingests into
//!   `postal-verify` via [`ObsLog::to_schedule`];
//! * [`metrics`] — per-processor utilization, latency and queue-delay
//!   summaries ([`MetricsSummary`]);
//! * [`gantt`] — the ASCII port-activity chart shared with `postal-sim`.
//!
//! The crate sits just above `postal-model` and below everything else,
//! so instrumentation never creates a dependency cycle: engines push
//! events down into a recorder; exporters read the log back out.
//!
//! ## Recording at scale
//!
//! Three recorders cover the cost spectrum: [`NullRecorder`] (zero
//! cost), [`MemoryRecorder`] (every event, unbounded memory), and
//! [`RingRecorder`] — a sharded fixed-capacity ring with configurable
//! [`SampleSpec`] head/tail/rate sampling for runs where tracing must
//! not dominate (n → 10⁶). Sampling is *honest*: every rejected event
//! is counted, the total lands in [`RunMeta::dropped_events`], and all
//! three exporters plus `postal-cli stats` surface it, so a partial
//! trace can never masquerade as a complete one. Percentile summaries
//! (p50/p90/p99 latency, queue delay, port utilization) come from
//! [`StreamingHistogram`] — log-bucketed sketches computed in
//! O(buckets) memory rather than from stored event vectors.
//!
//! One consumer runs *during* the run instead of after it:
//! [`LintSink`] is a recorder that feeds the streaming lint engine in
//! `postal-model` directly from the event stream, producing the full
//! `P0001`–`P0007` report with O(n) memory and no stored trace — see
//! [`lint_stream`] for the watermark policy that makes a live feed
//! sound.
//!
//! ## Timing fidelity
//!
//! Events carry [`postal_model::Time`] (exact rationals). The JSONL
//! codec serializes them as rational strings (`"15/2"`), so a λ = 5/2
//! run re-ingests with *equal* — not approximately equal — timestamps,
//! and lint verdicts are identical before and after export.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod gantt;
pub mod hist;
pub mod jsonl;
pub mod lint_stream;
pub mod log;
pub mod metrics;
pub mod prometheus;
pub mod recorder;
pub mod ring;
pub mod sample;

pub use chrome::to_chrome_trace;
pub use event::{ObsEvent, PortSide, PortSpan};
pub use hist::StreamingHistogram;
pub use jsonl::{from_jsonl, to_jsonl, JsonlParser};
pub use lint_stream::{LintSink, LintStream, StreamOrdering};
pub use log::{port_busy_times, ObsError, ObsLog, RunMeta};
pub use metrics::{Histogram, MetricsSummary};
pub use prometheus::to_prometheus;
pub use recorder::{MemoryRecorder, NullRecorder, Recorder};
pub use ring::{RingRecorder, ShardStats};
pub use sample::{SampleMode, SampleSpec};
