//! The observability event vocabulary.
//!
//! Every engine in the workspace — the discrete-event simulator, the
//! lockstep cross-validator and the threaded runtime — narrates a run as
//! a stream of [`ObsEvent`]s. An event is a *fact about the realized
//! timeline*: a send span occupying an output port, a receive span
//! occupying an input port, a strict-mode port violation, an injected
//! fault. Timestamps are exact rationals ([`Time`]), so the span stream
//! carries the same precision as the engines themselves; the threaded
//! runtime quantizes its virtual clock onto the same type.
//!
//! The mapping to the paper (Section 2) is direct: a `Send` span is the
//! sender's busy interval `[t, t+1]`, a `Recv` span is the receiver's
//! busy interval `[t+λ−1, t+λ]` (later under queued-port contention),
//! and the gap between an informed processor's consecutive `Send` spans
//! is exactly the idle-port waste the lint code `P0006` flags.

use postal_model::Time;

/// One observability event. See the module docs for the span semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsEvent {
    /// A send span: `src`'s output port was busy during `[start, finish]`
    /// transmitting message `seq` towards `dst`.
    Send {
        /// Global issue-order sequence number.
        seq: u64,
        /// Sending processor.
        src: u32,
        /// Receiving processor.
        dst: u32,
        /// When the output port started transmitting.
        start: Time,
        /// `start + 1`: when the output port became free.
        finish: Time,
    },
    /// A receive span: `dst`'s input port was busy during
    /// `[start, finish]` receiving message `seq` from `src`.
    Recv {
        /// The matching send's sequence number.
        seq: u64,
        /// Sending processor.
        src: u32,
        /// Receiving processor.
        dst: u32,
        /// Model arrival time (`send_start + λ − 1`).
        arrival: Time,
        /// When the input port actually started receiving (later than
        /// `arrival` only under queued-port contention).
        start: Time,
        /// `start + 1`: when the payload was delivered to the program.
        finish: Time,
        /// Whether input-port contention delayed this receive.
        queued: bool,
    },
    /// A timer callback fired on `proc` at `at`.
    Wake {
        /// The woken processor.
        proc: u32,
        /// The wake time.
        at: Time,
    },
    /// Strict-mode input-port overlap: message `seq` was ready at
    /// `arrival` while `dst`'s input port was busy until `busy_until`.
    Violation {
        /// The offending transfer's sequence number.
        seq: u64,
        /// Destination whose input port was double-booked.
        dst: u32,
        /// Model arrival time of the late message.
        arrival: Time,
        /// When the port would have become free.
        busy_until: Time,
    },
    /// Fault injection: message `seq` from `src` to `dst` was dropped in
    /// flight at `at` (its would-be arrival time).
    Drop {
        /// The dropped transfer's sequence number.
        seq: u64,
        /// Sending processor.
        src: u32,
        /// Intended receiving processor.
        dst: u32,
        /// When the message vanished.
        at: Time,
    },
    /// Fault injection: `proc` stops participating at `at`.
    Crash {
        /// The crashed processor.
        proc: u32,
        /// The crash time.
        at: Time,
    },
    /// The engine hit its event (or tick) budget and stopped early: the
    /// trace ends here and every downstream count is a lower bound.
    /// Emitted exactly once, as the final event, before the engine
    /// returns its truncation error — so a consumer that only sees the
    /// event stream can still tell a completed run from an aborted one.
    Truncated {
        /// Events (or ticks, for the lockstep engine) processed before
        /// the budget ran out.
        processed: u64,
        /// The configured budget that was exceeded.
        limit: u64,
        /// Model time at which the engine gave up.
        at: Time,
    },
}

impl ObsEvent {
    /// The event's primary timestamp (span start for spans, the instant
    /// for point events).
    pub fn at(&self) -> Time {
        match *self {
            ObsEvent::Send { start, .. } => start,
            ObsEvent::Recv { start, .. } => start,
            ObsEvent::Wake { at, .. } => at,
            ObsEvent::Violation { arrival, .. } => arrival,
            ObsEvent::Drop { at, .. } => at,
            ObsEvent::Crash { at, .. } => at,
            ObsEvent::Truncated { at, .. } => at,
        }
    }

    /// The processor the event is attributed to — the port owner whose
    /// timeline it lands on (receiver for `Recv`/`Violation`/`Drop`).
    /// [`crate::RingRecorder`] shards by this key, so one processor's
    /// port activity stays within one shard and per-shard order is
    /// per-port order.
    pub fn proc(&self) -> u32 {
        match *self {
            ObsEvent::Send { src, .. } => src,
            ObsEvent::Recv { dst, .. } => dst,
            ObsEvent::Wake { proc, .. } => proc,
            ObsEvent::Violation { dst, .. } => dst,
            ObsEvent::Drop { dst, .. } => dst,
            ObsEvent::Crash { proc, .. } => proc,
            // Truncation is a whole-run fact, not a port event; it is
            // attributed to processor 0 so sharded recorders keep it in
            // a deterministic shard.
            ObsEvent::Truncated { .. } => 0,
        }
    }

    /// The stable `type` tag used by the JSONL codec.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::Send { .. } => "send",
            ObsEvent::Recv { .. } => "recv",
            ObsEvent::Wake { .. } => "wake",
            ObsEvent::Violation { .. } => "violation",
            ObsEvent::Drop { .. } => "drop",
            ObsEvent::Crash { .. } => "crash",
            ObsEvent::Truncated { .. } => "truncated",
        }
    }
}

/// Which of a processor's two ports a span occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PortSide {
    /// The output (sending) port.
    Out,
    /// The input (receiving) port.
    In,
}

/// A busy interval on one port — the unit the Gantt renderer and the
/// utilization accounting consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSpan {
    /// The processor owning the port.
    pub proc: u32,
    /// Which port.
    pub side: PortSide,
    /// Busy from.
    pub start: Time,
    /// Busy until.
    pub end: Time,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_timestamps_and_kinds() {
        let e = ObsEvent::Send {
            seq: 0,
            src: 0,
            dst: 1,
            start: Time::from_int(3),
            finish: Time::from_int(4),
        };
        assert_eq!(e.at(), Time::from_int(3));
        assert_eq!(e.kind(), "send");
        let c = ObsEvent::Crash {
            proc: 2,
            at: Time::new(5, 2),
        };
        assert_eq!(c.at(), Time::new(5, 2));
        assert_eq!(c.kind(), "crash");
    }
}
