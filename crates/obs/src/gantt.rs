//! ASCII Gantt rendering of port-span streams.
//!
//! The chart logic lives here so that every producer of port activity —
//! the sim trace, a re-ingested JSONL log, a threaded run — renders
//! identically: `S` = output port busy sending, `R` = input port busy
//! receiving, `B` = both at once (the model's *simultaneous I/O*),
//! `·` = idle. `postal_sim::gantt::render_gantt` is a thin wrapper over
//! [`render_spans`].

use crate::event::{PortSide, PortSpan};
use postal_model::{Ratio, Time};
use std::fmt::Write as _;

/// Renders a span stream as an ASCII Gantt chart with `cells_per_unit`
/// columns per time unit, on a time axis running to `horizon`.
///
/// ```
/// use postal_obs::gantt::render_spans;
/// use postal_model::Time;
///
/// let art = render_spans(2, &[], Time::ZERO, 1);
/// assert!(art.contains("p0"));
/// assert!(art.contains("p1"));
/// ```
///
/// # Panics
/// Panics if `cells_per_unit == 0` or `n == 0`.
pub fn render_spans(n: usize, spans: &[PortSpan], horizon: Time, cells_per_unit: u32) -> String {
    assert!(cells_per_unit >= 1, "resolution must be at least 1 cell");
    assert!(n >= 1, "at least one processor required");
    let cells_total = (horizon.as_ratio() * Ratio::from_int(cells_per_unit as i128))
        .ceil()
        .max(1) as usize;

    // 0 = idle, 1 = send, 2 = recv, 3 = both.
    let mut grid = vec![vec![0u8; cells_total]; n];
    for s in spans {
        let bit = match s.side {
            PortSide::Out => 1,
            PortSide::In => 2,
        };
        let a = (s.start.as_ratio() * Ratio::from_int(cells_per_unit as i128))
            .floor()
            .max(0) as usize;
        let b = (s.end.as_ratio() * Ratio::from_int(cells_per_unit as i128))
            .ceil()
            .max(0) as usize;
        for cell in grid[s.proc as usize][a.min(cells_total)..b.min(cells_total)].iter_mut() {
            *cell |= bit;
        }
    }

    let mut out = String::new();
    // Axis: a tick every unit.
    let label_width = format!("p{}", n - 1).len().max(3);
    let _ = write!(out, "{:>label_width$} ", "t");
    for c in 0..cells_total {
        let ch = if c % cells_per_unit as usize == 0 {
            '|'
        } else {
            ' '
        };
        out.push(ch);
    }
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let _ = write!(out, "{:>label_width$} ", format!("p{i}"));
        for &cell in row {
            out.push(match cell {
                0 => '·',
                1 => 'S',
                2 => 'R',
                _ => 'B',
            });
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "{:>label_width$} (1 unit = {} cells; completion t = {})",
        "", cells_per_unit, horizon
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(proc: u32, side: PortSide, start: Time, end: Time) -> PortSpan {
        PortSpan {
            proc,
            side,
            start,
            end,
        }
    }

    #[test]
    fn renders_send_and_receive_marks() {
        let spans = [
            span(0, PortSide::Out, Time::ZERO, Time::ONE),
            span(1, PortSide::In, Time::ONE, Time::from_int(2)),
        ];
        let art = render_spans(2, &spans, Time::from_int(2), 2);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[1].contains('S'));
        assert!(lines[2].contains('R'));
        assert!(art.contains("completion t = 2"));
    }

    #[test]
    fn simultaneous_io_marked_as_both() {
        let spans = [
            span(1, PortSide::In, Time::ONE, Time::from_int(2)),
            span(1, PortSide::Out, Time::ONE, Time::from_int(2)),
        ];
        let art = render_spans(2, &spans, Time::from_int(2), 2);
        assert!(art.contains('B'), "expected overlap marker in:\n{art}");
    }

    #[test]
    fn empty_stream_renders_minimal_grid() {
        let art = render_spans(3, &[], Time::ZERO, 1);
        assert_eq!(art.lines().count(), 5); // axis + 3 procs + footer
    }

    #[test]
    fn fractional_spans_round_outward() {
        // A receive over [3/2, 5/2) at 2 cells/unit covers cells 3..5.
        let spans = [span(0, PortSide::In, Time::new(3, 2), Time::new(5, 2))];
        let art = render_spans(1, &spans, Time::new(5, 2), 2);
        let row = art.lines().nth(1).unwrap();
        let cells: String = row.chars().skip(4).collect();
        assert_eq!(cells, "···RR");
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_panics() {
        let _ = render_spans(1, &[], Time::ZERO, 0);
    }
}
