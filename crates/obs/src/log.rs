//! The assembled record of one observed run.

use crate::event::{ObsEvent, PortSide, PortSpan};
use postal_model::schedule::{Schedule, TimedSend};
use postal_model::{Latency, Time};
use std::fmt;

/// Metadata identifying a run: which engine produced it and the model
/// parameters needed to re-derive schedules and bounds from the events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Which substrate produced the log: `"event"`, `"lockstep"`,
    /// `"threaded"`, or a caller-chosen tag.
    pub engine: String,
    /// Processor count of the run.
    pub n: u32,
    /// Uniform λ of the run, when known. Logs recorded under
    /// non-uniform latency models leave this unset; such logs cannot be
    /// reduced to a [`Schedule`].
    pub lambda: Option<Latency>,
    /// Number of distinct broadcast messages (the paper's `m`), when the
    /// workload has one.
    pub messages: Option<u64>,
    /// Events the recorder *rejected* (sampling, ring overflow) while
    /// producing this log. `Some(0)` asserts the log is complete;
    /// `Some(k > 0)` marks a **partial trace** — consumers (lints,
    /// metrics) must not treat absence of an event as evidence. `None`
    /// means the producer predates drop accounting (treated as
    /// complete, like `Some(0)`).
    pub dropped_events: Option<u64>,
    /// The sampling policy that produced the log (the
    /// [`crate::SampleSpec`] grammar), when one was applied.
    pub sample: Option<String>,
    /// Per-shard ring capacity of the producing recorder, when bounded.
    pub ring_capacity: Option<u64>,
}

impl RunMeta {
    /// Creates metadata for `engine` over `n` processors.
    pub fn new(engine: &str, n: u32) -> RunMeta {
        RunMeta {
            engine: engine.to_string(),
            n,
            lambda: None,
            messages: None,
            dropped_events: None,
            sample: None,
            ring_capacity: None,
        }
    }

    /// Sets the uniform λ.
    pub fn latency(mut self, lambda: Latency) -> RunMeta {
        self.lambda = Some(lambda);
        self
    }

    /// Sets the broadcast message count `m`.
    pub fn messages(mut self, m: u64) -> RunMeta {
        self.messages = Some(m);
        self
    }

    /// Sets the recorder-drop count (see [`RunMeta::dropped_events`]).
    pub fn dropped(mut self, dropped: u64) -> RunMeta {
        self.dropped_events = Some(dropped);
        self
    }

    /// Sets the sampling-policy tag (see [`RunMeta::sample`]).
    pub fn sampled(mut self, spec: &str) -> RunMeta {
        self.sample = Some(spec.to_string());
        self
    }

    /// Whether the log is a partial trace: some events were dropped by
    /// sampling or ring overflow, so absence of an event proves
    /// nothing. Complete logs (and logs predating drop accounting)
    /// return `false`.
    pub fn is_partial(&self) -> bool {
        self.dropped_events.is_some_and(|d| d > 0)
    }
}

/// Failure converting or parsing a log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsError(pub String);

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ObsError {}

/// A complete, ordered observability log: run metadata plus every event
/// the engines recorded. This is the hub type — exporters
/// ([`crate::chrome`], [`crate::prometheus`], [`crate::jsonl`]), the
/// metrics summary ([`crate::metrics::MetricsSummary`]) and the Gantt
/// span renderer all consume it.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsLog {
    meta: RunMeta,
    events: Vec<ObsEvent>,
}

impl ObsLog {
    /// Wraps metadata and an event list (assumed already ordered; use
    /// [`crate::MemoryRecorder::into_log`] for engine output).
    pub fn new(meta: RunMeta, events: Vec<ObsEvent>) -> ObsLog {
        ObsLog { meta, events }
    }

    /// The run metadata.
    pub fn meta(&self) -> &RunMeta {
        &self.meta
    }

    /// All events in timeline order.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The paper's running time: when the last receive finished
    /// (`Time::ZERO` when nothing was delivered).
    pub fn completion_time(&self) -> Time {
        self.events
            .iter()
            .filter_map(|e| match *e {
                ObsEvent::Recv { finish, .. } => Some(finish),
                _ => None,
            })
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Messages delivered (count of `Recv` events).
    pub fn deliveries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ObsEvent::Recv { .. }))
            .count()
    }

    /// Strict-mode violations observed.
    pub fn violations(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ObsEvent::Violation { .. }))
            .count()
    }

    /// Reduces the log to the static [`Schedule`] it realized (one
    /// `TimedSend` per `Send` event), so `postal-verify` can lint an
    /// observed run by the same rules as a hand-written schedule.
    ///
    /// # Errors
    /// [`ObsError`] when the log's metadata carries no uniform λ (a
    /// schedule cannot be reconstructed without it).
    pub fn to_schedule(&self) -> Result<Schedule, ObsError> {
        let lambda = self.meta.lambda.ok_or_else(|| {
            ObsError("log has no uniform lambda; cannot reduce to a schedule".into())
        })?;
        let sends = self
            .events
            .iter()
            .filter_map(|e| match *e {
                ObsEvent::Send {
                    src, dst, start, ..
                } => Some(TimedSend {
                    src,
                    dst,
                    send_start: start,
                }),
                _ => None,
            })
            .collect();
        Ok(Schedule::new(self.meta.n, lambda, sends))
    }

    /// The busy intervals of every port, in event order — the span
    /// stream the Gantt renderer and utilization accounting consume.
    pub fn port_spans(&self) -> Vec<PortSpan> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                ObsEvent::Send {
                    src, start, finish, ..
                } => Some(PortSpan {
                    proc: src,
                    side: PortSide::Out,
                    start,
                    end: finish,
                }),
                ObsEvent::Recv {
                    dst, start, finish, ..
                } => Some(PortSpan {
                    proc: dst,
                    side: PortSide::In,
                    start,
                    end: finish,
                }),
                _ => None,
            })
            .collect()
    }
}

/// Per-processor busy time `(send_busy, recv_busy)` summed from a span
/// stream. `sim::Trace::port_busy_times` and the Prometheus exporter
/// both delegate here, so there is exactly one definition of "port busy"
/// in the workspace.
pub fn port_busy_times(n: usize, spans: &[PortSpan]) -> Vec<(Time, Time)> {
    let mut busy = vec![(Time::ZERO, Time::ZERO); n];
    for s in spans {
        let slot = &mut busy[s.proc as usize];
        let dur = s.end - s.start;
        match s.side {
            PortSide::Out => slot.0 += dur,
            PortSide::In => slot.1 += dur,
        }
    }
    busy
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_log() -> ObsLog {
        // BCAST(3, λ=2): p0 sends to p1 at 0 and p2 at 1.
        let lam = Latency::from_int(2);
        let ev = |seq: u64, src: u32, dst: u32, at: i128| {
            let start = Time::from_int(at);
            vec![
                ObsEvent::Send {
                    seq,
                    src,
                    dst,
                    start,
                    finish: start + Time::ONE,
                },
                ObsEvent::Recv {
                    seq,
                    src,
                    dst,
                    arrival: start + Time::ONE,
                    start: start + Time::ONE,
                    finish: start + Time::from_int(2),
                    queued: false,
                },
            ]
        };
        let mut events = ev(0, 0, 1, 0);
        events.extend(ev(1, 0, 2, 1));
        ObsLog::new(RunMeta::new("event", 3).latency(lam).messages(1), events)
    }

    #[test]
    fn completion_and_counts() {
        let log = sample_log();
        assert_eq!(log.completion_time(), Time::from_int(3));
        assert_eq!(log.deliveries(), 2);
        assert_eq!(log.violations(), 0);
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn reduces_to_a_schedule() {
        let log = sample_log();
        let schedule = log.to_schedule().unwrap();
        assert_eq!(schedule.n(), 3);
        assert_eq!(schedule.len(), 2);
        assert_eq!(schedule.sends()[1].send_start, Time::ONE);
    }

    #[test]
    fn missing_lambda_is_an_error() {
        let log = ObsLog::new(RunMeta::new("event", 2), vec![]);
        assert!(log.to_schedule().is_err());
    }

    #[test]
    fn spans_and_busy_times() {
        let log = sample_log();
        let spans = log.port_spans();
        assert_eq!(spans.len(), 4);
        let busy = port_busy_times(3, &spans);
        assert_eq!(busy[0], (Time::from_int(2), Time::ZERO));
        assert_eq!(busy[1], (Time::ZERO, Time::ONE));
        assert_eq!(busy[2], (Time::ZERO, Time::ONE));
    }
}
