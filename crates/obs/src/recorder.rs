//! Event sinks the engines write to.
//!
//! A [`Recorder`] is the narrow waist between an engine and the
//! observability layer: engines call [`Recorder::record`] once per event
//! and never look back. The trait is `Send + Sync` so a single recorder
//! can be shared by the threaded runtime's processor and port threads;
//! the standard implementation ([`MemoryRecorder`]) is a
//! mutex-guarded append-only buffer — contention is one short critical
//! section per message, far below the engines' own costs ("lock-free
//! enough" for runs of millions of events).

use crate::event::ObsEvent;
use crate::log::{ObsLog, RunMeta};
use std::sync::Mutex;

/// An event sink. Implementations must tolerate concurrent calls.
pub trait Recorder: Send + Sync {
    /// Records one event. Ordering between threads is not guaranteed;
    /// consumers sort by timestamp/sequence as needed.
    fn record(&self, event: ObsEvent);
}

/// A recorder that discards everything (the default when a run is not
/// being observed).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: ObsEvent) {}
}

/// An in-memory recorder: appends events to a mutex-guarded buffer.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<ObsEvent>>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been recorded. Checks under a single lock
    /// acquisition (not via [`MemoryRecorder::len`]).
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// The event buffer, recovering from poisoning: a panicking worker
    /// thread (`RuntimeError::WorkerExited` upstream) must not cascade
    /// into losing the whole log — an appended `ObsEvent` is always
    /// fully written before the lock is released, so the buffer is
    /// intact even if some *other* holder panicked mid-critical-section.
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<ObsEvent>> {
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Drains the recorded events into an [`ObsLog`] with the given run
    /// metadata, sorted by (timestamp, kind, seq) so logs from threaded
    /// runs are deterministic given their timestamps.
    pub fn into_log(self, meta: RunMeta) -> ObsLog {
        let mut events = self.events.into_inner().unwrap_or_else(|e| e.into_inner());
        sort_events(&mut events);
        ObsLog::new(meta, events)
    }

    /// Copies the events recorded so far (sorted as in
    /// [`MemoryRecorder::into_log`]) without consuming the recorder.
    pub fn snapshot(&self, meta: RunMeta) -> ObsLog {
        self.snapshot_tail(meta, usize::MAX)
    }

    /// Copies at most the last `max_events` recorded events (by record
    /// order) without consuming the recorder. Only the requested slice
    /// is cloned, and only while the lock is held — a bounded snapshot
    /// of a multi-million-event buffer copies `max_events` events, not
    /// the whole log.
    pub fn snapshot_tail(&self, meta: RunMeta, max_events: usize) -> ObsLog {
        let mut events = {
            let guard = self.lock();
            let skip = guard.len().saturating_sub(max_events);
            guard[skip..].to_vec()
        };
        sort_events(&mut events);
        ObsLog::new(meta, events)
    }
}

pub(crate) fn sort_events(events: &mut [ObsEvent]) {
    events.sort_by_key(|e| {
        let seq = match *e {
            ObsEvent::Send { seq, .. }
            | ObsEvent::Recv { seq, .. }
            | ObsEvent::Violation { seq, .. }
            | ObsEvent::Drop { seq, .. } => seq,
            _ => u64::MAX,
        };
        (e.at(), kind_rank(e), seq)
    });
}

fn kind_rank(e: &ObsEvent) -> u8 {
    match e {
        ObsEvent::Crash { .. } => 0,
        ObsEvent::Send { .. } => 1,
        ObsEvent::Recv { .. } => 2,
        ObsEvent::Violation { .. } => 3,
        ObsEvent::Drop { .. } => 4,
        ObsEvent::Wake { .. } => 5,
        // Truncation ends the run; it sorts after everything else at its
        // timestamp.
        ObsEvent::Truncated { .. } => 6,
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: ObsEvent) {
        self.lock().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::{Latency, Time};

    #[test]
    fn memory_recorder_collects_and_sorts() {
        let rec = MemoryRecorder::new();
        rec.record(ObsEvent::Recv {
            seq: 0,
            src: 0,
            dst: 1,
            arrival: Time::ONE,
            start: Time::ONE,
            finish: Time::from_int(2),
            queued: false,
        });
        rec.record(ObsEvent::Send {
            seq: 0,
            src: 0,
            dst: 1,
            start: Time::ZERO,
            finish: Time::ONE,
        });
        assert_eq!(rec.len(), 2);
        let log = rec.into_log(RunMeta::new("test", 2).latency(Latency::from_int(2)));
        assert_eq!(log.events()[0].kind(), "send");
        assert_eq!(log.events()[1].kind(), "recv");
    }

    #[test]
    fn null_recorder_discards() {
        let rec = NullRecorder;
        rec.record(ObsEvent::Wake {
            proc: 0,
            at: Time::ZERO,
        });
    }

    #[test]
    fn snapshot_tail_copies_only_the_requested_slice() {
        let rec = MemoryRecorder::new();
        for i in 0..10 {
            rec.record(ObsEvent::Wake {
                proc: 0,
                at: Time::from_int(i),
            });
        }
        let meta = RunMeta::new("test", 1);
        let tail = rec.snapshot_tail(meta.clone(), 3);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.events()[0].at(), Time::from_int(7));
        // An oversized request degrades to a full snapshot.
        assert_eq!(rec.snapshot_tail(meta.clone(), 1000).len(), 10);
        assert_eq!(rec.snapshot(meta).len(), 10);
    }

    #[test]
    fn poisoned_recorder_keeps_its_log() {
        let rec = std::sync::Arc::new(MemoryRecorder::new());
        rec.record(ObsEvent::Wake {
            proc: 0,
            at: Time::ZERO,
        });
        // Panic while holding the buffer lock: the mutex is now
        // poisoned, but no event was lost.
        let holder = std::sync::Arc::clone(&rec);
        let _ = std::thread::spawn(move || {
            let _guard = holder.lock();
            panic!("worker exited");
        })
        .join();
        assert_eq!(rec.len(), 1, "poisoning must not lose the log");
        assert!(!rec.is_empty());
        rec.record(ObsEvent::Wake {
            proc: 1,
            at: Time::ONE,
        });
        let log = std::sync::Arc::try_unwrap(rec)
            .unwrap()
            .into_log(RunMeta::new("test", 2));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = std::sync::Arc::new(MemoryRecorder::new());
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    rec.record(ObsEvent::Wake {
                        proc: i,
                        at: Time::from_int(i as i128),
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.len(), 4);
    }
}
