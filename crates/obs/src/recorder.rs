//! Event sinks the engines write to.
//!
//! A [`Recorder`] is the narrow waist between an engine and the
//! observability layer: engines call [`Recorder::record`] once per event
//! and never look back. The trait is `Send + Sync` so a single recorder
//! can be shared by the threaded runtime's processor and port threads;
//! the standard implementation ([`MemoryRecorder`]) is a
//! mutex-guarded append-only buffer — contention is one short critical
//! section per message, far below the engines' own costs ("lock-free
//! enough" for runs of millions of events).

use crate::event::ObsEvent;
use crate::log::{ObsLog, RunMeta};
use std::sync::Mutex;

/// An event sink. Implementations must tolerate concurrent calls.
pub trait Recorder: Send + Sync {
    /// Records one event. Ordering between threads is not guaranteed;
    /// consumers sort by timestamp/sequence as needed.
    fn record(&self, event: ObsEvent);
}

/// A recorder that discards everything (the default when a run is not
/// being observed).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: ObsEvent) {}
}

/// An in-memory recorder: appends events to a mutex-guarded buffer.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<ObsEvent>>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("recorder poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the recorded events into an [`ObsLog`] with the given run
    /// metadata, sorted by (timestamp, kind, seq) so logs from threaded
    /// runs are deterministic given their timestamps.
    pub fn into_log(self, meta: RunMeta) -> ObsLog {
        let mut events = self.events.into_inner().expect("recorder poisoned");
        sort_events(&mut events);
        ObsLog::new(meta, events)
    }

    /// Copies the events recorded so far (sorted as in
    /// [`MemoryRecorder::into_log`]) without consuming the recorder.
    pub fn snapshot(&self, meta: RunMeta) -> ObsLog {
        let mut events = self.events.lock().expect("recorder poisoned").clone();
        sort_events(&mut events);
        ObsLog::new(meta, events)
    }
}

fn sort_events(events: &mut [ObsEvent]) {
    events.sort_by_key(|e| {
        let seq = match *e {
            ObsEvent::Send { seq, .. }
            | ObsEvent::Recv { seq, .. }
            | ObsEvent::Violation { seq, .. }
            | ObsEvent::Drop { seq, .. } => seq,
            _ => u64::MAX,
        };
        (e.at(), kind_rank(e), seq)
    });
}

fn kind_rank(e: &ObsEvent) -> u8 {
    match e {
        ObsEvent::Crash { .. } => 0,
        ObsEvent::Send { .. } => 1,
        ObsEvent::Recv { .. } => 2,
        ObsEvent::Violation { .. } => 3,
        ObsEvent::Drop { .. } => 4,
        ObsEvent::Wake { .. } => 5,
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: ObsEvent) {
        self.events.lock().expect("recorder poisoned").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::{Latency, Time};

    #[test]
    fn memory_recorder_collects_and_sorts() {
        let rec = MemoryRecorder::new();
        rec.record(ObsEvent::Recv {
            seq: 0,
            src: 0,
            dst: 1,
            arrival: Time::ONE,
            start: Time::ONE,
            finish: Time::from_int(2),
            queued: false,
        });
        rec.record(ObsEvent::Send {
            seq: 0,
            src: 0,
            dst: 1,
            start: Time::ZERO,
            finish: Time::ONE,
        });
        assert_eq!(rec.len(), 2);
        let log = rec.into_log(RunMeta::new("test", 2).latency(Latency::from_int(2)));
        assert_eq!(log.events()[0].kind(), "send");
        assert_eq!(log.events()[1].kind(), "recv");
    }

    #[test]
    fn null_recorder_discards() {
        let rec = NullRecorder;
        rec.record(ObsEvent::Wake {
            proc: 0,
            at: Time::ZERO,
        });
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = std::sync::Arc::new(MemoryRecorder::new());
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    rec.record(ObsEvent::Wake {
                        proc: i,
                        at: Time::from_int(i as i128),
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.len(), 4);
    }
}
