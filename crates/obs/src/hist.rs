//! Streaming log-bucketed (HDR-style) histograms.
//!
//! [`StreamingHistogram`] computes quantiles **incrementally** in
//! O(buckets) memory: each `observe` is a handful of integer operations
//! on a fixed bucket array, so percentile summaries of million-event
//! runs never materialize an event vector. This is what lets
//! [`crate::MetricsSummary`] report p50/p90/p99 latency, queue delay
//! and port utilization at scales where storing every sample would
//! dominate the run being measured.
//!
//! ## Bucket layout and error bound
//!
//! Nonnegative values are bucketed geometrically: each power-of-two
//! *octave* `[2^e, 2^{e+1})` is split into [`SUBBUCKETS`] equal linear
//! sub-buckets, exactly the HdrHistogram scheme. A value `v` therefore
//! lands in a bucket whose width is `2^e / SUBBUCKETS ≤ v / SUBBUCKETS`,
//! giving a guaranteed **relative error ≤ 1/SUBBUCKETS ≈ 1.6%** for any
//! reported quantile: the true quantile and the reported representative
//! always share one bucket. Values below [`MIN_VALUE`] (including 0,
//! the common case for queue delays on conflict-free runs) occupy a
//! dedicated underflow bucket reported as 0; values above [`MAX_VALUE`]
//! clamp into the top bucket. The whole structure is
//! `(EXP_RANGE × SUBBUCKETS + 2)` `u64`s — about 26 KiB — regardless
//! of how many samples it absorbs.

use std::fmt;

/// Linear sub-buckets per power-of-two octave. 64 sub-buckets bound the
/// relative quantile error at 1/64 ≈ 1.6%.
pub const SUBBUCKETS: usize = 64;

/// Smallest distinguishable value: `2^MIN_EXP`. Everything below lands
/// in the underflow bucket and reports as 0 (1/1024 is finer than the
/// threaded runtime's clock lattice, so no real sample underflows).
const MIN_EXP: i32 = -10;

/// Largest octave exponent: values up to `2^MAX_EXP` (≈ 3.5e13 model
/// units) resolve; larger ones clamp into the top bucket.
const MAX_EXP: i32 = 45;

/// Number of octaves covered.
const EXP_RANGE: usize = (MAX_EXP - MIN_EXP) as usize;

/// Smallest value that escapes the underflow bucket.
pub const MIN_VALUE: f64 = 1.0 / 1024.0;

/// Largest value that resolves without clamping.
pub const MAX_VALUE: f64 = (1u64 << 45) as f64;

/// A fixed-memory quantile sketch over nonnegative `f64` samples.
#[derive(Clone, PartialEq)]
pub struct StreamingHistogram {
    /// `counts[0]` is the underflow bucket; then `EXP_RANGE × SUBBUCKETS`
    /// geometric buckets; the last slot is the clamp bucket.
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl fmt::Debug for StreamingHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamingHistogram")
            .field("total", &self.total)
            .field("sum", &self.sum)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl Default for StreamingHistogram {
    fn default() -> StreamingHistogram {
        StreamingHistogram::new()
    }
}

/// Index of the clamp (overflow) bucket.
const CLAMP: usize = 1 + EXP_RANGE * SUBBUCKETS;

/// Maps a value to its bucket index.
fn bucket_of(v: f64) -> usize {
    if v.is_nan() || v < MIN_VALUE {
        // NaN and everything below MIN_VALUE share the underflow bucket.
        return 0;
    }
    if v >= MAX_VALUE {
        return CLAMP;
    }
    // v = m × 2^e with m ∈ [1, 2): e from the bit pattern, sub-bucket
    // from the linear position of m within its octave.
    let e = v.log2().floor() as i32;
    let e = e.clamp(MIN_EXP, MAX_EXP - 1);
    let scale = (2.0f64).powi(e);
    let frac = (v / scale - 1.0).clamp(0.0, 1.0 - f64::EPSILON);
    let sub = (frac * SUBBUCKETS as f64) as usize;
    1 + (e - MIN_EXP) as usize * SUBBUCKETS + sub.min(SUBBUCKETS - 1)
}

/// The `[lo, hi)` value range of a bucket index.
fn bucket_bounds(idx: usize) -> (f64, f64) {
    if idx == 0 {
        return (0.0, MIN_VALUE);
    }
    if idx >= CLAMP {
        return (MAX_VALUE, f64::INFINITY);
    }
    let g = idx - 1;
    let e = MIN_EXP + (g / SUBBUCKETS) as i32;
    let sub = (g % SUBBUCKETS) as f64;
    let scale = (2.0f64).powi(e);
    let width = scale / SUBBUCKETS as f64;
    let lo = scale + sub * width;
    (lo, lo + width)
}

impl StreamingHistogram {
    /// An empty histogram.
    pub fn new() -> StreamingHistogram {
        StreamingHistogram {
            counts: vec![0; CLAMP + 1],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Negative and NaN values are treated as 0
    /// (they land in the underflow bucket).
    pub fn observe(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples absorbed.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Smallest sample seen (0 when empty).
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) as a representative value from
    /// the bucket containing that rank: the bucket midpoint, sharpened
    /// to the exact observed `min`/`max` at the extremes. Returns 0 when
    /// empty. The true quantile lies in the same bucket, so the result
    /// is within one log-bucket (relative error ≤ 1/[`SUBBUCKETS`]).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max();
        }
        let (lo, hi) = self.quantile_bounds(q);
        if lo <= 0.0 {
            return 0.0;
        }
        // Clamp the representative into the observed range so p0/p100
        // are exact and the top bucket never overreports.
        let mid = (lo + hi.min(self.max)) / 2.0;
        mid.clamp(self.min, self.max)
    }

    /// The `[lo, hi)` bounds of the bucket holding the `q`-quantile —
    /// the bracket any exact computation must fall inside. `(0, 0)`
    /// when empty.
    pub fn quantile_bounds(&self, q: f64) -> (f64, f64) {
        if self.total == 0 {
            return (0.0, 0.0);
        }
        // Rank of the q-quantile under the nearest-rank definition:
        // the ⌈q·N⌉-th smallest sample (1-based), q = 0 meaning the min.
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(idx);
            }
        }
        bucket_bounds(CLAMP)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of buckets (the memory bound: `buckets × 8` bytes).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Nonempty `(lo, hi, count)` buckets, for exporters.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

/// The exact nearest-rank `q`-quantile of a sample vector — the
/// reference the streaming sketch is tested against. Sorts a copy;
/// only for tests and small offline summaries.
pub fn exact_quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = StreamingHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn zero_samples_stay_zero() {
        let mut h = StreamingHistogram::new();
        for _ in 0..10 {
            h.observe(0.0);
        }
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn quantiles_are_within_one_bucket_of_exact() {
        let mut h = StreamingHistogram::new();
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 / 7.0).collect();
        for &s in &samples {
            h.observe(s);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&samples, q);
            let (lo, hi) = h.quantile_bounds(q);
            assert!(
                exact >= lo && exact < hi,
                "q={q}: exact {exact} outside bucket [{lo}, {hi})"
            );
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact.max(1e-9);
            assert!(rel <= 1.0 / SUBBUCKETS as f64 + 1e-9, "q={q}: rel {rel}");
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = StreamingHistogram::new();
        for s in [2.5, 7.0, 42.0] {
            h.observe(s);
        }
        assert_eq!(h.min(), 2.5);
        assert_eq!(h.max(), 42.0);
        assert_eq!(h.quantile(0.0), 2.5);
        assert_eq!(h.quantile(1.0), 42.0);
    }

    #[test]
    fn merge_equals_combined_observation() {
        let (mut a, mut b, mut c) = (
            StreamingHistogram::new(),
            StreamingHistogram::new(),
            StreamingHistogram::new(),
        );
        for i in 0..100 {
            let v = (i * 13 % 97) as f64 / 3.0;
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            c.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.counts, c.counts);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(a.quantile(q), c.quantile(q), "q={q}");
        }
        // f64 addition is not associative, so sums agree only approximately.
        assert!((a.sum() - c.sum()).abs() < 1e-9);
    }

    #[test]
    fn tiny_and_huge_values_clamp() {
        let mut h = StreamingHistogram::new();
        h.observe(1e-12);
        h.observe(1e300);
        h.observe(f64::NAN);
        h.observe(-5.0);
        assert_eq!(h.count(), 4);
        // Underflow reports 0; the clamp bucket reports a finite value.
        assert_eq!(h.quantile(0.1), 0.0);
        assert!(h.quantile(1.0).is_finite());
    }

    #[test]
    fn memory_is_bounded() {
        let mut h = StreamingHistogram::new();
        let before = h.buckets();
        for i in 0..100_000 {
            h.observe(i as f64);
        }
        assert_eq!(h.buckets(), before, "observe must never allocate");
        assert!(before * 8 < 64 * 1024, "sketch stays under 64 KiB");
    }

    #[test]
    fn bucket_math_is_consistent() {
        for v in [0.001, 0.5, 1.0, 1.5, 2.0, 3.75, 1024.0, 9.9e12] {
            let idx = bucket_of(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(v >= lo && v < hi, "{v} not in [{lo}, {hi}) (idx {idx})");
        }
    }
}
