//! Streaming JSONL event-log codec.
//!
//! One JSON object per line; the first line is a `"run"` header with the
//! metadata, every following line one [`ObsEvent`]. Times serialize as
//! exact-rational strings (`"15/2"`), so a log round-trips with zero
//! timing loss and `postal-verify` can lint the re-ingested schedule by
//! the same rules as the original run:
//!
//! ```text
//! {"type":"run","engine":"event","n":3,"lambda":"5/2","messages":1}
//! {"type":"send","seq":0,"src":0,"dst":1,"start":"0","finish":"1"}
//! {"type":"recv","seq":0,"src":0,"dst":1,"arrival":"3/2","start":"3/2","finish":"5/2","queued":false}
//! ```
//!
//! The parser accepts exactly the flat objects the writer emits (string,
//! integer and boolean values — no nesting), keeping the hermetic
//! workspace free of a JSON dependency.

use crate::event::ObsEvent;
use crate::log::{ObsError, ObsLog, RunMeta};
use postal_model::{Latency, Ratio, Time};
use std::fmt::Write as _;

/// Serializes a log as JSONL (header line + one line per event).
pub fn to_jsonl(log: &ObsLog) -> String {
    let meta = log.meta();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"type\":\"run\",\"engine\":\"{}\",\"n\":{}",
        meta.engine, meta.n
    );
    if let Some(lam) = meta.lambda {
        let _ = write!(out, ",\"lambda\":\"{lam}\"");
    }
    if let Some(m) = meta.messages {
        let _ = write!(out, ",\"messages\":{m}");
    }
    if let Some(d) = meta.dropped_events {
        let _ = write!(out, ",\"dropped\":{d}");
    }
    if let Some(s) = &meta.sample {
        let _ = write!(out, ",\"sample\":\"{s}\"");
    }
    if let Some(c) = meta.ring_capacity {
        let _ = write!(out, ",\"ring_capacity\":{c}");
    }
    out.push_str("}\n");
    for e in log.events() {
        match *e {
            ObsEvent::Send {
                seq,
                src,
                dst,
                start,
                finish,
            } => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"send\",\"seq\":{seq},\"src\":{src},\"dst\":{dst},\
                     \"start\":\"{start}\",\"finish\":\"{finish}\"}}"
                );
            }
            ObsEvent::Recv {
                seq,
                src,
                dst,
                arrival,
                start,
                finish,
                queued,
            } => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"recv\",\"seq\":{seq},\"src\":{src},\"dst\":{dst},\
                     \"arrival\":\"{arrival}\",\"start\":\"{start}\",\"finish\":\"{finish}\",\
                     \"queued\":{queued}}}"
                );
            }
            ObsEvent::Wake { proc, at } => {
                let _ = writeln!(out, "{{\"type\":\"wake\",\"proc\":{proc},\"at\":\"{at}\"}}");
            }
            ObsEvent::Violation {
                seq,
                dst,
                arrival,
                busy_until,
            } => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"violation\",\"seq\":{seq},\"dst\":{dst},\
                     \"arrival\":\"{arrival}\",\"busy_until\":\"{busy_until}\"}}"
                );
            }
            ObsEvent::Drop { seq, src, dst, at } => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"drop\",\"seq\":{seq},\"src\":{src},\"dst\":{dst},\
                     \"at\":\"{at}\"}}"
                );
            }
            ObsEvent::Crash { proc, at } => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"crash\",\"proc\":{proc},\"at\":\"{at}\"}}"
                );
            }
            ObsEvent::Truncated {
                processed,
                limit,
                at,
            } => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"truncated\",\"processed\":{processed},\
                     \"limit\":{limit},\"at\":\"{at}\"}}"
                );
            }
        }
    }
    out
}

/// One parsed flat-object field value.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Str(String),
    Num(String),
    Bool(bool),
}

/// Parses one flat JSON object (`{"key": value, ...}`; values are
/// strings, numbers or booleans).
fn parse_flat(line: &str, lineno: usize) -> Result<Vec<(String, Tok)>, ObsError> {
    let err = |what: &str| ObsError(format!("line {lineno}: {what}"));
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && (bytes[*pos] as char).is_ascii_whitespace() {
            *pos += 1;
        }
    };
    let parse_string = |pos: &mut usize| -> Result<String, ObsError> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err("expected '\"'"));
        }
        *pos += 1;
        let start = *pos;
        while *pos < bytes.len() && bytes[*pos] != b'"' {
            if bytes[*pos] == b'\\' {
                return Err(err("escapes are not used in obs logs"));
            }
            *pos += 1;
        }
        if *pos >= bytes.len() {
            return Err(err("unterminated string"));
        }
        let s = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| err("invalid UTF-8"))?
            .to_string();
        *pos += 1;
        Ok(s)
    };

    skip_ws(&mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err(err("expected '{'"));
    }
    pos += 1;
    let mut fields = Vec::new();
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        pos += 1;
    } else {
        loop {
            skip_ws(&mut pos);
            let key = parse_string(&mut pos)?;
            skip_ws(&mut pos);
            if bytes.get(pos) != Some(&b':') {
                return Err(err("expected ':'"));
            }
            pos += 1;
            skip_ws(&mut pos);
            let val = match bytes.get(pos) {
                Some(b'"') => Tok::Str(parse_string(&mut pos)?),
                Some(b't') if line[pos..].starts_with("true") => {
                    pos += 4;
                    Tok::Bool(true)
                }
                Some(b'f') if line[pos..].starts_with("false") => {
                    pos += 5;
                    Tok::Bool(false)
                }
                Some(&b) if b == b'-' || b.is_ascii_digit() => {
                    let start = pos;
                    while pos < bytes.len()
                        && (bytes[pos].is_ascii_digit()
                            || matches!(bytes[pos], b'-' | b'+' | b'.' | b'e' | b'E'))
                    {
                        pos += 1;
                    }
                    Tok::Num(line[start..pos].to_string())
                }
                _ => return Err(err("expected a string, number or boolean value")),
            };
            fields.push((key, val));
            skip_ws(&mut pos);
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {
                    pos += 1;
                    break;
                }
                _ => return Err(err("expected ',' or '}'")),
            }
        }
    }
    skip_ws(&mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters after object"));
    }
    Ok(fields)
}

struct Fields<'a> {
    fields: Vec<(String, Tok)>,
    lineno: usize,
    marker: std::marker::PhantomData<&'a ()>,
}

impl Fields<'_> {
    fn err(&self, what: String) -> ObsError {
        ObsError(format!("line {}: {}", self.lineno, what))
    }

    fn get(&self, key: &str) -> Result<&Tok, ObsError> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| self.err(format!("missing field {key:?}")))
    }

    fn u64(&self, key: &str) -> Result<u64, ObsError> {
        match self.get(key)? {
            Tok::Num(t) => t
                .parse()
                .map_err(|_| self.err(format!("{key:?} is not a nonnegative integer"))),
            _ => Err(self.err(format!("{key:?} must be a number"))),
        }
    }

    fn u32(&self, key: &str) -> Result<u32, ObsError> {
        u32::try_from(self.u64(key)?).map_err(|_| self.err(format!("{key:?} out of range")))
    }

    fn time(&self, key: &str) -> Result<Time, ObsError> {
        let text = match self.get(key)? {
            Tok::Str(s) => s.as_str(),
            Tok::Num(t) => t.as_str(),
            Tok::Bool(_) => return Err(self.err(format!("{key:?} must be a time"))),
        };
        text.parse::<Ratio>()
            .map(Time)
            .map_err(|_| self.err(format!("{key:?}: cannot parse {text:?} as a rational")))
    }

    fn bool(&self, key: &str) -> Result<bool, ObsError> {
        match self.get(key)? {
            Tok::Bool(b) => Ok(*b),
            _ => Err(self.err(format!("{key:?} must be a boolean"))),
        }
    }

    fn str(&self, key: &str) -> Result<&str, ObsError> {
        match self.get(key)? {
            Tok::Str(s) => Ok(s),
            _ => Err(self.err(format!("{key:?} must be a string"))),
        }
    }
}

/// Incremental line-at-a-time parser for the JSONL log format — the
/// streaming core behind [`from_jsonl`].
///
/// Feed every line of the file (blank lines included, so error line
/// numbers stay correct) to [`JsonlParser::line`] in order; each call
/// returns the event that line carried, if any. Call
/// [`JsonlParser::finish`] at end of input to obtain the run header.
/// Because no event is retained internally, a consumer that folds
/// events as they arrive (e.g. `postal-verify`'s JSONL-to-schedule
/// reduction) processes a log in O(1) parser memory regardless of its
/// length.
#[derive(Debug, Default)]
pub struct JsonlParser {
    meta: Option<RunMeta>,
    lineno: usize,
}

impl JsonlParser {
    /// A parser expecting the `"run"` header on the first non-blank line.
    pub fn new() -> JsonlParser {
        JsonlParser::default()
    }

    /// The run header, once seen.
    pub fn meta(&self) -> Option<&RunMeta> {
        self.meta.as_ref()
    }

    /// Consumes the next line of the log. Returns `Ok(None)` for blank
    /// lines and the `"run"` header, `Ok(Some(event))` for event lines.
    ///
    /// # Errors
    /// [`ObsError`] on syntax errors, a missing, duplicate or misplaced
    /// `"run"` header, or unknown event types.
    pub fn line(&mut self, line: &str) -> Result<Option<ObsEvent>, ObsError> {
        self.lineno += 1;
        let lineno = self.lineno;
        if line.trim().is_empty() {
            return Ok(None);
        }
        let f = Fields {
            fields: parse_flat(line, lineno)?,
            lineno,
            marker: std::marker::PhantomData,
        };
        let kind = f.str("type")?.to_string();
        if kind == "run" {
            if self.meta.is_some() {
                return Err(f.err("duplicate \"run\" header".into()));
            }
            let mut m = RunMeta::new(f.str("engine")?, f.u32("n")?);
            if f.get("lambda").is_ok() {
                let lam = f.time("lambda")?;
                m.lambda = Some(
                    Latency::new(lam.as_ratio())
                        .map_err(|e| f.err(format!("invalid lambda: {e}")))?,
                );
            }
            if f.get("messages").is_ok() {
                m.messages = Some(f.u64("messages")?);
            }
            if f.get("dropped").is_ok() {
                m.dropped_events = Some(f.u64("dropped")?);
            }
            if f.get("sample").is_ok() {
                m.sample = Some(f.str("sample")?.to_string());
            }
            if f.get("ring_capacity").is_ok() {
                m.ring_capacity = Some(f.u64("ring_capacity")?);
            }
            self.meta = Some(m);
            return Ok(None);
        }
        if self.meta.is_none() {
            return Err(f.err("first line must be the \"run\" header".into()));
        }
        let event = match kind.as_str() {
            "send" => ObsEvent::Send {
                seq: f.u64("seq")?,
                src: f.u32("src")?,
                dst: f.u32("dst")?,
                start: f.time("start")?,
                finish: f.time("finish")?,
            },
            "recv" => ObsEvent::Recv {
                seq: f.u64("seq")?,
                src: f.u32("src")?,
                dst: f.u32("dst")?,
                arrival: f.time("arrival")?,
                start: f.time("start")?,
                finish: f.time("finish")?,
                queued: f.bool("queued")?,
            },
            "wake" => ObsEvent::Wake {
                proc: f.u32("proc")?,
                at: f.time("at")?,
            },
            "violation" => ObsEvent::Violation {
                seq: f.u64("seq")?,
                dst: f.u32("dst")?,
                arrival: f.time("arrival")?,
                busy_until: f.time("busy_until")?,
            },
            "drop" => ObsEvent::Drop {
                seq: f.u64("seq")?,
                src: f.u32("src")?,
                dst: f.u32("dst")?,
                at: f.time("at")?,
            },
            "crash" => ObsEvent::Crash {
                proc: f.u32("proc")?,
                at: f.time("at")?,
            },
            "truncated" => ObsEvent::Truncated {
                processed: f.u64("processed")?,
                limit: f.u64("limit")?,
                at: f.time("at")?,
            },
            other => return Err(f.err(format!("unknown event type {other:?}"))),
        };
        Ok(Some(event))
    }

    /// Finishes the stream, yielding the run metadata.
    ///
    /// # Errors
    /// [`ObsError`] when no `"run"` header was ever seen.
    pub fn finish(self) -> Result<RunMeta, ObsError> {
        self.meta
            .ok_or_else(|| ObsError("empty log: no \"run\" header".into()))
    }
}

/// Parses a JSONL log produced by [`to_jsonl`].
///
/// # Errors
/// [`ObsError`] on syntax errors, a missing or misplaced `"run"` header,
/// or unknown event types.
pub fn from_jsonl(text: &str) -> Result<ObsLog, ObsError> {
    let mut parser = JsonlParser::new();
    let mut events = Vec::new();
    for line in text.lines() {
        if let Some(event) = parser.line(line)? {
            events.push(event);
        }
    }
    Ok(ObsLog::new(parser.finish()?, events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> ObsLog {
        ObsLog::new(
            RunMeta::new("event", 3)
                .latency(Latency::from_ratio(5, 2))
                .messages(1),
            vec![
                ObsEvent::Send {
                    seq: 0,
                    src: 0,
                    dst: 1,
                    start: Time::ZERO,
                    finish: Time::ONE,
                },
                ObsEvent::Recv {
                    seq: 0,
                    src: 0,
                    dst: 1,
                    arrival: Time::new(3, 2),
                    start: Time::new(3, 2),
                    finish: Time::new(5, 2),
                    queued: false,
                },
                ObsEvent::Wake {
                    proc: 1,
                    at: Time::new(5, 2),
                },
                ObsEvent::Violation {
                    seq: 1,
                    dst: 2,
                    arrival: Time::from_int(3),
                    busy_until: Time::from_int(4),
                },
                ObsEvent::Drop {
                    seq: 2,
                    src: 1,
                    dst: 2,
                    at: Time::from_int(4),
                },
                ObsEvent::Crash {
                    proc: 2,
                    at: Time::from_int(5),
                },
                ObsEvent::Truncated {
                    processed: 6,
                    limit: 6,
                    at: Time::from_int(5),
                },
            ],
        )
    }

    #[test]
    fn round_trips_every_event_kind() {
        let log = sample_log();
        let text = to_jsonl(&log);
        let again = from_jsonl(&text).unwrap();
        assert_eq!(again, log);
    }

    #[test]
    fn header_carries_metadata() {
        let text = to_jsonl(&sample_log());
        let header = text.lines().next().unwrap();
        assert_eq!(
            header,
            "{\"type\":\"run\",\"engine\":\"event\",\"n\":3,\"lambda\":\"5/2\",\"messages\":1}"
        );
    }

    #[test]
    fn drop_accounting_round_trips_in_the_header() {
        let mut meta = RunMeta::new("event", 4)
            .latency(Latency::from_int(2))
            .dropped(17)
            .sampled("tail,rate:8");
        meta.ring_capacity = Some(1024);
        let log = ObsLog::new(meta, vec![]);
        let text = to_jsonl(&log);
        let header = text.lines().next().unwrap();
        assert_eq!(
            header,
            "{\"type\":\"run\",\"engine\":\"event\",\"n\":4,\"lambda\":\"2\",\
             \"dropped\":17,\"sample\":\"tail,rate:8\",\"ring_capacity\":1024}"
        );
        let again = from_jsonl(&text).unwrap();
        assert_eq!(again.meta().dropped_events, Some(17));
        assert_eq!(again.meta().sample.as_deref(), Some("tail,rate:8"));
        assert_eq!(again.meta().ring_capacity, Some(1024));
        assert!(again.meta().is_partial());
        assert_eq!(&again, &log);
    }

    #[test]
    fn rejects_malformed_logs() {
        assert!(from_jsonl("").is_err());
        assert!(from_jsonl("{\"type\":\"send\"}").is_err(), "missing header");
        assert!(from_jsonl("{\"type\":\"run\",\"engine\":\"e\",\"n\":2}\nnot json").is_err());
        assert!(
            from_jsonl("{\"type\":\"run\",\"engine\":\"e\",\"n\":2}\n{\"type\":\"warp\"}").is_err()
        );
        assert!(
            from_jsonl("{\"type\":\"run\",\"engine\":\"e\",\"n\":2,\"lambda\":\"1/2\"}").is_err(),
            "lambda < 1 must be rejected"
        );
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut text = to_jsonl(&sample_log());
        text.push('\n');
        assert!(from_jsonl(&text).is_ok());
    }

    #[test]
    fn header_without_lambda_parses_but_cannot_schedule() {
        let log = from_jsonl("{\"type\":\"run\",\"engine\":\"e\",\"n\":2}\n").unwrap();
        assert_eq!(log.meta().lambda, None);
        assert!(log.to_schedule().is_err());
    }
}
