//! Prometheus text-exposition export.
//!
//! Postal runs are batch jobs, not long-lived servers, so this emits
//! the [text exposition format] for a one-shot scrape (file-based
//! collection, `node_exporter` textfile collector, or pushgateway).
//! Counter semantics are per-run totals; histograms use the cumulative
//! `_bucket{le=...}` convention.
//!
//! [text exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::log::ObsLog;
use crate::metrics::{Histogram, MetricsSummary};
use std::fmt::Write as _;

fn fmt_f64(x: f64) -> String {
    if x.is_infinite() {
        "+Inf".to_string()
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i128)
    } else {
        format!("{x}")
    }
}

fn histogram(out: &mut String, name: &str, help: &str, h: &Histogram) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (bound, count) in h.cumulative() {
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {count}", fmt_f64(bound));
    }
    let _ = writeln!(out, "{name}_sum {}", fmt_f64(h.sum()));
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Serializes a log's metrics in Prometheus text exposition format.
pub fn to_prometheus(log: &ObsLog) -> String {
    let s = MetricsSummary::from_log(log);
    let meta = log.meta();
    let mut out = String::new();

    let _ = writeln!(out, "# HELP postal_run_info Run metadata as labels.");
    let _ = writeln!(out, "# TYPE postal_run_info gauge");
    let lam = meta
        .lambda
        .map(|l| l.to_string())
        .unwrap_or_else(|| "unknown".into());
    let _ = writeln!(
        out,
        "postal_run_info{{engine=\"{}\",n=\"{}\",lambda=\"{}\",messages=\"{}\",sample=\"{}\"}} 1",
        meta.engine,
        meta.n,
        lam,
        meta.messages
            .map(|m| m.to_string())
            .unwrap_or_else(|| "unknown".into()),
        meta.sample.as_deref().unwrap_or("none"),
    );

    // Honest drop accounting: a scrape of a sampled run must say so.
    let _ = writeln!(
        out,
        "# HELP postal_recorder_dropped_events_total Events the recorder rejected \
         (sampling or ring overflow); counters above are lower bounds when nonzero."
    );
    let _ = writeln!(out, "# TYPE postal_recorder_dropped_events_total counter");
    let _ = writeln!(
        out,
        "postal_recorder_dropped_events_total {}",
        s.dropped_events
    );

    // Ditto for engine truncation: a scrape of an aborted run must say so.
    let _ = writeln!(
        out,
        "# HELP postal_run_truncated Whether the engine hit its event budget \
         and aborted the run; counters above are lower bounds when 1."
    );
    let _ = writeln!(out, "# TYPE postal_run_truncated gauge");
    let _ = writeln!(out, "postal_run_truncated {}", u8::from(s.truncated));

    let _ = writeln!(
        out,
        "# HELP postal_sends_total Messages sent, per processor."
    );
    let _ = writeln!(out, "# TYPE postal_sends_total counter");
    for (p, c) in s.sends.iter().enumerate() {
        let _ = writeln!(out, "postal_sends_total{{proc=\"{p}\"}} {c}");
    }
    let _ = writeln!(
        out,
        "# HELP postal_recvs_total Messages received, per processor."
    );
    let _ = writeln!(out, "# TYPE postal_recvs_total counter");
    for (p, c) in s.recvs.iter().enumerate() {
        let _ = writeln!(out, "postal_recvs_total{{proc=\"{p}\"}} {c}");
    }

    let _ = writeln!(
        out,
        "# HELP postal_port_busy_units Port busy time in model units."
    );
    let _ = writeln!(out, "# TYPE postal_port_busy_units gauge");
    for p in 0..s.n {
        let _ = writeln!(
            out,
            "postal_port_busy_units{{proc=\"{p}\",port=\"out\"}} {}",
            fmt_f64(s.out_busy[p].to_f64())
        );
        let _ = writeln!(
            out,
            "postal_port_busy_units{{proc=\"{p}\",port=\"in\"}} {}",
            fmt_f64(s.in_busy[p].to_f64())
        );
    }

    for (name, help, value) in [
        (
            "postal_queued_recvs_total",
            "Receives delayed by input-port contention.",
            s.queued_recvs,
        ),
        (
            "postal_violations_total",
            "Strict-mode receive-window overlaps.",
            s.violations,
        ),
        (
            "postal_drops_total",
            "Messages dropped by fault injection.",
            s.drops,
        ),
        (
            "postal_crashes_total",
            "Processor crashes injected.",
            s.crashes,
        ),
        ("postal_wakes_total", "Timer wake-ups fired.", s.wakes),
    ] {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }

    let _ = writeln!(
        out,
        "# HELP postal_completion_units Model time at which the last receive finished."
    );
    let _ = writeln!(out, "# TYPE postal_completion_units gauge");
    let _ = writeln!(
        out,
        "postal_completion_units {}",
        fmt_f64(s.completion.to_f64())
    );

    let _ = writeln!(
        out,
        "# HELP postal_idle_out_units Output-port idle time summed over informed processors."
    );
    let _ = writeln!(out, "# TYPE postal_idle_out_units gauge");
    let _ = writeln!(out, "postal_idle_out_units {}", fmt_f64(s.idle_out_units()));

    histogram(
        &mut out,
        "postal_message_latency_units",
        "End-to-end message latency (recv finish minus send start), model units.",
        &s.latency,
    );
    histogram(
        &mut out,
        "postal_queue_delay_units",
        "Input-port queueing delay (recv start minus arrival), model units.",
        &s.queue_delay,
    );

    // Streaming-sketch percentiles (summary-style quantile gauges).
    for (name, help, value_of) in [
        (
            "postal_message_latency_quantile_units",
            "End-to-end latency quantiles from the streaming log-bucketed sketch.",
            &(|q| s.latency_quantile(q)) as &dyn Fn(f64) -> f64,
        ),
        (
            "postal_queue_delay_quantile_units",
            "Queueing-delay quantiles from the streaming sketch.",
            &|q| s.queue_delay_quantile(q),
        ),
        (
            "postal_out_port_utilization_quantile",
            "Per-processor output-port utilization quantiles across the fleet.",
            &|q| s.out_utilization_quantile(q),
        ),
    ] {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        for q in [0.5, 0.9, 0.99] {
            let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {}", fmt_f64(value_of(q)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsEvent;
    use crate::log::RunMeta;
    use postal_model::{Latency, Time};

    #[test]
    fn exposition_has_counters_gauges_and_histograms() {
        let log = ObsLog::new(
            RunMeta::new("event", 2)
                .latency(Latency::from_int(2))
                .messages(1),
            vec![
                ObsEvent::Send {
                    seq: 0,
                    src: 0,
                    dst: 1,
                    start: Time::ZERO,
                    finish: Time::ONE,
                },
                ObsEvent::Recv {
                    seq: 0,
                    src: 0,
                    dst: 1,
                    arrival: Time::ONE,
                    start: Time::ONE,
                    finish: Time::from_int(2),
                    queued: false,
                },
            ],
        );
        let text = to_prometheus(&log);
        assert!(text.contains(
            "postal_run_info{engine=\"event\",n=\"2\",lambda=\"2\",messages=\"1\",sample=\"none\"} 1"
        ));
        assert!(text.contains("postal_recorder_dropped_events_total 0"));
        assert!(text.contains("postal_message_latency_quantile_units{quantile=\"0.99\"}"));
        assert!(text.contains("postal_out_port_utilization_quantile{quantile=\"0.5\"}"));
        assert!(text.contains("postal_sends_total{proc=\"0\"} 1"));
        assert!(text.contains("postal_recvs_total{proc=\"1\"} 1"));
        assert!(text.contains("postal_port_busy_units{proc=\"0\",port=\"out\"} 1"));
        assert!(text.contains("postal_completion_units 2"));
        assert!(text.contains("postal_message_latency_units_bucket{le=\"2\"} 1"));
        assert!(text.contains("postal_message_latency_units_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("postal_message_latency_units_count 1"));
        assert!(text.contains("postal_violations_total 0"));
        // Every line is either a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed exposition line: {line:?}"
            );
        }
    }

    #[test]
    fn truncated_runs_expose_the_abort_flag() {
        let log = ObsLog::new(
            RunMeta::new("event", 2).latency(Latency::from_int(2)),
            vec![ObsEvent::Truncated {
                processed: 11,
                limit: 10,
                at: Time::from_int(3),
            }],
        );
        let text = to_prometheus(&log);
        assert!(text.contains("postal_run_truncated 1"), "{text}");
        let complete = ObsLog::new(
            RunMeta::new("event", 2).latency(Latency::from_int(2)),
            vec![],
        );
        assert!(
            to_prometheus(&complete).contains("postal_run_truncated 0"),
            "complete runs must scrape as untruncated"
        );
    }

    #[test]
    fn sampled_runs_expose_their_drop_count() {
        let log = ObsLog::new(
            RunMeta::new("event", 2)
                .latency(Latency::from_int(2))
                .dropped(42)
                .sampled("tail,rate:8"),
            vec![],
        );
        let text = to_prometheus(&log);
        assert!(
            text.contains("postal_recorder_dropped_events_total 42"),
            "{text}"
        );
        assert!(text.contains("sample=\"tail,rate:8\""), "{text}");
    }
}
