//! Inline linting: feeding the streaming lint engine straight from an
//! [`ObsEvent`] stream, with no materialized trace in between.
//!
//! [`LintStream`] adapts an event stream to
//! [`postal_model::lint::StreamingLint`]: it extracts the send facts
//! the lint passes consume and drives the engine's watermark from the
//! stream's notion of time. [`LintSink`] wraps a `LintStream` in a
//! [`Recorder`] so a simulation can lint itself *while it runs* —
//! `Simulation::observe(&sink)` plus a trace-discarding run mode is a
//! full `P0001`–`P0007` report in O(n) memory at any event count.
//!
//! ## Watermark policy
//!
//! The engine finalizes a pending send once the watermark strictly
//! passes its start time, and relies on the caller never to advance the
//! watermark past a send it has yet to observe. What "the stream's
//! notion of time" means differs by source, so [`LintStream`] has two
//! orderings:
//!
//! * [`StreamOrdering::Live`] — the stream comes from a running engine,
//!   in *scheduling* order: a `Send` event carries a **future** start
//!   time (the output port books ahead), so send timestamps must never
//!   drive the watermark, and neither may `Crash` (fault plans are
//!   announced up front, before the clock reaches them). A queued
//!   `Recv`'s start can likewise lie ahead of the clock, so receives
//!   advance the watermark by their *arrival* — the instant the engine
//!   processed the delivery. Every other event (`Wake`, `Drop`,
//!   `Violation`, `Truncated`) is emitted exactly when the clock
//!   reaches its timestamp and advances the watermark as-is. Assumes a
//!   single-threaded feed (the discrete-event engines); a threaded run
//!   should record into a ring and replay the sorted snapshot instead.
//! * [`StreamOrdering::SortedLog`] — the stream is sorted by timestamp
//!   (a JSONL log, or a recorder snapshot's canonical order): *every*
//!   event's [`ObsEvent::at`] may drive the watermark, including
//!   `Send`s, because a send's `at` is its own start time and
//!   finalization is strict-below. A genuinely out-of-order log trips
//!   the engine's [`out_of_order`](LintStream::out_of_order) flag.
//!
//! Under either policy a `Truncated` event is also latched into
//! [`LintStream::truncated`] so the caller can apply the usual
//! absence-lint downgrades to the finished report.

use crate::event::ObsEvent;
use crate::recorder::Recorder;
use postal_model::lint::{Diagnostic, LintOptions, StreamingLint};
use postal_model::Latency;
use std::sync::Mutex;

/// How the event stream feeding a [`LintStream`] is ordered. See the
/// [module docs](self) for the watermark policy each implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOrdering {
    /// Events arrive in engine emission order: sends are announced
    /// ahead of their start times.
    Live,
    /// Events arrive sorted by [`ObsEvent::at`].
    SortedLog,
}

/// An [`ObsEvent`]-to-lint adapter: push events, collect the finished
/// `P0001`–`P0007` report. Construct one per run.
pub struct LintStream {
    inner: StreamingLint,
    ordering: StreamOrdering,
    truncated: bool,
}

impl LintStream {
    /// Creates the adapter for a run over `MPS(n, λ)`, linted under
    /// `opts`, fed in `ordering` order.
    pub fn new(
        n: u32,
        latency: Latency,
        opts: LintOptions,
        ordering: StreamOrdering,
    ) -> LintStream {
        LintStream {
            inner: StreamingLint::new(n, latency, opts),
            ordering,
            truncated: false,
        }
    }

    /// Like [`LintStream::new`], but lints against a sparse
    /// communication graph, adding the topology codes `P0017`–`P0019`.
    /// The complete graph yields the exact [`LintStream::new`] report.
    pub fn with_topology(
        n: u32,
        latency: Latency,
        opts: LintOptions,
        ordering: StreamOrdering,
        topology: &postal_model::Topology,
    ) -> LintStream {
        LintStream {
            inner: StreamingLint::with_topology(n, latency, opts, topology),
            ordering,
            truncated: false,
        }
    }

    /// Consumes one event: advances the watermark per the ordering's
    /// policy and forwards send facts to the lint engine.
    pub fn on_event(&mut self, ev: &ObsEvent) {
        match self.ordering {
            StreamOrdering::SortedLog => self.inner.advance_watermark(ev.at()),
            // Live feeds announce sends (and crash plans) ahead of
            // time; everything else is emitted at the current clock. A
            // queued receive's `at()` (its start) can also lie ahead of
            // the clock, so its arrival — the moment the engine
            // processed the delivery — drives the watermark instead.
            StreamOrdering::Live => match *ev {
                ObsEvent::Send { .. } | ObsEvent::Crash { .. } => {}
                ObsEvent::Recv { arrival, .. } => self.inner.advance_watermark(arrival),
                _ => self.inner.advance_watermark(ev.at()),
            },
        }
        match *ev {
            ObsEvent::Send {
                src, dst, start, ..
            } => self.inner.observe_send(src, dst, start),
            ObsEvent::Truncated { .. } => self.truncated = true,
            _ => {}
        }
    }

    /// Whether a `Truncated` event was seen: the report's absence lints
    /// (`P0003`, `P0005`) should be downgraded.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Whether a send was observed after the watermark had passed its
    /// start: the report is unreliable and batch mode should be used.
    pub fn out_of_order(&self) -> bool {
        self.inner.out_of_order()
    }

    /// Currently reserved linter heap bytes, by container capacity.
    pub fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    /// Completion time over every send observed so far — the instant
    /// the last delivery lands, matching `Schedule::completion`.
    pub fn completion(&self) -> postal_model::Time {
        self.inner.index().completion()
    }

    /// Well-formed sends observed so far.
    pub fn sends_observed(&self) -> u64 {
        self.inner.index().sends_observed()
    }

    /// Finalizes every pending send and returns the lint report, in the
    /// batch engine's report order.
    pub fn finish(self) -> Vec<Diagnostic> {
        self.inner.finish()
    }
}

/// A [`Recorder`] that lints the run as it happens instead of storing
/// it: attach with `Simulation::observe(&sink)`, then take the report
/// with [`LintSink::finish`] after the run returns.
///
/// The stream is assumed [`StreamOrdering::Live`] unless constructed
/// otherwise; for threaded feeds record into a
/// [`RingRecorder`](crate::RingRecorder) and replay the sorted snapshot
/// through a [`LintStream`] instead — a live watermark is only sound
/// for a single-threaded engine clock.
pub struct LintSink {
    inner: Mutex<LintStream>,
}

impl LintSink {
    /// Creates a sink linting a live run over `MPS(n, λ)` under `opts`.
    pub fn new(n: u32, latency: Latency, opts: LintOptions) -> LintSink {
        LintSink::with_ordering(n, latency, opts, StreamOrdering::Live)
    }

    /// Creates a sink with an explicit stream ordering.
    pub fn with_ordering(
        n: u32,
        latency: Latency,
        opts: LintOptions,
        ordering: StreamOrdering,
    ) -> LintSink {
        LintSink {
            inner: Mutex::new(LintStream::new(n, latency, opts, ordering)),
        }
    }

    /// Creates a sink linting a live run against a sparse communication
    /// graph (topology codes `P0017`–`P0019` included).
    pub fn with_topology(
        n: u32,
        latency: Latency,
        opts: LintOptions,
        topology: &postal_model::Topology,
    ) -> LintSink {
        LintSink {
            inner: Mutex::new(LintStream::with_topology(
                n,
                latency,
                opts,
                StreamOrdering::Live,
                topology,
            )),
        }
    }

    /// Stops recording and hands back the underlying [`LintStream`]
    /// (call its [`finish`](LintStream::finish) for the report). A
    /// poisoned lock is recovered — lint state is valid after every
    /// `on_event`, so a panicking feeder loses nothing.
    pub fn finish(self) -> LintStream {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl Recorder for LintSink {
    fn record(&self, event: ObsEvent) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .on_event(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::lint::lint_schedule;
    use postal_model::schedule::{Schedule, TimedSend};
    use postal_model::Time;

    fn lam() -> Latency {
        Latency::from_int(2)
    }

    /// A hand-rolled live feed for an optimal BCAST(3): sends announced
    /// at issue time (before their starts), receives at completion.
    fn live_feed() -> Vec<ObsEvent> {
        let t = Time::from_int;
        vec![
            ObsEvent::Send {
                seq: 0,
                src: 0,
                dst: 1,
                start: t(0),
                finish: t(1),
            },
            ObsEvent::Send {
                seq: 1,
                src: 0,
                dst: 2,
                start: t(1),
                finish: t(2),
            },
            ObsEvent::Recv {
                seq: 0,
                src: 0,
                dst: 1,
                arrival: t(1),
                start: t(1),
                finish: t(2),
                queued: false,
            },
            ObsEvent::Recv {
                seq: 1,
                src: 0,
                dst: 2,
                arrival: t(2),
                start: t(2),
                finish: t(3),
                queued: false,
            },
        ]
    }

    fn batch_report() -> Vec<Diagnostic> {
        let schedule = Schedule::new(
            3,
            lam(),
            vec![
                TimedSend {
                    src: 0,
                    dst: 1,
                    send_start: Time::ZERO,
                },
                TimedSend {
                    src: 0,
                    dst: 2,
                    send_start: Time::ONE,
                },
            ],
        );
        lint_schedule(&schedule, &LintOptions::default())
    }

    #[test]
    fn live_feed_matches_batch() {
        let mut stream = LintStream::new(3, lam(), LintOptions::default(), StreamOrdering::Live);
        for ev in live_feed() {
            stream.on_event(&ev);
        }
        assert!(!stream.out_of_order());
        assert!(!stream.truncated());
        assert_eq!(stream.finish(), batch_report());
    }

    #[test]
    fn sorted_log_feed_matches_batch() {
        let mut events = live_feed();
        events.sort_by_key(|e| e.at());
        let mut stream =
            LintStream::new(3, lam(), LintOptions::default(), StreamOrdering::SortedLog);
        for ev in &events {
            stream.on_event(ev);
        }
        assert!(!stream.out_of_order());
        assert_eq!(stream.finish(), batch_report());
    }

    #[test]
    fn sink_records_and_finishes() {
        let sink = LintSink::new(3, lam(), LintOptions::default());
        for ev in live_feed() {
            sink.record(ev);
        }
        assert_eq!(sink.finish().finish(), batch_report());
    }

    #[test]
    fn truncated_event_is_latched() {
        let mut stream = LintStream::new(3, lam(), LintOptions::default(), StreamOrdering::Live);
        stream.on_event(&ObsEvent::Truncated {
            processed: 7,
            limit: 7,
            at: Time::from_int(1),
        });
        assert!(stream.truncated());
    }
}
