//! Counters and histograms summarizing an observed run.

use crate::event::ObsEvent;
use crate::hist::StreamingHistogram;
use crate::log::{port_busy_times, ObsLog};
use postal_model::Time;
use std::collections::HashMap;

/// A fixed-bucket histogram over model-time durations (in units).
///
/// Buckets are cumulative-compatible: `counts[i]` is the number of
/// samples `≤ bounds[i]`, with an implicit `+Inf` bucket at the end —
/// exactly the shape Prometheus `_bucket{le=...}` series expect.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

/// Default bucket boundaries, in model units: sub-unit through 64 units.
pub const DEFAULT_BOUNDS: [f64; 9] = [0.5, 1.0, 2.0, 3.0, 4.0, 8.0, 16.0, 32.0, 64.0];

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new(&DEFAULT_BOUNDS)
    }
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket bounds (an
    /// implicit `+Inf` bucket is always appended).
    pub fn new(bounds: &[f64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            total: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.total += 1;
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Cumulative `(upper_bound, count_le)` pairs ending with the
    /// `+Inf` bucket — ready for Prometheus exposition.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

/// Aggregated counters for one run, computed from an [`ObsLog`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSummary {
    /// Processor count.
    pub n: usize,
    /// Messages sent, per processor.
    pub sends: Vec<u64>,
    /// Messages received, per processor.
    pub recvs: Vec<u64>,
    /// Receives delayed by input-port contention.
    pub queued_recvs: u64,
    /// Strict-mode port violations.
    pub violations: u64,
    /// Messages dropped by fault injection.
    pub drops: u64,
    /// Processor crashes injected.
    pub crashes: u64,
    /// Timer wake-ups fired.
    pub wakes: u64,
    /// Output-port busy time, per processor.
    pub out_busy: Vec<Time>,
    /// Input-port busy time, per processor.
    pub in_busy: Vec<Time>,
    /// When the last receive finished.
    pub completion: Time,
    /// End-to-end message latency samples (`recv_finish − send_start`),
    /// which equal λ exactly on conflict-free strict runs and exceed it
    /// under queued-port contention or jitter.
    pub latency: Histogram,
    /// Queueing delay samples (`recv_start − arrival`); all-zero on any
    /// schedule the paper's algorithms produce.
    pub queue_delay: Histogram,
    /// Streaming log-bucketed latency sketch: p50/p90/p99 in O(buckets)
    /// memory, never from a stored event vector. Same samples as
    /// [`MetricsSummary::latency`].
    pub latency_sketch: StreamingHistogram,
    /// Streaming queue-delay sketch (same samples as
    /// [`MetricsSummary::queue_delay`]).
    pub queue_delay_sketch: StreamingHistogram,
    /// Streaming sketch of per-processor *output*-port utilization
    /// fractions over the completion window — percentiles across the
    /// fleet ("the p99 port is 80% busy"), not across time.
    pub out_utilization_sketch: StreamingHistogram,
    /// Events the recorder dropped while producing the log
    /// ([`crate::RunMeta::dropped_events`]); when > 0 every count above
    /// is a lower bound, not a total.
    pub dropped_events: u64,
    /// Whether the engine hit its event budget and stopped early
    /// ([`ObsEvent::Truncated`] present in the log); when `true` the run
    /// never finished and every count above is a lower bound.
    pub truncated: bool,
    /// The sampling policy that shaped the log, when one was applied.
    pub sample: Option<String>,
}

impl MetricsSummary {
    /// Computes every counter and histogram from a log.
    pub fn from_log(log: &ObsLog) -> MetricsSummary {
        let n = log.meta().n as usize;
        let mut s = MetricsSummary {
            n,
            sends: vec![0; n],
            recvs: vec![0; n],
            queued_recvs: 0,
            violations: 0,
            drops: 0,
            crashes: 0,
            wakes: 0,
            out_busy: vec![Time::ZERO; n],
            in_busy: vec![Time::ZERO; n],
            completion: log.completion_time(),
            latency: Histogram::default(),
            queue_delay: Histogram::default(),
            latency_sketch: StreamingHistogram::new(),
            queue_delay_sketch: StreamingHistogram::new(),
            out_utilization_sketch: StreamingHistogram::new(),
            dropped_events: log.meta().dropped_events.unwrap_or(0),
            truncated: false,
            sample: log.meta().sample.clone(),
        };
        let mut send_starts: HashMap<u64, Time> = HashMap::new();
        for e in log.events() {
            match *e {
                ObsEvent::Send {
                    seq, src, start, ..
                } => {
                    if (src as usize) < n {
                        s.sends[src as usize] += 1;
                    }
                    send_starts.insert(seq, start);
                }
                ObsEvent::Recv {
                    seq,
                    dst,
                    arrival,
                    start,
                    finish,
                    queued,
                    ..
                } => {
                    if (dst as usize) < n {
                        s.recvs[dst as usize] += 1;
                    }
                    s.queued_recvs += u64::from(queued);
                    if let Some(&sent) = send_starts.get(&seq) {
                        let sample = (finish - sent).to_f64();
                        s.latency.observe(sample);
                        s.latency_sketch.observe(sample);
                    }
                    let delay = (start - arrival).to_f64();
                    s.queue_delay.observe(delay);
                    s.queue_delay_sketch.observe(delay);
                }
                ObsEvent::Violation { .. } => s.violations += 1,
                ObsEvent::Drop { .. } => s.drops += 1,
                ObsEvent::Crash { .. } => s.crashes += 1,
                ObsEvent::Wake { .. } => s.wakes += 1,
                ObsEvent::Truncated { .. } => s.truncated = true,
            }
        }
        let busy = port_busy_times(n, &log.port_spans());
        for (i, (out, inn)) in busy.into_iter().enumerate() {
            s.out_busy[i] = out;
            s.in_busy[i] = inn;
        }
        for p in 0..n {
            let (out, _) = s.utilization(p);
            s.out_utilization_sketch.observe(out);
        }
        s
    }

    /// The `q`-quantile of end-to-end message latency, from the
    /// streaming sketch (within one log-bucket of exact).
    pub fn latency_quantile(&self, q: f64) -> f64 {
        self.latency_sketch.quantile(q)
    }

    /// The `q`-quantile of input-port queueing delay.
    pub fn queue_delay_quantile(&self, q: f64) -> f64 {
        self.queue_delay_sketch.quantile(q)
    }

    /// The `q`-quantile of per-processor output-port utilization.
    pub fn out_utilization_quantile(&self, q: f64) -> f64 {
        self.out_utilization_sketch.quantile(q)
    }

    /// Whether the summarized log was a partial trace — sampled by the
    /// recorder or truncated by the engine's event budget; when true
    /// every total is a lower bound on the run's real activity.
    pub fn is_partial(&self) -> bool {
        self.dropped_events > 0 || self.truncated
    }

    /// Port utilization fractions `(out, in)` for one processor over
    /// the run's completion window (0 when the run is empty).
    pub fn utilization(&self, proc: usize) -> (f64, f64) {
        let horizon = self.completion.to_f64();
        if horizon <= 0.0 {
            return (0.0, 0.0);
        }
        (
            self.out_busy[proc].to_f64() / horizon,
            self.in_busy[proc].to_f64() / horizon,
        )
    }

    /// Total messages sent.
    pub fn total_sends(&self) -> u64 {
        self.sends.iter().sum()
    }

    /// Total messages delivered.
    pub fn total_recvs(&self) -> u64 {
        self.recvs.iter().sum()
    }

    /// Aggregate output-port idle time across processors that sent at
    /// least once, measured over the completion window. This is the
    /// quantity the lint code `P0006` (idle-port waste) localizes to
    /// specific intervals; here it is a single scalar for dashboards.
    pub fn idle_out_units(&self) -> f64 {
        let horizon = self.completion.to_f64();
        (0..self.n)
            .filter(|&i| self.sends[i] > 0)
            .map(|i| (horizon - self.out_busy[i].to_f64()).max(0.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{ObsLog, RunMeta};
    use postal_model::Latency;

    fn sample_log() -> ObsLog {
        let lam = Latency::from_int(2);
        let ev = |seq: u64, src: u32, dst: u32, at: i128| {
            let start = Time::from_int(at);
            vec![
                ObsEvent::Send {
                    seq,
                    src,
                    dst,
                    start,
                    finish: start + Time::ONE,
                },
                ObsEvent::Recv {
                    seq,
                    src,
                    dst,
                    arrival: start + Time::ONE,
                    start: start + Time::ONE,
                    finish: start + Time::from_int(2),
                    queued: false,
                },
            ]
        };
        let mut events = ev(0, 0, 1, 0);
        events.extend(ev(1, 0, 2, 1));
        ObsLog::new(RunMeta::new("event", 3).latency(lam).messages(1), events)
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(2.0);
        h.observe(10.0);
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 12.5 / 3.0).abs() < 1e-12);
        assert_eq!(h.cumulative(), vec![(1.0, 1), (2.0, 2), (f64::INFINITY, 3)]);
    }

    #[test]
    fn summary_counts_everything() {
        let s = MetricsSummary::from_log(&sample_log());
        assert_eq!(s.total_sends(), 2);
        assert_eq!(s.total_recvs(), 2);
        assert_eq!(s.sends, vec![2, 0, 0]);
        assert_eq!(s.recvs, vec![0, 1, 1]);
        assert_eq!(s.violations, 0);
        assert_eq!(s.completion, Time::from_int(3));
        // Both messages took exactly λ = 2 units end to end.
        assert_eq!(s.latency.count(), 2);
        assert!((s.latency.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.queue_delay.count(), 2);
        assert_eq!(s.queue_delay.sum(), 0.0);
    }

    #[test]
    fn streaming_sketches_agree_with_exact_histograms() {
        let s = MetricsSummary::from_log(&sample_log());
        assert_eq!(s.latency_sketch.count(), s.latency.count());
        assert!((s.latency_sketch.mean() - s.latency.mean()).abs() < 1e-12);
        // Both messages took exactly 2 units; every quantile is in the
        // bucket containing 2.0 (≤ 1/64 relative error).
        for q in [0.5, 0.9, 0.99] {
            let (lo, hi) = s.latency_sketch.quantile_bounds(q);
            assert!(lo <= 2.0 && 2.0 < hi, "q={q}: [{lo}, {hi})");
            assert!((s.latency_quantile(q) - 2.0).abs() <= 2.0 / 64.0);
        }
        assert_eq!(s.queue_delay_quantile(0.99), 0.0);
        assert_eq!(s.out_utilization_sketch.count(), 3);
        assert_eq!(s.dropped_events, 0);
        assert!(!s.is_partial());
    }

    #[test]
    fn dropped_events_flow_from_meta() {
        let lam = Latency::from_int(2);
        let log = ObsLog::new(
            RunMeta::new("event", 2)
                .latency(lam)
                .dropped(5)
                .sampled("tail"),
            vec![],
        );
        let s = MetricsSummary::from_log(&log);
        assert_eq!(s.dropped_events, 5);
        assert_eq!(s.sample.as_deref(), Some("tail"));
        assert!(s.is_partial());
    }

    #[test]
    fn truncation_marks_the_summary_partial() {
        let mut events = sample_log().events().to_vec();
        events.push(ObsEvent::Truncated {
            processed: 5,
            limit: 4,
            at: Time::from_int(3),
        });
        let log = ObsLog::new(
            RunMeta::new("event", 3).latency(Latency::from_int(2)),
            events,
        );
        let s = MetricsSummary::from_log(&log);
        assert!(s.truncated);
        assert_eq!(s.dropped_events, 0);
        assert!(s.is_partial(), "a truncated run is a partial run");
    }

    #[test]
    fn utilization_and_idle_waste() {
        let s = MetricsSummary::from_log(&sample_log());
        let (out0, in0) = s.utilization(0);
        assert!((out0 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(in0, 0.0);
        // p0 is the only sender; idle 1 of 3 units.
        assert!((s.idle_out_units() - 1.0).abs() < 1e-12);
    }
}
