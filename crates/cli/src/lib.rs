//! Implementation of the `postal` command-line tool.
//!
//! All logic lives in this library so it is unit-testable; `main.rs` is
//! a thin shim. Argument parsing is hand-rolled (three positional
//! arguments per subcommand at most — a dependency would be heavier than
//! the code).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use postal_algos::ext::{combine, gossip, scatter};
use postal_algos::{
    run_bcast, run_dtree, run_pack, run_pipeline, run_repeat, run_repeat_greedy, tree_to_svg,
    BroadcastTree, SvgOptions, ToSchedule,
};
use postal_bench::optimal::{optimal_multi_broadcast_with, OrderPolicy, SearchResult};
use postal_model::{runtimes, GenFib, Latency, Time};
use postal_sim::gantt::render_gantt;
use std::fmt::Write as _;

/// CLI failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Wrong arguments; the message is the usage text.
    Usage(String),
    /// Arguments parsed but invalid (e.g. λ < 1).
    Invalid(String),
    /// `postal lint` found diagnostics at or above the `--deny` level;
    /// the message is the rendered report.
    LintFailed(String),
}

const USAGE: &str =
    "postal — explore broadcasting in the postal model (Bar-Noy & Kipnis, SPAA 1992)

USAGE:
    postal tree <n> <lambda>                 optimal broadcast tree (Figure 1 style)
    postal gantt <n> <lambda>                BCAST schedule as an ASCII timeline
    postal fib <lambda> <max_t>              table of F_λ(t) and f_λ(n) landmarks
    postal plan <n> <m> <lambda>             compare all algorithms, recommend one
    postal simulate <algo> <n> <m> <lambda>  run one algorithm on the simulator
                                             (algo: bcast|repeat|repeat-greedy|pack|
                                              pipeline|line|binary|star|dtree:<d>|
                                              combine|gossip|scatter)
    postal svg <n> <lambda>                  broadcast tree as an SVG document (stdout)
    postal optimal <n> <m> <lambda>          exact optimum via exhaustive search
                                             (tiny instances only)
    postal lint <schedule.json>              static analysis: lint codes P0001-P0007
           [--deny warn|error] [--format text|json] [--m N]
                                             exits nonzero when any diagnostic reaches
                                             the --deny level (default: error)

<lambda> accepts integers, fractions and decimals: 3, 5/2, 2.5";

/// Entry point: parses `args` and returns the text to print.
///
/// # Errors
/// [`CliError::Usage`] for malformed invocations, [`CliError::Invalid`]
/// for well-formed but meaningless ones.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let usage = || CliError::Usage(USAGE.to_string());
    match args.first().map(String::as_str) {
        Some("tree") => {
            let (n, lam) = parse_n_lambda(&args[1..])?;
            let tree = BroadcastTree::build(n as u64, lam);
            let schedule = tree.to_schedule();
            postal_verify::assert_broadcast_clean(&schedule, "tree");
            let mut out = String::new();
            let _ = writeln!(
                out,
                "Optimal broadcast tree for MPS({n}, {lam}) — completes at t = {} = f_λ({n})\n",
                tree.completion()
            );
            out.push_str(&tree.render());
            Ok(out)
        }
        Some("gantt") => {
            let (n, lam) = parse_n_lambda(&args[1..])?;
            let report = run_bcast(n, lam);
            report.assert_model_clean();
            let cells = lam.ticks_per_unit().clamp(1, 4) as u32;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "BCAST schedule for MPS({n}, {lam}): S = sending, R = receiving, B = both\n"
            );
            out.push_str(&render_gantt(&report.trace, n, cells));
            Ok(out)
        }
        Some("fib") => {
            let lam = parse_lambda(args.get(1).ok_or_else(usage)?)?;
            let max_t: i128 = args
                .get(2)
                .ok_or_else(usage)?
                .parse()
                .map_err(|_| CliError::Invalid("max_t must be an integer".into()))?;
            if !(0..=10_000).contains(&max_t) {
                return Err(CliError::Invalid("max_t must be in 0..=10000".into()));
            }
            let g = GenFib::new(lam);
            let mut out = String::new();
            let _ = writeln!(
                out,
                "F_λ(t) for λ = {lam} (max processors reachable in t units):"
            );
            for t in 0..=max_t {
                let _ = writeln!(out, "  F({t:>4}) = {}", g.value(Time::from_int(t)));
            }
            let _ = writeln!(out, "\nf_λ(n) landmarks (optimal broadcast times):");
            for n in [2u128, 10, 100, 1000, 1_000_000] {
                let _ = writeln!(out, "  f({n:>8}) = {}", g.index(n));
            }
            Ok(out)
        }
        Some("svg") => {
            let (n, lam) = parse_n_lambda(&args[1..])?;
            if n > 4096 {
                return Err(CliError::Invalid("svg rendering capped at n ≤ 4096".into()));
            }
            let tree = BroadcastTree::build(n as u64, lam);
            Ok(tree_to_svg(&tree, SvgOptions::default()))
        }
        Some("optimal") => {
            let (n, m, lam) = parse_n_m_lambda(&args[1..])?;
            if n > 6 || m > 4 {
                return Err(CliError::Invalid(
                    "exhaustive search is exponential; use n ≤ 6, m ≤ 4".into(),
                ));
            }
            let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam);
            let horizon = runtimes::pipeline_time(n as u128, m as u64, lam)
                .min(runtimes::repeat_time(n as u128, m as u64, lam))
                .min(runtimes::pack_time(n as u128, m as u64, lam));
            let mut out = String::new();
            for (label, policy) in [
                ("any order       ", OrderPolicy::Any),
                ("order-preserving", OrderPolicy::Preserving),
            ] {
                let res = optimal_multi_broadcast_with(n, m, lam, horizon, 50_000_000, policy);
                let text = match res {
                    SearchResult::Optimal(t) => format!("{t}"),
                    SearchResult::BudgetExhausted => "search budget exhausted".into(),
                    SearchResult::HorizonExceeded => {
                        format!("{horizon} (= best known algorithm; nothing better exists)")
                    }
                };
                let _ = writeln!(out, "optimum ({label}): {text}");
            }
            let _ = writeln!(out, "Lemma 8 lower bound:        {lb}");
            Ok(out)
        }
        Some("plan") => {
            let (n, m, lam) = parse_n_m_lambda(&args[1..])?;
            Ok(plan(n as u128, m as u64, lam))
        }
        Some("simulate") => {
            let algo = args.get(1).ok_or_else(usage)?.as_str();
            let (n, m, lam) = parse_n_m_lambda(&args[2..])?;
            simulate(algo, n, m, lam)
        }
        Some("lint") => lint(&args[1..]),
        _ => Err(usage()),
    }
}

fn lint(args: &[String]) -> Result<String, CliError> {
    use postal_verify::{json, lint_schedule, render, LintOptions, Severity};
    let mut file: Option<&str> = None;
    let mut deny = Severity::Error;
    let mut as_json = false;
    let mut m_override: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: usize| {
            args.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| CliError::Invalid(format!("{} needs a value", args[i])))
        };
        match args[i].as_str() {
            "--deny" => {
                deny = match flag_value(i)? {
                    "warn" => Severity::Warn,
                    "error" => Severity::Error,
                    other => {
                        return Err(CliError::Invalid(format!(
                            "--deny must be 'warn' or 'error', got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            "--format" => {
                as_json = match flag_value(i)? {
                    "json" => true,
                    "text" => false,
                    other => {
                        return Err(CliError::Invalid(format!(
                            "--format must be 'text' or 'json', got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            "--m" => {
                let m: u64 = flag_value(i)?
                    .parse()
                    .map_err(|_| CliError::Invalid("--m must be a positive integer".into()))?;
                if m == 0 {
                    return Err(CliError::Invalid("--m must be ≥ 1".into()));
                }
                m_override = Some(m);
                i += 2;
            }
            s if s.starts_with('-') => {
                return Err(CliError::Invalid(format!("unknown lint flag {s:?}")));
            }
            s if file.is_none() => {
                file = Some(s);
                i += 1;
            }
            s => {
                return Err(CliError::Invalid(format!(
                    "unexpected extra argument {s:?}"
                )));
            }
        }
    }
    let path = file.ok_or_else(|| CliError::Usage(USAGE.to_string()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Invalid(format!("cannot read {path}: {e}")))?;
    let parsed =
        json::parse_schedule(&text).map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
    let messages = m_override.or(parsed.messages).unwrap_or(1);
    let diags = lint_schedule(&parsed.schedule, &LintOptions::broadcast_of(messages));
    let report = if as_json {
        json::diagnostics_to_json(&diags)
    } else if diags.is_empty() {
        format!(
            "{path}: clean — valid broadcast of {messages} message(s) over MPS({}, {}), \
             completes at t = {}\n",
            parsed.schedule.n(),
            parsed.schedule.latency(),
            parsed.schedule.completion()
        )
    } else {
        render::render_report(&diags, path)
    };
    if diags.iter().any(|d| d.severity >= deny) {
        Err(CliError::LintFailed(report))
    } else {
        Ok(report)
    }
}

fn parse_lambda(s: &str) -> Result<Latency, CliError> {
    s.parse()
        .map_err(|e| CliError::Invalid(format!("bad lambda {s:?}: {e}")))
}

fn parse_n(s: &str) -> Result<usize, CliError> {
    let n: usize = s
        .parse()
        .map_err(|_| CliError::Invalid(format!("bad processor count {s:?}")))?;
    if n == 0 || n > 1_000_000 {
        return Err(CliError::Invalid("n must be in 1..=1000000".into()));
    }
    Ok(n)
}

fn parse_n_lambda(args: &[String]) -> Result<(usize, Latency), CliError> {
    match args {
        [n, lam] => Ok((parse_n(n)?, parse_lambda(lam)?)),
        _ => Err(CliError::Usage(USAGE.to_string())),
    }
}

fn parse_n_m_lambda(args: &[String]) -> Result<(usize, u32, Latency), CliError> {
    match args {
        [n, m, lam] => {
            let m: u32 = m
                .parse()
                .map_err(|_| CliError::Invalid(format!("bad message count {m:?}")))?;
            if m == 0 || m > 100_000 {
                return Err(CliError::Invalid("m must be in 1..=100000".into()));
            }
            Ok((parse_n(n)?, m, parse_lambda(lam)?))
        }
        _ => Err(CliError::Usage(USAGE.to_string())),
    }
}

fn plan(n: u128, m: u64, lam: Latency) -> String {
    let d = runtimes::latency_matched_degree(n, lam);
    let mut rows: Vec<(String, Time, &str)> = vec![
        (
            "REPEAT".into(),
            runtimes::repeat_time(n, m, lam),
            "m overlapped BCASTs (Lemma 10)",
        ),
        (
            "PACK".into(),
            runtimes::pack_time(n, m, lam),
            "one packed broadcast (Lemma 12)",
        ),
        (
            "PIPELINE".into(),
            runtimes::pipeline_time(n, m, lam),
            "streamed broadcast (Lemmas 14/16)",
        ),
        (
            "LINE".into(),
            runtimes::line_time(n, m, lam),
            "chain; best as m → ∞",
        ),
        (
            "STAR".into(),
            runtimes::star_time(n, m, lam),
            "direct sends; best as λ → ∞",
        ),
        (
            format!("DTREE({d})"),
            runtimes::dtree_time_bound(n, m, lam, d),
            "latency-matched tree (Lemma 18 bound)",
        ),
    ];
    rows.sort_by_key(|a| a.1);
    let lb = runtimes::multi_lower_bound(n, m, lam);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Plan for n = {n}, m = {m}, λ = {lam} (lower bound {lb}):"
    );
    for (i, (name, t, note)) in rows.iter().enumerate() {
        let marker = if i == 0 { "→" } else { " " };
        let _ = writeln!(out, "{marker} {name:<12} {:>14}   {note}", t.to_string());
    }
    let _ = writeln!(
        out,
        "\nRecommended: {} ({:.2}× the lower bound)",
        rows[0].0,
        rows[0].1.to_f64() / lb.to_f64().max(1e-9)
    );
    out
}

fn simulate(algo: &str, n: usize, m: u32, lam: Latency) -> Result<String, CliError> {
    let describe = |completion: Time, messages: usize, violations: usize| {
        format!(
            "algorithm: {algo}\nn = {n}, m = {m}, λ = {lam}\ncompletion: {completion} units\n\
             messages:  {messages}\nmodel violations: {violations}\n\
             lower bound (Lemma 8): {}",
            runtimes::multi_lower_bound(n as u128, m as u64, lam)
        )
    };
    let from_multi = |r: postal_algos::MultiReport| {
        let v = r.report.violations.len();
        describe(r.completion(), r.report.messages(), v)
    };
    let out = match algo {
        "bcast" => {
            let r = run_bcast(n, lam);
            describe(r.completion, r.messages(), r.violations.len())
        }
        "repeat" => from_multi(run_repeat(n, m, lam)),
        "repeat-greedy" => from_multi(run_repeat_greedy(n, m, lam)),
        "pack" => from_multi(run_pack(n, m, lam)),
        "pipeline" => from_multi(run_pipeline(n, m, lam)),
        "line" => from_multi(run_dtree(n, m, lam, 1)),
        "binary" => from_multi(run_dtree(n, m, lam, 2)),
        "star" => {
            if n < 2 {
                return Err(CliError::Invalid("star needs n ≥ 2".into()));
            }
            from_multi(run_dtree(n, m, lam, n as u64 - 1))
        }
        _ if algo.starts_with("dtree:") => {
            let d: u64 = algo[6..]
                .parse()
                .map_err(|_| CliError::Invalid(format!("bad degree in {algo:?}")))?;
            if d == 0 {
                return Err(CliError::Invalid("degree must be ≥ 1".into()));
            }
            from_multi(run_dtree(n, m, lam, d))
        }
        "combine" => {
            let values: Vec<u64> = (0..n as u64).collect();
            let o = combine::run_combine(&values, lam);
            format!(
                "{}\nroot total: {}",
                describe(
                    o.report.completion,
                    o.report.messages(),
                    o.report.violations.len()
                ),
                o.root_total
            )
        }
        "gossip" => {
            let values: Vec<u64> = (0..n as u64).collect();
            let o = gossip::run_gossip(&values, lam);
            describe(
                o.report.completion,
                o.report.messages(),
                o.report.violations.len(),
            )
        }
        "scatter" => {
            let items: Vec<u64> = (0..n as u64).collect();
            let r = scatter::run_scatter(&items, lam);
            describe(r.completion, r.messages(), r.violations.len())
        }
        other => {
            return Err(CliError::Invalid(format!(
                "unknown algorithm {other:?} (see `postal` for the list)"
            )))
        }
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v)
    }

    #[test]
    fn no_args_prints_usage() {
        assert!(matches!(call(&[]), Err(CliError::Usage(_))));
        assert!(matches!(call(&["bogus"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn tree_command() {
        let out = call(&["tree", "14", "5/2"]).unwrap();
        assert!(out.contains("t = 15/2"));
        assert!(out.contains("p9"));
    }

    #[test]
    fn tree_accepts_decimal_lambda() {
        let a = call(&["tree", "14", "2.5"]).unwrap();
        let b = call(&["tree", "14", "5/2"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gantt_command() {
        let out = call(&["gantt", "6", "2"]).unwrap();
        assert!(out.contains('S') && out.contains('R'));
        assert!(out.contains("completion"));
    }

    #[test]
    fn fib_command() {
        let out = call(&["fib", "5/2", "8"]).unwrap();
        assert!(out.contains("F(   5) = 5")); // F_{5/2}(5 units) = 5
        assert!(out.contains("f(       2)"));
    }

    #[test]
    fn plan_command_recommends_something() {
        let out = call(&["plan", "512", "16", "5/2"]).unwrap();
        assert!(out.contains("Recommended: PIPELINE"));
        assert!(out.contains("lower bound"));
    }

    #[test]
    fn simulate_all_algorithms() {
        for algo in [
            "bcast",
            "repeat",
            "repeat-greedy",
            "pack",
            "pipeline",
            "line",
            "binary",
            "star",
            "dtree:3",
            "combine",
            "gossip",
            "scatter",
        ] {
            let out = call(&["simulate", algo, "10", "3", "2"]).unwrap();
            assert!(out.contains("model violations: 0"), "{algo}:\n{out}");
        }
    }

    #[test]
    fn svg_command() {
        let out = call(&["svg", "14", "5/2"]).unwrap();
        assert!(out.starts_with("<svg"));
        assert_eq!(out.matches("<circle").count(), 14);
    }

    #[test]
    fn optimal_command() {
        let out = call(&["optimal", "3", "2", "2"]).unwrap();
        assert!(out.contains("optimum (any order       ): 4"), "{out}");
        assert!(out.contains("optimum (order-preserving): 5"), "{out}");
        assert!(out.contains("Lemma 8 lower bound:        4"));
        assert!(matches!(
            call(&["optimal", "50", "2", "2"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn simulate_rejects_unknown_algorithm() {
        assert!(matches!(
            call(&["simulate", "warp", "10", "3", "2"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn rejects_bad_numbers() {
        assert!(matches!(
            call(&["tree", "0", "2"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["tree", "x", "2"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["tree", "5", "1/2"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["simulate", "bcast", "5", "0", "2"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["simulate", "dtree:0", "5", "1", "2"]),
            Err(CliError::Invalid(_))
        ));
    }

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("postal-cli-test-{name}"));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn lint_passes_a_valid_schedule() {
        let path = write_temp(
            "valid.json",
            r#"{"n": 3, "lambda": "5/2",
                "sends": [{"src":0,"dst":1,"at":"0"}, {"src":0,"dst":2,"at":"1"}]}"#,
        );
        let out = call(&["lint", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("clean"), "{out}");
        assert!(out.contains("t = 7/2"), "{out}");
    }

    #[test]
    fn lint_reports_corrupted_schedule_with_code() {
        // A BCAST(3) schedule with p1's forward shifted one unit early:
        // a causality violation (P0003).
        let path = write_temp(
            "corrupt.json",
            r#"{"n": 3, "lambda": "5/2",
                "sends": [{"src":0,"dst":1,"at":"0"}, {"src":1,"dst":2,"at":"3/2"}]}"#,
        );
        let err = call(&["lint", path.to_str().unwrap()]).unwrap_err();
        let CliError::LintFailed(report) = err else {
            panic!("expected LintFailed, got {err:?}");
        };
        assert!(report.contains("error[P0003]"), "{report}");
        assert!(report.contains("p1 -> p2 at t = 3/2"), "{report}");
    }

    #[test]
    fn lint_deny_warn_fails_suboptimal_schedules() {
        // A valid but suboptimal LINE(3): passes by default, fails
        // under --deny warn with the P0007 gap.
        let line = r#"{"n": 3, "lambda": "5/2",
            "sends": [{"src":0,"dst":1,"at":"0"}, {"src":1,"dst":2,"at":"5/2"}]}"#;
        let path = write_temp("line.json", line);
        let p = path.to_str().unwrap();
        assert!(call(&["lint", p]).is_ok());
        let err = call(&["lint", p, "--deny", "warn"]).unwrap_err();
        let CliError::LintFailed(report) = err else {
            panic!("expected LintFailed, got {err:?}");
        };
        assert!(report.contains("P0007"), "{report}");
    }

    #[test]
    fn lint_json_format_and_m_override() {
        let path = write_temp(
            "multi.json",
            r#"{"n": 2, "lambda": 2,
                "sends": [{"src":0,"dst":1,"at":0}, {"src":0,"dst":1,"at":2}]}"#,
        );
        let p = path.to_str().unwrap();
        let out = call(&["lint", p, "--m", "2", "--format", "json"]).unwrap();
        assert!(out.contains("\"code\": \"P0007\""), "{out}");
        assert!(out.contains("\"severity\": \"info\""), "{out}");
    }

    #[test]
    fn lint_rejects_bad_flags_and_files() {
        assert!(matches!(call(&["lint"]), Err(CliError::Usage(_))));
        assert!(matches!(
            call(&["lint", "/nonexistent/x.json"]),
            Err(CliError::Invalid(_))
        ));
        let path = write_temp("notjson.json", "not json at all");
        let p = path.to_str().unwrap();
        assert!(matches!(call(&["lint", p]), Err(CliError::Invalid(_))));
        assert!(matches!(
            call(&["lint", p, "--deny", "everything"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["lint", p, "--m", "0"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn simulated_bcast_matches_plan_numbers() {
        // The simulate and plan paths must agree on BCAST's time.
        let sim = call(&["simulate", "bcast", "14", "1", "5/2"]).unwrap();
        assert!(sim.contains("completion: 15/2 units"));
    }
}
