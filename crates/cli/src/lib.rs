//! Implementation of the `postal` command-line tool.
//!
//! All logic lives in this library so it is unit-testable; `main.rs` is
//! a thin shim. Argument parsing is hand-rolled (three positional
//! arguments per subcommand at most — a dependency would be heavier than
//! the code).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use postal_algos::ext::{combine, gossip, scatter};
use postal_algos::{
    run_bcast, run_dtree, run_pack, run_pipeline, run_repeat, run_repeat_greedy, tree_to_svg,
    BroadcastTree, SvgOptions, ToSchedule,
};
use postal_bench::optimal::{optimal_multi_broadcast_with, OrderPolicy, SearchResult};
use postal_model::{runtimes, GenFib, Latency, Time};
use postal_obs::{
    to_chrome_trace, to_jsonl, to_prometheus, MetricsSummary, ObsLog, Recorder, RingRecorder,
    SampleSpec,
};
use postal_sim::gantt::render_gantt;
use postal_sim::{log_from_report, RunReport};
use std::fmt::Write as _;

/// CLI failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Wrong arguments; the message is the usage text.
    Usage(String),
    /// Arguments parsed but invalid (e.g. λ < 1).
    Invalid(String),
    /// `postal lint` found diagnostics at or above the `--deny` level;
    /// the message is the rendered report.
    LintFailed(String),
}

const USAGE: &str =
    "postal — explore broadcasting in the postal model (Bar-Noy & Kipnis, SPAA 1992)

USAGE:
    postal tree <n> <lambda>                 optimal broadcast tree (Figure 1 style)
    postal gantt <n> <lambda>                BCAST schedule as an ASCII timeline
    postal fib <lambda> <max_t>              table of F_λ(t) and f_λ(n) landmarks
    postal plan <n> <m> <lambda>             compare all algorithms, recommend one
    postal simulate <algo> <n> <m> <lambda>  run one algorithm on the simulator
                                             (algo: bcast|repeat|repeat-greedy|pack|
                                              pipeline|line|binary|star|dtree:<d>|
                                              combine|gossip|scatter)
           [--trace-out FILE]                export Chrome trace JSON (Perfetto/about:tracing)
           [--events-out FILE]               export JSONL event log (re-lintable: postal lint)
           [--metrics-out FILE]              export Prometheus text exposition
           [--format text|json]              machine-readable summary
           [--sample SPEC]                   record through the sharded ring recorder with
                                             sampling: all | head | tail | rate:<k>, comma-
                                             separated (e.g. tail,rate:8); drops are counted
                                             and stamped into every export
           [--ring-capacity K]               per-shard ring capacity (default 65536)
           [--lint-inline]                   lint the run while it executes (codes
                                             P0001-P0007): the streaming lint engine
                                             rides the recorder, the trace is never
                                             stored; composes with --sample
           [--topology SPEC]                 hold the run to a sparse communication
                                             graph (complete | ring | torus:RxC |
                                             hypercube:D | mbg:N): sends across
                                             non-edges are counted and reported; with
                                             --lint-inline the streaming linter also
                                             emits the topology codes P0017-P0019
    postal stats <algo> <n> <m> <lambda>     observed-run metrics: gap to f_λ(n), port
                                             utilization, p50/p90/p99 latency, idle-port
                                             waste (P0006)
           [--trace-out|--events-out|--metrics-out FILE] [--format text|json]
           [--sample SPEC] [--ring-capacity K]
    postal svg <n> <lambda>                  broadcast tree as an SVG document (stdout)
    postal optimal <n> <m> <lambda>          exact optimum via exhaustive search
                                             (tiny instances only)
    postal lint <schedule.json|events.jsonl> static analysis: lint codes P0001-P0007
           [--deny warn|error] [--format text|json] [--m N]
                                             accepts schedule JSON or an observability
                                             JSONL event log; exits nonzero when any
                                             diagnostic reaches --deny (default: error)
           [--stream]                        fold a JSONL log through the streaming
                                             lint engine line by line (O(n) memory,
                                             identical report)
           [--topology SPEC]                 lint against a sparse communication graph
                                             (complete | ring | torus:RxC | hypercube:D
                                             | mbg:N): adds the graph-grounded codes
                                             P0017-P0019; a schedule file's own
                                             \"topology\" field is the default
    postal check --algo <name|all> --n N --lambda L
                                             model-check every interleaving (DPOR):
                                             codes P0008-P0011 over the whole state
                                             space, plus a re-lint of each execution
           [--m N] [--max-interleavings N] [--format text|json] [--deny warn|error]
    postal analyze --algo <name|all> --n N --lambda-range A..B
                                             abstract interpretation over the whole
                                             λ-range: codes P0012-P0016, each with a
                                             witness λ sub-interval
           [--m N] [--max-depth N] [--format text|json] [--deny warn|error]
           [--topology SPEC]                 analyze against a sparse communication
                                             graph: processors the graph cuts off from
                                             the originator are reported as P0019

<lambda> accepts integers, fractions and decimals: 3, 5/2, 2.5";

/// Entry point: parses `args` and returns the text to print.
///
/// # Errors
/// [`CliError::Usage`] for malformed invocations, [`CliError::Invalid`]
/// for well-formed but meaningless ones.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let usage = || CliError::Usage(USAGE.to_string());
    match args.first().map(String::as_str) {
        Some("tree") => {
            let (n, lam) = parse_n_lambda(&args[1..])?;
            let tree = BroadcastTree::build(n as u64, lam);
            let schedule = tree.to_schedule();
            postal_verify::assert_broadcast_clean(&schedule, "tree");
            let mut out = String::new();
            let _ = writeln!(
                out,
                "Optimal broadcast tree for MPS({n}, {lam}) — completes at t = {} = f_λ({n})\n",
                tree.completion()
            );
            out.push_str(&tree.render());
            Ok(out)
        }
        Some("gantt") => {
            let (n, lam) = parse_n_lambda(&args[1..])?;
            let report = run_bcast(n, lam);
            report.assert_model_clean();
            let cells = lam.ticks_per_unit().clamp(1, 4) as u32;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "BCAST schedule for MPS({n}, {lam}): S = sending, R = receiving, B = both\n"
            );
            out.push_str(&render_gantt(&report.trace, n, cells));
            Ok(out)
        }
        Some("fib") => {
            let lam = parse_lambda(args.get(1).ok_or_else(usage)?)?;
            let max_t: i128 = args
                .get(2)
                .ok_or_else(usage)?
                .parse()
                .map_err(|_| CliError::Invalid("max_t must be an integer".into()))?;
            if !(0..=10_000).contains(&max_t) {
                return Err(CliError::Invalid("max_t must be in 0..=10000".into()));
            }
            let g = GenFib::new(lam);
            let mut out = String::new();
            let _ = writeln!(
                out,
                "F_λ(t) for λ = {lam} (max processors reachable in t units):"
            );
            for t in 0..=max_t {
                let _ = writeln!(out, "  F({t:>4}) = {}", g.value(Time::from_int(t)));
            }
            let _ = writeln!(out, "\nf_λ(n) landmarks (optimal broadcast times):");
            for n in [2u128, 10, 100, 1000, 1_000_000] {
                let _ = writeln!(out, "  f({n:>8}) = {}", g.index(n));
            }
            Ok(out)
        }
        Some("svg") => {
            let (n, lam) = parse_n_lambda(&args[1..])?;
            if n > 4096 {
                return Err(CliError::Invalid("svg rendering capped at n ≤ 4096".into()));
            }
            let tree = BroadcastTree::build(n as u64, lam);
            Ok(tree_to_svg(&tree, SvgOptions::default()))
        }
        Some("optimal") => {
            let (n, m, lam) = parse_n_m_lambda(&args[1..])?;
            if n > 6 || m > 4 {
                return Err(CliError::Invalid(
                    "exhaustive search is exponential; use n ≤ 6, m ≤ 4".into(),
                ));
            }
            let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam);
            let horizon = runtimes::pipeline_time(n as u128, m as u64, lam)
                .min(runtimes::repeat_time(n as u128, m as u64, lam))
                .min(runtimes::pack_time(n as u128, m as u64, lam));
            let mut out = String::new();
            for (label, policy) in [
                ("any order       ", OrderPolicy::Any),
                ("order-preserving", OrderPolicy::Preserving),
            ] {
                let res = optimal_multi_broadcast_with(n, m, lam, horizon, 50_000_000, policy);
                let text = match res {
                    SearchResult::Optimal(t) => format!("{t}"),
                    SearchResult::BudgetExhausted => "search budget exhausted".into(),
                    SearchResult::HorizonExceeded => {
                        format!("{horizon} (= best known algorithm; nothing better exists)")
                    }
                };
                let _ = writeln!(out, "optimum ({label}): {text}");
            }
            let _ = writeln!(out, "Lemma 8 lower bound:        {lb}");
            Ok(out)
        }
        Some("plan") => {
            let (n, m, lam) = parse_n_m_lambda(&args[1..])?;
            Ok(plan(n as u128, m as u64, lam))
        }
        Some("simulate") => {
            let (pos, opts) = split_output_flags(&args[1..])?;
            let (algo, rest) = pos.split_first().ok_or_else(usage)?;
            let (n, m, lam) = parse_n_m_lambda(rest)?;
            simulate(algo, n, m, lam, &opts)
        }
        Some("stats") => {
            let (pos, opts) = split_output_flags(&args[1..])?;
            let (algo, rest) = pos.split_first().ok_or_else(usage)?;
            let (n, m, lam) = parse_n_m_lambda(rest)?;
            stats(algo, n, m, lam, &opts)
        }
        Some("lint") => lint(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        _ => Err(usage()),
    }
}

fn lint(args: &[String]) -> Result<String, CliError> {
    use postal_verify::{json, lint_schedule, LintOptions, Severity};
    let mut file: Option<&str> = None;
    let mut deny = Severity::Error;
    let mut as_json = false;
    let mut m_override: Option<u64> = None;
    let mut stream_mode = false;
    let mut topology_arg: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: usize| {
            args.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| CliError::Invalid(format!("{} needs a value", args[i])))
        };
        match args[i].as_str() {
            "--deny" => {
                deny = match flag_value(i)? {
                    "warn" => Severity::Warn,
                    "error" => Severity::Error,
                    other => {
                        return Err(CliError::Invalid(format!(
                            "--deny must be 'warn' or 'error', got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            "--format" => {
                as_json = match flag_value(i)? {
                    "json" => true,
                    "text" => false,
                    other => {
                        return Err(CliError::Invalid(format!(
                            "--format must be 'text' or 'json', got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            "--m" => {
                let m: u64 = flag_value(i)?
                    .parse()
                    .map_err(|_| CliError::Invalid("--m must be a positive integer".into()))?;
                if m == 0 {
                    return Err(CliError::Invalid("--m must be ≥ 1".into()));
                }
                m_override = Some(m);
                i += 2;
            }
            "--stream" => {
                stream_mode = true;
                i += 1;
            }
            "--topology" => {
                topology_arg = Some(flag_value(i)?.to_string());
                i += 2;
            }
            s if s.starts_with('-') => {
                return Err(CliError::Invalid(format!("unknown lint flag {s:?}")));
            }
            s if file.is_none() => {
                file = Some(s);
                i += 1;
            }
            s => {
                return Err(CliError::Invalid(format!(
                    "unexpected extra argument {s:?}"
                )));
            }
        }
    }
    let path = file.ok_or_else(|| CliError::Usage(USAGE.to_string()))?;
    // Stream the file instead of reading it into memory: million-send
    // schedules lint without ever materializing the trace text. The
    // first content line is read eagerly to sniff the format — an
    // observability JSONL log announces itself with a run header; a
    // schedule file is a single JSON object. Both reduce to a Schedule.
    use std::io::{Cursor, Read as _};
    let (first_line, reader) = open_sniffed(path)?;
    let is_jsonl = first_line.contains("\"type\":\"run\"");
    if stream_mode {
        return lint_streaming(
            path,
            first_line,
            reader,
            is_jsonl,
            m_override,
            topology_arg,
            deny,
            as_json,
        );
    }
    let invalid = |e: &dyn std::fmt::Display| CliError::Invalid(format!("{path}: {e}"));
    let parsed = if is_jsonl {
        postal_verify::jsonl_to_schedule_file(Cursor::new(first_line).chain(reader))
            .map_err(|e| invalid(&e))?
    } else {
        json::parse_schedule_reader(Cursor::new(first_line).chain(reader))
            .map_err(|e| invalid(&e))?
    };
    let dropped = parsed.dropped_events.unwrap_or(0);
    let truncated = parsed.truncated;
    // The flag wins; a schedule file's own "topology" field is the default.
    let topo_spec = topology_arg.or(parsed.topology.clone());
    let (schedule, file_messages) = (parsed.schedule, parsed.messages);
    let messages = m_override.or(file_messages).unwrap_or(1);
    let opts_l = LintOptions::broadcast_of(messages);
    let raw = match &topo_spec {
        Some(spec) => {
            let topo = parse_topology(spec, schedule.n())?;
            postal_verify::lint_schedule_with_topology(&schedule, &opts_l, &topo)
        }
        None => lint_schedule(&schedule, &opts_l),
    };
    let diags = postal_verify::downgrade_truncated_trace(
        postal_verify::downgrade_partial_trace(raw, dropped),
        truncated,
    );
    lint_outcome(
        path,
        &diags,
        LintFacts {
            n: schedule.n(),
            latency: schedule.latency(),
            completion: schedule.completion(),
            messages,
            dropped,
            truncated,
        },
        as_json,
        deny,
    )
}

/// Opens `path` for lint-format sniffing: skips a UTF-8 byte-order mark
/// and any leading blank lines (editors and shell heredocs prepend
/// both), returning the first content line plus the rest of the file.
/// The returned line has the BOM already stripped, so chaining it back
/// in front of the reader reconstructs a clean document.
fn open_sniffed(path: &str) -> Result<(String, std::io::BufReader<std::fs::File>), CliError> {
    use std::io::{BufRead as _, BufReader};
    let cannot = |e: &dyn std::fmt::Display| CliError::Invalid(format!("cannot read {path}: {e}"));
    let handle = std::fs::File::open(path).map_err(|e| cannot(&e))?;
    let mut reader = BufReader::new(handle);
    let mut first_line = String::new();
    loop {
        first_line.clear();
        let n = reader.read_line(&mut first_line).map_err(|e| cannot(&e))?;
        if n == 0 {
            break; // EOF: hand the (blank) line to the parser for its error.
        }
        if first_line.starts_with('\u{feff}') {
            first_line.replace_range(..'\u{feff}'.len_utf8(), "");
        }
        if !first_line.trim().is_empty() {
            break;
        }
    }
    Ok((first_line, reader))
}

/// The facts a lint report's clean line and notes are rendered from.
struct LintFacts {
    n: u32,
    latency: Latency,
    completion: Time,
    messages: u64,
    dropped: u64,
    truncated: bool,
}

/// The incompleteness note under a lint report, naming every cause.
fn lint_note(path: &str, dropped: u64, truncated: bool) -> Option<String> {
    let cause = match (dropped > 0, truncated) {
        (true, true) => format!(
            "is a partial trace ({dropped} events dropped by sampling) \
             and was cut short by the event budget"
        ),
        (true, false) => format!("is a partial trace ({dropped} events dropped by sampling)"),
        (false, true) => "was cut short by the event budget (truncated trace)".to_string(),
        (false, false) => return None,
    };
    Some(format!(
        "note: {path} {cause}; \
             absence-based lints (P0003, P0005) are downgraded to warnings\n"
    ))
}

/// Renders a lint report — shared by the batch and streaming paths so
/// their output is byte-identical — and applies the `--deny` gate.
fn lint_outcome(
    path: &str,
    diags: &[postal_verify::Diagnostic],
    facts: LintFacts,
    as_json: bool,
    deny: postal_verify::Severity,
) -> Result<String, CliError> {
    use postal_verify::{json, render};
    let note = lint_note(path, facts.dropped, facts.truncated);
    let report = if as_json {
        json::diagnostics_to_json(diags)
    } else if diags.is_empty() {
        format!(
            "{path}: clean — valid broadcast of {} message(s) over MPS({}, {}), \
             completes at t = {}\n{}",
            facts.messages,
            facts.n,
            facts.latency,
            facts.completion,
            note.as_deref().unwrap_or("")
        )
    } else {
        format!(
            "{}{}",
            render::render_report(diags, path),
            note.as_deref().unwrap_or("")
        )
    };
    if diags.iter().any(|d| d.severity >= deny) {
        Err(CliError::LintFailed(report))
    } else {
        Ok(report)
    }
}

/// The `lint --stream` path: folds a JSONL event log through the
/// streaming lint engine line by line — O(n) linter memory, no
/// materialized schedule — and renders the exact batch report.
#[allow(clippy::too_many_arguments)]
fn lint_streaming(
    path: &str,
    first_line: String,
    reader: std::io::BufReader<std::fs::File>,
    is_jsonl: bool,
    m_override: Option<u64>,
    topology_arg: Option<String>,
    deny: postal_verify::Severity,
    as_json: bool,
) -> Result<String, CliError> {
    use postal_obs::{JsonlParser, LintStream, StreamOrdering};
    use postal_verify::LintOptions;
    use std::io::{BufRead as _, Cursor, Read as _};
    if !is_jsonl {
        return Err(CliError::Invalid(format!(
            "{path}: --stream needs an observability JSONL event log \
             (\"type\":\"run\" header); schedule JSON is linted whole — drop --stream"
        )));
    }
    let invalid = |e: &dyn std::fmt::Display| CliError::Invalid(format!("{path}: {e}"));
    let mut parser = JsonlParser::new();
    // Built once the header line has been parsed; `Live` ordering is
    // sound for both orders a log is written in — live emission order
    // (sends announced ahead of their starts) and at()-sorted — and a
    // shuffled log merely defers finalization to finish(), which is
    // still the exact batch report.
    let mut stream: Option<LintStream> = None;
    let mut header: Option<(u32, Latency, u64, u64)> = None;
    for line in Cursor::new(first_line).chain(reader).lines() {
        let line = line.map_err(|e| invalid(&e))?;
        let event = parser.line(&line).map_err(|e| invalid(&e))?;
        if stream.is_none() {
            if let Some(meta) = parser.meta() {
                let lam = meta.lambda.ok_or_else(|| {
                    invalid(&"log has no uniform lambda; cannot reduce to a schedule")
                })?;
                let messages = m_override.or(meta.messages).unwrap_or(1);
                let dropped = meta.dropped_events.unwrap_or(0);
                header = Some((meta.n, lam, messages, dropped));
                stream = Some(match &topology_arg {
                    Some(spec) => LintStream::with_topology(
                        meta.n,
                        lam,
                        LintOptions::broadcast_of(messages),
                        StreamOrdering::Live,
                        &parse_topology(spec, meta.n)?,
                    ),
                    None => LintStream::new(
                        meta.n,
                        lam,
                        LintOptions::broadcast_of(messages),
                        StreamOrdering::Live,
                    ),
                });
            }
        }
        if let (Some(ev), Some(s)) = (event, stream.as_mut()) {
            s.on_event(&ev);
        }
    }
    let (stream, (n, latency, messages, dropped)) = stream
        .zip(header)
        .ok_or_else(|| invalid(&"empty log: no \"run\" header"))?;
    if stream.out_of_order() {
        return Err(CliError::Invalid(format!(
            "{path}: a send appears after later events already passed its start time; \
             the log is out of order — lint without --stream instead"
        )));
    }
    let truncated = stream.truncated();
    let completion = stream.completion();
    let diags = postal_verify::downgrade_truncated_trace(
        postal_verify::downgrade_partial_trace(stream.finish(), dropped),
        truncated,
    );
    lint_outcome(
        path,
        &diags,
        LintFacts {
            n,
            latency,
            completion,
            messages,
            dropped,
            truncated,
        },
        as_json,
        deny,
    )
}

/// The `check` subcommand: model-check one (or every) paper algorithm.
fn check(args: &[String]) -> Result<String, CliError> {
    use postal_mc::{check_algo, Algo, McConfig};
    use postal_verify::{render, Severity};
    let mut algo_arg: Option<String> = None;
    let mut n: Option<usize> = None;
    let mut lam: Option<Latency> = None;
    let mut m: u32 = 1;
    let mut cfg = McConfig::default();
    let mut as_json = false;
    let mut deny = Severity::Error;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: usize| {
            args.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| CliError::Invalid(format!("{} needs a value", args[i])))
        };
        match args[i].as_str() {
            "--algo" => {
                algo_arg = Some(flag_value(i)?.to_string());
                i += 2;
            }
            "--n" => {
                n = Some(parse_n(flag_value(i)?)?);
                i += 2;
            }
            "--lambda" => {
                lam = Some(parse_lambda(flag_value(i)?)?);
                i += 2;
            }
            "--m" => {
                let v: u32 = flag_value(i)?
                    .parse()
                    .map_err(|_| CliError::Invalid("--m must be a positive integer".into()))?;
                if v == 0 || v > 64 {
                    return Err(CliError::Invalid("--m must be in 1..=64".into()));
                }
                m = v;
                i += 2;
            }
            "--max-interleavings" => {
                cfg.max_interleavings = flag_value(i)?.parse().map_err(|_| {
                    CliError::Invalid("--max-interleavings must be a positive integer".into())
                })?;
                if cfg.max_interleavings == 0 {
                    return Err(CliError::Invalid("--max-interleavings must be ≥ 1".into()));
                }
                i += 2;
            }
            "--format" => {
                as_json = match flag_value(i)? {
                    "json" => true,
                    "text" => false,
                    other => {
                        return Err(CliError::Invalid(format!(
                            "--format must be 'text' or 'json', got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            "--deny" => {
                deny = match flag_value(i)? {
                    "warn" => Severity::Warn,
                    "error" => Severity::Error,
                    other => {
                        return Err(CliError::Invalid(format!(
                            "--deny must be 'warn' or 'error', got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            s => {
                return Err(CliError::Invalid(format!("unknown check flag {s:?}")));
            }
        }
    }
    let usage = || CliError::Usage(USAGE.to_string());
    let algo_arg = algo_arg.ok_or_else(usage)?;
    let n = n.ok_or_else(usage)?;
    let lam = lam.ok_or_else(usage)?;
    // Exhaustive exploration replays prefixes from scratch; keep the
    // state space honest rather than silently bounding it away.
    if n > 64 {
        return Err(CliError::Invalid(
            "model checking is exhaustive; use n ≤ 64 (the paper grid uses n ≤ 12)".into(),
        ));
    }
    let algos: Vec<Algo> = if algo_arg == "all" {
        Algo::all().to_vec()
    } else {
        vec![Algo::parse(&algo_arg).ok_or_else(|| {
            CliError::Invalid(format!(
                "unknown algorithm {algo_arg:?} (bcast|repeat|repeat-greedy|pack|\
                 pipeline|line|binary|star|dtree|all)"
            ))
        })?]
    };

    let mut out = String::new();
    let mut failed = false;
    if as_json {
        out.push_str("[\n");
    }
    for (idx, algo) in algos.iter().enumerate() {
        let rep = check_algo(*algo, n as u32, m, lam, None, &cfg);
        failed |= rep.diagnostics.iter().any(|d| d.severity >= deny);
        if as_json {
            if idx > 0 {
                out.push_str(",\n");
            }
            let _ = writeln!(out, "{{");
            let _ = writeln!(out, "  \"algo\": \"{}\",", rep.name);
            let _ = writeln!(out, "  \"n\": {},", rep.n);
            let _ = writeln!(out, "  \"m\": {},", rep.m);
            let _ = writeln!(out, "  \"lambda\": \"{}\",", rep.lambda);
            let _ = writeln!(out, "  \"executions\": {},", rep.stats.executions);
            let _ = writeln!(out, "  \"deadlocks\": {},", rep.stats.deadlocks);
            let _ = writeln!(out, "  \"branch_points\": {},", rep.stats.branch_points);
            let _ = writeln!(out, "  \"sleep_set_pruned\": {},", rep.stats.pruned);
            let _ = writeln!(
                out,
                "  \"naive_interleavings\": {},",
                rep.stats.naive_interleavings
            );
            let _ = writeln!(
                out,
                "  \"reduction_ratio\": {},",
                rep.stats.reduction_ratio()
            );
            let _ = writeln!(out, "  \"truncated\": {},", rep.stats.truncated);
            let _ = writeln!(out, "  \"bounded\": {},", rep.stats.bounded);
            let comps: Vec<String> = rep.completions.iter().map(|c| format!("\"{c}\"")).collect();
            let _ = writeln!(out, "  \"completions\": [{}],", comps.join(", "));
            let _ = writeln!(
                out,
                "  \"reference_completion\": \"{}\",",
                rep.reference_completion
            );
            let _ = writeln!(out, "  \"races\": {},", rep.races);
            let _ = writeln!(
                out,
                "  \"diagnostics\": {}",
                postal_verify::json::diagnostics_to_json(&rep.diagnostics).trim_end()
            );
            out.push('}');
        } else {
            out.push_str(&rep.summary());
            if rep.is_clean() {
                out.push_str("  verdict               clean\n");
            } else {
                out.push('\n');
                out.push_str(&render::render_report(&rep.diagnostics, &rep.name));
            }
            if idx + 1 < algos.len() {
                out.push('\n');
            }
        }
    }
    if as_json {
        out.push_str("\n]");
    }
    if failed {
        Err(CliError::LintFailed(out))
    } else {
        Ok(out)
    }
}

/// The `analyze` subcommand: abstract interpretation over a λ-range.
fn analyze(args: &[String]) -> Result<String, CliError> {
    use postal_abs::{analyze_algo_with_topology, AbsConfig};
    use postal_mc::Algo;
    use postal_verify::{render, Severity};
    let mut algo_arg: Option<String> = None;
    let mut n: Option<usize> = None;
    let mut range: Option<postal_model::Interval> = None;
    let mut m: u32 = 1;
    let mut cfg = AbsConfig::default();
    let mut as_json = false;
    let mut deny = Severity::Error;
    let mut topology_arg: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: usize| {
            args.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| CliError::Invalid(format!("{} needs a value", args[i])))
        };
        match args[i].as_str() {
            "--algo" => {
                algo_arg = Some(flag_value(i)?.to_string());
                i += 2;
            }
            "--n" => {
                n = Some(parse_n(flag_value(i)?)?);
                i += 2;
            }
            "--lambda-range" => {
                range = Some(parse_lambda_range(flag_value(i)?)?);
                i += 2;
            }
            "--m" => {
                let v: u32 = flag_value(i)?
                    .parse()
                    .map_err(|_| CliError::Invalid("--m must be a positive integer".into()))?;
                if v == 0 || v > 64 {
                    return Err(CliError::Invalid("--m must be in 1..=64".into()));
                }
                m = v;
                i += 2;
            }
            "--max-depth" => {
                cfg.max_depth = flag_value(i)?
                    .parse()
                    .map_err(|_| CliError::Invalid("--max-depth must be an integer".into()))?;
                if cfg.max_depth > 16 {
                    return Err(CliError::Invalid(
                        "--max-depth is capped at 16 (2^16 endpoint runs)".into(),
                    ));
                }
                i += 2;
            }
            "--format" => {
                as_json = match flag_value(i)? {
                    "json" => true,
                    "text" => false,
                    other => {
                        return Err(CliError::Invalid(format!(
                            "--format must be 'text' or 'json', got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            "--deny" => {
                deny = match flag_value(i)? {
                    "warn" => Severity::Warn,
                    "error" => Severity::Error,
                    other => {
                        return Err(CliError::Invalid(format!(
                            "--deny must be 'warn' or 'error', got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            "--topology" => {
                topology_arg = Some(flag_value(i)?.to_string());
                i += 2;
            }
            s => {
                return Err(CliError::Invalid(format!("unknown analyze flag {s:?}")));
            }
        }
    }
    let usage = || CliError::Usage(USAGE.to_string());
    let algo_arg = algo_arg.ok_or_else(usage)?;
    let n = n.ok_or_else(usage)?;
    let range = range.ok_or_else(usage)?;
    // Each endpoint run simulates the full program set; the adaptive
    // subdivision multiplies that by up to 2^depth.
    if n > 4096 {
        return Err(CliError::Invalid(
            "abstract analysis runs endpoint witnesses; use n ≤ 4096".into(),
        ));
    }
    let algos: Vec<Algo> = if algo_arg == "all" {
        Algo::all().to_vec()
    } else {
        vec![Algo::parse(&algo_arg).ok_or_else(|| {
            CliError::Invalid(format!(
                "unknown algorithm {algo_arg:?} (bcast|repeat|repeat-greedy|pack|\
                 pipeline|line|binary|star|dtree|all)"
            ))
        })?]
    };

    let topo = match &topology_arg {
        Some(spec) => Some(parse_topology(spec, n as u32)?),
        None => None,
    };

    let iv = |x: postal_model::Interval| format!("[\"{}\", \"{}\"]", x.lo(), x.hi());
    let mut out = String::new();
    let mut failed = false;
    if as_json {
        out.push_str("[\n");
    }
    for (idx, algo) in algos.iter().enumerate() {
        let rep = analyze_algo_with_topology(*algo, n as u32, m, range, None, topo.as_ref(), &cfg);
        failed |= rep.diagnostics.iter().any(|d| d.severity >= deny);
        if as_json {
            if idx > 0 {
                out.push_str(",\n");
            }
            let _ = writeln!(out, "{{");
            let _ = writeln!(out, "  \"algo\": \"{}\",", rep.name);
            let _ = writeln!(out, "  \"n\": {},", rep.n);
            let _ = writeln!(out, "  \"m\": {},", rep.m);
            if let Some(t) = &topo {
                let _ = writeln!(out, "  \"topology\": \"{}\",", t.spec());
            }
            let _ = writeln!(out, "  \"lambda_range\": {},", iv(rep.lambda));
            let _ = writeln!(out, "  \"completion\": {},", iv(rep.completion));
            let _ = writeln!(out, "  \"lower_bound\": {},", iv(rep.lower_bound));
            let _ = writeln!(out, "  \"gap\": {},", iv(rep.gap));
            let _ = writeln!(out, "  \"widened\": {},", rep.widened);
            let _ = writeln!(out, "  \"truncated\": {},", rep.truncated);
            let subs: Vec<String> = rep
                .subintervals
                .iter()
                .map(|s| {
                    format!(
                        "{{\"lambda\": {}, \"completion\": {}, \"exact\": {}, \
                         \"sends\": {}, \"peak_in_flight\": {}}}",
                        iv(s.lambda),
                        iv(s.completion),
                        s.exact,
                        s.sends,
                        s.peak_in_flight
                    )
                })
                .collect();
            let _ = writeln!(out, "  \"subintervals\": [{}],", subs.join(", "));
            let _ = writeln!(
                out,
                "  \"diagnostics\": {}",
                postal_verify::json::diagnostics_to_json(&rep.diagnostics).trim_end()
            );
            out.push('}');
        } else {
            out.push_str(&rep.summary());
            if rep.is_clean() {
                out.push_str("  verdict               clean\n");
            } else {
                out.push('\n');
                out.push_str(&render::render_report(&rep.diagnostics, &rep.name));
            }
            if idx + 1 < algos.len() {
                out.push('\n');
            }
        }
    }
    if as_json {
        out.push_str("\n]");
    }
    if failed {
        Err(CliError::LintFailed(out))
    } else {
        Ok(out)
    }
}

/// Parses `A..B` (or a single `A`, meaning the degenerate range
/// `[A, A]`) into a λ-interval; each endpoint accepts the same
/// integer/fraction/decimal forms as `--lambda`.
fn parse_lambda_range(s: &str) -> Result<postal_model::Interval, CliError> {
    let (a, b) = match s.split_once("..") {
        Some((a, b)) => (parse_lambda(a)?, parse_lambda(b)?),
        None => {
            let x = parse_lambda(s)?;
            (x, x)
        }
    };
    if a.value() > b.value() {
        return Err(CliError::Invalid(format!(
            "empty lambda range {s:?}: {} > {}",
            a.value(),
            b.value()
        )));
    }
    Ok(postal_model::Interval::new(a.value(), b.value()))
}

fn parse_lambda(s: &str) -> Result<Latency, CliError> {
    s.parse()
        .map_err(|e| CliError::Invalid(format!("bad lambda {s:?}: {e}")))
}

/// Parses a [`postal_model::TopologySpec`] string and instantiates it
/// against the system size `n`.
fn parse_topology(spec: &str, n: u32) -> Result<postal_model::Topology, CliError> {
    spec.parse::<postal_model::TopologySpec>()
        .and_then(|s| s.instantiate(n))
        .map_err(|e| CliError::Invalid(format!("--topology: {e}")))
}

fn parse_n(s: &str) -> Result<usize, CliError> {
    let n: usize = s
        .parse()
        .map_err(|_| CliError::Invalid(format!("bad processor count {s:?}")))?;
    if n == 0 || n > 1_000_000 {
        return Err(CliError::Invalid("n must be in 1..=1000000".into()));
    }
    Ok(n)
}

fn parse_n_lambda(args: &[String]) -> Result<(usize, Latency), CliError> {
    match args {
        [n, lam] => Ok((parse_n(n)?, parse_lambda(lam)?)),
        _ => Err(CliError::Usage(USAGE.to_string())),
    }
}

fn parse_n_m_lambda(args: &[String]) -> Result<(usize, u32, Latency), CliError> {
    match args {
        [n, m, lam] => {
            let m: u32 = m
                .parse()
                .map_err(|_| CliError::Invalid(format!("bad message count {m:?}")))?;
            if m == 0 || m > 100_000 {
                return Err(CliError::Invalid("m must be in 1..=100000".into()));
            }
            Ok((parse_n(n)?, m, parse_lambda(lam)?))
        }
        _ => Err(CliError::Usage(USAGE.to_string())),
    }
}

fn plan(n: u128, m: u64, lam: Latency) -> String {
    let d = runtimes::latency_matched_degree(n, lam);
    let mut rows: Vec<(String, Time, &str)> = vec![
        (
            "REPEAT".into(),
            runtimes::repeat_time(n, m, lam),
            "m overlapped BCASTs (Lemma 10)",
        ),
        (
            "PACK".into(),
            runtimes::pack_time(n, m, lam),
            "one packed broadcast (Lemma 12)",
        ),
        (
            "PIPELINE".into(),
            runtimes::pipeline_time(n, m, lam),
            "streamed broadcast (Lemmas 14/16)",
        ),
        (
            "LINE".into(),
            runtimes::line_time(n, m, lam),
            "chain; best as m → ∞",
        ),
        (
            "STAR".into(),
            runtimes::star_time(n, m, lam),
            "direct sends; best as λ → ∞",
        ),
        (
            format!("DTREE({d})"),
            runtimes::dtree_time_bound(n, m, lam, d),
            "latency-matched tree (Lemma 18 bound)",
        ),
    ];
    rows.sort_by_key(|a| a.1);
    let lb = runtimes::multi_lower_bound(n, m, lam);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Plan for n = {n}, m = {m}, λ = {lam} (lower bound {lb}):"
    );
    for (i, (name, t, note)) in rows.iter().enumerate() {
        let marker = if i == 0 { "→" } else { " " };
        let _ = writeln!(out, "{marker} {name:<12} {:>14}   {note}", t.to_string());
    }
    let _ = writeln!(
        out,
        "\nRecommended: {} ({:.2}× the lower bound)",
        rows[0].0,
        rows[0].1.to_f64() / lb.to_f64().max(1e-9)
    );
    out
}

/// Export destinations and output format shared by `simulate` and `stats`.
#[derive(Debug, Default)]
struct OutputOpts {
    trace_out: Option<String>,
    events_out: Option<String>,
    metrics_out: Option<String>,
    as_json: bool,
    sample: Option<SampleSpec>,
    ring_capacity: Option<usize>,
    lint_inline: bool,
    topology: Option<String>,
}

impl OutputOpts {
    /// True when the run should be recorded through the ring recorder.
    fn uses_ring(&self) -> bool {
        self.sample.is_some() || self.ring_capacity.is_some()
    }
}

/// Splits an argument list into positionals and the shared output flags.
fn split_output_flags(args: &[String]) -> Result<(Vec<String>, OutputOpts), CliError> {
    let mut pos = Vec::new();
    let mut opts = OutputOpts::default();
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: usize| {
            args.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| CliError::Invalid(format!("{} needs a value", args[i])))
        };
        match args[i].as_str() {
            "--trace-out" => {
                opts.trace_out = Some(flag_value(i)?.to_string());
                i += 2;
            }
            "--events-out" => {
                opts.events_out = Some(flag_value(i)?.to_string());
                i += 2;
            }
            "--metrics-out" => {
                opts.metrics_out = Some(flag_value(i)?.to_string());
                i += 2;
            }
            "--sample" => {
                opts.sample = Some(
                    SampleSpec::parse(flag_value(i)?)
                        .map_err(|e| CliError::Invalid(format!("--sample: {e}")))?,
                );
                i += 2;
            }
            "--ring-capacity" => {
                let k: usize = flag_value(i)?.parse().map_err(|_| {
                    CliError::Invalid("--ring-capacity must be a positive integer".into())
                })?;
                if k == 0 {
                    return Err(CliError::Invalid("--ring-capacity must be ≥ 1".into()));
                }
                opts.ring_capacity = Some(k);
                i += 2;
            }
            "--lint-inline" => {
                opts.lint_inline = true;
                i += 1;
            }
            "--topology" => {
                opts.topology = Some(flag_value(i)?.to_string());
                i += 2;
            }
            "--format" => {
                opts.as_json = match flag_value(i)? {
                    "json" => true,
                    "text" => false,
                    other => {
                        return Err(CliError::Invalid(format!(
                            "--format must be 'text' or 'json', got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            s if s.starts_with('-') => {
                return Err(CliError::Invalid(format!("unknown flag {s:?}")));
            }
            s => {
                pos.push(s.to_string());
                i += 1;
            }
        }
    }
    Ok((pos, opts))
}

/// One simulated workload, with its observability log attached.
struct SimRun {
    completion: Time,
    messages: usize,
    violations: usize,
    log: ObsLog,
    /// Algorithm-specific trailing line (e.g. combine's root total).
    extra: Option<String>,
}

fn observed<P>(report: &RunReport<P>, n: usize, m: u32, lam: Latency) -> SimRun {
    SimRun {
        completion: report.completion,
        messages: report.messages(),
        violations: report.violations.len(),
        log: log_from_report(report, "event", n as u32, Some(lam), Some(m as u64)),
        extra: None,
    }
}

/// Runs one named algorithm on the event simulator and captures its
/// observability log — the single entry point `simulate` and `stats`
/// share, so both always describe the same run the exporters saw.
fn run_workload(algo: &str, n: usize, m: u32, lam: Latency) -> Result<SimRun, CliError> {
    let run = match algo {
        "bcast" => observed(&run_bcast(n, lam), n, m, lam),
        "repeat" => observed(&run_repeat(n, m, lam).report, n, m, lam),
        "repeat-greedy" => observed(&run_repeat_greedy(n, m, lam).report, n, m, lam),
        "pack" => observed(&run_pack(n, m, lam).report, n, m, lam),
        "pipeline" => observed(&run_pipeline(n, m, lam).report, n, m, lam),
        "line" => observed(&run_dtree(n, m, lam, 1).report, n, m, lam),
        "binary" => observed(&run_dtree(n, m, lam, 2).report, n, m, lam),
        "star" => {
            if n < 2 {
                return Err(CliError::Invalid("star needs n ≥ 2".into()));
            }
            observed(&run_dtree(n, m, lam, n as u64 - 1).report, n, m, lam)
        }
        _ if algo.starts_with("dtree:") => {
            let d: u64 = algo[6..]
                .parse()
                .map_err(|_| CliError::Invalid(format!("bad degree in {algo:?}")))?;
            if d == 0 {
                return Err(CliError::Invalid("degree must be ≥ 1".into()));
            }
            observed(&run_dtree(n, m, lam, d).report, n, m, lam)
        }
        "combine" => {
            let values: Vec<u64> = (0..n as u64).collect();
            let o = combine::run_combine(&values, lam);
            let mut run = observed(&o.report, n, m, lam);
            run.extra = Some(format!("root total: {}", o.root_total));
            run
        }
        "gossip" => {
            let values: Vec<u64> = (0..n as u64).collect();
            observed(&gossip::run_gossip(&values, lam).report, n, m, lam)
        }
        "scatter" => {
            let items: Vec<u64> = (0..n as u64).collect();
            observed(&scatter::run_scatter(&items, lam), n, m, lam)
        }
        other => {
            return Err(CliError::Invalid(format!(
                "unknown algorithm {other:?} (see `postal` for the list)"
            )))
        }
    };
    Ok(run)
}

/// Re-records a run's event log through the sharded [`RingRecorder`]
/// when `--sample` or `--ring-capacity` was given, so the log the
/// exporters see went down the same `record()` path a live sampled run
/// would use — including honest drop accounting in the metadata.
fn apply_ring(log: ObsLog, opts: &OutputOpts) -> ObsLog {
    if !opts.uses_ring() {
        return log;
    }
    let spec = opts.sample.unwrap_or_else(SampleSpec::all);
    let cap = opts
        .ring_capacity
        .unwrap_or(postal_obs::ring::DEFAULT_CAPACITY);
    let ring = RingRecorder::with_spec(cap, spec);
    for e in log.events() {
        ring.record(e.clone());
    }
    ring.into_log(log.meta().clone())
}

/// Writes the requested exporter outputs, returning one note per file.
fn write_exports(log: &ObsLog, opts: &OutputOpts) -> Result<Vec<String>, CliError> {
    let mut notes = Vec::new();
    for (path, what, contents) in [
        (&opts.trace_out, "Chrome trace", to_chrome_trace(log)),
        (&opts.events_out, "JSONL event log", to_jsonl(log)),
        (&opts.metrics_out, "Prometheus metrics", to_prometheus(log)),
    ] {
        if let Some(p) = path {
            std::fs::write(p, contents)
                .map_err(|e| CliError::Invalid(format!("cannot write {p}: {e}")))?;
            notes.push(format!("wrote {what} to {p}"));
        }
    }
    Ok(notes)
}

fn simulate(
    algo: &str,
    n: usize,
    m: u32,
    lam: Latency,
    opts: &OutputOpts,
) -> Result<String, CliError> {
    if opts.lint_inline {
        return simulate_lint_inline(algo, n, m, lam, opts);
    }
    let topo = match &opts.topology {
        Some(spec) => Some(parse_topology(spec, n as u32)?),
        None => None,
    };
    let mut run = run_workload(algo, n, m, lam)?;
    // Count non-edge sends against the full log, before any sampling
    // drops events — the same set `Simulation::restrict_to` records.
    let edge_violations = topo.map(|t| {
        run.log
            .events()
            .iter()
            .filter(|e| match e {
                postal_obs::ObsEvent::Send { src, dst, .. } => !t.is_edge(*src, *dst),
                _ => false,
            })
            .count()
    });
    run.log = apply_ring(run.log, opts);
    let notes = write_exports(&run.log, opts)?;
    let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam);
    let meta = run.log.meta();
    let (recorded, dropped) = (run.log.events().len(), meta.dropped_events.unwrap_or(0));
    let sample = meta.sample.clone();
    if opts.as_json {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"command\": \"simulate\",");
        let _ = writeln!(out, "  \"algo\": \"{algo}\",");
        let _ = writeln!(out, "  \"n\": {n},");
        let _ = writeln!(out, "  \"m\": {m},");
        let _ = writeln!(out, "  \"lambda\": \"{lam}\",");
        let _ = writeln!(out, "  \"completion\": \"{}\",", run.completion);
        let _ = writeln!(out, "  \"completion_units\": {},", run.completion.to_f64());
        let _ = writeln!(out, "  \"messages\": {},", run.messages);
        let _ = writeln!(out, "  \"violations\": {},", run.violations);
        if let (Some(spec), Some(ev)) = (&opts.topology, edge_violations) {
            let _ = writeln!(out, "  \"topology\": \"{spec}\",");
            let _ = writeln!(out, "  \"edge_violations\": {ev},");
        }
        if let Some(s) = &sample {
            let _ = writeln!(out, "  \"sample\": \"{s}\",");
            let _ = writeln!(out, "  \"recorded_events\": {recorded},");
            let _ = writeln!(out, "  \"dropped_events\": {dropped},");
        }
        let _ = writeln!(out, "  \"lower_bound\": \"{lb}\"");
        out.push('}');
        return Ok(out);
    }
    let mut out = format!(
        "algorithm: {algo}\nn = {n}, m = {m}, λ = {lam}\ncompletion: {} units\n\
         messages:  {}\nmodel violations: {}\nlower bound (Lemma 8): {lb}",
        run.completion, run.messages, run.violations
    );
    if let (Some(spec), Some(ev)) = (&opts.topology, edge_violations) {
        let _ = write!(out, "\nedge violations ({spec} topology): {ev}");
    }
    if let Some(s) = &sample {
        let _ = write!(
            out,
            "\nsampling: {s} — recorded {recorded} events, dropped {dropped}"
        );
    }
    if let Some(extra) = &run.extra {
        let _ = write!(out, "\n{extra}");
    }
    for note in notes {
        let _ = write!(out, "\n{note}");
    }
    Ok(out)
}

/// One inline-linted run's outcome: the engine's completion plus the
/// streaming linter's report and bookkeeping.
struct InlineLint {
    completion: Time,
    violations: usize,
    edge_violations: usize,
    sends: u64,
    diags: Vec<postal_verify::Diagnostic>,
    dropped: u64,
    sample: Option<String>,
    truncated: bool,
    linter_bytes: usize,
}

/// The `simulate --lint-inline` path: runs the algorithm with the trace
/// discarded as it is generated and the streaming lint engine attached
/// as the run's recorder, so a million-processor run is linted in O(n)
/// memory with no stored trace.
fn simulate_lint_inline(
    algo: &str,
    n: usize,
    m: u32,
    lam: Latency,
    opts: &OutputOpts,
) -> Result<String, CliError> {
    use postal_algos::dtree::dtree_programs;
    use postal_algos::pack::pack_programs;
    use postal_algos::pipeline::pipeline_programs;
    use postal_algos::repeat::repeat_programs;
    use postal_algos::{bcast_programs, Pacing};
    if opts.trace_out.is_some() || opts.events_out.is_some() || opts.metrics_out.is_some() {
        return Err(CliError::Invalid(
            "--lint-inline discards the trace as it runs; \
             --trace-out/--events-out/--metrics-out need a recorded log"
                .into(),
        ));
    }
    let run = match algo {
        "bcast" => run_lint_inline(n, m, lam, bcast_programs(n, lam), opts)?,
        "repeat" => run_lint_inline(
            n,
            m,
            lam,
            repeat_programs(n, m, lam, Pacing::PaperExact),
            opts,
        )?,
        "repeat-greedy" => {
            run_lint_inline(n, m, lam, repeat_programs(n, m, lam, Pacing::Greedy), opts)?
        }
        "pack" => run_lint_inline(n, m, lam, pack_programs(n, m, lam), opts)?,
        "pipeline" => run_lint_inline(n, m, lam, pipeline_programs(n, m, lam), opts)?,
        "line" => run_lint_inline(n, m, lam, dtree_programs(n, m, 1), opts)?,
        "binary" => run_lint_inline(n, m, lam, dtree_programs(n, m, 2), opts)?,
        "star" => {
            if n < 2 {
                return Err(CliError::Invalid("star needs n ≥ 2".into()));
            }
            run_lint_inline(n, m, lam, dtree_programs(n, m, n as u64 - 1), opts)?
        }
        _ if algo.starts_with("dtree:") => {
            let d: u64 = algo[6..]
                .parse()
                .map_err(|_| CliError::Invalid(format!("bad degree in {algo:?}")))?;
            if d == 0 {
                return Err(CliError::Invalid("degree must be ≥ 1".into()));
            }
            run_lint_inline(n, m, lam, dtree_programs(n, m, d), opts)?
        }
        "combine" | "gossip" | "scatter" => {
            return Err(CliError::Invalid(format!(
                "--lint-inline checks the broadcast contract (P0003/P0005/P0007); \
                 {algo} is not a broadcast — run it without --lint-inline"
            )));
        }
        other => {
            return Err(CliError::Invalid(format!(
                "unknown algorithm {other:?} (see `postal` for the list)"
            )))
        }
    };
    render_inline(algo, n, m, lam, run, opts)
}

/// Runs one program set with the trace discarded and the linter inline.
///
/// Unsampled runs attach a [`postal_obs::LintSink`] directly — the
/// engine's live emission order drives the watermark. Sampled runs
/// route events through the ring recorder exactly like a plain
/// `--sample` run, then replay the surviving snapshot through the
/// streaming linter; the drop count feeds the partial-trace downgrades.
fn run_lint_inline<P: Clone>(
    n: usize,
    m: u32,
    lam: Latency,
    programs: Vec<Box<dyn postal_sim::Program<P>>>,
    opts: &OutputOpts,
) -> Result<InlineLint, CliError> {
    use postal_obs::{LintSink, LintStream, StreamOrdering};
    use postal_sim::{Simulation, Uniform};
    use postal_verify::LintOptions;
    let model = Uniform(lam);
    let lint_opts = LintOptions::broadcast_of(m as u64);
    let topo = match &opts.topology {
        Some(spec) => Some(parse_topology(spec, n as u32)?),
        None => None,
    };
    let sim_failed = |e: postal_sim::SimError| CliError::Invalid(format!("simulation failed: {e}"));
    let (stream, completion, violations, edge_violations, dropped, sample) = if opts.uses_ring() {
        let spec = opts.sample.unwrap_or_else(SampleSpec::all);
        let cap = opts
            .ring_capacity
            .unwrap_or(postal_obs::ring::DEFAULT_CAPACITY);
        let ring = RingRecorder::with_spec(cap, spec);
        let mut sim = Simulation::new(n, &model).observe(&ring).discard_trace();
        if let Some(t) = &topo {
            sim = sim.restrict_to(t);
        }
        let report = sim.run(programs).map_err(sim_failed)?;
        let log = ring.into_log(postal_obs::RunMeta::new("event", n as u32));
        let mut events = log.events().to_vec();
        events.sort_by_key(|e| e.at());
        let mut stream = match &topo {
            Some(t) => LintStream::with_topology(n as u32, lam, lint_opts, StreamOrdering::Live, t),
            None => LintStream::new(n as u32, lam, lint_opts, StreamOrdering::Live),
        };
        for ev in &events {
            stream.on_event(ev);
        }
        let dropped = log.meta().dropped_events.unwrap_or(0);
        let sample = log.meta().sample.clone();
        (
            stream,
            report.completion,
            report.violations.len(),
            report.edge_violations.len(),
            dropped,
            sample,
        )
    } else {
        let sink = match &topo {
            Some(t) => LintSink::with_topology(n as u32, lam, lint_opts, t),
            None => LintSink::new(n as u32, lam, lint_opts),
        };
        let mut sim = Simulation::new(n, &model).observe(&sink).discard_trace();
        if let Some(t) = &topo {
            sim = sim.restrict_to(t);
        }
        let report = sim.run(programs).map_err(sim_failed)?;
        (
            sink.finish(),
            report.completion,
            report.violations.len(),
            report.edge_violations.len(),
            0,
            None,
        )
    };
    if stream.out_of_order() {
        return Err(CliError::Invalid(
            "internal: the engine fed the inline linter out of order; \
             re-run without --lint-inline and report this"
                .into(),
        ));
    }
    let truncated = stream.truncated();
    let linter_bytes = stream.memory_bytes();
    let sends = stream.sends_observed();
    let diags = postal_verify::downgrade_truncated_trace(
        postal_verify::downgrade_partial_trace(stream.finish(), dropped),
        truncated,
    );
    Ok(InlineLint {
        completion,
        violations,
        edge_violations,
        sends,
        diags,
        dropped,
        sample,
        truncated,
        linter_bytes,
    })
}

/// Renders the `--lint-inline` summary plus the lint report, applying
/// the same default gate as `lint` (fail on any error diagnostic).
fn render_inline(
    algo: &str,
    n: usize,
    m: u32,
    lam: Latency,
    run: InlineLint,
    opts: &OutputOpts,
) -> Result<String, CliError> {
    use postal_verify::{json, render, Severity};
    let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam);
    let report = if opts.as_json {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"command\": \"simulate\",");
        let _ = writeln!(out, "  \"algo\": \"{algo}\",");
        let _ = writeln!(out, "  \"n\": {n},");
        let _ = writeln!(out, "  \"m\": {m},");
        let _ = writeln!(out, "  \"lambda\": \"{lam}\",");
        let _ = writeln!(out, "  \"lint_inline\": true,");
        let _ = writeln!(out, "  \"completion\": \"{}\",", run.completion);
        let _ = writeln!(out, "  \"completion_units\": {},", run.completion.to_f64());
        let _ = writeln!(out, "  \"sends\": {},", run.sends);
        let _ = writeln!(out, "  \"violations\": {},", run.violations);
        if let Some(spec) = &opts.topology {
            let _ = writeln!(out, "  \"topology\": \"{spec}\",");
            let _ = writeln!(out, "  \"edge_violations\": {},", run.edge_violations);
        }
        if let Some(s) = &run.sample {
            let _ = writeln!(out, "  \"sample\": \"{s}\",");
            let _ = writeln!(out, "  \"dropped_events\": {},", run.dropped);
        }
        let _ = writeln!(out, "  \"truncated\": {},", run.truncated);
        let _ = writeln!(out, "  \"linter_memory_bytes\": {},", run.linter_bytes);
        let _ = writeln!(out, "  \"lower_bound\": \"{lb}\",");
        let _ = writeln!(
            out,
            "  \"diagnostics\": {}",
            json::diagnostics_to_json(&run.diags).trim_end()
        );
        out.push('}');
        out
    } else {
        let mut out = format!(
            "algorithm: {algo}\nn = {n}, m = {m}, λ = {lam}\ncompletion: {} units\n\
             sends:     {}\nmodel violations: {}\nlower bound (Lemma 8): {lb}\n",
            run.completion, run.sends, run.violations
        );
        if let Some(spec) = &opts.topology {
            let _ = writeln!(
                out,
                "edge violations ({spec} topology): {}",
                run.edge_violations
            );
        }
        let _ = writeln!(
            out,
            "inline lint: {} diagnostic(s) — linter memory {} KiB, no stored trace",
            run.diags.len(),
            run.linter_bytes.div_ceil(1024),
        );
        if let Some(s) = &run.sample {
            let _ = writeln!(
                out,
                "sampling: {s} — {} events dropped; absence lints downgraded",
                run.dropped
            );
        }
        if !run.diags.is_empty() {
            out.push('\n');
            out.push_str(&render::render_report(&run.diags, algo));
        }
        out
    };
    if run.diags.iter().any(|d| d.severity >= Severity::Error) {
        Err(CliError::LintFailed(report))
    } else {
        Ok(report)
    }
}

/// How many per-processor rows `stats` prints before eliding the rest.
const STATS_UTILIZATION_ROWS: usize = 16;

fn stats(
    algo: &str,
    n: usize,
    m: u32,
    lam: Latency,
    opts: &OutputOpts,
) -> Result<String, CliError> {
    if opts.lint_inline {
        return Err(CliError::Invalid(
            "--lint-inline applies to `simulate` only".into(),
        ));
    }
    if opts.topology.is_some() {
        return Err(CliError::Invalid(
            "--topology applies to `simulate`, `lint` and `analyze` only".into(),
        ));
    }
    let mut run = run_workload(algo, n, m, lam)?;
    run.log = apply_ring(run.log, opts);
    let notes = write_exports(&run.log, opts)?;
    let s = MetricsSummary::from_log(&run.log);
    let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam);
    // For a single message the paper's exact optimum f_λ(n) is known
    // (Theorem 6); report the gap against it rather than the looser
    // multi-message lower bound.
    let optimum = (m == 1).then(|| runtimes::bcast_time(n as u128, lam));
    let ratio = |target: Time| run.completion.to_f64() / target.to_f64().max(1e-9);
    if opts.as_json {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"command\": \"stats\",");
        let _ = writeln!(out, "  \"algo\": \"{algo}\",");
        let _ = writeln!(out, "  \"n\": {n},");
        let _ = writeln!(out, "  \"m\": {m},");
        let _ = writeln!(out, "  \"lambda\": \"{lam}\",");
        let _ = writeln!(out, "  \"completion\": \"{}\",", run.completion);
        let _ = writeln!(out, "  \"completion_units\": {},", run.completion.to_f64());
        if let Some(f) = optimum {
            let _ = writeln!(out, "  \"bcast_optimum\": \"{f}\",");
            let _ = writeln!(out, "  \"optimality_ratio\": {},", ratio(f));
        }
        let _ = writeln!(out, "  \"lower_bound\": \"{lb}\",");
        let _ = writeln!(out, "  \"sends\": {},", s.total_sends());
        let _ = writeln!(out, "  \"deliveries\": {},", s.total_recvs());
        let _ = writeln!(out, "  \"queued_recvs\": {},", s.queued_recvs);
        let _ = writeln!(out, "  \"violations\": {},", s.violations);
        let _ = writeln!(out, "  \"drops\": {},", s.drops);
        let _ = writeln!(out, "  \"crashes\": {},", s.crashes);
        let _ = writeln!(out, "  \"wakes\": {},", s.wakes);
        let _ = writeln!(out, "  \"dropped_events\": {},", s.dropped_events);
        if let Some(spec) = &s.sample {
            let _ = writeln!(out, "  \"sample\": \"{spec}\",");
        }
        let _ = writeln!(out, "  \"mean_latency_units\": {},", s.latency.mean());
        let _ = writeln!(
            out,
            "  \"latency_quantiles_units\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}},",
            s.latency_quantile(0.5),
            s.latency_quantile(0.9),
            s.latency_quantile(0.99)
        );
        let _ = writeln!(
            out,
            "  \"queue_delay_quantiles_units\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}},",
            s.queue_delay_quantile(0.5),
            s.queue_delay_quantile(0.9),
            s.queue_delay_quantile(0.99)
        );
        let _ = writeln!(
            out,
            "  \"out_utilization_quantiles\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}},",
            s.out_utilization_quantile(0.5),
            s.out_utilization_quantile(0.9),
            s.out_utilization_quantile(0.99)
        );
        let _ = writeln!(out, "  \"idle_out_units\": {},", s.idle_out_units());
        let util: Vec<String> = (0..n)
            .map(|p| {
                let (o, i) = s.utilization(p);
                format!("[{o:.4}, {i:.4}]")
            })
            .collect();
        let _ = writeln!(out, "  \"utilization\": [{}]", util.join(", "));
        out.push('}');
        return Ok(out);
    }
    let mut out = String::new();
    let _ = writeln!(out, "stats: {algo} on MPS({n}, {lam}), m = {m}\n");
    let _ = writeln!(
        out,
        "completion:            {} units ({:.3})",
        run.completion,
        run.completion.to_f64()
    );
    if let Some(f) = optimum {
        let _ = writeln!(out, "f_λ(n) optimum:        {f} ({:.2}× optimal)", ratio(f));
    }
    let _ = writeln!(out, "lower bound (Lemma 8): {lb}");
    let _ = writeln!(
        out,
        "sends: {}   deliveries: {}   queued: {}   violations: {}",
        s.total_sends(),
        s.total_recvs(),
        s.queued_recvs,
        s.violations
    );
    if s.drops + s.crashes > 0 {
        let _ = writeln!(out, "drops: {}   crashes: {}", s.drops, s.crashes);
    }
    if s.is_partial() {
        let _ = writeln!(
            out,
            "recorder: PARTIAL trace — {} events dropped (sample: {}); counts are lower bounds",
            s.dropped_events,
            s.sample.as_deref().unwrap_or("none")
        );
    }
    let _ = writeln!(
        out,
        "mean end-to-end latency: {:.3} units",
        s.latency.mean()
    );
    let _ = writeln!(
        out,
        "latency p50/p90/p99:     {:.3} / {:.3} / {:.3} units",
        s.latency_quantile(0.5),
        s.latency_quantile(0.9),
        s.latency_quantile(0.99)
    );
    let _ = writeln!(
        out,
        "queue delay p50/p99:     {:.3} / {:.3} units",
        s.queue_delay_quantile(0.5),
        s.queue_delay_quantile(0.99)
    );
    let _ = writeln!(
        out,
        "idle-port waste (cf. lint P0006): {:.3} sender-units",
        s.idle_out_units()
    );
    let _ = writeln!(out, "\nper-processor port utilization (out% / in%):");
    for p in 0..n.min(STATS_UTILIZATION_ROWS) {
        let (o, i) = s.utilization(p);
        let _ = writeln!(out, "  p{p:<4} {:>3.0} / {:>3.0}", o * 100.0, i * 100.0);
    }
    if n > STATS_UTILIZATION_ROWS {
        let _ = writeln!(out, "  … and {} more", n - STATS_UTILIZATION_ROWS);
    }
    for note in notes {
        let _ = writeln!(out, "{note}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v)
    }

    #[test]
    fn no_args_prints_usage() {
        assert!(matches!(call(&[]), Err(CliError::Usage(_))));
        assert!(matches!(call(&["bogus"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn tree_command() {
        let out = call(&["tree", "14", "5/2"]).unwrap();
        assert!(out.contains("t = 15/2"));
        assert!(out.contains("p9"));
    }

    #[test]
    fn tree_accepts_decimal_lambda() {
        let a = call(&["tree", "14", "2.5"]).unwrap();
        let b = call(&["tree", "14", "5/2"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gantt_command() {
        let out = call(&["gantt", "6", "2"]).unwrap();
        assert!(out.contains('S') && out.contains('R'));
        assert!(out.contains("completion"));
    }

    #[test]
    fn fib_command() {
        let out = call(&["fib", "5/2", "8"]).unwrap();
        assert!(out.contains("F(   5) = 5")); // F_{5/2}(5 units) = 5
        assert!(out.contains("f(       2)"));
    }

    #[test]
    fn plan_command_recommends_something() {
        let out = call(&["plan", "512", "16", "5/2"]).unwrap();
        assert!(out.contains("Recommended: PIPELINE"));
        assert!(out.contains("lower bound"));
    }

    #[test]
    fn simulate_all_algorithms() {
        for algo in [
            "bcast",
            "repeat",
            "repeat-greedy",
            "pack",
            "pipeline",
            "line",
            "binary",
            "star",
            "dtree:3",
            "combine",
            "gossip",
            "scatter",
        ] {
            let out = call(&["simulate", algo, "10", "3", "2"]).unwrap();
            assert!(out.contains("model violations: 0"), "{algo}:\n{out}");
        }
    }

    #[test]
    fn svg_command() {
        let out = call(&["svg", "14", "5/2"]).unwrap();
        assert!(out.starts_with("<svg"));
        assert_eq!(out.matches("<circle").count(), 14);
    }

    #[test]
    fn optimal_command() {
        let out = call(&["optimal", "3", "2", "2"]).unwrap();
        assert!(out.contains("optimum (any order       ): 4"), "{out}");
        assert!(out.contains("optimum (order-preserving): 5"), "{out}");
        assert!(out.contains("Lemma 8 lower bound:        4"));
        assert!(matches!(
            call(&["optimal", "50", "2", "2"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn simulate_rejects_unknown_algorithm() {
        assert!(matches!(
            call(&["simulate", "warp", "10", "3", "2"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn rejects_bad_numbers() {
        assert!(matches!(
            call(&["tree", "0", "2"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["tree", "x", "2"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["tree", "5", "1/2"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["simulate", "bcast", "5", "0", "2"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["simulate", "dtree:0", "5", "1", "2"]),
            Err(CliError::Invalid(_))
        ));
    }

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("postal-cli-test-{name}"));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn lint_passes_a_valid_schedule() {
        let path = write_temp(
            "valid.json",
            r#"{"n": 3, "lambda": "5/2",
                "sends": [{"src":0,"dst":1,"at":"0"}, {"src":0,"dst":2,"at":"1"}]}"#,
        );
        let out = call(&["lint", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("clean"), "{out}");
        assert!(out.contains("t = 7/2"), "{out}");
    }

    #[test]
    fn lint_reports_corrupted_schedule_with_code() {
        // A BCAST(3) schedule with p1's forward shifted one unit early:
        // a causality violation (P0003).
        let path = write_temp(
            "corrupt.json",
            r#"{"n": 3, "lambda": "5/2",
                "sends": [{"src":0,"dst":1,"at":"0"}, {"src":1,"dst":2,"at":"3/2"}]}"#,
        );
        let err = call(&["lint", path.to_str().unwrap()]).unwrap_err();
        let CliError::LintFailed(report) = err else {
            panic!("expected LintFailed, got {err:?}");
        };
        assert!(report.contains("error[P0003]"), "{report}");
        assert!(report.contains("p1 -> p2 at t = 3/2"), "{report}");
    }

    #[test]
    fn lint_deny_warn_fails_suboptimal_schedules() {
        // A valid but suboptimal LINE(3): passes by default, fails
        // under --deny warn with the P0007 gap.
        let line = r#"{"n": 3, "lambda": "5/2",
            "sends": [{"src":0,"dst":1,"at":"0"}, {"src":1,"dst":2,"at":"5/2"}]}"#;
        let path = write_temp("line.json", line);
        let p = path.to_str().unwrap();
        assert!(call(&["lint", p]).is_ok());
        let err = call(&["lint", p, "--deny", "warn"]).unwrap_err();
        let CliError::LintFailed(report) = err else {
            panic!("expected LintFailed, got {err:?}");
        };
        assert!(report.contains("P0007"), "{report}");
    }

    #[test]
    fn lint_json_format_and_m_override() {
        let path = write_temp(
            "multi.json",
            r#"{"n": 2, "lambda": 2,
                "sends": [{"src":0,"dst":1,"at":0}, {"src":0,"dst":1,"at":2}]}"#,
        );
        let p = path.to_str().unwrap();
        let out = call(&["lint", p, "--m", "2", "--format", "json"]).unwrap();
        assert!(out.contains("\"code\": \"P0007\""), "{out}");
        assert!(out.contains("\"severity\": \"info\""), "{out}");
    }

    #[test]
    fn lint_rejects_bad_flags_and_files() {
        assert!(matches!(call(&["lint"]), Err(CliError::Usage(_))));
        assert!(matches!(
            call(&["lint", "/nonexistent/x.json"]),
            Err(CliError::Invalid(_))
        ));
        let path = write_temp("notjson.json", "not json at all");
        let p = path.to_str().unwrap();
        assert!(matches!(call(&["lint", p]), Err(CliError::Invalid(_))));
        assert!(matches!(
            call(&["lint", p, "--deny", "everything"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["lint", p, "--m", "0"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn lint_topology_flags_a_ring_chord() {
        // p0 → p2 is a chord of the 4-cycle: P0017.
        let path = write_temp(
            "chord.json",
            r#"{"n": 4, "lambda": 2,
                "sends": [{"src":0,"dst":1,"at":0}, {"src":0,"dst":2,"at":1},
                          {"src":1,"dst":3,"at":2}]}"#,
        );
        let err = call(&["lint", path.to_str().unwrap(), "--topology", "ring"]).unwrap_err();
        let CliError::LintFailed(report) = err else {
            panic!("expected LintFailed, got {err:?}");
        };
        assert!(report.contains("error[P0017]"), "{report}");
        assert!(
            report.contains("not an edge of the ring topology"),
            "{report}"
        );
    }

    #[test]
    fn lint_topology_complete_is_byte_identical() {
        let schedule = r#"{"n": 3, "lambda": "5/2",
            "sends": [{"src":0,"dst":1,"at":"0"}, {"src":0,"dst":2,"at":"1"}]}"#;
        let path = write_temp("complete.json", schedule);
        let p = path.to_str().unwrap();
        let plain = call(&["lint", p]).unwrap();
        let complete = call(&["lint", p, "--topology", "complete"]).unwrap();
        assert_eq!(plain, complete);
        let plain_json = call(&["lint", p, "--format", "json"]).unwrap();
        let complete_json =
            call(&["lint", p, "--topology", "complete", "--format", "json"]).unwrap();
        assert_eq!(plain_json, complete_json);
    }

    #[test]
    fn lint_uses_the_files_topology_field_as_default() {
        // Same chord schedule, topology recorded in the file itself.
        let path = write_temp(
            "chord-field.json",
            r#"{"n": 4, "lambda": 2, "topology": "ring",
                "sends": [{"src":0,"dst":1,"at":0}, {"src":0,"dst":2,"at":1},
                          {"src":1,"dst":3,"at":2}]}"#,
        );
        let p = path.to_str().unwrap();
        let err = call(&["lint", p]).unwrap_err();
        let CliError::LintFailed(report) = err else {
            panic!("expected LintFailed, got {err:?}");
        };
        assert!(report.contains("error[P0017]"), "{report}");
        // The flag overrides the file's field.
        assert!(call(&["lint", p, "--topology", "complete"]).is_ok());
    }

    #[test]
    fn lint_rejects_bad_topologies() {
        let path = write_temp(
            "topo-bad.json",
            r#"{"n": 3, "lambda": 2, "sends": [{"src":0,"dst":1,"at":0}, {"src":0,"dst":2,"at":1}]}"#,
        );
        let p = path.to_str().unwrap();
        // Unknown spec, and a size mismatch (hypercube:2 needs n = 4).
        assert!(matches!(
            call(&["lint", p, "--topology", "pentagon"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["lint", p, "--topology", "hypercube:2"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn simulate_topology_counts_edge_violations() {
        // BCAST(4) at λ = 1 sends 0→1, 0→2, 1→3 (or similar): at least
        // one send crosses a ring chord. Completion must be unchanged.
        let free = call(&["simulate", "bcast", "8", "1", "2"]).unwrap();
        let out = call(&["simulate", "bcast", "8", "1", "2", "--topology", "ring"]).unwrap();
        let line = out
            .lines()
            .find(|l| l.starts_with("edge violations"))
            .expect(&out);
        assert!(line.contains("(ring topology)"), "{out}");
        let count: usize = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(count > 0, "{out}");
        // Timing is untouched: all other lines match the free run.
        let free_completion = free.lines().find(|l| l.starts_with("completion")).unwrap();
        assert!(out.contains(free_completion), "{out}");

        let json = call(&[
            "simulate",
            "bcast",
            "8",
            "1",
            "2",
            "--topology",
            "ring",
            "--format",
            "json",
        ])
        .unwrap();
        assert!(json.contains("\"topology\": \"ring\""), "{json}");
        assert!(
            json.contains(&format!("\"edge_violations\": {count}")),
            "{json}"
        );
    }

    #[test]
    fn simulate_lint_inline_topology_reports_p0017() {
        let err = call(&[
            "simulate",
            "bcast",
            "8",
            "1",
            "2",
            "--lint-inline",
            "--topology",
            "ring",
        ])
        .unwrap_err();
        let CliError::LintFailed(report) = err else {
            panic!("expected LintFailed, got {err:?}");
        };
        assert!(report.contains("error[P0017]"), "{report}");
        assert!(
            report.contains("edge violations (ring topology)"),
            "{report}"
        );
    }

    #[test]
    fn analyze_topology_checks_size_and_preserves_clean_runs() {
        // Every named construction is size-checked at instantiation, so
        // a partitioned-by-mismatch graph is rejected up front (the
        // library-level P0019 path is covered by postal-abs tests).
        assert!(matches!(
            call(&[
                "analyze",
                "--algo",
                "bcast",
                "--n",
                "8",
                "--lambda-range",
                "1..2",
                "--topology",
                "torus:2x2",
            ]),
            Err(CliError::Invalid(_))
        ));

        // The full hypercube is connected: clean, and byte-identical to
        // the topology-free analysis.
        let plain = call(&[
            "analyze",
            "--algo",
            "bcast",
            "--n",
            "8",
            "--lambda-range",
            "1..2",
        ])
        .unwrap();
        let cube = call(&[
            "analyze",
            "--algo",
            "bcast",
            "--n",
            "8",
            "--lambda-range",
            "1..2",
            "--topology",
            "hypercube:3",
        ])
        .unwrap();
        assert_eq!(plain, cube);
    }

    #[test]
    fn stats_rejects_topology() {
        assert!(matches!(
            call(&["stats", "bcast", "8", "1", "2", "--topology", "ring"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn simulated_bcast_matches_plan_numbers() {
        // The simulate and plan paths must agree on BCAST's time.
        let sim = call(&["simulate", "bcast", "14", "1", "5/2"]).unwrap();
        assert!(sim.contains("completion: 15/2 units"));
    }

    #[test]
    fn simulate_json_format() {
        let out = call(&["simulate", "bcast", "14", "1", "5/2", "--format", "json"]).unwrap();
        assert!(out.contains("\"completion\": \"15/2\""), "{out}");
        assert!(out.contains("\"messages\": 13"), "{out}");
        assert!(out.contains("\"violations\": 0"), "{out}");
        // Brace-balanced object.
        assert!(out.starts_with('{') && out.ends_with('}'));
    }

    #[test]
    fn simulate_exports_all_three_formats() {
        let dir = std::env::temp_dir();
        let trace = dir.join("postal-cli-test-trace.json");
        let events = dir.join("postal-cli-test-events.jsonl");
        let metrics = dir.join("postal-cli-test-metrics.prom");
        let out = call(&[
            "simulate",
            "bcast",
            "14",
            "1",
            "5/2",
            "--trace-out",
            trace.to_str().unwrap(),
            "--events-out",
            events.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("wrote Chrome trace"), "{out}");
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text.contains("\"traceEvents\""), "{trace_text}");
        let events_text = std::fs::read_to_string(&events).unwrap();
        assert!(
            events_text.starts_with("{\"type\":\"run\""),
            "{events_text}"
        );
        let metrics_text = std::fs::read_to_string(&metrics).unwrap();
        assert!(
            metrics_text.contains("postal_completion_units"),
            "{metrics_text}"
        );
    }

    #[test]
    fn exported_jsonl_relints_clean() {
        // The acceptance loop: simulate BCAST(14, 5/2) with --events-out,
        // feed the JSONL straight back into `postal lint`, get clean.
        let events = std::env::temp_dir().join("postal-cli-test-relint.jsonl");
        call(&[
            "simulate",
            "bcast",
            "14",
            "1",
            "5/2",
            "--events-out",
            events.to_str().unwrap(),
        ])
        .unwrap();
        let out = call(&["lint", events.to_str().unwrap()]).unwrap();
        assert!(out.contains("clean"), "{out}");
        assert!(out.contains("t = 15/2"), "{out}");
    }

    #[test]
    fn stats_reports_the_optimum_gap() {
        let out = call(&["stats", "bcast", "14", "1", "5/2"]).unwrap();
        assert!(out.contains("completion:            15/2 units"), "{out}");
        assert!(
            out.contains("f_λ(n) optimum:        15/2 (1.00× optimal)"),
            "{out}"
        );
        assert!(out.contains("sends: 13   deliveries: 13"), "{out}");
        assert!(out.contains("per-processor port utilization"), "{out}");
    }

    #[test]
    fn stats_json_format() {
        let out = call(&["stats", "line", "8", "2", "5/2", "--format", "json"]).unwrap();
        assert!(out.contains("\"command\": \"stats\""), "{out}");
        assert!(out.contains("\"deliveries\": 14"), "{out}");
        assert!(out.contains("\"utilization\": ["), "{out}");
        // m > 1: no single-message optimum claimed.
        assert!(!out.contains("bcast_optimum"), "{out}");
    }

    #[test]
    fn stats_elides_long_utilization_tables() {
        let out = call(&["stats", "bcast", "40", "1", "2"]).unwrap();
        assert!(out.contains("… and 24 more"), "{out}");
    }

    #[test]
    fn check_bcast_is_clean_and_reports_reduction() {
        let out = call(&["check", "--algo", "bcast", "--n", "8", "--lambda", "5/2"]).unwrap();
        assert!(out.contains("executions explored   1"), "{out}");
        assert!(out.contains("verdict               clean"), "{out}");
        assert!(
            out.contains("completion            6 (reference 6)"),
            "{out}"
        );
        // Concurrent receives make the naive estimate exceed 1.
        assert!(!out.contains("naive interleavings   1\n"), "{out}");
    }

    #[test]
    fn check_all_covers_every_algorithm() {
        let out = call(&[
            "check", "--algo", "all", "--n", "5", "--lambda", "2", "--m", "2",
        ])
        .unwrap();
        for name in [
            "bcast",
            "repeat",
            "repeat-greedy",
            "pack",
            "pipeline",
            "line",
            "binary",
            "star",
            "dtree",
        ] {
            assert!(out.contains(&format!("model check: {name} ")), "{out}");
        }
        assert_eq!(out.matches("verdict               clean").count(), 9);
    }

    #[test]
    fn check_json_format() {
        let out = call(&[
            "check", "--algo", "bcast", "--n", "6", "--lambda", "2", "--format", "json",
        ])
        .unwrap();
        assert!(out.starts_with('[') && out.ends_with(']'), "{out}");
        assert!(out.contains("\"executions\": 1"), "{out}");
        assert!(out.contains("\"diagnostics\": ["), "{out}");
        let expected = runtimes::bcast_time(6, Latency::from_int(2));
        assert!(
            out.contains(&format!("\"reference_completion\": \"{expected}\"")),
            "{out}"
        );
    }

    #[test]
    fn check_rejects_bad_usage() {
        assert!(matches!(
            call(&["check", "--n", "8", "--lambda", "2"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            call(&["check", "--algo", "warp", "--n", "8", "--lambda", "2"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["check", "--algo", "bcast", "--n", "999", "--lambda", "2"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&[
                "check",
                "--algo",
                "bcast",
                "--n",
                "8",
                "--lambda",
                "2",
                "--max-interleavings",
                "0"
            ]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["check", "--algo", "bcast", "--n", "8", "--lambda", "2", "--m", "0"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn analyze_bcast_point_range_is_clean() {
        let out = call(&[
            "analyze",
            "--algo",
            "bcast",
            "--n",
            "8",
            "--lambda-range",
            "5/2..5/2",
        ])
        .unwrap();
        assert!(out.contains("abstract analysis: bcast"), "{out}");
        assert!(out.contains("verdict               clean"), "{out}");
        let expected = runtimes::bcast_time(8, Latency::from_ratio(5, 2));
        assert!(
            out.contains(&format!("completion            [{expected}, {expected}]")),
            "{out}"
        );
    }

    #[test]
    fn analyze_all_covers_every_algorithm_over_a_range() {
        let out = call(&[
            "analyze",
            "--algo",
            "all",
            "--n",
            "6",
            "--lambda-range",
            "1..3",
            "--m",
            "2",
            "--deny",
            "warn",
        ])
        .unwrap();
        for name in [
            "bcast",
            "repeat",
            "repeat-greedy",
            "pack",
            "pipeline",
            "line",
            "binary",
            "star",
            "dtree",
        ] {
            assert!(
                out.contains(&format!("abstract analysis: {name} ")),
                "{out}"
            );
        }
        assert_eq!(out.matches("verdict               clean").count(), 9);
    }

    #[test]
    fn analyze_json_format() {
        let out = call(&[
            "analyze",
            "--algo",
            "bcast",
            "--n",
            "8",
            "--lambda-range",
            "1..4",
            "--format",
            "json",
        ])
        .unwrap();
        assert!(out.starts_with('[') && out.ends_with(']'), "{out}");
        assert!(out.contains("\"lambda_range\": [\"1\", \"4\"]"), "{out}");
        assert!(out.contains("\"subintervals\": ["), "{out}");
        assert!(out.contains("\"exact\": true"), "{out}");
        assert!(out.contains("\"diagnostics\": ["), "{out}");
    }

    #[test]
    fn analyze_accepts_a_single_lambda_as_a_point_range() {
        let a = call(&[
            "analyze",
            "--algo",
            "line",
            "--n",
            "5",
            "--lambda-range",
            "2",
        ])
        .unwrap();
        let b = call(&[
            "analyze",
            "--algo",
            "line",
            "--n",
            "5",
            "--lambda-range",
            "2..2",
        ])
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn analyze_rejects_bad_usage() {
        assert!(matches!(
            call(&["analyze", "--n", "8", "--lambda-range", "1..2"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            call(&["analyze", "--algo", "bcast", "--n", "8"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            call(&[
                "analyze",
                "--algo",
                "warp",
                "--n",
                "8",
                "--lambda-range",
                "1..2"
            ]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&[
                "analyze",
                "--algo",
                "bcast",
                "--n",
                "8",
                "--lambda-range",
                "3..2"
            ]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&[
                "analyze",
                "--algo",
                "bcast",
                "--n",
                "8",
                "--lambda-range",
                "1/2..2"
            ]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&[
                "analyze",
                "--algo",
                "bcast",
                "--n",
                "8",
                "--lambda-range",
                "1..2",
                "--max-depth",
                "99"
            ]),
            Err(CliError::Invalid(_))
        ));
    }

    /// Pulls a `"field": N` integer out of a JSON summary.
    fn json_u64(json: &str, field: &str) -> u64 {
        json.lines()
            .find_map(|l| l.trim().strip_prefix(&format!("\"{field}\": ")))
            .and_then(|v| v.trim_end_matches(',').parse().ok())
            .unwrap_or_else(|| panic!("no {field} in {json}"))
    }

    #[test]
    fn simulate_with_sampling_reports_drop_accounting() {
        // rate:2 keeps every other event *per shard*: the exact split
        // depends on shard routing, but recorded + dropped must equal
        // the 26 events (13 sends + 13 recvs) BCAST(14) emits.
        let out = call(&["simulate", "bcast", "14", "1", "5/2", "--sample", "rate:2"]).unwrap();
        assert!(out.contains("sampling: head,rate:2 — recorded"), "{out}");

        let json = call(&[
            "simulate", "bcast", "14", "1", "5/2", "--sample", "rate:2", "--format", "json",
        ])
        .unwrap();
        assert!(json.contains("\"sample\": \"head,rate:2\""), "{json}");
        let recorded = json_u64(&json, "recorded_events");
        let dropped = json_u64(&json, "dropped_events");
        assert_eq!(recorded + dropped, 26, "{json}");
        assert!(dropped > 0, "{json}");
    }

    #[test]
    fn stats_reports_percentiles_and_partial_traces() {
        let out = call(&["stats", "bcast", "14", "1", "5/2"]).unwrap();
        assert!(out.contains("latency p50/p90/p99:"), "{out}");
        assert!(!out.contains("PARTIAL"), "{out}");

        let sampled = call(&["stats", "bcast", "14", "1", "5/2", "--sample", "rate:2"]).unwrap();
        assert!(sampled.contains("PARTIAL trace"), "{sampled}");
        assert!(sampled.contains("lower bounds"), "{sampled}");

        let json = call(&["stats", "bcast", "14", "1", "5/2", "--format", "json"]).unwrap();
        assert!(json.contains("\"latency_quantiles_units\""), "{json}");
        assert!(json.contains("\"dropped_events\": 0"), "{json}");
    }

    #[test]
    fn sampled_jsonl_relints_without_false_positives() {
        // A rate-sampled log is missing sends; without the partial-trace
        // downgrade this would report error[P0003]/error[P0005].
        let events = std::env::temp_dir().join("postal-cli-test-sampled.jsonl");
        call(&[
            "simulate",
            "bcast",
            "14",
            "1",
            "5/2",
            "--sample",
            "rate:3",
            "--events-out",
            events.to_str().unwrap(),
        ])
        .unwrap();
        let out = call(&["lint", events.to_str().unwrap()]).unwrap();
        assert!(out.contains("partial trace"), "{out}");
        assert!(!out.contains("error[P0003]"), "{out}");
        assert!(!out.contains("error[P0005]"), "{out}");
    }

    #[test]
    fn ring_capacity_bounds_the_recorded_log() {
        // 16 shards × capacity 1 = at most 16 recorded events.
        let json = call(&[
            "simulate",
            "bcast",
            "40",
            "1",
            "2",
            "--ring-capacity",
            "1",
            "--format",
            "json",
        ])
        .unwrap();
        // The keep-everything spec canonicalizes to "head".
        assert!(json.contains("\"sample\": \"head\""), "{json}");
        let recorded = json_u64(&json, "recorded_events");
        let dropped = json_u64(&json, "dropped_events");
        assert!(recorded <= 16, "{json}");
        assert_eq!(recorded + dropped, 78, "{json}"); // 39 sends + 39 recvs
    }

    #[test]
    fn sample_flag_rejects_garbage() {
        assert!(matches!(
            call(&["simulate", "bcast", "5", "1", "2", "--sample", "rate:0"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["simulate", "bcast", "5", "1", "2", "--sample", "sometimes"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["simulate", "bcast", "5", "1", "2", "--ring-capacity", "0"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn lint_tolerates_bom_and_blank_lines() {
        // A UTF-8 BOM plus leading blank lines (editors and heredocs
        // prepend both) must not break format sniffing.
        let path = write_temp(
            "bom.json",
            "\u{feff}\n\n{\"n\": 3, \"lambda\": \"5/2\",\n \"sends\": \
             [{\"src\":0,\"dst\":1,\"at\":\"0\"}, {\"src\":0,\"dst\":2,\"at\":\"1\"}]}",
        );
        let out = call(&["lint", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("clean"), "{out}");

        let events = std::env::temp_dir().join("postal-cli-test-bom-src.jsonl");
        call(&[
            "simulate",
            "bcast",
            "14",
            "1",
            "5/2",
            "--events-out",
            events.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&events).unwrap();
        let bom = write_temp("bom.jsonl", &format!("\u{feff}\n{text}"));
        let out = call(&["lint", bom.to_str().unwrap()]).unwrap();
        assert!(out.contains("clean"), "{out}");
        let streamed = call(&["lint", bom.to_str().unwrap(), "--stream"]).unwrap();
        assert_eq!(out, streamed);
    }

    #[test]
    fn lint_stream_matches_batch_byte_for_byte() {
        let events = std::env::temp_dir().join("postal-cli-test-stream.jsonl");
        call(&[
            "simulate",
            "pipeline",
            "9",
            "3",
            "5/2",
            "--events-out",
            events.to_str().unwrap(),
        ])
        .unwrap();
        let p = events.to_str().unwrap();
        assert_eq!(call(&["lint", p]), call(&["lint", p, "--stream"]));
        assert_eq!(
            call(&["lint", p, "--format", "json", "--deny", "warn"]),
            call(&["lint", p, "--format", "json", "--deny", "warn", "--stream"]),
        );
    }

    #[test]
    fn lint_stream_agrees_on_sampled_and_truncated_logs() {
        let events = std::env::temp_dir().join("postal-cli-test-stream-sampled.jsonl");
        call(&[
            "simulate",
            "bcast",
            "14",
            "1",
            "5/2",
            "--sample",
            "rate:3",
            "--events-out",
            events.to_str().unwrap(),
        ])
        .unwrap();
        let p = events.to_str().unwrap();
        let batch = call(&["lint", p]);
        assert_eq!(batch, call(&["lint", p, "--stream"]));
        assert!(batch.unwrap().contains("partial trace"));

        // A run cut off by the event budget: the coverage error must be
        // downgraded (and noted) identically on both paths.
        let trunc = write_temp(
            "trunc.jsonl",
            "{\"type\":\"run\",\"engine\":\"event\",\"n\":3,\"lambda\":\"2\"}\n\
             {\"type\":\"send\",\"seq\":0,\"src\":0,\"dst\":1,\"start\":\"0\",\"finish\":\"1\"}\n\
             {\"type\":\"truncated\",\"processed\":2,\"limit\":2,\"at\":\"1\"}\n",
        );
        let p = trunc.to_str().unwrap();
        let batch = call(&["lint", p]).unwrap();
        assert!(batch.contains("cut short by the event budget"), "{batch}");
        assert!(batch.contains("warning[P0005]"), "{batch}");
        assert_eq!(batch, call(&["lint", p, "--stream"]).unwrap());
    }

    #[test]
    fn lint_stream_rejects_schedule_json() {
        let path = write_temp(
            "stream-schedule.json",
            r#"{"n": 2, "lambda": 2, "sends": [{"src":0,"dst":1,"at":0}]}"#,
        );
        assert!(matches!(
            call(&["lint", path.to_str().unwrap(), "--stream"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn simulate_lint_inline_clean_run() {
        let out = call(&["simulate", "bcast", "14", "1", "5/2", "--lint-inline"]).unwrap();
        assert!(out.contains("completion: 15/2 units"), "{out}");
        assert!(out.contains("sends:     13"), "{out}");
        assert!(out.contains("inline lint: 0 diagnostic(s)"), "{out}");
        assert!(out.contains("no stored trace"), "{out}");

        let json = call(&[
            "simulate",
            "binary",
            "10",
            "2",
            "2",
            "--lint-inline",
            "--format",
            "json",
        ])
        .unwrap();
        assert!(json.contains("\"lint_inline\": true"), "{json}");
        assert!(json.contains("\"diagnostics\": ["), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    }

    #[test]
    fn simulate_lint_inline_covers_the_broadcast_algorithms() {
        for algo in [
            "bcast",
            "repeat",
            "repeat-greedy",
            "pack",
            "pipeline",
            "line",
            "binary",
            "star",
            "dtree:3",
        ] {
            // BCAST carries exactly one message whatever m says; lint
            // with m = 3 would rightly flag the run as too fast (P0007).
            let m = if algo == "bcast" { "1" } else { "3" };
            let out = call(&["simulate", algo, "10", m, "2", "--lint-inline"])
                .unwrap_or_else(|e| panic!("{algo}: {e:?}"));
            assert!(out.contains("model violations: 0"), "{algo}:\n{out}");
        }
    }

    #[test]
    fn simulate_lint_inline_with_sampling_downgrades() {
        let out = call(&[
            "simulate",
            "bcast",
            "14",
            "1",
            "5/2",
            "--lint-inline",
            "--sample",
            "rate:3",
        ])
        .unwrap();
        assert!(out.contains("sampling: head,rate:3 —"), "{out}");
        assert!(!out.contains("error[P0003]"), "{out}");
        assert!(!out.contains("error[P0005]"), "{out}");
    }

    #[test]
    fn lint_inline_rejects_bad_combinations() {
        assert!(matches!(
            call(&["simulate", "gossip", "10", "1", "2", "--lint-inline"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&[
                "simulate",
                "bcast",
                "10",
                "1",
                "2",
                "--lint-inline",
                "--events-out",
                "/tmp/postal-cli-test-inline.jsonl"
            ]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["stats", "bcast", "10", "1", "2", "--lint-inline"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn output_flags_reject_bad_usage() {
        assert!(matches!(
            call(&["simulate", "bcast", "5", "1", "2", "--format", "yaml"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["simulate", "bcast", "5", "1", "2", "--trace-out"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            call(&["stats", "bcast", "5", "1", "2", "--bogus", "x"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(call(&["stats"]), Err(CliError::Usage(_))));
    }
}
