//! `postal` — a command-line explorer for postal-model broadcasting.
//!
//! ```text
//! postal tree 14 5/2            # the Figure-1 broadcast tree
//! postal gantt 14 5/2           # the same schedule as a timeline
//! postal fib 5/2 20             # F_λ(t) table up to t = 20
//! postal plan 512 16 5/2        # which algorithm to use, with exact times
//! postal simulate pipeline 64 8 5/2
//! ```

use postal_cli::{run, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => println!("{output}"),
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        Err(CliError::Invalid(msg)) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
        Err(CliError::LintFailed(report)) => {
            eprint!("{report}");
            std::process::exit(1);
        }
    }
}
