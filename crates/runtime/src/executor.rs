//! The threaded postal-model executor.
//!
//! Where `postal-sim` *simulates* MPS(n, λ) on a virtual clock, this
//! executor *realizes* it: every processor is an OS thread pair
//! communicating over channels, with the postal-model costs enforced by
//! wall-clock sleeps scaled by a configurable unit duration:
//!
//! * each processor has an independent **output port thread** that
//!   serializes its sends at one unit of wall time apiece (send-and-
//!   forget: the issuing callback never blocks);
//! * a message "travels" until `send_start + λ` units before the
//!   receiving thread may process it;
//! * the **input port** serializes receives at one unit apiece (FIFO
//!   queued, like the simulator's queued mode).
//!
//! The same [`Program`]s that run on the simulator run here unchanged —
//! this is the workspace's demonstration that the paper's event-driven
//! algorithms are directly implementable on a real concurrent
//! message-passing substrate, not just on a scheduler's whiteboard.
//! Timing is approximate (OS jitter), so tests assert correctness exactly
//! and timing within tolerances.
//!
//! Termination uses a global outstanding-work counter: every queued send,
//! pending wake-up, and running callback holds a token; threads exit when
//! the count reaches zero, which (tokens being released only after any
//! tokens they spawn are registered) implies global quiescence.

use crate::clock::{units_to_time, UnitClock};
use postal_model::{Latency, Time};
use postal_obs::{ObsEvent, Recorder};
use postal_sim::{Context, ProcId, Program};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A failure of the threaded substrate itself (as opposed to a timing
/// anomaly, which the reports expose as data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A worker thread exited before global quiescence — in practice, a
    /// program callback panicked, so the run can never drain its
    /// outstanding-work counter. The model checker classifies this as a
    /// deadlock of the remaining processors (lint code `P0008`).
    WorkerExited {
        /// The processor whose thread died first (lowest index if
        /// several).
        proc: u32,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::WorkerExited { proc } => {
                write!(f, "processor thread p{proc} exited before quiescence")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Sets the shared abort flag if its thread unwinds, so sibling
/// processor threads stop waiting for an outstanding-work count that can
/// no longer reach zero.
struct AbortGuard(Arc<AtomicBool>);

impl Drop for AbortGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::SeqCst);
        }
    }
}

/// A message in flight between threads.
struct TimedMsg<P> {
    seq: u64,
    from: ProcId,
    payload: P,
    /// Model time at which the receive completes (send_start + λ).
    deliver_at_units: f64,
}

/// A send request queued to a processor's output-port thread.
struct SendRequest<P> {
    dst: ProcId,
    payload: P,
}

/// One completed delivery, as observed by the receiving thread.
#[derive(Debug, Clone)]
pub struct Delivery<P> {
    /// Receiving processor.
    pub to: ProcId,
    /// Sending processor.
    pub from: ProcId,
    /// The payload.
    pub payload: P,
    /// Model units (wall-derived) at which the receive completed.
    pub at_units: f64,
}

/// The result of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport<P> {
    /// Every delivery, globally sorted by completion time.
    pub deliveries: Vec<Delivery<P>>,
    /// Model units at which the last receive completed (0 if none).
    pub elapsed_units: f64,
    /// The run's completion on the virtual clock, quantized to the
    /// runtime's 1/1024-unit lattice — the executor's own answer to "when
    /// did the last receive finish", so callers compare against model
    /// predictions without re-deriving it from `deliveries`.
    pub completion: Time,
}

impl<P> ThreadedReport<P> {
    /// Deliveries received by processor `p`, in time order.
    pub fn received_by(&self, p: ProcId) -> impl Iterator<Item = &Delivery<P>> {
        self.deliveries.iter().filter(move |d| d.to == p)
    }
}

/// Wall-clock configuration for a threaded run.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Wall duration of one model unit. Smaller is faster but noisier;
    /// the default of 2 ms keeps a 10-unit broadcast around 20 ms with
    /// low relative jitter.
    pub unit: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            unit: Duration::from_millis(2),
        }
    }
}

/// The context handed to programs on the threaded substrate.
struct ThreadCtx<'a, P> {
    me: ProcId,
    n: usize,
    clock: UnitClock,
    out_queue: &'a SyncSender<SendRequest<P>>,
    wakes: &'a mut BinaryHeap<std::cmp::Reverse<OrderedF64>>,
    outstanding: &'a AtomicI64,
}

/// f64 wrapper with total order for the wake heap (wake times are always
/// finite).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);
impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl<P> Context<P> for ThreadCtx<'_, P> {
    fn me(&self) -> ProcId {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn now(&self) -> Time {
        self.clock.now_time()
    }

    fn send(&mut self, dst: ProcId, payload: P) {
        assert!(dst.index() < self.n, "send out of range");
        assert!(dst != self.me, "the postal model has no self-sends");
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.out_queue
            .send(SendRequest { dst, payload })
            .expect("output port thread lives as long as its processor");
    }

    fn wake_at(&mut self, t: Time) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.wakes.push(std::cmp::Reverse(OrderedF64(t.to_f64())));
    }
}

/// Runs `programs` (one per processor) on real threads under latency λ.
///
/// Returns after global quiescence. Panics if a program panics.
///
/// # Panics
/// Panics if `programs` is empty.
pub fn run_threaded<P>(
    latency: Latency,
    config: RuntimeConfig,
    programs: Vec<Box<dyn Program<P> + Send>>,
) -> ThreadedReport<P>
where
    P: Clone + Send + 'static,
{
    match try_run_threaded(latency, config, programs) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`run_threaded`]: a worker thread dying early (a panicking
/// program callback) is reported as [`RuntimeError::WorkerExited`]
/// instead of aborting the caller, and the surviving threads are
/// signalled to stop rather than spinning on an outstanding-work count
/// that can no longer drain.
///
/// # Errors
/// [`RuntimeError::WorkerExited`] if any processor or port thread
/// panicked.
///
/// # Panics
/// Panics if `programs` is empty.
pub fn try_run_threaded<P>(
    latency: Latency,
    config: RuntimeConfig,
    programs: Vec<Box<dyn Program<P> + Send>>,
) -> Result<ThreadedReport<P>, RuntimeError>
where
    P: Clone + Send + 'static,
{
    run_threaded_inner(latency, config, programs, None)
}

/// [`run_threaded`] with every send and receive additionally streamed
/// into an observability recorder from the port and processor threads
/// (same event vocabulary as the simulators; timestamps are wall-derived
/// and quantized to the 1/1024-unit virtual-clock lattice).
///
/// # Panics
/// As [`run_threaded`].
pub fn run_threaded_observed<P>(
    latency: Latency,
    config: RuntimeConfig,
    programs: Vec<Box<dyn Program<P> + Send>>,
    recorder: Arc<dyn Recorder>,
) -> ThreadedReport<P>
where
    P: Clone + Send + 'static,
{
    match try_run_threaded_observed(latency, config, programs, recorder) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`run_threaded_observed`]; see [`try_run_threaded`].
///
/// # Errors
/// [`RuntimeError::WorkerExited`] if any processor or port thread
/// panicked.
///
/// # Panics
/// Panics if `programs` is empty.
pub fn try_run_threaded_observed<P>(
    latency: Latency,
    config: RuntimeConfig,
    programs: Vec<Box<dyn Program<P> + Send>>,
    recorder: Arc<dyn Recorder>,
) -> Result<ThreadedReport<P>, RuntimeError>
where
    P: Clone + Send + 'static,
{
    run_threaded_inner(latency, config, programs, Some(recorder))
}

fn run_threaded_inner<P>(
    latency: Latency,
    config: RuntimeConfig,
    programs: Vec<Box<dyn Program<P> + Send>>,
    recorder: Option<Arc<dyn Recorder>>,
) -> Result<ThreadedReport<P>, RuntimeError>
where
    P: Clone + Send + 'static,
{
    let n = programs.len();
    assert!(n >= 1, "at least one processor required");
    let lam = latency.to_f64();
    let epoch = Instant::now() + Duration::from_millis(5); // sync start
    let clock = UnitClock::new(epoch, config.unit);

    // Inboxes: one per processor.
    let mut inbox_tx: Vec<Sender<TimedMsg<P>>> = Vec::with_capacity(n);
    let mut inbox_rx: Vec<Option<Receiver<TimedMsg<P>>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        inbox_tx.push(tx);
        inbox_rx.push(Some(rx));
    }

    // One startup token per processor, released after its on_start.
    let outstanding = Arc::new(AtomicI64::new(n as i64));
    // Set when any worker unwinds: survivors must stop waiting for a
    // count that can no longer reach zero.
    let aborted = Arc::new(AtomicBool::new(false));
    // Global send sequence numbers, claimed by port threads at send start.
    let send_seq = Arc::new(AtomicU64::new(0));

    let mut proc_handles = Vec::with_capacity(n);
    let mut port_handles = Vec::with_capacity(n);

    for (i, mut program) in programs.into_iter().enumerate() {
        let me = ProcId::from(i);
        let inbox = inbox_rx[i].take().expect("each inbox taken once");
        let all_inboxes = inbox_tx.clone();
        let outstanding = Arc::clone(&outstanding);

        // Output-port thread: serialize sends at 1 unit each. The
        // bounded queue backpressures runaway senders.
        let (port_tx, port_rx) = sync_channel::<SendRequest<P>>(1024);
        let port_clock = clock;
        let port_recorder = recorder.clone();
        let port_seq = Arc::clone(&send_seq);
        port_handles.push(std::thread::spawn(move || {
            let mut port_free = 0.0f64;
            while let Ok(req) = port_rx.recv() {
                let send_start = port_clock.now_units().max(port_free);
                port_free = send_start + 1.0;
                let seq = port_seq.fetch_add(1, Ordering::SeqCst);
                if let Some(r) = &port_recorder {
                    let start = units_to_time(send_start);
                    r.record(ObsEvent::Send {
                        seq,
                        src: me.0,
                        dst: req.dst.0,
                        start,
                        finish: start + Time::ONE,
                    });
                }
                // Busy sending for one unit (send-and-forget: the
                // *program* already moved on; only the port blocks).
                port_clock.sleep_until_units(port_free);
                let msg = TimedMsg {
                    seq,
                    from: me,
                    payload: req.payload,
                    deliver_at_units: send_start + lam,
                };
                // The receiver thread outlives all in-flight messages
                // (it exits only at global quiescence), but shutdown
                // racing is tolerated: a disconnected inbox means the
                // run is already over.
                let _ = all_inboxes[req.dst.index()].send(msg);
            }
        }));

        let proc_clock = clock;
        let proc_recorder = recorder.clone();
        let proc_aborted = Arc::clone(&aborted);
        proc_handles.push(std::thread::spawn(move || {
            let _guard = AbortGuard(Arc::clone(&proc_aborted));
            let mut deliveries: Vec<Delivery<P>> = Vec::new();
            let mut wakes: BinaryHeap<std::cmp::Reverse<OrderedF64>> = BinaryHeap::new();
            let mut in_port_free = 0.0f64;

            // Wait for the shared epoch, then run on_start.
            proc_clock.sleep_until_units(0.0);
            {
                let mut ctx = ThreadCtx {
                    me,
                    n,
                    clock: proc_clock,
                    out_queue: &port_tx,
                    wakes: &mut wakes,
                    outstanding: &outstanding,
                };
                program.on_start(&mut ctx);
            }
            outstanding.fetch_sub(1, Ordering::SeqCst); // startup token

            loop {
                // Fire due wake-ups.
                while let Some(&std::cmp::Reverse(OrderedF64(w))) = wakes.peek() {
                    if proc_clock.now_units() + 1e-9 < w {
                        break;
                    }
                    wakes.pop();
                    if let Some(r) = &proc_recorder {
                        r.record(ObsEvent::Wake {
                            proc: me.0,
                            at: units_to_time(w),
                        });
                    }
                    let mut ctx = ThreadCtx {
                        me,
                        n,
                        clock: proc_clock,
                        out_queue: &port_tx,
                        wakes: &mut wakes,
                        outstanding: &outstanding,
                    };
                    program.on_wake(&mut ctx);
                    outstanding.fetch_sub(1, Ordering::SeqCst);
                }

                // Poll the inbox until the next wake (or briefly).
                let next_wake_in = wakes
                    .peek()
                    .map(|&std::cmp::Reverse(OrderedF64(w))| {
                        ((w - proc_clock.now_units()).max(0.0)) * proc_clock.unit().as_secs_f64()
                    })
                    .unwrap_or(f64::INFINITY);
                let timeout = Duration::from_secs_f64(next_wake_in.clamp(0.000_05, 0.001));
                match inbox.recv_timeout(timeout) {
                    Ok(msg) => {
                        // Input port: FIFO, one unit per receive, never
                        // earlier than the model delivery time.
                        let recv_finish = msg.deliver_at_units.max(in_port_free + 1.0);
                        let queued = recv_finish > msg.deliver_at_units + 1e-9;
                        in_port_free = recv_finish;
                        proc_clock.sleep_until_units(recv_finish);
                        if let Some(r) = &proc_recorder {
                            let finish = units_to_time(recv_finish);
                            r.record(ObsEvent::Recv {
                                seq: msg.seq,
                                src: msg.from.0,
                                dst: me.0,
                                arrival: units_to_time(msg.deliver_at_units - 1.0),
                                start: finish - Time::ONE,
                                finish,
                                queued,
                            });
                        }
                        deliveries.push(Delivery {
                            to: me,
                            from: msg.from,
                            payload: msg.payload.clone(),
                            at_units: recv_finish,
                        });
                        let mut ctx = ThreadCtx {
                            me,
                            n,
                            clock: proc_clock,
                            out_queue: &port_tx,
                            wakes: &mut wakes,
                            outstanding: &outstanding,
                        };
                        program.on_receive(&mut ctx, msg.from, msg.payload);
                        outstanding.fetch_sub(1, Ordering::SeqCst);
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if proc_aborted.load(Ordering::SeqCst) {
                            break;
                        }
                        if wakes.is_empty() && outstanding.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            deliveries
        }));
    }
    // Drop our clones so port threads can observe disconnection later.
    drop(inbox_tx);

    let mut deliveries: Vec<Delivery<P>> = Vec::new();
    let mut first_dead: Option<u32> = None;
    for (i, h) in proc_handles.into_iter().enumerate() {
        match h.join() {
            Ok(d) => deliveries.extend(d),
            Err(_) => {
                if first_dead.is_none() {
                    first_dead = Some(i as u32);
                }
            }
        }
    }
    for (i, h) in port_handles.into_iter().enumerate() {
        if h.join().is_err() && first_dead.is_none() {
            first_dead = Some(i as u32);
        }
    }
    if let Some(proc) = first_dead {
        return Err(RuntimeError::WorkerExited { proc });
    }
    deliveries.sort_by(|a, b| a.at_units.total_cmp(&b.at_units));
    let elapsed_units = deliveries.last().map(|d| d.at_units).unwrap_or(0.0);
    Ok(ThreadedReport {
        deliveries,
        elapsed_units,
        completion: units_to_time(elapsed_units),
    })
}

/// Builds one boxed `Send` program per processor from a closure.
pub fn send_programs_from<P, F>(n: usize, mut f: F) -> Vec<Box<dyn Program<P> + Send>>
where
    F: FnMut(ProcId) -> Box<dyn Program<P> + Send>,
{
    (0..n).map(|i| f(ProcId::from(i))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_algos::bcast::{BcastPayload, BcastProgram};
    use postal_algos::repeat::{Pacing, RepeatProgram};
    use postal_model::runtimes;

    fn bcast_threaded(n: usize, latency: Latency) -> ThreadedReport<BcastPayload> {
        let programs = send_programs_from(n, |id| {
            Box::new(BcastProgram::new(
                latency,
                (id == ProcId::ROOT).then_some(n as u64),
            )) as Box<dyn Program<BcastPayload> + Send>
        });
        run_threaded(latency, RuntimeConfig::default(), programs)
    }

    #[test]
    fn bcast_delivers_to_every_thread() {
        let n = 14;
        let report = bcast_threaded(n, Latency::from_ratio(5, 2));
        for i in 1..n {
            assert_eq!(
                report.received_by(ProcId::from(i)).count(),
                1,
                "p{i} deliveries"
            );
        }
        assert_eq!(report.deliveries.len(), n - 1);
    }

    #[test]
    fn bcast_wall_time_tracks_model_time() {
        // Correct lower bound: sleeps enforce model minimums. Loose
        // upper bound: OS jitter.
        let n = 14;
        let lam = Latency::from_ratio(5, 2);
        let model = runtimes::bcast_time(n as u128, lam).to_f64(); // 7.5
        let report = bcast_threaded(n, lam);
        assert!(
            report.elapsed_units >= model - 0.01,
            "finished impossibly fast: {} < {model}",
            report.elapsed_units
        );
        assert!(
            report.elapsed_units < model * 3.0 + 5.0,
            "far too slow: {} vs {model}",
            report.elapsed_units
        );
    }

    /// Converts a threaded report's deliveries into race-detector
    /// flights (send instants reconstructed as `recv − λ`).
    fn flights_of<P>(report: &ThreadedReport<P>, latency: Latency) -> Vec<postal_verify::Flight> {
        postal_verify::flights_from_deliveries(
            report
                .deliveries
                .iter()
                .map(|d| (d.from.0, d.to.0, d.at_units)),
            latency,
        )
    }

    #[test]
    fn bcast_wall_trace_has_no_delivery_races() {
        // A broadcast delivers exactly once per processor: nothing to
        // reorder, so the happens-before detector must stay silent even
        // on jittery wall-clock timings.
        let n = 14;
        let lam = Latency::from_ratio(5, 2);
        let report = bcast_threaded(n, lam);
        let races = postal_verify::detect_races(n as u32, &flights_of(&report, lam));
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn independent_senders_race_on_the_wall_clock() {
        // p1 and p2 each fire one message at p0 at start: the arrival
        // order is whatever the OS scheduler made of it, and the
        // detector must flag it as not causally forced.
        struct FireAtRoot;
        impl Program<u32> for FireAtRoot {
            fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
                if ctx.me() != ProcId::ROOT {
                    ctx.send(ProcId::ROOT, ctx.me().0);
                }
            }
            fn on_receive(&mut self, _ctx: &mut dyn Context<u32>, _from: ProcId, _p: u32) {}
        }
        let lam = Latency::from_int(1);
        let programs =
            send_programs_from(3, |_| Box::new(FireAtRoot) as Box<dyn Program<u32> + Send>);
        let report = run_threaded(lam, RuntimeConfig::default(), programs);
        assert_eq!(report.deliveries.len(), 2);
        let races = postal_verify::detect_races(3, &flights_of(&report, lam));
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!(races[0].dst, 0);
        assert!(
            races[0].message.contains("not causally forced"),
            "{}",
            races[0].message
        );
    }

    #[test]
    fn repeat_preserves_order_on_threads() {
        let (n, m) = (8usize, 4u32);
        let lam = Latency::from_int(2);
        let programs = send_programs_from(n, |id| {
            Box::new(RepeatProgram::new(
                lam,
                Pacing::Greedy,
                (id == ProcId::ROOT).then_some((n as u64, m)),
            )) as Box<dyn Program<postal_algos::MultiPacket> + Send>
        });
        let report = run_threaded(lam, RuntimeConfig::default(), programs);
        for i in 1..n {
            let msgs: Vec<u32> = report
                .received_by(ProcId::from(i))
                .map(|d| d.payload.msg)
                .collect();
            assert_eq!(msgs.len(), m as usize, "p{i}");
            let mut sorted = msgs.clone();
            sorted.sort_unstable();
            assert_eq!(msgs, sorted, "p{i} out of order: {msgs:?}");
        }
    }

    #[test]
    fn output_port_paces_bursts_at_one_unit_each() {
        // A root that fires 8 sends in one callback: wall-clock send
        // pacing must be at least one unit apart at the receivers.
        struct Burst;
        impl Program<BcastPayload> for Burst {
            fn on_start(&mut self, ctx: &mut dyn Context<BcastPayload>) {
                for _ in 0..8 {
                    ctx.send(ProcId(1), BcastPayload { range_size: 1 });
                }
            }
            fn on_receive(
                &mut self,
                _: &mut dyn Context<BcastPayload>,
                _: ProcId,
                _: BcastPayload,
            ) {
            }
        }
        use postal_sim::Context;
        let lam = Latency::from_int(2);
        let programs: Vec<Box<dyn Program<BcastPayload> + Send>> =
            vec![Box::new(Burst), Box::new(postal_sim::Idle)];
        let report = run_threaded(
            lam,
            RuntimeConfig {
                unit: Duration::from_millis(2),
            },
            programs,
        );
        assert_eq!(report.deliveries.len(), 8);
        let times: Vec<f64> = report.received_by(ProcId(1)).map(|d| d.at_units).collect();
        for w in times.windows(2) {
            assert!(
                w[1] - w[0] >= 0.95,
                "receives too close: {:.3} then {:.3}",
                w[0],
                w[1]
            );
        }
        // The 8th delivery cannot finish before 7 + λ = 9 units.
        assert!(
            times[7] >= 9.0 - 0.05,
            "finished impossibly fast: {}",
            times[7]
        );
    }

    #[test]
    fn observed_run_through_sharded_ring_accounts_for_every_event() {
        // Real threads hammer the ring concurrently; the accounting
        // invariant must hold regardless of interleaving, and the
        // drained log must stamp its own completeness.
        let n = 8;
        let lam = Latency::from_int(2);
        let rec = Arc::new(postal_obs::RingRecorder::with_spec(
            4,
            postal_obs::SampleSpec::tail(1),
        ));
        let programs = send_programs_from(n, |id| {
            Box::new(BcastProgram::new(
                lam,
                (id == ProcId::ROOT).then_some(n as u64),
            )) as Box<dyn Program<BcastPayload> + Send>
        });
        let report = run_threaded_observed(
            lam,
            RuntimeConfig::default(),
            programs,
            Arc::clone(&rec) as Arc<dyn postal_obs::Recorder>,
        );
        assert_eq!(report.deliveries.len(), n - 1);
        let ring = Arc::try_unwrap(rec).expect("all threads joined");
        assert_eq!(
            ring.recorded_events() + ring.dropped_events(),
            ring.attempted_events()
        );
        let dropped = ring.dropped_events();
        let log = ring.into_log(postal_obs::RunMeta::new("threaded", n as u32).latency(lam));
        assert_eq!(log.meta().dropped_events, Some(dropped));
        assert_eq!(log.meta().sample.as_deref(), Some("tail"));
    }

    #[test]
    fn completion_comes_from_the_virtual_clock() {
        let n = 8;
        let lam = Latency::from_int(2);
        let model = runtimes::bcast_time(n as u128, lam).to_f64();
        let report = bcast_threaded(n, lam);
        // The report's Time completion is the quantized elapsed_units —
        // no caller-side recomputation from the delivery list needed.
        assert_eq!(
            report.completion,
            crate::clock::units_to_time(report.elapsed_units)
        );
        assert!(report.completion.to_f64() >= model - 0.01);
    }

    #[test]
    fn observed_run_records_port_spans() {
        let n = 6;
        let lam = Latency::from_ratio(5, 2);
        let rec = Arc::new(postal_obs::MemoryRecorder::new());
        let programs = send_programs_from(n, |id| {
            Box::new(BcastProgram::new(
                lam,
                (id == ProcId::ROOT).then_some(n as u64),
            )) as Box<dyn Program<BcastPayload> + Send>
        });
        let report = run_threaded_observed(
            lam,
            RuntimeConfig::default(),
            programs,
            Arc::clone(&rec) as Arc<dyn postal_obs::Recorder>,
        );
        let log = Arc::try_unwrap(rec)
            .expect("all threads joined")
            .into_log(postal_obs::RunMeta::new("threaded", n as u32).latency(lam));
        // One send and one receive per delivery, nothing lost in transit.
        assert_eq!(log.deliveries(), report.deliveries.len());
        assert_eq!(log.deliveries(), n - 1);
        assert_eq!(
            log.events().iter().filter(|e| e.kind() == "send").count(),
            n - 1
        );
        // Wall jitter aside, the log's completion is the report's.
        assert_eq!(log.completion_time(), report.completion);
        // Every recv is ≥ λ after its matching send started.
        let sends: Vec<(u64, Time)> = log
            .events()
            .iter()
            .filter_map(|e| match *e {
                postal_obs::ObsEvent::Send { seq, start, .. } => Some((seq, start)),
                _ => None,
            })
            .collect();
        for e in log.events() {
            if let postal_obs::ObsEvent::Recv { seq, finish, .. } = *e {
                let (_, start) = sends.iter().find(|&&(q, _)| q == seq).copied().unwrap();
                assert!(
                    (finish - start).to_f64() >= lam.to_f64() - 0.01,
                    "recv #{seq} finished impossibly fast"
                );
            }
        }
    }

    #[test]
    fn panicking_program_reports_worker_exited() {
        // p1 dies in its receive callback. The run must neither abort the
        // caller nor hang the surviving threads on the outstanding-work
        // counter; it reports which processor died.
        struct Fragile;
        impl Program<BcastPayload> for Fragile {
            fn on_start(&mut self, ctx: &mut dyn Context<BcastPayload>) {
                if ctx.me() == ProcId::ROOT {
                    ctx.send(ProcId(1), BcastPayload { range_size: 1 });
                    ctx.send(ProcId(2), BcastPayload { range_size: 1 });
                }
            }
            fn on_receive(
                &mut self,
                ctx: &mut dyn Context<BcastPayload>,
                _: ProcId,
                _: BcastPayload,
            ) {
                assert!(ctx.me() != ProcId(1), "injected fault");
            }
        }
        use postal_sim::Context;
        let programs: Vec<Box<dyn Program<BcastPayload> + Send>> = send_programs_from(3, |_| {
            Box::new(Fragile) as Box<dyn Program<BcastPayload> + Send>
        });
        let result = try_run_threaded(Latency::from_int(2), RuntimeConfig::default(), programs);
        assert_eq!(result.unwrap_err(), RuntimeError::WorkerExited { proc: 1 });
    }

    #[test]
    fn empty_system_terminates() {
        let programs: Vec<Box<dyn Program<BcastPayload> + Send>> = send_programs_from(1, |_| {
            Box::new(BcastProgram::new(Latency::TELEPHONE, Some(1)))
                as Box<dyn Program<BcastPayload> + Send>
        });
        let report = run_threaded(Latency::TELEPHONE, RuntimeConfig::default(), programs);
        assert_eq!(report.deliveries.len(), 0);
        assert_eq!(report.elapsed_units, 0.0);
    }
}
