//! # postal-runtime
//!
//! A threaded execution substrate for postal-model programs: where
//! `postal-sim` simulates MPS(n, λ) on a virtual clock, this crate runs
//! the *same* event-driven [`postal_sim::Program`]s on real OS threads
//! with channel-based message passing, enforcing the model's send/receive
//! costs and latency with wall-clock sleeps.
//!
//! Use it to demonstrate that the paper's algorithms are executable
//! artifacts, to observe them under real scheduler jitter, and to
//! sanity-check that wall-clock completion tracks the exact model times
//! the simulator produces.
//!
//! ```
//! use postal_runtime::{run_threaded, send_programs_from, RuntimeConfig};
//! use postal_algos::bcast::{BcastPayload, BcastProgram};
//! use postal_model::Latency;
//! use postal_sim::{ProcId, Program};
//!
//! let lam = Latency::from_int(2);
//! let n = 6;
//! let programs = send_programs_from(n, |id| {
//!     Box::new(BcastProgram::new(lam, (id == ProcId::ROOT).then_some(n as u64)))
//!         as Box<dyn Program<BcastPayload> + Send>
//! });
//! let report = run_threaded(lam, RuntimeConfig::default(), programs);
//! assert_eq!(report.deliveries.len(), n - 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod executor;

pub use clock::{units_to_time, UnitClock};
pub use executor::{
    run_threaded, run_threaded_observed, send_programs_from, try_run_threaded,
    try_run_threaded_observed, Delivery, RuntimeConfig, RuntimeError, ThreadedReport,
};
