//! Wall-clock ↔ model-time conversion for the threaded runtime.

use postal_model::{Ratio, Time};
use std::time::{Duration, Instant};

/// A shared epoch translating between wall-clock instants and model units.
#[derive(Debug, Clone, Copy)]
pub struct UnitClock {
    epoch: Instant,
    unit: Duration,
}

impl UnitClock {
    /// Creates a clock whose model time 0 is `epoch` and whose unit lasts
    /// `unit` of wall time.
    ///
    /// # Panics
    /// Panics if `unit` is zero.
    pub fn new(epoch: Instant, unit: Duration) -> UnitClock {
        assert!(!unit.is_zero(), "a model unit must take nonzero wall time");
        UnitClock { epoch, unit }
    }

    /// The wall duration of one model unit.
    pub fn unit(&self) -> Duration {
        self.unit
    }

    /// Elapsed model units right now (fractional).
    pub fn now_units(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() / self.unit.as_secs_f64()
    }

    /// Elapsed model time as an (approximate) exact rational, for the
    /// `Context::now` interface. Resolution: 1/1024 unit.
    pub fn now_time(&self) -> Time {
        units_to_time(self.now_units())
    }

    /// Sleeps the current thread until `units` of model time have elapsed
    /// since the epoch. Returns immediately if that moment has passed.
    pub fn sleep_until_units(&self, units: f64) {
        loop {
            let now = self.now_units();
            if now >= units {
                return;
            }
            let remaining = (units - now) * self.unit.as_secs_f64();
            std::thread::sleep(Duration::from_secs_f64(remaining.max(0.0)));
        }
    }
}

/// Quantizes fractional model units onto the runtime's virtual-time
/// lattice (resolution 1/1024 unit), the single conversion used for
/// `Context::now`, observability timestamps and report completion times.
pub fn units_to_time(units: f64) -> Time {
    Time(Ratio::approximate(units, 1024))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_quantize_to_the_lattice() {
        assert_eq!(units_to_time(2.0), Time::from_int(2));
        assert_eq!(units_to_time(7.5), Time::new(15, 2));
        let t = units_to_time(1.0 / 3.0);
        assert!((t.to_f64() - 1.0 / 3.0).abs() <= 1.0 / 1024.0);
    }

    #[test]
    fn unit_conversion() {
        let clock = UnitClock::new(Instant::now(), Duration::from_millis(10));
        let t0 = clock.now_units();
        assert!((0.0..1.0).contains(&t0));
        clock.sleep_until_units(2.0);
        let t1 = clock.now_units();
        assert!(t1 >= 2.0, "slept to {t1}");
        assert!(t1 < 10.0, "overslept to {t1}");
    }

    #[test]
    fn sleep_until_past_is_noop() {
        let clock = UnitClock::new(Instant::now(), Duration::from_millis(5));
        let before = Instant::now();
        clock.sleep_until_units(-1.0);
        assert!(before.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn now_time_is_nonnegative() {
        let clock = UnitClock::new(Instant::now(), Duration::from_millis(1));
        assert!(clock.now_time() >= Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "nonzero wall time")]
    fn zero_unit_panics() {
        let _ = UnitClock::new(Instant::now(), Duration::ZERO);
    }
}
