//! The Section-5 collectives on real threads: exercises timer wake-ups
//! (the gather phase), count-driven phase transitions, and payload
//! fidelity on the threaded substrate.

use postal_algos::ext::gossip::{GossipPacket, GossipProgram};
use postal_algos::ext::scatter::{Item, ScatterRoot};
use postal_model::Latency;
use postal_runtime::{run_threaded, send_programs_from, RuntimeConfig};
use postal_sim::{Idle, ProcId, Program};
use std::collections::BTreeMap;
use std::time::Duration;

fn config() -> RuntimeConfig {
    RuntimeConfig {
        unit: Duration::from_millis(3),
    }
}

#[test]
fn gossip_on_threads_everyone_learns_everything() {
    let n = 8usize;
    let lam = Latency::from_int(2);
    let values: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();

    let programs = send_programs_from(n, |id| {
        Box::new(GossipProgram::new(id, n, values[id.index()], lam))
            as Box<dyn Program<GossipPacket> + Send>
    });
    let report = run_threaded(lam, config(), programs);

    // Reconstruct knowledge from deliveries.
    let mut known: BTreeMap<u32, BTreeMap<u32, u64>> = BTreeMap::new();
    for d in &report.deliveries {
        match d.payload {
            GossipPacket::Gather { value } => {
                known.entry(d.to.0).or_default().insert(d.from.0, value);
            }
            GossipPacket::Stream { msg, value, .. } => {
                known.entry(d.to.0).or_default().insert(msg - 1, value);
            }
        }
    }
    for p in 0..n as u32 {
        let k = known.entry(p).or_default();
        k.insert(p, values[p as usize]); // own value
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(k.get(&(i as u32)), Some(&v), "p{p} missing value of p{i}");
        }
    }
}

#[test]
fn scatter_on_threads_delivers_personalized_items() {
    let n = 10usize;
    let lam = Latency::from_ratio(5, 2);
    let items: Vec<u64> = (0..n as u64).map(|i| i * 7 + 1).collect();
    let items_clone = items.clone();

    let programs = send_programs_from(n, move |id| {
        if id == ProcId::ROOT {
            Box::new(ScatterRoot::new(items_clone.clone())) as Box<dyn Program<Item> + Send>
        } else {
            Box::new(Idle) as Box<dyn Program<Item> + Send>
        }
    });
    let report = run_threaded(lam, config(), programs);
    assert_eq!(report.deliveries.len(), n - 1);
    for d in &report.deliveries {
        assert_eq!(d.payload.0, items[d.to.index()], "wrong item at {:?}", d.to);
    }
}
