//! Mutation tests: each fault-injection class must be flagged with its
//! specific lint code — and with *only* the codes its fault implies.

use postal_mc::{check_algo, check_programs, Algo, McConfig, Mutation};
use postal_model::lint::{LintCode, LintOptions};
use postal_model::{Latency, Time};
use postal_sim::{Context, ProcId, Program};

fn codes(rep: &postal_mc::CheckReport) -> Vec<LintCode> {
    rep.diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn drop_delivery_is_flagged_p0009() {
    let m = Mutation::DropDelivery { seq: 0 };
    assert_eq!(m.expected_code(), LintCode::LostFlight);
    let rep = check_algo(
        Algo::Bcast,
        6,
        1,
        Latency::from_int(2),
        Some(m),
        &McConfig::default(),
    );
    assert!(
        codes(&rep).contains(&LintCode::LostFlight),
        "diagnostics: {:?}",
        rep.diagnostics
    );
    // The drop is not a deadlock and not a window breach.
    assert!(!codes(&rep).contains(&LintCode::Deadlock));
    assert!(!codes(&rep).contains(&LintCode::LatencyWindowViolation));
}

#[test]
fn stall_port_is_flagged_p0008() {
    let m = Mutation::StallPort {
        proc: 1,
        after: Time::ZERO,
    };
    assert_eq!(m.expected_code(), LintCode::Deadlock);
    let rep = check_algo(
        Algo::Bcast,
        6,
        1,
        Latency::from_int(2),
        Some(m),
        &McConfig::default(),
    );
    assert!(
        codes(&rep).contains(&LintCode::Deadlock),
        "diagnostics: {:?}",
        rep.diagnostics
    );
    let d = rep
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::Deadlock)
        .unwrap();
    assert_eq!(d.proc, Some(1), "the stuck processor is named");
}

#[test]
fn shift_delivery_earlier_is_flagged_p0011() {
    let m = Mutation::ShiftDeliveryEarlier {
        seq: 0,
        by: Time::new(1, 2),
    };
    assert_eq!(m.expected_code(), LintCode::LatencyWindowViolation);
    let rep = check_algo(
        Algo::Bcast,
        6,
        1,
        Latency::from_ratio(5, 2),
        Some(m),
        &McConfig::default(),
    );
    assert!(
        codes(&rep).contains(&LintCode::LatencyWindowViolation),
        "diagnostics: {:?}",
        rep.diagnostics
    );
    assert!(!codes(&rep).contains(&LintCode::LostFlight));
    assert!(!codes(&rep).contains(&LintCode::Deadlock));
}

/// Two peers fire at p0 in the same instant: the minimal racy workload.
/// (Its overlapping input windows also carry the schedule-level
/// `P0002`, which is expected and asserted — the point of the model
/// checker is the *additional* whole-state-space codes.)
struct Fire;
impl Program<u32> for Fire {
    fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
        if ctx.me() != ProcId::ROOT {
            ctx.send(ProcId::ROOT, ctx.me().0);
        }
    }
    fn on_receive(&mut self, _: &mut dyn Context<u32>, _: ProcId, _: u32) {}
}

fn racy_factory() -> Vec<Box<dyn Program<u32>>> {
    (0..3)
        .map(|_| Box::new(Fire) as Box<dyn Program<u32>>)
        .collect()
}

#[test]
fn order_sensitive_receiver_is_flagged_p0010() {
    let m = Mutation::OrderSensitiveReceiver { proc: 0 };
    assert_eq!(m.expected_code(), LintCode::NondeterministicCompletion);
    let rep = check_programs(
        "racy",
        3,
        1,
        Latency::from_int(2),
        racy_factory,
        Some(m),
        &LintOptions::ports_only(),
        &McConfig::default(),
    );
    assert!(
        codes(&rep).contains(&LintCode::NondeterministicCompletion),
        "diagnostics: {:?}",
        rep.diagnostics
    );
    assert!(rep.completions.len() > 1, "expected divergent completions");
    assert!(rep.stats.executions >= 2);
}

#[test]
fn racy_baseline_without_mutation_has_no_p0010() {
    // The same racing workload, unmutated: both orders are explored,
    // the race is reported, but completion is order-insensitive — no
    // P0010. The overlapping windows still carry P0002 from the re-lint.
    let rep = check_programs(
        "racy",
        3,
        1,
        Latency::from_int(2),
        racy_factory,
        None,
        &LintOptions::ports_only(),
        &McConfig::default(),
    );
    assert_eq!(rep.stats.executions, 2);
    assert!(rep.races > 0, "the delivery race itself is visible");
    assert!(!codes(&rep).contains(&LintCode::NondeterministicCompletion));
    assert!(!codes(&rep).contains(&LintCode::Deadlock));
    assert!(!codes(&rep).contains(&LintCode::LostFlight));
    assert!(codes(&rep).contains(&LintCode::InputWindowOverlap));
}

#[test]
fn every_mutation_class_maps_to_a_distinct_code() {
    let all = [
        Mutation::DropDelivery { seq: 0 },
        Mutation::StallPort {
            proc: 0,
            after: Time::ZERO,
        },
        Mutation::ShiftDeliveryEarlier {
            seq: 0,
            by: Time::ONE,
        },
        Mutation::OrderSensitiveReceiver { proc: 0 },
    ];
    let mut seen: Vec<LintCode> = all.iter().map(|m| m.expected_code()).collect();
    seen.sort_by_key(|c| c.as_str());
    seen.dedup();
    assert_eq!(seen.len(), 4);
    for m in all {
        assert!(!m.name().is_empty());
    }
}
