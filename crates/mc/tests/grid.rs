//! The acceptance grid: every paper algorithm, model-checked clean.
//!
//! For each workload × `n ≤ 12` × `λ ∈ {1, 2, 5/2}` × `m ≤ 3`, the
//! checker must explore the state space without any diagnostic and
//! observe a completion equal to the reference simulator's. The paper's
//! algorithms are conflict-free, so DPOR collapses every grid point to
//! a single execution while the naive interleaving estimate grows — the
//! grid asserts that reduction too.

use postal_mc::{check_algo, Algo, McConfig};
use postal_model::runtimes;
use postal_model::Latency;

fn lambdas() -> [Latency; 3] {
    [
        Latency::from_int(1),
        Latency::from_int(2),
        Latency::from_ratio(5, 2),
    ]
}

#[test]
fn all_algorithms_check_clean_across_the_grid() {
    let cfg = McConfig::default();
    let mut points = 0u32;
    for algo in Algo::all() {
        for n in [2u32, 3, 5, 8, 12] {
            for lam in lambdas() {
                for m in 1..=3u32 {
                    if algo == Algo::Bcast && m > 1 {
                        continue; // single-message algorithm
                    }
                    let rep = check_algo(algo, n, m, lam, None, &cfg);
                    assert!(
                        rep.is_clean(),
                        "{algo} n={n} m={m} lambda={lam}: {:?}",
                        rep.diagnostics
                    );
                    assert_eq!(
                        rep.completions,
                        vec![rep.reference_completion],
                        "{algo} n={n} m={m} lambda={lam}: completion drifted from reference"
                    );
                    assert!(
                        !rep.stats.truncated && !rep.stats.bounded,
                        "{algo} n={n} m={m} lambda={lam}: grid points must be exhaustive"
                    );
                    // Conflict-free algorithms: one Mazurkiewicz class.
                    assert_eq!(
                        rep.stats.executions, 1,
                        "{algo} n={n} m={m} lambda={lam}: expected a single execution"
                    );
                    points += 1;
                }
            }
        }
    }
    assert!(points > 100, "grid unexpectedly small: {points}");
}

#[test]
fn bcast_completion_matches_closed_form_everywhere() {
    let cfg = McConfig::default();
    for n in 2..=12u32 {
        for lam in lambdas() {
            let rep = check_algo(Algo::Bcast, n, 1, lam, None, &cfg);
            assert!(rep.is_clean(), "n={n} lambda={lam}: {:?}", rep.diagnostics);
            assert_eq!(
                rep.completions,
                vec![runtimes::bcast_time(n as u128, lam)],
                "n={n} lambda={lam}"
            );
        }
    }
}

#[test]
fn dpor_reduction_is_real_for_bcast() {
    // At n = 12, λ = 5/2 many deliveries are concurrently schedulable;
    // naive enumeration faces a combinatorial set while DPOR visits one.
    let rep = check_algo(
        Algo::Bcast,
        12,
        1,
        Latency::from_ratio(5, 2),
        None,
        &McConfig::default(),
    );
    assert!(rep.is_clean());
    assert_eq!(rep.stats.executions, 1);
    assert!(
        rep.stats.naive_interleavings >= 8.0,
        "naive estimate too small: {}",
        rep.stats.naive_interleavings
    );
    assert!(rep.stats.reduction_ratio() <= 0.125);
}

#[test]
fn conflict_free_runs_report_no_races() {
    for algo in [Algo::Bcast, Algo::Repeat, Algo::Pack, Algo::Dtree] {
        let rep = check_algo(algo, 8, 2, Latency::from_int(2), None, &McConfig::default());
        assert_eq!(rep.races, 0, "{algo}: conflict-free schedule raced");
    }
}
