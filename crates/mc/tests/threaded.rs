//! Ties the model checker to the threaded runtime: the wall-clock
//! executor must land on the completion the checker proved unique, and
//! a dying worker must surface as `RuntimeError::WorkerExited` rather
//! than a hang or a panic in the harness.

use postal_algos::bcast::{BcastPayload, BcastProgram};
use postal_mc::{check_algo, Algo, McConfig};
use postal_model::Latency;
use postal_runtime::{send_programs_from, try_run_threaded, RuntimeConfig, RuntimeError};
use postal_sim::{Context, ProcId, Program};

#[test]
fn threaded_executor_lands_on_the_model_checked_completion() {
    let lam = Latency::from_int(2);
    let n = 6usize;
    let rep = check_algo(Algo::Bcast, n as u32, 1, lam, None, &McConfig::default());
    assert!(rep.is_clean());
    assert_eq!(
        rep.completions.len(),
        1,
        "checker proved a unique completion"
    );

    let programs = send_programs_from(n, |id| {
        Box::new(BcastProgram::new(
            lam,
            (id == ProcId::ROOT).then_some(n as u64),
        )) as Box<dyn Program<BcastPayload> + Send>
    });
    let threaded = try_run_threaded(lam, RuntimeConfig::default(), programs)
        .expect("healthy workload must not lose a worker");
    // The threaded clock is wall-derived and only jitters upward: it can
    // never beat the model-checked completion, and a healthy run stays
    // within one latency unit of it.
    let proved = rep.completions[0].to_f64();
    assert!(threaded.completion.to_f64() >= proved - 0.01);
    assert!(threaded.completion.to_f64() <= proved + lam.as_time().to_f64());
    assert_eq!(threaded.deliveries.len(), n - 1);
}

#[test]
fn dying_worker_is_an_error_not_a_hang() {
    // p1 panics on its first delivery; the executor must report which
    // worker died instead of deadlocking the remaining threads.
    struct Fragile;
    impl Program<BcastPayload> for Fragile {
        fn on_start(&mut self, ctx: &mut dyn Context<BcastPayload>) {
            if ctx.me() == ProcId::ROOT {
                let n = ctx.n();
                for p in 1..n {
                    ctx.send(ProcId::from(p), BcastPayload { range_size: 1 });
                }
            }
        }
        fn on_receive(&mut self, ctx: &mut dyn Context<BcastPayload>, _: ProcId, _: BcastPayload) {
            assert!(ctx.me() != ProcId::from(1usize), "injected failure");
        }
    }
    let lam = Latency::from_int(2);
    let programs = send_programs_from(3, |_| {
        Box::new(Fragile) as Box<dyn Program<BcastPayload> + Send>
    });
    let err = try_run_threaded(lam, RuntimeConfig::default(), programs)
        .expect_err("worker death must be reported");
    let RuntimeError::WorkerExited { proc } = err;
    assert_eq!(proc, 1);
}
