//! The controlled postal engine the explorer drives.
//!
//! Unlike `postal-sim`'s event loop, which always fires the
//! lowest-timestamped event next, this engine exposes the set of
//! *schedulable* events and lets the caller pick which one executes —
//! that choice is exactly the interleaving freedom a wall-clock
//! substrate (the threaded executor, a real cluster) has under jitter.
//!
//! ## Semantics
//!
//! Strict postal timing: a send issued at model time `t` by a processor
//! whose output port is free occupies the port for `[t, t+1]` and its
//! receive completes at `t + λ` (the receiver is busy during
//! `[t+λ−1, t+λ]`). All timestamps are computed from the model rules at
//! send time and never change, so executing events out of timestamp
//! order models *observation* jitter, not physics: two receives may be
//! handled in either order only when their busy windows overlap, i.e.
//! their completion times differ by strictly less than one unit. That
//! "< 1 unit" window is the same forcedness criterion
//! `postal_verify::race` applies after the fact — two deliveries
//! separated by a full unit are causally or FIFO ordered on every
//! substrate, while closer pairs genuinely race.
//!
//! Event identifiers are allocated in creation order, so two replays of
//! the same choice prefix allocate identical identifiers — this is what
//! makes prefix-based replay in [`crate::explore`] sound.

use crate::mutation::Mutation;
use postal_model::{Ratio, Time};
use postal_obs::ObsEvent;
use postal_sim::{Context, ProcId, Program};
use std::collections::BTreeMap;

/// A pending (not yet executed) engine event.
enum Pending<P> {
    /// A message in flight: fires when the receiver finishes receiving.
    Deliver {
        seq: u64,
        src: u32,
        dst: u32,
        recv_finish: Time,
        payload: P,
    },
    /// A timer requested via `wake_at`.
    Wake { proc: u32, at: Time },
}

impl<P> Pending<P> {
    fn time(&self) -> Time {
        match *self {
            Pending::Deliver { recv_finish, .. } => recv_finish,
            Pending::Wake { at, .. } => at,
        }
    }

    fn proc(&self) -> u32 {
        match *self {
            Pending::Deliver { dst, .. } => dst,
            Pending::Wake { proc, .. } => proc,
        }
    }
}

/// What the explorer needs to know about a schedulable event: its
/// stable identifier, its model completion time, and the processor
/// whose state it mutates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EventInfo {
    /// Creation-order identifier, stable across replays of one prefix.
    pub id: u64,
    /// Model time at which the event completes.
    pub time: Time,
    /// The processor whose callback the event runs.
    pub proc: u32,
}

/// Two events commute unless they run callbacks on the same processor
/// with overlapping busy windows (completion times less than one unit
/// apart). Same-processor events a full unit apart are ordered by the
/// readiness rule in every interleaving, so treating them as
/// independent never loses a trace.
pub(crate) fn independent(a: &EventInfo, b: &EventInfo) -> bool {
    a.proc != b.proc || a.time.as_ratio().abs_diff(b.time.as_ratio()) >= Ratio::ONE
}

/// The buffered callback context: collects sends and wakes, which the
/// engine applies after the program returns (mirrors `postal-sim`'s
/// two-phase callback handling).
struct McCtx<P> {
    me: ProcId,
    n: usize,
    now: Time,
    outbox: Vec<(ProcId, P)>,
    wakes: Vec<Time>,
}

impl<P> McCtx<P> {
    fn new(me: ProcId, n: usize, now: Time) -> McCtx<P> {
        McCtx {
            me,
            n,
            now,
            outbox: Vec::new(),
            wakes: Vec::new(),
        }
    }
}

impl<P> Context<P> for McCtx<P> {
    fn me(&self) -> ProcId {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn now(&self) -> Time {
        self.now
    }

    fn send(&mut self, dst: ProcId, payload: P) {
        assert!(dst.index() < self.n, "send out of range");
        assert!(dst != self.me, "the postal model has no self-sends");
        self.outbox.push((dst, payload));
    }

    fn wake_at(&mut self, t: Time) {
        self.wakes.push(t.max(self.now));
    }
}

/// The controlled engine: program states, port clocks, the pending
/// event set, and the observability log of everything executed so far.
pub(crate) struct McEngine<P> {
    n: usize,
    lam: Time,
    programs: Vec<Box<dyn Program<P>>>,
    out_free: Vec<Time>,
    recv_count: Vec<u64>,
    pending: BTreeMap<u64, Pending<P>>,
    next_id: u64,
    next_seq: u64,
    log: Vec<ObsEvent>,
    mutation: Option<Mutation>,
}

impl<P: Clone> McEngine<P> {
    pub fn new(
        n: u32,
        lam: Time,
        programs: Vec<Box<dyn Program<P>>>,
        mutation: Option<Mutation>,
    ) -> McEngine<P> {
        assert_eq!(programs.len(), n as usize, "one program per processor");
        McEngine {
            n: n as usize,
            lam,
            programs,
            out_free: vec![Time::ZERO; n as usize],
            recv_count: vec![0; n as usize],
            pending: BTreeMap::new(),
            next_id: 0,
            next_seq: 0,
            log: Vec::new(),
            mutation,
        }
    }

    /// Runs every processor's `on_start` at time 0, in index order.
    /// Start order is not a choice point: `on_start` callbacks cannot
    /// observe each other (no message can land at time 0), so all
    /// orders yield the same state.
    pub fn start(&mut self) {
        for i in 0..self.n {
            let mut ctx = McCtx::new(ProcId(i as u32), self.n, Time::ZERO);
            self.programs[i].on_start(&mut ctx);
            self.apply(i, Time::ZERO, ctx);
        }
    }

    /// Whether a `StallPort` mutation keeps this event from ever firing.
    fn stalled(&self, p: &Pending<P>) -> bool {
        match (&self.mutation, p) {
            (
                Some(Mutation::StallPort { proc, after }),
                Pending::Deliver {
                    dst, recv_finish, ..
                },
            ) => dst == proc && *recv_finish > *after,
            _ => false,
        }
    }

    /// The schedulable events, canonically ordered by `(time, id)`.
    ///
    /// An event is schedulable when its completion time lies within one
    /// unit of the earliest live event — exactly the pairs whose busy
    /// windows a jittery substrate could resolve either way. Events
    /// beyond that horizon are deferred: executing them now would model
    /// a reordering no admissible execution exhibits.
    pub fn enabled(&self) -> Vec<EventInfo> {
        let live: Vec<EventInfo> = self
            .pending
            .iter()
            .filter(|(_, p)| !self.stalled(p))
            .map(|(&id, p)| EventInfo {
                id,
                time: p.time(),
                proc: p.proc(),
            })
            .collect();
        let Some(t_min) = live.iter().map(|e| e.time).min() else {
            return Vec::new();
        };
        let mut ready: Vec<EventInfo> = live
            .into_iter()
            .filter(|e| e.time < t_min + Time::ONE)
            .collect();
        ready.sort_by_key(|e| (e.time, e.id));
        ready
    }

    /// Executes one pending event by id. Returns `false` if the id is
    /// unknown (a replay diverged — a bug, not a user error).
    pub fn execute(&mut self, id: u64) -> bool {
        let Some(p) = self.pending.remove(&id) else {
            return false;
        };
        match p {
            Pending::Deliver {
                seq,
                src,
                dst,
                recv_finish,
                payload,
            } => {
                self.log.push(ObsEvent::Recv {
                    seq,
                    src,
                    dst,
                    arrival: recv_finish - Time::ONE,
                    start: recv_finish - Time::ONE,
                    finish: recv_finish,
                    queued: false,
                });
                self.recv_count[dst as usize] += 1;
                let first = self.recv_count[dst as usize] == 1;
                let mut ctx = McCtx::new(ProcId(dst), self.n, recv_finish);
                // Order-sensitive fault injection: on its first
                // delivery, the mutated receiver forwards a copy iff the
                // message came from an even-indexed sender — behavior
                // that depends on which racing message landed first.
                let inject = first
                    && src % 2 == 0
                    && matches!(
                        self.mutation,
                        Some(Mutation::OrderSensitiveReceiver { proc }) if proc == dst
                    );
                let copy = inject.then(|| payload.clone());
                self.programs[dst as usize].on_receive(&mut ctx, ProcId(src), payload);
                if let Some(pl) = copy {
                    let fwd = ProcId((dst + 1) % self.n as u32);
                    if fwd.0 != dst {
                        ctx.outbox.push((fwd, pl));
                    }
                }
                self.apply(dst as usize, recv_finish, ctx);
            }
            Pending::Wake { proc, at } => {
                self.log.push(ObsEvent::Wake { proc, at });
                let mut ctx = McCtx::new(ProcId(proc), self.n, at);
                self.programs[proc as usize].on_wake(&mut ctx);
                self.apply(proc as usize, at, ctx);
            }
        }
        true
    }

    /// Applies a callback's buffered sends and wakes: output-port
    /// serialization, sequence numbering, mutation hooks, event
    /// creation.
    fn apply(&mut self, src: usize, now: Time, ctx: McCtx<P>) {
        for (dst, payload) in ctx.outbox {
            let send_start = now.max(self.out_free[src]);
            self.out_free[src] = send_start + Time::ONE;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.log.push(ObsEvent::Send {
                seq,
                src: src as u32,
                dst: dst.0,
                start: send_start,
                finish: send_start + Time::ONE,
            });
            let mut recv_finish = send_start + self.lam;
            match self.mutation {
                Some(Mutation::DropDelivery { seq: s }) if s == seq => {
                    self.log.push(ObsEvent::Drop {
                        seq,
                        src: src as u32,
                        dst: dst.0,
                        at: recv_finish,
                    });
                    continue;
                }
                Some(Mutation::ShiftDeliveryEarlier { seq: s, by }) if s == seq => {
                    recv_finish -= by;
                }
                _ => {}
            }
            let id = self.next_id;
            self.next_id += 1;
            self.pending.insert(
                id,
                Pending::Deliver {
                    seq,
                    src: src as u32,
                    dst: dst.0,
                    recv_finish,
                    payload,
                },
            );
        }
        for t in ctx.wakes {
            let id = self.next_id;
            self.next_id += 1;
            self.pending.insert(
                id,
                Pending::Wake {
                    proc: src as u32,
                    at: t,
                },
            );
        }
    }

    /// `(proc, time)` of every event stuck in the pending set, in time
    /// order — the evidence attached to a deadlock diagnostic.
    pub fn stuck(&self) -> Vec<(u32, Time)> {
        let mut v: Vec<(u32, Time)> = self
            .pending
            .values()
            .map(|p| (p.proc(), p.time()))
            .collect();
        v.sort_by_key(|&(p, t)| (t, p));
        v
    }

    /// The observability events executed so far, in execution order.
    pub fn into_log(self) -> Vec<ObsEvent> {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_algos::bcast_programs;
    use postal_model::Latency;

    #[test]
    fn canonical_run_matches_reference_simulator() {
        let (n, lam) = (8u32, Latency::from_ratio(5, 2));
        let mut eng = McEngine::new(n, lam.as_time(), bcast_programs(n as usize, lam), None);
        eng.start();
        // Always take the canonical (first) choice: this is the
        // reference interleaving.
        loop {
            let enabled = eng.enabled();
            let Some(e) = enabled.first() else { break };
            assert!(eng.execute(e.id));
        }
        assert!(eng.stuck().is_empty());
        let log = eng.into_log();
        let completion = log
            .iter()
            .filter_map(|e| match *e {
                ObsEvent::Recv { finish, .. } => Some(finish),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(
            completion,
            postal_model::runtimes::bcast_time(n as u128, lam)
        );
    }

    #[test]
    fn overlapping_windows_are_both_enabled() {
        // p1 and p2 both fire at p0 on start: the two deliveries
        // complete simultaneously, so both must be schedulable.
        struct Fire;
        impl Program<u32> for Fire {
            fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
                if ctx.me() != ProcId::ROOT {
                    ctx.send(ProcId::ROOT, ctx.me().0);
                }
            }
            fn on_receive(&mut self, _: &mut dyn Context<u32>, _: ProcId, _: u32) {}
        }
        let lam = Latency::from_int(2);
        let programs: Vec<Box<dyn Program<u32>>> =
            vec![Box::new(Fire), Box::new(Fire), Box::new(Fire)];
        let mut eng = McEngine::new(3, lam.as_time(), programs, None);
        eng.start();
        let enabled = eng.enabled();
        assert_eq!(enabled.len(), 2);
        assert_eq!(enabled[0].time, enabled[1].time);
        assert!(!independent(&enabled[0], &enabled[1]));
    }

    #[test]
    fn distant_events_are_deferred() {
        // p0 sends to p1 at t = 0 and to p2 at t = 1 (port serialized):
        // completions λ and λ+1 are a full unit apart, so only the
        // earlier is schedulable.
        struct Root;
        impl Program<u32> for Root {
            fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
                if ctx.me() == ProcId::ROOT {
                    ctx.send(ProcId(1), 0);
                    ctx.send(ProcId(2), 1);
                }
            }
            fn on_receive(&mut self, _: &mut dyn Context<u32>, _: ProcId, _: u32) {}
        }
        let lam = Latency::from_int(2);
        let programs: Vec<Box<dyn Program<u32>>> =
            vec![Box::new(Root), Box::new(Root), Box::new(Root)];
        let mut eng = McEngine::new(3, lam.as_time(), programs, None);
        eng.start();
        let enabled = eng.enabled();
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0].proc, 1);
    }
}
