//! Named paper workloads for the checker's grid and the CLI.

use crate::explore::McConfig;
use crate::mutation::Mutation;
use crate::{check_programs, CheckReport};
use postal_algos::dtree::dtree_programs;
use postal_algos::pack::pack_programs;
use postal_algos::pipeline::pipeline_programs;
use postal_algos::repeat::repeat_programs;
use postal_algos::{bcast_programs, Pacing};
use postal_model::lint::LintOptions;
use postal_model::{runtimes, Latency};

/// A paper algorithm the checker knows how to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Single-message broadcast (BCAST), `m` forced to 1.
    Bcast,
    /// Multi-message REPEAT with the paper's exact pacing.
    Repeat,
    /// REPEAT with greedy pacing (sends as early as the port allows).
    RepeatGreedy,
    /// Multi-message PACK (messages travel as one packet).
    Pack,
    /// Multi-message PIPELINE (regime 1/2 chosen per `(m, λ)`).
    Pipeline,
    /// Degree-1 tree (the line): `DTREE` with `d = 1`.
    Line,
    /// Degree-2 tree: `DTREE` with `d = 2`.
    Binary,
    /// Degree-`n−1` tree (the star): `DTREE` with `d = n − 1`.
    Star,
    /// `DTREE` at the latency-matched degree `d = min(⌈λ⌉ + 1, n − 1)`.
    Dtree,
}

impl Algo {
    /// All workloads, in grid order.
    pub fn all() -> [Algo; 9] {
        [
            Algo::Bcast,
            Algo::Repeat,
            Algo::RepeatGreedy,
            Algo::Pack,
            Algo::Pipeline,
            Algo::Line,
            Algo::Binary,
            Algo::Star,
            Algo::Dtree,
        ]
    }

    /// The CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Bcast => "bcast",
            Algo::Repeat => "repeat",
            Algo::RepeatGreedy => "repeat-greedy",
            Algo::Pack => "pack",
            Algo::Pipeline => "pipeline",
            Algo::Line => "line",
            Algo::Binary => "binary",
            Algo::Star => "star",
            Algo::Dtree => "dtree",
        }
    }

    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<Algo> {
        Algo::all().into_iter().find(|a| a.name() == s)
    }
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Model-checks one paper algorithm at `(n, m, λ)`.
///
/// `Bcast` ignores `m` (it is the single-message algorithm); the tree
/// shapes pick their degree from the variant (`Line` 1, `Binary` 2,
/// `Star` `n − 1`, `Dtree` latency-matched).
pub fn check_algo(
    algo: Algo,
    n: u32,
    m: u32,
    lam: Latency,
    mutation: Option<Mutation>,
    cfg: &McConfig,
) -> CheckReport {
    let nu = n as usize;
    let m = m.max(1);
    let eff_m = if algo == Algo::Bcast { 1 } else { m };
    let opts = LintOptions::broadcast_of(eff_m as u64);
    let degree = |d: u64| d.clamp(1, (n as u64).saturating_sub(1).max(1));
    match algo {
        Algo::Bcast => check_programs(
            algo.name(),
            n,
            1,
            lam,
            || bcast_programs(nu, lam),
            mutation,
            &opts,
            cfg,
        ),
        Algo::Repeat => check_programs(
            algo.name(),
            n,
            m as u64,
            lam,
            || repeat_programs(nu, m, lam, Pacing::PaperExact),
            mutation,
            &opts,
            cfg,
        ),
        Algo::RepeatGreedy => check_programs(
            algo.name(),
            n,
            m as u64,
            lam,
            || repeat_programs(nu, m, lam, Pacing::Greedy),
            mutation,
            &opts,
            cfg,
        ),
        Algo::Pack => check_programs(
            algo.name(),
            n,
            m as u64,
            lam,
            || pack_programs(nu, m, lam),
            mutation,
            &opts,
            cfg,
        ),
        Algo::Pipeline => check_programs(
            algo.name(),
            n,
            m as u64,
            lam,
            || pipeline_programs(nu, m, lam),
            mutation,
            &opts,
            cfg,
        ),
        Algo::Line => check_programs(
            algo.name(),
            n,
            m as u64,
            lam,
            || dtree_programs(nu, m, degree(1)),
            mutation,
            &opts,
            cfg,
        ),
        Algo::Binary => check_programs(
            algo.name(),
            n,
            m as u64,
            lam,
            || dtree_programs(nu, m, degree(2)),
            mutation,
            &opts,
            cfg,
        ),
        Algo::Star => check_programs(
            algo.name(),
            n,
            m as u64,
            lam,
            || dtree_programs(nu, m, degree(n as u64)),
            mutation,
            &opts,
            cfg,
        ),
        Algo::Dtree => {
            let d = runtimes::latency_matched_degree(n as u128, lam) as u64;
            check_programs(
                algo.name(),
                n,
                m as u64,
                lam,
                || dtree_programs(nu, m, degree(d)),
                mutation,
                &opts,
                cfg,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_names_round_trip() {
        for a in Algo::all() {
            assert_eq!(Algo::parse(a.name()), Some(a));
        }
        assert_eq!(Algo::parse("nope"), None);
    }

    #[test]
    fn bcast_check_is_clean_and_matches_closed_form() {
        let lam = Latency::from_ratio(5, 2);
        let rep = check_algo(Algo::Bcast, 8, 1, lam, None, &McConfig::default());
        assert!(rep.is_clean(), "diagnostics: {:?}", rep.diagnostics);
        assert_eq!(rep.completions, vec![runtimes::bcast_time(8, lam)]);
        assert_eq!(rep.reference_completion, runtimes::bcast_time(8, lam));
        assert_eq!(rep.stats.executions, 1);
    }
}
