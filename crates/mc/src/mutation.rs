//! Fault injections the checker must catch.
//!
//! Each mutation perturbs the controlled engine in a way that violates
//! one of the checker's four whole-state-space properties, and maps to
//! the stable lint code that property carries. The mutation tests in
//! `tests/mutations.rs` assert the mapping is exact: injecting a
//! mutation makes its [`expected_code`](Mutation::expected_code) appear
//! in the report.

use postal_model::lint::LintCode;
use postal_model::Time;

/// One deterministic perturbation of the controlled engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Message `seq` vanishes in flight: its send happens, its delivery
    /// never fires. Caught as `P0009` (lost flight) — and, where the
    /// message was informing a subtree, as the schedule-level `P0005`.
    DropDelivery {
        /// Global sequence number of the send to drop.
        seq: u64,
    },
    /// `proc`'s input port stops serving after model time `after`:
    /// deliveries due later stay pending forever. The system drains
    /// everywhere else and the checker reports `P0008` (deadlock) with
    /// the stuck processor.
    StallPort {
        /// The processor whose input port dies.
        proc: u32,
        /// Deliveries completing strictly after this time never fire.
        after: Time,
    },
    /// Message `seq`'s receive completes `by` units early —
    /// `recv_finish < send_start + λ`, which no postal channel can do.
    /// Caught as `P0011` (λ-window violation).
    ShiftDeliveryEarlier {
        /// Global sequence number of the send to accelerate.
        seq: u64,
        /// How much earlier the receive completes.
        by: Time,
    },
    /// `proc`'s program becomes order-sensitive: on its first delivery
    /// it forwards a copy iff the message came from an even-indexed
    /// sender. When two messages race to `proc`, different
    /// interleavings now produce different completion times — caught as
    /// `P0010` (nondeterministic completion).
    OrderSensitiveReceiver {
        /// The processor whose receive behavior becomes order-dependent.
        proc: u32,
    },
}

impl Mutation {
    /// The lint code this mutation class is caught by.
    pub fn expected_code(&self) -> LintCode {
        match self {
            Mutation::DropDelivery { .. } => LintCode::LostFlight,
            Mutation::StallPort { .. } => LintCode::Deadlock,
            Mutation::ShiftDeliveryEarlier { .. } => LintCode::LatencyWindowViolation,
            Mutation::OrderSensitiveReceiver { .. } => LintCode::NondeterministicCompletion,
        }
    }

    /// Short display tag for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::DropDelivery { .. } => "drop-delivery",
            Mutation::StallPort { .. } => "stall-port",
            Mutation::ShiftDeliveryEarlier { .. } => "shift-delivery-earlier",
            Mutation::OrderSensitiveReceiver { .. } => "order-sensitive-receiver",
        }
    }
}
