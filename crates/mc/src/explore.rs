//! Interleaving exploration: sleep sets, persistent-set pruning, and a
//! bounded-preemption fallback.
//!
//! The explorer enumerates Mazurkiewicz-distinct executions of the
//! controlled engine by depth-first search over choice prefixes, with
//! two reductions in the dynamic partial-order family:
//!
//! * **Persistent sets.** At each state, if the earliest schedulable
//!   event conflicts with no other schedulable event (no same-processor
//!   window overlap — see `engine::independent`), then `{e}`
//!   is a persistent set and the step is forced: any event created
//!   later in any execution completes at least λ ≥ 1 units after `e`,
//!   so nothing that could conflict with `e` is still to come. For the
//!   paper's conflict-free algorithms every step is forced and exactly
//!   one execution is explored, however many events are concurrently
//!   schedulable.
//! * **Sleep sets** (Godefroid). When a state genuinely branches, each
//!   later sibling inherits the earlier siblings it is independent of
//!   as its sleep set; a path all of whose schedulable events are
//!   asleep is a re-ordering of an already-explored trace and is
//!   pruned without reaching a leaf.
//!
//! Exploration is replay-based: a state is reached by re-running the
//! engine from scratch along a prefix of event ids (identifiers are
//! creation-ordered, so identical prefixes allocate identical ids).
//! This trades CPU for memory and keeps the engine free of any
//! snapshot/undo machinery.
//!
//! When a state branches beyond the configured preemption bound, the
//! siblings are not pushed: exploration stays sound (every explored
//! trace is admissible) but is no longer exhaustive, and the stats mark
//! the run `bounded` — the loom-style fallback for state spaces too
//! large to exhaust.

use crate::engine::{independent, EventInfo, McEngine};
use crate::mutation::Mutation;
use postal_model::Latency;
use postal_model::Time;
use postal_obs::ObsEvent;
use postal_sim::Program;

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Stop after this many leaves (complete or deadlocked executions);
    /// the stats then carry `truncated = true`.
    pub max_interleavings: u64,
    /// Maximum number of non-canonical choices along one prefix.
    /// `None` = auto: exhaustive for n ≤ 10, bound 2 beyond (the
    /// bounded-preemption fallback for large systems).
    pub preemption_bound: Option<u32>,
    /// Per-execution step cap: a safety net against runaway programs.
    pub max_steps: u64,
}

impl Default for McConfig {
    fn default() -> McConfig {
        McConfig {
            max_interleavings: 4096,
            preemption_bound: None,
            max_steps: 100_000,
        }
    }
}

impl McConfig {
    /// The effective preemption bound for an `n`-processor system.
    pub fn effective_bound(&self, n: u32) -> u32 {
        match self.preemption_bound {
            Some(b) => b,
            None if n <= 10 => u32::MAX,
            None => 2,
        }
    }
}

/// One explored execution, handed to the leaf callback.
pub(crate) struct Execution {
    /// The observability events, in execution order.
    pub log: Vec<ObsEvent>,
    /// Pending `(proc, time)` pairs at the leaf; empty means the
    /// execution ran to completion, non-empty means it deadlocked.
    pub stuck: Vec<(u32, Time)>,
}

/// Aggregate exploration statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreStats {
    /// Leaves reached (complete executions + deadlocks).
    pub executions: u64,
    /// Leaves that deadlocked.
    pub deadlocks: u64,
    /// Paths pruned by sleep sets before reaching a leaf.
    pub pruned: u64,
    /// States at which more than one event had to be explored.
    pub branch_points: u64,
    /// Naive interleaving estimate: the product of schedulable-set
    /// sizes along the canonical execution (what enumeration without
    /// partial-order reduction would face).
    pub naive_interleavings: f64,
    /// True when `max_interleavings` stopped exploration early.
    pub truncated: bool,
    /// True when the preemption bound suppressed at least one branch.
    pub bounded: bool,
}

impl ExploreStats {
    /// Explored executions over the naive estimate (≤ 1; smaller is
    /// better reduction).
    pub fn reduction_ratio(&self) -> f64 {
        self.executions as f64 / self.naive_interleavings.max(1.0)
    }
}

/// A DFS stack entry: the choice prefix reaching the state, the sleep
/// set holding there, and how many preemptions the prefix spent.
struct Node {
    prefix: Vec<u64>,
    sleep: Vec<EventInfo>,
    preemptions: u32,
}

/// Explores every Mazurkiewicz-distinct execution of `factory`'s
/// programs under latency `lam`, invoking `on_leaf` per execution.
pub(crate) fn explore<P, F>(
    n: u32,
    lam: Latency,
    factory: &F,
    mutation: Option<Mutation>,
    cfg: &McConfig,
    mut on_leaf: impl FnMut(Execution),
) -> ExploreStats
where
    P: Clone,
    F: Fn() -> Vec<Box<dyn Program<P>>>,
{
    let bound = cfg.effective_bound(n);
    let mut stats = ExploreStats::default();
    let mut stack = vec![Node {
        prefix: Vec::new(),
        sleep: Vec::new(),
        preemptions: 0,
    }];
    let mut first_run = true;

    while let Some(node) = stack.pop() {
        if stats.executions >= cfg.max_interleavings {
            stats.truncated = true;
            break;
        }
        let mut eng = McEngine::new(n, lam.as_time(), factory(), mutation);
        eng.start();
        for &id in &node.prefix {
            let ok = eng.execute(id);
            debug_assert!(ok, "replay diverged at event {id}");
        }
        let mut sleep = node.sleep;
        let preemptions = node.preemptions;
        let mut prefix = node.prefix;
        let canonical = first_run;
        first_run = false;
        let mut naive = 1.0f64;
        let mut steps = 0u64;

        loop {
            let enabled = eng.enabled();
            if enabled.is_empty() {
                stats.executions += 1;
                let stuck = eng.stuck();
                if !stuck.is_empty() {
                    stats.deadlocks += 1;
                }
                if canonical {
                    stats.naive_interleavings = naive;
                }
                on_leaf(Execution {
                    log: eng.into_log(),
                    stuck,
                });
                break;
            }
            steps += 1;
            if steps > cfg.max_steps {
                // Runaway program: count the partial run as a truncated
                // leaf so callers still see its log.
                stats.executions += 1;
                stats.truncated = true;
                let stuck = eng.stuck();
                on_leaf(Execution {
                    log: eng.into_log(),
                    stuck,
                });
                break;
            }
            if canonical {
                naive *= enabled.len() as f64;
            }

            // Persistent-set shortcut: a conflict-free earliest event is
            // a forced step.
            let e0 = enabled[0];
            let persistent: Vec<EventInfo> = if enabled[1..].iter().any(|e| !independent(&e0, e)) {
                enabled
            } else {
                vec![e0]
            };

            let candidates: Vec<EventInfo> = persistent
                .iter()
                .filter(|e| !sleep.iter().any(|s| s.id == e.id))
                .copied()
                .collect();
            let Some(&chosen) = candidates.first() else {
                // Everything schedulable is asleep: this path permutes
                // an explored trace.
                stats.pruned += 1;
                break;
            };

            if candidates.len() > 1 {
                if preemptions < bound {
                    stats.branch_points += 1;
                    let mut done: Vec<EventInfo> = vec![chosen];
                    for &sib in &candidates[1..] {
                        let sib_sleep: Vec<EventInfo> = sleep
                            .iter()
                            .chain(done.iter())
                            .filter(|u| independent(u, &sib))
                            .copied()
                            .collect();
                        let mut sib_prefix = prefix.clone();
                        sib_prefix.push(sib.id);
                        stack.push(Node {
                            prefix: sib_prefix,
                            sleep: sib_sleep,
                            preemptions: preemptions + 1,
                        });
                        done.push(sib);
                    }
                } else {
                    stats.bounded = true;
                }
            }
            // `preemptions` counts non-canonical choices; continuing
            // with the canonical head costs none.
            sleep.retain(|u| independent(u, &chosen));
            eng.execute(chosen.id);
            prefix.push(chosen.id);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_algos::bcast_programs;
    use postal_sim::{Context, ProcId};

    #[test]
    fn conflict_free_broadcast_explores_one_execution() {
        let (n, lam) = (8u32, Latency::from_ratio(5, 2));
        let mut leaves = 0;
        let stats = explore(
            n,
            lam,
            &|| bcast_programs(n as usize, lam),
            None,
            &McConfig::default(),
            |ex| {
                assert!(ex.stuck.is_empty());
                leaves += 1;
            },
        );
        assert_eq!(stats.executions, 1);
        assert_eq!(leaves, 1);
        assert_eq!(stats.deadlocks, 0);
        assert!(!stats.truncated && !stats.bounded);
        // Concurrent deliveries exist, so naive enumeration would have
        // faced more than one interleaving.
        assert!(stats.naive_interleavings > 1.0);
        assert!(stats.reduction_ratio() < 1.0);
    }

    #[test]
    fn racing_senders_explore_both_orders() {
        // p1 and p2 fire at p0 simultaneously: two Mazurkiewicz classes.
        struct Fire;
        impl Program<u32> for Fire {
            fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
                if ctx.me() != ProcId::ROOT {
                    ctx.send(ProcId::ROOT, ctx.me().0);
                }
            }
            fn on_receive(&mut self, _: &mut dyn Context<u32>, _: ProcId, _: u32) {}
        }
        let lam = Latency::from_int(2);
        let factory = || {
            (0..3)
                .map(|_| Box::new(Fire) as Box<dyn Program<u32>>)
                .collect()
        };
        let stats = explore(3, lam, &factory, None, &McConfig::default(), |_| {});
        assert_eq!(stats.executions, 2);
        assert_eq!(stats.branch_points, 1);
    }

    #[test]
    fn preemption_bound_zero_explores_only_canonical() {
        struct Fire;
        impl Program<u32> for Fire {
            fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
                if ctx.me() != ProcId::ROOT {
                    ctx.send(ProcId::ROOT, ctx.me().0);
                }
            }
            fn on_receive(&mut self, _: &mut dyn Context<u32>, _: ProcId, _: u32) {}
        }
        let lam = Latency::from_int(2);
        let factory = || {
            (0..3)
                .map(|_| Box::new(Fire) as Box<dyn Program<u32>>)
                .collect()
        };
        let cfg = McConfig {
            preemption_bound: Some(0),
            ..McConfig::default()
        };
        let stats = explore(3, lam, &factory, None, &cfg, |_| {});
        assert_eq!(stats.executions, 1);
        assert!(stats.bounded);
    }
}
