//! # postal-mc
//!
//! A model checker for postal-model programs: runs a
//! [`postal_sim::Program`] under a controlled scheduler and explores
//! every Mazurkiewicz-distinct interleaving via dynamic partial-order
//! reduction (sleep sets + persistent-set pruning over the same
//! happens-before forcedness criterion as `postal_verify::race`), with
//! a bounded-preemption fallback for large systems.
//!
//! `postal-verify` lints *one observed* schedule; the Bar-Noy–Kipnis
//! claims quantify over **every** admissible execution — BCAST
//! completes in exactly `f_λ(n)` however concurrent receives land
//! within their `[t+λ−1, t+λ]` windows. The checker closes that gap by
//! asserting four whole-state-space properties, each carrying a stable
//! lint code from [`postal_model::lint`]:
//!
//! | property | code |
//! |---|---|
//! | no execution deadlocks | `P0008` |
//! | every flight is received | `P0009` |
//! | completion time is interleaving-independent and equals the reference simulator's | `P0010` |
//! | every receive lands exactly λ after its send | `P0011` |
//!
//! Every explored execution is additionally round-tripped through the
//! `postal-obs` JSONL pipeline and re-linted (`P0001`–`P0007`), so a
//! model-checking run certifies the schedule rules too.
//!
//! ## Quick example
//!
//! ```
//! use postal_mc::{check_algo, Algo, McConfig};
//! use postal_model::Latency;
//!
//! let report = check_algo(
//!     Algo::Bcast, 8, 1, Latency::from_ratio(5, 2), None, &McConfig::default(),
//! );
//! assert!(report.is_clean());
//! // Conflict-free: one execution covers the whole state space.
//! assert_eq!(report.stats.executions, 1);
//! assert!(report.stats.naive_interleavings > 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
pub mod explore;
pub mod mutation;
pub mod workload;

pub use explore::{ExploreStats, McConfig};
pub use mutation::Mutation;
pub use workload::{check_algo, Algo};

use explore::explore;
use postal_model::lint::{Diagnostic, LintCode, LintOptions, Severity};
use postal_model::schedule::TimedSend;
use postal_model::{Latency, Time};
use postal_obs::{to_jsonl, ObsEvent, ObsLog, RunMeta};
use postal_sim::{Program, Simulation, Uniform};
use postal_verify::{detect_races, lint_jsonl, Flight};
use std::collections::{BTreeMap, BTreeSet};

/// The result of model-checking one workload.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Workload tag (algorithm name).
    pub name: String,
    /// Processor count.
    pub n: u32,
    /// Message count `m`.
    pub m: u64,
    /// Latency λ.
    pub lambda: Latency,
    /// Exploration statistics (executions, pruning, reduction ratio).
    pub stats: ExploreStats,
    /// Distinct completion times observed across complete executions.
    pub completions: Vec<Time>,
    /// The single-run discrete-event simulator's completion.
    pub reference_completion: Time,
    /// Delivery races `postal_verify::race` finds in the canonical
    /// execution (informational: races without a `P0010` mean the
    /// program's outcome is order-insensitive).
    pub races: u64,
    /// Error-severity findings: synthesized `P0008`–`P0011` plus any
    /// schedule-rule errors from re-linting explored executions.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// True when no property was violated.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Multi-line human-readable exploration summary (without the
    /// diagnostics, which callers render separately).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "model check: {} n = {} m = {} lambda = {}\n",
            self.name, self.n, self.m, self.lambda
        ));
        out.push_str(&format!(
            "  executions explored   {}{}{}\n",
            self.stats.executions,
            if self.stats.truncated {
                " (truncated)"
            } else {
                ""
            },
            if self.stats.bounded {
                " (preemption-bounded)"
            } else {
                ""
            },
        ));
        out.push_str(&format!(
            "  naive interleavings   {:.0}\n",
            self.stats.naive_interleavings
        ));
        out.push_str(&format!(
            "  reduction ratio       {:.3e}\n",
            self.stats.reduction_ratio()
        ));
        out.push_str(&format!(
            "  branch points         {}   sleep-set pruned {}   deadlocks {}\n",
            self.stats.branch_points, self.stats.pruned, self.stats.deadlocks
        ));
        let comps: Vec<String> = self.completions.iter().map(|c| c.to_string()).collect();
        out.push_str(&format!(
            "  completion            {} (reference {})\n",
            if comps.is_empty() {
                "-".to_string()
            } else {
                comps.join(", ")
            },
            self.reference_completion
        ));
        out.push_str(&format!("  canonical races       {}\n", self.races));
        out
    }
}

/// Model-checks an arbitrary program workload.
///
/// `factory` builds a fresh program vector per explored execution (the
/// explorer replays prefixes from scratch). The reference completion is
/// taken from one `postal-sim` strict run of the same factory; `opts`
/// selects which schedule rules the per-execution re-lint applies
/// (broadcast workloads use [`LintOptions::broadcast_of`], arbitrary
/// traffic [`LintOptions::ports_only`]).
///
/// # Panics
/// Panics if the reference simulation itself fails to run (a broken
/// workload, not a model-checking finding).
#[allow(clippy::too_many_arguments)]
pub fn check_programs<P, F>(
    name: &str,
    n: u32,
    m: u64,
    lam: Latency,
    factory: F,
    mutation: Option<Mutation>,
    opts: &LintOptions,
    cfg: &McConfig,
) -> CheckReport
where
    P: Clone + 'static,
    F: Fn() -> Vec<Box<dyn Program<P>>>,
{
    let uniform = Uniform(lam);
    let reference = Simulation::new(n as usize, &uniform)
        .run(factory())
        .expect("reference simulation failed");
    let reference_completion = reference.completion;

    let mut completions: BTreeSet<Time> = BTreeSet::new();
    let mut lost: Vec<(u64, u32, u32, Time)> = Vec::new();
    let mut window: Vec<(u64, u32, u32, Time, Time)> = Vec::new();
    let mut deadlock_evidence: Option<(u32, Time)> = None;
    let mut relint: Vec<Diagnostic> = Vec::new();
    let mut races = 0u64;
    let mut canonical_done = false;

    let stats = explore(n, lam, &factory, mutation, cfg, |ex| {
        if !ex.stuck.is_empty() {
            if deadlock_evidence.is_none() {
                deadlock_evidence = Some(ex.stuck[0]);
            }
            return; // partial executions are not re-linted
        }
        let log = ObsLog::new(RunMeta::new("mc", n).latency(lam).messages(m), ex.log);
        completions.insert(log.completion_time());

        // Match sends to receives by sequence number.
        let mut sends: BTreeMap<u64, (u32, u32, Time)> = BTreeMap::new();
        let mut flights: Vec<Flight> = Vec::new();
        for e in log.events() {
            if let ObsEvent::Send {
                seq,
                src,
                dst,
                start,
                ..
            } = *e
            {
                sends.insert(seq, (src, dst, start));
            }
        }
        let mut received: BTreeSet<u64> = BTreeSet::new();
        for e in log.events() {
            if let ObsEvent::Recv {
                seq,
                src,
                dst,
                finish,
                ..
            } = *e
            {
                received.insert(seq);
                let Some(&(_, _, send_start)) = sends.get(&seq) else {
                    continue;
                };
                if finish != send_start + lam.as_time() && !window.iter().any(|w| w.0 == seq) {
                    window.push((seq, src, dst, send_start, finish));
                }
                flights.push(Flight {
                    src,
                    dst,
                    send_at: send_start.to_f64(),
                    recv_at: finish.to_f64(),
                    label: format!("#{seq}"),
                });
            }
        }
        for (&seq, &(src, dst, start)) in &sends {
            if !received.contains(&seq) && !lost.iter().any(|l| l.0 == seq) {
                lost.push((seq, src, dst, start));
            }
        }

        // Round-trip through the JSONL pipeline and re-lint.
        if let Ok(diags) = lint_jsonl(&to_jsonl(&log), opts) {
            for d in diags {
                if d.severity >= Severity::Error && !relint.contains(&d) {
                    relint.push(d);
                }
            }
        }
        if !canonical_done {
            canonical_done = true;
            races = detect_races(n, &flights).len() as u64;
        }
    });

    let lam_t = lam.as_time();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    if let Some((proc, at)) = deadlock_evidence {
        diagnostics.push(Diagnostic {
            code: LintCode::Deadlock,
            severity: Severity::Error,
            witness: None,
            proc: Some(proc),
            sends: vec![],
            related_time: Some(at),
            message: format!(
                "{} of {} explored executions deadlock: p{proc} still has a \
                 pending event at t = {at} that can never fire",
                stats.deadlocks, stats.executions
            ),
        });
    }
    if let Some(&(seq, src, dst, start)) = lost.first() {
        diagnostics.push(Diagnostic {
            code: LintCode::LostFlight,
            severity: Severity::Error,
            witness: None,
            proc: Some(dst),
            sends: vec![TimedSend {
                src,
                dst,
                send_start: start,
            }],
            related_time: Some(start + lam_t),
            message: format!(
                "message #{seq} from p{src} to p{dst} (sent at t = {start}) is \
                 never received ({} lost flight{} in total)",
                lost.len(),
                if lost.len() == 1 { "" } else { "s" }
            ),
        });
    }
    if completions.len() > 1 {
        let list: Vec<String> = completions.iter().map(|c| c.to_string()).collect();
        diagnostics.push(Diagnostic {
            code: LintCode::NondeterministicCompletion,
            severity: Severity::Error,
            witness: None,
            proc: None,
            sends: vec![],
            related_time: completions.iter().next_back().copied(),
            message: format!(
                "completion time depends on the interleaving: {} distinct values \
                 observed ({}) across {} executions",
                completions.len(),
                list.join(", "),
                stats.executions
            ),
        });
    } else if let Some(&c) = completions.iter().next() {
        // A uniform-but-wrong completion with an innocent event stream
        // still breaks interleaving-independence against the reference
        // run; when flights were lost or windows breached, those codes
        // already explain the shift.
        if c != reference_completion && lost.is_empty() && window.is_empty() {
            diagnostics.push(Diagnostic {
                code: LintCode::NondeterministicCompletion,
                severity: Severity::Error,
                witness: None,
                proc: None,
                sends: vec![],
                related_time: Some(c),
                message: format!(
                    "every explored execution completes at t = {c}, but the \
                     reference simulator completes at t = {reference_completion}"
                ),
            });
        }
    }
    if let Some(&(seq, src, dst, start, finish)) = window.first() {
        diagnostics.push(Diagnostic {
            code: LintCode::LatencyWindowViolation,
            severity: Severity::Error,
            witness: None,
            proc: Some(dst),
            sends: vec![TimedSend {
                src,
                dst,
                send_start: start,
            }],
            related_time: Some(finish),
            message: format!(
                "message #{seq} from p{src} to p{dst} sent at t = {start} \
                 completes its receive at t = {finish}, outside the postal \
                 window [{}, {}]",
                start + lam_t - Time::ONE,
                start + lam_t
            ),
        });
    }
    diagnostics.extend(relint);

    CheckReport {
        name: name.to_string(),
        n,
        m,
        lambda: lam,
        stats,
        completions: completions.into_iter().collect(),
        reference_completion,
        races,
        diagnostics,
    }
}
