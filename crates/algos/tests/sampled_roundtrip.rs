//! Sampled-trace properties: partial logs stay useful and honest.
//!
//! Two contracts, checked over generated workloads on the paper's
//! n ≤ 64 grid:
//!
//! 1. **No false positives from sampling** — replaying a lint-clean run
//!    through the ring recorder with rate sampling drops events, but
//!    the resulting JSONL re-ingests through `postal-verify` without
//!    any *error*-severity P0003 (causality) or P0005 (coverage)
//!    finding: the header's drop count downgrades absence-based lints
//!    to warnings instead of letting missing data masquerade as model
//!    violations.
//! 2. **Percentile fidelity** — the streaming log-bucketed sketches in
//!    [`MetricsSummary`] agree with the exact event-vector quantile
//!    computation to within one log-bucket at p50 and p99.

use postal_algos::{bcast_programs, repeat::repeat_programs, Pacing};
use postal_model::Latency;
use postal_obs::{
    hist::exact_quantile, to_jsonl, MetricsSummary, ObsEvent, ObsLog, Recorder, RingRecorder,
    SampleSpec,
};
use postal_sim::{log_from_report, Simulation, Uniform};
use postal_verify::{is_clean, lint_jsonl, LintCode, LintOptions, Severity};
use proptest::prelude::*;
use std::collections::HashMap;

/// One generated workload on the n ≤ 64 grid.
#[derive(Debug, Clone, Copy)]
struct Workload {
    n: usize,
    m: u32,
    lam: Latency,
    /// Keep one event in `rate` when replaying through the ring.
    rate: u64,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (3usize..=64, 1u32..=3, 0usize..3, 2u64..=5).prop_map(|(n, m, li, rate)| Workload {
        n,
        m,
        lam: [
            Latency::from_int(1),
            Latency::from_int(2),
            Latency::from_ratio(5, 2),
        ][li],
        rate,
    })
}

fn run_workload(w: Workload) -> ObsLog {
    let model = Uniform(w.lam);
    let (n, m) = (w.n as u32, w.m as u64);
    if w.m == 1 {
        let report = Simulation::new(w.n, &model)
            .run(bcast_programs(w.n, w.lam))
            .unwrap();
        log_from_report(&report, "event", n, Some(w.lam), Some(m))
    } else {
        let report = Simulation::new(w.n, &model)
            .run(repeat_programs(w.n, w.m, w.lam, Pacing::Greedy))
            .unwrap();
        log_from_report(&report, "event", n, Some(w.lam), Some(m))
    }
}

/// Replays a full log through the ring recorder with head sampling at
/// the given rate, producing a partial log with drop accounting.
fn head_sample(log: &ObsLog, rate: u64) -> ObsLog {
    let ring = RingRecorder::with_spec(1 << 16, SampleSpec::head(rate));
    for e in log.events() {
        ring.record(e.clone());
    }
    ring.into_log(log.meta().clone())
}

/// End-to-end latencies (recv finish − matching send start), exactly as
/// `MetricsSummary` computes them — the reference vector the sketch is
/// compared against.
fn exact_latencies(log: &ObsLog) -> Vec<f64> {
    let mut send_starts: HashMap<u64, postal_model::Time> = HashMap::new();
    for e in log.events() {
        if let ObsEvent::Send { seq, start, .. } = *e {
            send_starts.insert(seq, start);
        }
    }
    log.events()
        .iter()
        .filter_map(|e| match *e {
            ObsEvent::Recv { seq, finish, .. } => {
                send_starts.get(&seq).map(|s| (finish - *s).to_f64())
            }
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn head_sampled_logs_lint_without_spurious_errors(w in arb_workload()) {
        let full = run_workload(w);
        let opts = if w.m == 1 { LintOptions::default() } else { LintOptions::ports_only() };

        // The unsampled run is clean; that is the baseline being protected.
        let baseline = lint_jsonl(&to_jsonl(&full), &opts).unwrap();
        prop_assert!(is_clean(&baseline, Severity::Error), "{w:?}: baseline dirty: {baseline:?}");

        let sampled = head_sample(&full, w.rate);
        let dropped = sampled.meta().dropped_events.unwrap();
        prop_assert!(dropped > 0, "{w:?}: rate {} dropped nothing", w.rate);
        prop_assert_eq!(
            sampled.events().len() as u64 + dropped,
            full.events().len() as u64
        );

        // The partial trace must re-ingest without error-severity
        // absence lints — they are artifacts of sampling, not the run.
        let text = to_jsonl(&sampled);
        let diags = lint_jsonl(&text, &opts).unwrap();
        for d in &diags {
            let absence = matches!(
                d.code,
                LintCode::CausalityViolation | LintCode::UninformedProcessor
            );
            prop_assert!(
                !(absence && d.severity == Severity::Error),
                "{w:?}: spurious {} error on a sampled log: {}",
                d.code,
                d.message
            );
        }
    }

    #[test]
    fn streaming_percentiles_match_exact_within_one_bucket(w in arb_workload()) {
        let log = run_workload(w);
        let s = MetricsSummary::from_log(&log);
        let latencies = exact_latencies(&log);
        prop_assert_eq!(latencies.len() as u64, s.latency_sketch.count());

        for q in [0.5, 0.99] {
            let exact = exact_quantile(&latencies, q);
            let (lo, hi) = s.latency_sketch.quantile_bounds(q);
            prop_assert!(
                exact >= lo && exact < hi,
                "{w:?}: exact p{} = {} outside sketch bucket [{}, {})",
                q * 100.0, exact, lo, hi
            );
        }
    }
}
