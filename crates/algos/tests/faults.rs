//! Failure-injection tests: the paper's algorithms assume a reliable
//! network; these tests document exactly how they degrade when that
//! assumption is broken, and that the blast radius matches the broadcast
//! tree structure.

use postal_algos::{bcast_programs, BroadcastTree, TreeNode};
use postal_model::{Latency, Time};
use postal_sim::{FaultPlan, ProcId, Simulation, Uniform};

/// The set of processors that hear the message when the root's first
/// send (seq 0) is dropped.
#[test]
fn dropping_the_first_send_silences_the_delegated_subtree() {
    let lam = Latency::from_ratio(5, 2);
    let n = 14usize;
    let model = Uniform(lam);
    let report = Simulation::new(n, &model)
        .faults(FaultPlan::none().dropping(0))
        .run(bcast_programs(n, lam))
        .unwrap();

    // Figure 1: the root's first send goes to p9, which is delegated
    // {p9..p13}. Dropping it must lose exactly those five processors.
    let first = report.trace.first_receipt_times(n);
    for (i, t) in first.iter().enumerate().take(9).skip(1) {
        assert!(t.is_some(), "p{i} should still be reached");
    }
    for (i, t) in first.iter().enumerate().skip(9) {
        assert!(t.is_none(), "p{i} should be lost");
    }
    assert_eq!(report.messages(), 8);
}

#[test]
fn dropping_a_leaf_send_loses_exactly_one_processor() {
    let lam = Latency::from_ratio(5, 2);
    let n = 14usize;
    // The root's last send (seq 5) goes to p1, a leaf.
    let model = Uniform(lam);
    let report = Simulation::new(n, &model)
        .faults(FaultPlan::none().dropping(5))
        .run(bcast_programs(n, lam))
        .unwrap();
    let first = report.trace.first_receipt_times(n);
    let lost: Vec<usize> = (1..n).filter(|&i| first[i].is_none()).collect();
    assert_eq!(lost, vec![1]);
}

#[test]
fn crash_loses_the_crashed_nodes_subtree() {
    let lam = Latency::from_ratio(5, 2);
    let n = 14usize;
    // Crash p9 just before its message arrives (t = 2): everything p9
    // was responsible for ({p9..p13}) goes dark.
    let model = Uniform(lam);
    let report = Simulation::new(n, &model)
        .faults(FaultPlan::none().crashing(ProcId(9), Time::from_int(2)))
        .run(bcast_programs(n, lam))
        .unwrap();
    let first = report.trace.first_receipt_times(n);
    let lost: Vec<usize> = (1..n).filter(|&i| first[i].is_none()).collect();
    assert_eq!(lost, vec![9, 10, 11, 12, 13]);
}

#[test]
fn late_crash_after_forwarding_is_harmless_to_others() {
    let lam = Latency::from_ratio(5, 2);
    let n = 14usize;
    // p9 forwards during [5/2, 11/2]; crashing it at t = 6 (after its
    // last send started) only stops p9 itself from... nothing: it has
    // already received and sent everything. No one is lost.
    let model = Uniform(lam);
    let report = Simulation::new(n, &model)
        .faults(FaultPlan::none().crashing(ProcId(9), Time::from_int(6)))
        .run(bcast_programs(n, lam))
        .unwrap();
    let first = report.trace.first_receipt_times(n);
    assert!((1..n).all(|i| first[i].is_some()));
}

#[test]
fn blast_radius_equals_subtree_size_for_every_edge() {
    // Property over the whole tree: dropping the k-th send loses exactly
    // the processors in the receiver's delegated subtree.
    let lam = Latency::from_int(2);
    let n = 20usize;
    let tree = BroadcastTree::build(n as u64, lam);

    // Map each send seq (BFS issue order is NOT seq order; seq is global
    // issue order from the engine) — instead, run fault-free first and
    // read the actual (seq → dst) mapping from the trace.
    let model = Uniform(lam);
    let clean = Simulation::new(n, &model)
        .run(bcast_programs(n, lam))
        .unwrap();
    for t in clean.trace.transfers() {
        let dst = t.dst;
        let subtree = subtree_members(&tree.root, dst).expect("dst is in the tree");
        let report = Simulation::new(n, &model)
            .faults(FaultPlan::none().dropping(t.seq.0))
            .run(bcast_programs(n, lam))
            .unwrap();
        let first = report.trace.first_receipt_times(n);
        let lost: Vec<u32> = (1..n)
            .filter(|&i| first[i].is_none())
            .map(|i| i as u32)
            .collect();
        let mut expected = subtree;
        expected.sort_unstable();
        assert_eq!(lost, expected, "dropping seq {:?} → {:?}", t.seq, t.dst);
    }
}

/// All processor ids in the subtree rooted at `target`.
fn subtree_members(node: &TreeNode, target: ProcId) -> Option<Vec<u32>> {
    if node.proc == target {
        let mut v = Vec::new();
        collect(node, &mut v);
        return Some(v);
    }
    for c in &node.children {
        if let Some(v) = subtree_members(c, target) {
            return Some(v);
        }
    }
    return None;

    fn collect(node: &TreeNode, out: &mut Vec<u32>) {
        out.push(node.proc.0);
        for c in &node.children {
            collect(c, out);
        }
    }
}
