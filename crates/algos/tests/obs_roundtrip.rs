//! Round-trip property: a lint-clean run survives the observability
//! pipeline intact. For every paper algorithm workload we simulate,
//! export the event stream as JSONL, re-ingest it through postal-verify,
//! and require (a) the parsed log equals the original bit-for-bit and
//! (b) the reconstructed schedule lints exactly as clean as the one the
//! simulator executed. This is the contract that makes recorded traces
//! trustworthy inputs to offline analysis.

use postal_algos::{bcast_programs, pack::pack_programs, repeat::repeat_programs, Pacing};
use postal_model::Latency;
use postal_obs::{from_jsonl, to_jsonl, ObsLog};
use postal_sim::{log_from_report, Simulation, Uniform};
use postal_verify::{
    is_clean, lint_jsonl, lint_schedule, schedule_from_jsonl, LintOptions, Severity,
};
use proptest::prelude::*;

/// One generated workload: which algorithm, at what size and latency.
#[derive(Debug, Clone, Copy)]
enum Workload {
    Bcast { n: usize, lam: Latency },
    Repeat { n: usize, m: u32, lam: Latency },
    Pack { n: usize, m: u32, lam: Latency },
}

impl Workload {
    fn n(self) -> usize {
        match self {
            Workload::Bcast { n, .. } | Workload::Repeat { n, .. } | Workload::Pack { n, .. } => n,
        }
    }

    fn lam(self) -> Latency {
        match self {
            Workload::Bcast { lam, .. }
            | Workload::Repeat { lam, .. }
            | Workload::Pack { lam, .. } => lam,
        }
    }

    fn messages(self) -> u64 {
        match self {
            Workload::Bcast { .. } => 1,
            Workload::Repeat { m, .. } | Workload::Pack { m, .. } => m as u64,
        }
    }

    /// The lint profile the workload's schedule must satisfy: full
    /// broadcast rules for single-message runs, port rules for
    /// multi-message traffic (which legitimately re-sends to informed
    /// processors).
    fn lint_options(self) -> LintOptions {
        match self {
            Workload::Bcast { .. } => LintOptions::default(),
            Workload::Repeat { .. } | Workload::Pack { .. } => LintOptions::ports_only(),
        }
    }

    fn run(self) -> ObsLog {
        let model = Uniform(self.lam());
        let (n, m) = (self.n() as u32, self.messages());
        match self {
            Workload::Bcast { n: sz, lam } => {
                let report = Simulation::new(sz, &model)
                    .run(bcast_programs(sz, lam))
                    .unwrap();
                log_from_report(&report, "event", n, Some(lam), Some(m))
            }
            Workload::Repeat { n: sz, m: k, lam } => {
                let report = Simulation::new(sz, &model)
                    .run(repeat_programs(sz, k, lam, Pacing::Greedy))
                    .unwrap();
                log_from_report(&report, "event", n, Some(lam), Some(m))
            }
            Workload::Pack { n: sz, m: k, lam } => {
                let report = Simulation::new(sz, &model)
                    .run(pack_programs(sz, k, lam))
                    .unwrap();
                log_from_report(&report, "event", n, Some(lam), Some(m))
            }
        }
    }
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (0usize..3, 2usize..=64, 1u32..=4, 0usize..3).prop_map(|(alg, n, m, li)| {
        let lam = [
            Latency::from_int(1),
            Latency::from_int(2),
            Latency::from_ratio(5, 2),
        ][li];
        match alg {
            0 => Workload::Bcast { n, lam },
            1 => Workload::Repeat { n, m, lam },
            _ => Workload::Pack { n, m, lam },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn jsonl_round_trip_preserves_log_and_lint_verdict(w in arb_workload()) {
        let log = w.run();
        let opts = w.lint_options();

        // The run itself must be lint-clean before we rely on it.
        let schedule = log.to_schedule().unwrap();
        let direct = lint_schedule(&schedule, &opts);
        prop_assert!(
            is_clean(&direct, Severity::Error),
            "{w:?}: simulated schedule not clean: {direct:?}"
        );

        // Serialize and re-ingest: the parsed log is the original log.
        let text = to_jsonl(&log);
        let parsed = from_jsonl(&text).unwrap();
        prop_assert_eq!(&parsed, &log, "{w:?}: JSONL round trip changed the log");

        // postal-verify's ingest path reaches the same schedule and the
        // same verdict as linting the in-memory run directly.
        let re_schedule = schedule_from_jsonl(&text).unwrap();
        prop_assert_eq!(re_schedule.sends(), schedule.sends());
        let re_diags = lint_jsonl(&text, &opts).unwrap();
        prop_assert_eq!(re_diags.len(), direct.len());
        prop_assert!(is_clean(&re_diags, Severity::Error));
    }
}
