//! Cross-engine validation: the event-driven engine and the lockstep
//! engine are independent implementations of the postal model and must
//! produce transfer-for-transfer identical traces for every algorithm
//! in the paper. The threaded runtime runs the same programs on real
//! threads; wall jitter forbids exact-time comparison, so it is held to
//! structural agreement (same message multiset) and completion bounds.

use postal_algos::bcast::{BcastPayload, BcastProgram};
use postal_algos::ext::combine::{combine_programs, run_combine};
use postal_algos::repeat::RepeatProgram;
use postal_algos::{
    bcast_programs, dtree::dtree_programs, pack::pack_programs, pipeline::pipeline_programs,
    repeat::repeat_programs, Pacing,
};
use postal_model::{Latency, Time};
use postal_obs::{MemoryRecorder, ObsEvent, RunMeta};
use postal_runtime::{run_threaded, send_programs_from, RuntimeConfig};
use postal_sim::lockstep::run_lockstep_observed;
use postal_sim::{ProcId, Program, RunReport, Simulation, Uniform};

/// Canonical form of a trace: sorted (src, dst, send_start, recv_finish).
fn canon<P>(report: &RunReport<P>) -> Vec<(u32, u32, Time, Time)> {
    let mut v: Vec<_> = report
        .trace
        .transfers()
        .iter()
        .map(|t| (t.src.0, t.dst.0, t.send_start, t.recv_finish))
        .collect();
    v.sort();
    v
}

/// Canonical form of an observability log's message events, seq-blind
/// (the engines may number identical same-instant sends differently).
fn canon_obs(log: &postal_obs::ObsLog) -> Vec<(u32, u32, Time, Time, bool)> {
    let mut v: Vec<_> = log
        .events()
        .iter()
        .filter_map(|e| match *e {
            ObsEvent::Send {
                src,
                dst,
                start,
                finish,
                ..
            } => Some((src, dst, start, finish, false)),
            ObsEvent::Recv {
                src,
                dst,
                start,
                finish,
                queued,
                ..
            } => Some((src, dst, start, finish, queued)),
            _ => None,
        })
        .collect();
    v.sort();
    v
}

fn assert_engines_agree<P: Clone>(
    n: usize,
    lam: Latency,
    build: impl Fn() -> Vec<Box<dyn Program<P>>>,
    label: &str,
) {
    let model = Uniform(lam);
    let rec_event = MemoryRecorder::new();
    let event = Simulation::new(n, &model)
        .observe(&rec_event)
        .run(build())
        .unwrap();
    let rec_lock = MemoryRecorder::new();
    let lock = run_lockstep_observed(n, lam, build(), 1_000_000, &rec_lock).unwrap();
    assert_eq!(event.completion, lock.completion, "{label}: completion");
    assert_eq!(
        event.violations.len(),
        lock.violations.len(),
        "{label}: violations"
    );
    assert_eq!(canon(&event), canon(&lock), "{label}: traces");
    // Both engines must also emit the same observability stream: the
    // exporters downstream see one truth regardless of substrate.
    let meta = RunMeta::new("x", n as u32).latency(lam);
    assert_eq!(
        canon_obs(&rec_event.into_log(meta.clone())),
        canon_obs(&rec_lock.into_log(meta)),
        "{label}: obs streams"
    );
}

#[test]
fn bcast_agrees() {
    for lam in [
        Latency::TELEPHONE,
        Latency::from_ratio(5, 2),
        Latency::from_ratio(7, 3),
        Latency::from_int(4),
    ] {
        for n in [1usize, 2, 5, 14, 64] {
            assert_engines_agree(n, lam, || bcast_programs(n, lam), "bcast");
        }
    }
}

#[test]
fn repeat_agrees_both_pacings() {
    for lam in [Latency::TELEPHONE, Latency::from_ratio(5, 2)] {
        for (n, m) in [(5usize, 3u32), (14, 4), (33, 2)] {
            for pacing in [Pacing::PaperExact, Pacing::Greedy] {
                assert_engines_agree(n, lam, || repeat_programs(n, m, lam, pacing), "repeat");
            }
        }
    }
}

#[test]
fn pack_agrees() {
    for lam in [Latency::from_int(2), Latency::from_ratio(5, 2)] {
        for (n, m) in [(5usize, 3u32), (14, 4)] {
            assert_engines_agree(n, lam, || pack_programs(n, m, lam), "pack");
        }
    }
}

#[test]
fn pipeline_agrees_both_regimes() {
    for (lam, m) in [
        (Latency::from_int(4), 2u32), // PIPELINE-1
        (Latency::from_int(2), 6),    // PIPELINE-2
        (Latency::from_ratio(5, 2), 5),
    ] {
        for n in [5usize, 14, 33] {
            assert_engines_agree(n, lam, || pipeline_programs(n, m, lam), "pipeline");
        }
    }
}

#[test]
fn dtree_agrees() {
    for lam in [Latency::TELEPHONE, Latency::from_ratio(5, 2)] {
        for d in [1u64, 2, 3, 7] {
            assert_engines_agree(15, lam, || dtree_programs(15, 3, d), "dtree");
        }
    }
}

#[test]
fn combine_agrees() {
    // Combine is the wake-up-heavy algorithm: both engines must agree on
    // the reversed-tree schedule exactly.
    for lam in [
        Latency::TELEPHONE,
        Latency::from_ratio(5, 2),
        Latency::from_int(3),
    ] {
        for n in [1usize, 2, 5, 14, 33] {
            let values: Vec<u64> = (0..n as u64).collect();
            assert_engines_agree(n, lam, || combine_programs(&values, lam), "combine");
        }
    }
    // And the event-engine outcome is the documented optimum.
    let lam = Latency::from_ratio(5, 2);
    let values: Vec<u64> = (0..14).collect();
    let event = run_combine(&values, lam);
    event.report.assert_model_clean();
    assert_eq!(event.report.completion, Time::new(15, 2));
}

/// Structural agreement between the event engine and a threaded run:
/// identical (src, dst) edge multisets and per-destination counts, with
/// the threaded completion bounded below by the model time (sleeps
/// enforce minimums) and above by a generous jitter allowance.
fn assert_threaded_agrees<P: Clone + Send + 'static>(
    n: usize,
    lam: Latency,
    build_sim: impl Fn() -> Vec<Box<dyn Program<P>>>,
    build_threaded: impl Fn() -> Vec<Box<dyn Program<P> + Send>>,
    label: &str,
) {
    let model = Uniform(lam);
    let event = Simulation::new(n, &model).run(build_sim()).unwrap();
    event.assert_model_clean();
    let threaded = run_threaded(lam, RuntimeConfig::default(), build_threaded());

    let mut sim_edges: Vec<(u32, u32)> = event
        .trace
        .transfers()
        .iter()
        .map(|t| (t.src.0, t.dst.0))
        .collect();
    let mut thr_edges: Vec<(u32, u32)> = threaded
        .deliveries
        .iter()
        .map(|d| (d.from.0, d.to.0))
        .collect();
    sim_edges.sort_unstable();
    thr_edges.sort_unstable();
    assert_eq!(sim_edges, thr_edges, "{label}: edge multisets");

    let model_t = event.completion.to_f64();
    let wall_t = threaded.completion.to_f64();
    assert!(
        wall_t >= model_t - 0.01,
        "{label}: threaded finished impossibly fast ({wall_t} < {model_t})"
    );
    assert!(
        wall_t < model_t * 3.0 + 5.0,
        "{label}: threaded far too slow ({wall_t} vs {model_t})"
    );
}

#[test]
fn threaded_runtime_agrees_on_bcast() {
    for (n, lam) in [
        (5usize, Latency::from_int(2)),
        (14, Latency::from_ratio(5, 2)),
    ] {
        assert_threaded_agrees(
            n,
            lam,
            || bcast_programs(n, lam),
            || {
                send_programs_from(n, |id| {
                    Box::new(BcastProgram::new(
                        lam,
                        (id == ProcId::ROOT).then_some(n as u64),
                    )) as Box<dyn Program<BcastPayload> + Send>
                })
            },
            "bcast",
        );
    }
}

#[test]
fn threaded_runtime_agrees_on_repeat() {
    let (n, m) = (8usize, 3u32);
    let lam = Latency::from_int(2);
    assert_threaded_agrees(
        n,
        lam,
        || repeat_programs(n, m, lam, Pacing::Greedy),
        || {
            send_programs_from(n, |id| {
                Box::new(RepeatProgram::new(
                    lam,
                    Pacing::Greedy,
                    (id == ProcId::ROOT).then_some((n as u64, m)),
                )) as Box<dyn Program<postal_algos::MultiPacket> + Send>
            })
        },
        "repeat",
    );
}
