//! Cross-engine validation: the event-driven engine and the lockstep
//! engine are independent implementations of the postal model and must
//! produce transfer-for-transfer identical traces for every algorithm
//! in the paper.

use postal_algos::ext::combine::{combine_programs, run_combine};
use postal_algos::{
    bcast_programs, dtree::dtree_programs, pack::pack_programs, pipeline::pipeline_programs,
    repeat::repeat_programs, Pacing,
};
use postal_model::{Latency, Time};
use postal_sim::lockstep::run_lockstep;
use postal_sim::{Program, RunReport, Simulation, Uniform};

/// Canonical form of a trace: sorted (src, dst, send_start, recv_finish).
fn canon<P>(report: &RunReport<P>) -> Vec<(u32, u32, Time, Time)> {
    let mut v: Vec<_> = report
        .trace
        .transfers()
        .iter()
        .map(|t| (t.src.0, t.dst.0, t.send_start, t.recv_finish))
        .collect();
    v.sort();
    v
}

fn assert_engines_agree<P: Clone>(
    n: usize,
    lam: Latency,
    build: impl Fn() -> Vec<Box<dyn Program<P>>>,
    label: &str,
) {
    let model = Uniform(lam);
    let event = Simulation::new(n, &model).run(build()).unwrap();
    let lock = run_lockstep(n, lam, build(), 1_000_000).unwrap();
    assert_eq!(event.completion, lock.completion, "{label}: completion");
    assert_eq!(
        event.violations.len(),
        lock.violations.len(),
        "{label}: violations"
    );
    assert_eq!(canon(&event), canon(&lock), "{label}: traces");
}

#[test]
fn bcast_agrees() {
    for lam in [
        Latency::TELEPHONE,
        Latency::from_ratio(5, 2),
        Latency::from_ratio(7, 3),
        Latency::from_int(4),
    ] {
        for n in [1usize, 2, 5, 14, 64] {
            assert_engines_agree(n, lam, || bcast_programs(n, lam), "bcast");
        }
    }
}

#[test]
fn repeat_agrees_both_pacings() {
    for lam in [Latency::TELEPHONE, Latency::from_ratio(5, 2)] {
        for (n, m) in [(5usize, 3u32), (14, 4), (33, 2)] {
            for pacing in [Pacing::PaperExact, Pacing::Greedy] {
                assert_engines_agree(n, lam, || repeat_programs(n, m, lam, pacing), "repeat");
            }
        }
    }
}

#[test]
fn pack_agrees() {
    for lam in [Latency::from_int(2), Latency::from_ratio(5, 2)] {
        for (n, m) in [(5usize, 3u32), (14, 4)] {
            assert_engines_agree(n, lam, || pack_programs(n, m, lam), "pack");
        }
    }
}

#[test]
fn pipeline_agrees_both_regimes() {
    for (lam, m) in [
        (Latency::from_int(4), 2u32), // PIPELINE-1
        (Latency::from_int(2), 6),    // PIPELINE-2
        (Latency::from_ratio(5, 2), 5),
    ] {
        for n in [5usize, 14, 33] {
            assert_engines_agree(n, lam, || pipeline_programs(n, m, lam), "pipeline");
        }
    }
}

#[test]
fn dtree_agrees() {
    for lam in [Latency::TELEPHONE, Latency::from_ratio(5, 2)] {
        for d in [1u64, 2, 3, 7] {
            assert_engines_agree(15, lam, || dtree_programs(15, 3, d), "dtree");
        }
    }
}

#[test]
fn combine_agrees() {
    // Combine is the wake-up-heavy algorithm: both engines must agree on
    // the reversed-tree schedule exactly.
    for lam in [
        Latency::TELEPHONE,
        Latency::from_ratio(5, 2),
        Latency::from_int(3),
    ] {
        for n in [1usize, 2, 5, 14, 33] {
            let values: Vec<u64> = (0..n as u64).collect();
            assert_engines_agree(n, lam, || combine_programs(&values, lam), "combine");
        }
    }
    // And the event-engine outcome is the documented optimum.
    let lam = Latency::from_ratio(5, 2);
    let values: Vec<u64> = (0..14).collect();
    let event = run_combine(&values, lam);
    event.report.assert_model_clean();
    assert_eq!(event.report.completion, Time::new(15, 2));
}
