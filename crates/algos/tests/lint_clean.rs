//! Every shipped algorithm must be lint-clean at error severity: the
//! schedule it realizes (extracted from the engine trace with
//! [`postal_sim::Trace::to_schedule`]) passes `P0001`–`P0005` and never
//! beats a proven lower bound (`P0007` at error level). Broadcast
//! algorithms are checked against the full broadcast rules; collectives
//! with multiple sources are checked against the port rules.
//!
//! This is the acceptance grid from the analyzer's introduction: all
//! algorithms, n ∈ {2..64}, λ ∈ {1, 2, 3, 5} (plus the paper's 5/2).

use postal_algos::ext::{allreduce, alltoall, combine, gather, gossip, scatter};
use postal_algos::{
    flood_schedule, run_bcast, run_dtree, run_pack, run_pipeline, run_repeat, run_repeat_greedy,
    BroadcastTree, ToSchedule,
};
use postal_model::Latency;
use postal_verify::{
    assert_broadcast_clean, assert_clean, assert_ports_clean, LintOptions, Severity,
};

fn lambdas() -> Vec<Latency> {
    vec![
        Latency::from_int(1),
        Latency::from_int(2),
        Latency::from_int(3),
        Latency::from_int(5),
        Latency::from_ratio(5, 2),
    ]
}

#[test]
fn bcast_is_lint_clean_on_the_full_grid() {
    for lam in lambdas() {
        for n in 2..=64usize {
            let report = run_bcast(n, lam);
            report.assert_model_clean();
            let schedule = report.trace.to_schedule(n as u32, lam);
            let diags = assert_broadcast_clean(&schedule, &format!("bcast n={n} λ={lam}"));
            // BCAST is optimal: no gap diagnostic at any severity.
            assert!(
                !diags
                    .iter()
                    .any(|d| d.code == postal_verify::LintCode::OptimalityGap),
                "bcast n={n} λ={lam} flagged suboptimal: {diags:?}"
            );
        }
    }
}

#[test]
fn tree_and_flood_schedules_are_lint_clean_on_the_full_grid() {
    for lam in lambdas() {
        for n in 2..=64u64 {
            let tree = BroadcastTree::build(n, lam).to_schedule();
            assert_broadcast_clean(&tree, &format!("tree n={n} λ={lam}"));
            let flood = flood_schedule(n, lam);
            assert_broadcast_clean(&flood.schedule, &format!("flood n={n} λ={lam}"));
        }
    }
}

#[test]
fn multi_message_broadcasts_are_lint_clean() {
    for lam in [Latency::from_int(1), Latency::from_ratio(5, 2)] {
        for &n in &[2usize, 9, 24, 64] {
            for &m in &[1u32, 2, 5, 8] {
                let opts = LintOptions::broadcast_of(m as u64);
                for (name, report) in [
                    ("repeat", run_repeat(n, m, lam)),
                    ("repeat-greedy", run_repeat_greedy(n, m, lam)),
                    ("pack", run_pack(n, m, lam)),
                    ("pipeline", run_pipeline(n, m, lam)),
                    ("line", run_dtree(n, m, lam, 1)),
                    ("binary", run_dtree(n, m, lam, 2)),
                    ("star", run_dtree(n, m, lam, n as u64 - 1)),
                ] {
                    report.verify().unwrap_or_else(|e| {
                        panic!("{name} n={n} m={m} λ={lam}: engine verify failed: {e:?}")
                    });
                    let schedule = report.report.trace.to_schedule(n as u32, lam);
                    assert_clean(
                        &schedule,
                        &opts,
                        Severity::Error,
                        &format!("{name} n={n} m={m} λ={lam}"),
                    );
                }
            }
        }
    }
}

#[test]
fn collectives_are_port_lint_clean() {
    for lam in [Latency::from_int(1), Latency::from_ratio(5, 2)] {
        for &n in &[2usize, 7, 16] {
            let values: Vec<u64> = (0..n as u64).collect();
            let items: Vec<Vec<u64>> = (0..n as u64)
                .map(|i| (0..n as u64).map(|j| i * 100 + j).collect())
                .collect();
            let checks: Vec<(&str, postal_model::schedule::Schedule)> = vec![
                (
                    "gather",
                    gather::run_gather(&values, lam)
                        .report
                        .trace
                        .to_schedule(n as u32, lam),
                ),
                (
                    "scatter",
                    scatter::run_scatter(&values, lam)
                        .trace
                        .to_schedule(n as u32, lam),
                ),
                (
                    "combine",
                    combine::run_combine(&values, lam)
                        .report
                        .trace
                        .to_schedule(n as u32, lam),
                ),
                (
                    "gossip",
                    gossip::run_gossip(&values, lam)
                        .report
                        .trace
                        .to_schedule(n as u32, lam),
                ),
                (
                    "allreduce",
                    allreduce::run_allreduce(&values, lam)
                        .report
                        .trace
                        .to_schedule(n as u32, lam),
                ),
                (
                    "alltoall",
                    alltoall::run_alltoall(&items, lam)
                        .report
                        .trace
                        .to_schedule(n as u32, lam),
                ),
            ];
            for (name, schedule) in checks {
                assert_ports_clean(&schedule, &format!("{name} n={n} λ={lam}"));
            }
        }
    }
}
