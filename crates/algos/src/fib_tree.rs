//! Generalized Fibonacci broadcast trees (Figure 1 of the paper).
//!
//! The BCAST recursion induces a *broadcast tree*: an edge `p → q` with
//! send time `s` means `p` transmits the message to `q` during `[s, s+1]`
//! and `q` receives it during `[s+λ−1, s+λ]`. Nodes close to the root have
//! higher degree than nodes further away, and the tree's shape depends on
//! λ: for λ = 1 it is the binomial tree, for λ = 2 the Fibonacci tree.
//!
//! [`BroadcastTree::build`] constructs the exact tree for MPS(n, λ) and
//! [`BroadcastTree::render`] draws it with per-node receive times — a
//! regeneration of the paper's Figure 1.

use crate::cascade::{cascade, Orientation};
use postal_model::{GenFib, Latency, Time};
use postal_sim::ProcId;
use std::fmt::Write as _;

/// One node of a broadcast tree.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// The processor at this node.
    pub proc: ProcId,
    /// When this processor knows the message: time 0 for the root, the
    /// receive-finish time (`send + λ`) otherwise.
    pub ready: Time,
    /// Children in send order (first child receives the earliest send).
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    /// Number of nodes in this subtree (including self).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(TreeNode::size).sum::<usize>()
    }

    /// Latest `ready` time in this subtree.
    pub fn completion(&self) -> Time {
        self.children
            .iter()
            .map(TreeNode::completion)
            .max()
            .unwrap_or(self.ready)
            .max(self.ready)
    }

    /// Depth (edges) of the deepest node.
    pub fn depth(&self) -> usize {
        self.children
            .iter()
            .map(|c| 1 + c.depth())
            .max()
            .unwrap_or(0)
    }
}

/// The complete broadcast tree for MPS(n, λ).
///
/// ```
/// use postal_algos::BroadcastTree;
/// use postal_model::{Latency, Time};
///
/// // The paper's Figure 1.
/// let tree = BroadcastTree::build(14, Latency::from_ratio(5, 2));
/// assert_eq!(tree.completion(), Time::new(15, 2));
/// assert_eq!(tree.root.children[0].proc.0, 9); // first delegate is p9
/// ```
#[derive(Debug, Clone)]
pub struct BroadcastTree {
    /// Number of processors.
    pub n: u64,
    /// The latency the tree is optimal for.
    pub latency: Latency,
    /// The root node (`p_0`, ready at time 0).
    pub root: TreeNode,
}

impl BroadcastTree {
    /// Builds the optimal broadcast tree for `n` processors at latency λ.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn build(n: u64, latency: Latency) -> BroadcastTree {
        assert!(n >= 1, "a broadcast tree needs at least one processor");
        let fib = GenFib::new(latency);
        let root = build_node(&fib, latency, 0, n, Time::ZERO);
        BroadcastTree { n, latency, root }
    }

    /// The completion time of the tree; equals `f_λ(n)` (Theorem 6).
    pub fn completion(&self) -> Time {
        self.root.completion()
    }

    /// Renders the tree as indented ASCII with receive times, e.g. for
    /// Figure 1 (n = 14, λ = 5/2):
    ///
    /// ```text
    /// p0 (t=0)
    /// ├── p9 (t=5/2)
    /// │   ├── p12 (t=5)
    /// ...
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} (t={})", self.root.proc, self.root.ready);
        render_children(&mut out, &self.root, "");
        out
    }
}

fn build_node(fib: &GenFib, latency: Latency, lo: u64, size: u64, ready: Time) -> TreeNode {
    let mut children = Vec::new();
    let mut send_time = ready;
    for send in cascade(fib, size, Orientation::Standard) {
        let child_ready = send_time + latency.as_time();
        children.push(build_node(
            fib,
            latency,
            lo + send.offset,
            send.size,
            child_ready,
        ));
        send_time += Time::ONE;
    }
    TreeNode {
        proc: ProcId::from(lo as usize),
        ready,
        children,
    }
}

fn render_children(out: &mut String, node: &TreeNode, prefix: &str) {
    let count = node.children.len();
    for (i, child) in node.children.iter().enumerate() {
        let last = i + 1 == count;
        let branch = if last { "└── " } else { "├── " };
        let _ = writeln!(out, "{prefix}{branch}{} (t={})", child.proc, child.ready);
        let child_prefix = format!("{prefix}{}", if last { "    " } else { "│   " });
        render_children(out, child, &child_prefix);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::runtimes;

    #[test]
    fn figure1_tree_shape() {
        let tree = BroadcastTree::build(14, Latency::from_ratio(5, 2));
        assert_eq!(tree.root.size(), 14);
        assert_eq!(tree.completion(), Time::new(15, 2));
        // Root's first delegate is p9, ready at λ = 5/2 (Figure 1).
        assert_eq!(tree.root.children[0].proc, ProcId(9));
        assert_eq!(tree.root.children[0].ready, Time::new(5, 2));
        // Root sends 6 messages: to p9, p6, p4, p3, p2, p1.
        let child_ids: Vec<u32> = tree.root.children.iter().map(|c| c.proc.0).collect();
        assert_eq!(child_ids, vec![9, 6, 4, 3, 2, 1]);
    }

    #[test]
    fn tree_completion_equals_theorem6_for_sweep() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(3, 2),
            Latency::from_int(2),
            Latency::from_ratio(5, 2),
            Latency::from_int(6),
        ] {
            for n in 1..200u64 {
                let tree = BroadcastTree::build(n, lam);
                assert_eq!(tree.root.size(), n as usize, "λ={lam} n={n}");
                assert_eq!(
                    tree.completion(),
                    runtimes::bcast_time(n as u128, lam),
                    "λ={lam} n={n}"
                );
            }
        }
    }

    #[test]
    fn tree_matches_simulation_receive_times() {
        // The static tree and the event-driven simulation must agree on
        // every processor's first-receipt time.
        let lam = Latency::from_ratio(5, 2);
        let n = 33;
        let tree = BroadcastTree::build(n as u64, lam);
        let report = crate::bcast::run_bcast(n, lam);
        let sim_times = report.trace.first_receipt_times(n);
        let mut tree_times = vec![None; n];
        collect(&tree.root, &mut tree_times);
        // Root: tree says ready at 0; sim says never received.
        assert_eq!(tree_times[0], Some(Time::ZERO));
        for i in 1..n {
            assert_eq!(tree_times[i], sim_times[i], "p{i}");
        }

        fn collect(node: &TreeNode, out: &mut Vec<Option<Time>>) {
            out[node.proc.index()] = Some(node.ready);
            for c in &node.children {
                collect(c, out);
            }
        }
    }

    #[test]
    fn binomial_tree_for_telephone() {
        // λ = 1, n = 8: binomial tree of depth 3, root degree 3.
        let tree = BroadcastTree::build(8, Latency::TELEPHONE);
        assert_eq!(tree.root.children.len(), 3);
        assert_eq!(tree.root.depth(), 3);
        assert_eq!(tree.completion(), Time::from_int(3));
    }

    #[test]
    fn render_contains_every_processor() {
        let tree = BroadcastTree::build(14, Latency::from_ratio(5, 2));
        let art = tree.render();
        for i in 0..14 {
            assert!(art.contains(&format!("p{i} ")), "missing p{i} in:\n{art}");
        }
        assert!(art.contains("p9 (t=5/2)"));
        // Deepest receive at 15/2.
        assert!(art.contains("t=15/2"));
    }

    #[test]
    fn singleton_tree() {
        let tree = BroadcastTree::build(1, Latency::from_int(2));
        assert_eq!(tree.root.size(), 1);
        assert_eq!(tree.completion(), Time::ZERO);
        assert_eq!(tree.render().trim(), "p0 (t=0)");
    }
}
