//! # postal-algos
//!
//! Event-driven implementations of every broadcasting algorithm in
//! Bar-Noy & Kipnis, *"Designing Broadcasting Algorithms in the Postal
//! Model for Message-Passing Systems"* (SPAA 1992), runnable on the
//! `postal-sim` discrete-event engine and the `postal-runtime` threaded
//! substrate.
//!
//! ## Single message (Section 3)
//!
//! * [`bcast`] — Algorithm BCAST, optimal at exactly `f_λ(n)` (Theorem 6);
//! * [`fib_tree`] — the induced generalized Fibonacci broadcast tree
//!   (Figure 1), with ASCII rendering;
//! * [`flood`] — the greedy flood behind Lemma 5's optimality proof,
//!   as an executable schedule generator;
//! * [`mod@cascade`] — the per-processor send cascade both are built from.
//!
//! ## Multiple messages (Section 4)
//!
//! * [`repeat`] — Algorithm REPEAT (Lemma 10);
//! * [`pack`] — Algorithm PACK (Lemma 12);
//! * [`pipeline`] — Algorithms PIPELINE-1/-2 (Lemmas 14/16);
//! * [`dtree`] — the DTREE(d) family incl. LINE, BINARY, STAR and the
//!   latency-matched degree (Lemma 18, Section 4.3);
//! * [`multi`] — the shared packet type and broadcast verification
//!   (completeness + the paper's order-preservation property).
//!
//! ## Section 5 extensions (the paper's "further research")
//!
//! * [`ext::adaptive`] — broadcast under time-varying λ;
//! * [`ext::hier`] — two-level latency hierarchies;
//! * [`ext::combine`] — combining (reduction) via the time-reversed tree;
//! * [`ext::gossip`] — gossip built from combine + pipeline broadcast;
//! * [`ext::scatter`] — personalized scatter and its optimality.
//!
//! All simulated completion times are exact rationals and are asserted
//! *equal* to the paper's closed forms in this crate's tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bcast;
pub mod cascade;
pub mod dtree;
pub mod ext;
pub mod fib_tree;
pub mod flood;
pub mod multi;
pub mod pack;
pub mod pipeline;
pub mod repeat;
pub mod replay;
pub mod svg;

pub use bcast::{bcast_programs, bcast_programs_from, run_bcast, run_bcast_from, BcastProgram};
pub use cascade::{cascade, CascadeSend, Orientation};
pub use dtree::{
    dtree_exact_time, run_binary, run_dtree, run_latency_matched, run_line, run_star, DtreeProgram,
};
pub use fib_tree::{BroadcastTree, TreeNode};
pub use flood::{flood_schedule, FloodOutcome};
pub use multi::{BroadcastDefect, MultiPacket, MultiReport};
pub use pack::{run_pack, PackProgram};
pub use pipeline::{run_pipeline, PipelineProgram};
pub use repeat::{run_repeat, run_repeat_greedy, Pacing, RepeatProgram};
pub use replay::{replay, ReplayProgram, ToSchedule};
pub use svg::{tree_to_svg, SvgOptions};
