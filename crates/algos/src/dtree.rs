//! Algorithm DTREE — multi-message broadcast over a fixed-degree tree
//! (Section 4.3, Lemma 18).
//!
//! For `1 ≤ d ≤ n−1`, processors form a *left-to-right, almost-full,
//! degree-d tree* in BFS order: the children of node `i` are
//! `d·i + 1, …, d·i + d` (those below `n`). The root sends `d` copies of
//! `M_1` to its children left to right, then proceeds with `M_2`, and so
//! on; every other node forwards each received message to its own
//! children left to right. Lemma 18:
//! `T_DT ≤ d(m−1) + (d−1+λ)·⌈log_d n⌉`.
//!
//! The family interpolates between the paper's two pure strategies:
//! `d = n−1` (STAR) is REPEAT-like — saturate one message before the
//! next — while `d = 1` (LINE) is PIPELINE-like — stream messages down a
//! chain. Section 4.3 discusses `d = 2` (BINARY) and the latency-matched
//! `d = ⌈λ⌉+1`.

use crate::multi::{run_multi, MultiPacket, MultiReport};
use postal_model::Latency;
use postal_sim::prelude::*;

/// Children of node `i` in the left-to-right almost-full degree-d tree
/// over `n` nodes.
pub fn dtree_children(i: u64, d: u64, n: u64) -> impl Iterator<Item = u64> {
    let first = i.saturating_mul(d).saturating_add(1);
    let last = i.saturating_mul(d).saturating_add(d);
    (first..=last.min(n.saturating_sub(1))).filter(move |_| first < n)
}

/// Parent of node `i > 0` in the degree-d tree.
pub fn dtree_parent(i: u64, d: u64) -> u64 {
    debug_assert!(i > 0);
    (i - 1) / d
}

/// Per-processor DTREE program.
pub struct DtreeProgram {
    d: u64,
    n: u64,
    /// `Some(m)` on the root.
    root_m: Option<u32>,
}

impl DtreeProgram {
    /// Creates the program for one processor of a degree-`d` tree over
    /// `n` nodes; `root_m` is `Some(m)` on `p_0`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn new(d: u64, n: u64, root_m: Option<u32>) -> DtreeProgram {
        assert!(d >= 1, "tree degree must be at least 1");
        DtreeProgram { d, n, root_m }
    }

    fn forward(&self, ctx: &mut dyn Context<MultiPacket>, msg: u32) {
        let me = ctx.me().index() as u64;
        for child in dtree_children(me, self.d, self.n) {
            ctx.send(
                ProcId::from(child as usize),
                MultiPacket { msg, range_size: 0 },
            );
        }
    }
}

impl Program<MultiPacket> for DtreeProgram {
    fn on_start(&mut self, ctx: &mut dyn Context<MultiPacket>) {
        if let Some(m) = self.root_m {
            for msg in 1..=m {
                self.forward(ctx, msg);
            }
        }
    }

    fn on_receive(
        &mut self,
        ctx: &mut dyn Context<MultiPacket>,
        _from: ProcId,
        packet: MultiPacket,
    ) {
        self.forward(ctx, packet.msg);
    }
}

/// The *exact* running time of DTREE(d) — a sharpening of Lemma 18's
/// upper bound, derived from the structure of the event-driven run.
///
/// Every node forwards each message immediately on receipt, and (in the
/// BFS almost-full tree) a node's degree never exceeds its parent's, so
/// no output port ever backlogs. Message `M_k` therefore reaches node
/// `v` at
///
/// ```text
/// a_k(v) = (k−1)·deg(root) + Σ_{edges (u→w) on the path} (idx(w) + λ)
/// ```
///
/// where `idx(w)` is `w`'s 0-based position among `u`'s children, and
/// the completion time is `(m−1)·deg(root) + max_v Σ(idx + λ)`. Lemma
/// 18 upper-bounds `idx ≤ d−1` and the path length by `⌈log_d n⌉`.
///
/// # Panics
/// Panics if `n == 0`, `m == 0`, or `d == 0`.
pub fn dtree_exact_time(n: u128, m: u64, latency: Latency, d: u128) -> postal_model::Time {
    use postal_model::Time;
    assert!(n >= 1 && m >= 1 && d >= 1);
    if n == 1 {
        return Time::ZERO;
    }
    let n = n as u64;
    let d = d as u64;
    let deg_root = d.min(n - 1);
    // BFS over the tree accumulating per-node path cost c(v).
    let mut cost: Vec<Time> = vec![Time::ZERO; n as usize];
    let mut max_cost = Time::ZERO;
    for v in 0..n {
        for (idx, child) in dtree_children(v, d, n).enumerate() {
            let c = cost[v as usize] + Time::from_int(idx as i128) + latency.as_time();
            cost[child as usize] = c;
            max_cost = max_cost.max(c);
        }
    }
    Time::from_int((m as i128 - 1) * deg_root as i128) + max_cost
}

/// Builds the DTREE(d) programs for broadcasting `m` messages in
/// MPS(n, λ).
pub fn dtree_programs(n: usize, m: u32, d: u64) -> Vec<Box<dyn Program<MultiPacket>>> {
    programs_from(n, |id| {
        Box::new(DtreeProgram::new(
            d,
            n as u64,
            (id == ProcId::ROOT).then_some(m),
        ))
    })
}

/// Runs DTREE(d) and returns the verified-ready report.
pub fn run_dtree(n: usize, m: u32, latency: Latency, d: u64) -> MultiReport {
    run_multi(n, m, latency, dtree_programs(n, m, d))
}

/// DTREE(1): the LINE algorithm (near-optimal as `m → ∞`).
pub fn run_line(n: usize, m: u32, latency: Latency) -> MultiReport {
    run_dtree(n, m, latency, 1)
}

/// DTREE(2): the BINARY algorithm (constant-factor for fixed λ).
pub fn run_binary(n: usize, m: u32, latency: Latency) -> MultiReport {
    run_dtree(n, m, latency, 2)
}

/// DTREE(n−1): the STAR algorithm (near-optimal as `λ → ∞`).
///
/// # Panics
/// Panics if `n < 2`.
pub fn run_star(n: usize, m: u32, latency: Latency) -> MultiReport {
    assert!(n >= 2, "a star needs at least one leaf");
    run_dtree(n, m, latency, n as u64 - 1)
}

/// DTREE(⌈λ⌉+1): the paper's latency-matched degree (Section 4.3).
pub fn run_latency_matched(n: usize, m: u32, latency: Latency) -> MultiReport {
    let d = postal_model::runtimes::latency_matched_degree(n as u128, latency) as u64;
    run_dtree(n, m, latency, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::{runtimes, Time};

    #[test]
    fn tree_structure() {
        assert_eq!(dtree_children(0, 3, 10).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(dtree_children(1, 3, 10).collect::<Vec<_>>(), vec![4, 5, 6]);
        assert_eq!(dtree_children(2, 3, 10).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(
            dtree_children(3, 3, 10).collect::<Vec<_>>(),
            Vec::<u64>::new()
        );
        assert_eq!(dtree_parent(9, 3), 2);
        assert_eq!(dtree_parent(1, 3), 0);
        // Degree 1: a chain.
        assert_eq!(dtree_children(4, 1, 6).collect::<Vec<_>>(), vec![5]);
        // Star: all nodes are root's children.
        assert_eq!(
            dtree_children(0, 9, 10).collect::<Vec<_>>(),
            (1..=9).collect::<Vec<_>>()
        );
    }

    #[test]
    fn respects_lemma18_bound() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
        ] {
            for n in [2usize, 3, 7, 20, 50] {
                for m in [1u32, 2, 5] {
                    for d in [1u64, 2, 3, (n as u64 - 1).max(1)] {
                        let r = run_dtree(n, m, lam, d);
                        r.verify().unwrap();
                        let bound = runtimes::dtree_time_bound(n as u128, m as u64, lam, d as u128);
                        assert!(
                            r.completion() <= bound,
                            "λ={lam} n={n} m={m} d={d}: {} > {bound}",
                            r.completion()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn line_matches_closed_form_exactly() {
        for lam in [Latency::TELEPHONE, Latency::from_ratio(5, 2)] {
            for n in [2usize, 5, 17] {
                for m in [1u32, 4, 9] {
                    let r = run_line(n, m, lam);
                    r.verify().unwrap();
                    assert_eq!(
                        r.completion(),
                        runtimes::line_time(n as u128, m as u64, lam),
                        "λ={lam} n={n} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn star_matches_closed_form_exactly() {
        for lam in [Latency::TELEPHONE, Latency::from_ratio(5, 2)] {
            for n in [2usize, 5, 17] {
                for m in [1u32, 4, 9] {
                    let r = run_star(n, m, lam);
                    r.verify().unwrap();
                    assert_eq!(
                        r.completion(),
                        runtimes::star_time(n as u128, m as u64, lam),
                        "λ={lam} n={n} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_binary_tree_timing() {
        // n = 7, d = 2, m = 1, λ = 2: root sends at 0, 1 → p1, p2 receive
        // at 2, 3; they forward at 2, 3 and 3, 4 → the rightmost leaf p6
        // receives at 4 + λ = 6. The Lemma 18 bound gives
        // (d−1+λ)·⌈log₂ 7⌉ = 3·3 = 9 ≥ 6.
        let r = run_binary(7, 1, Latency::from_int(2));
        r.verify().unwrap();
        assert_eq!(r.completion(), Time::from_int(6));
    }

    #[test]
    fn line_is_best_degree_for_many_messages() {
        // d = 1 near-optimal when m → ∞ with n, λ fixed.
        let lam = Latency::from_int(2);
        let (n, m) = (8usize, 64u32);
        let line = run_line(n, m, lam).completion();
        for d in [2u64, 3, 7] {
            let other = run_dtree(n, m, lam, d).completion();
            assert!(line <= other, "line {line} vs d={d} {other}");
        }
    }

    #[test]
    fn star_is_best_degree_for_huge_latency() {
        // d = n−1 near-optimal when λ → ∞ with n, m fixed.
        let lam = Latency::from_int(64);
        let (n, m) = (8usize, 2u32);
        let star = run_star(n, m, lam).completion();
        for d in [1u64, 2, 3] {
            let other = run_dtree(n, m, lam, d).completion();
            assert!(star <= other, "star {star} vs d={d} {other}");
        }
    }

    #[test]
    fn latency_matched_degree_runs_clean() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_int(6),
        ] {
            let r = run_latency_matched(30, 4, lam);
            r.verify().unwrap();
        }
    }

    #[test]
    fn exact_analysis_matches_simulation() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_ratio(7, 3),
            Latency::from_int(4),
        ] {
            for n in [1usize, 2, 3, 7, 15, 16, 17, 40, 64] {
                for m in [1u32, 2, 5] {
                    for d in 1..=(n as u64).max(2) - 1 {
                        if n == 1 {
                            continue;
                        }
                        let r = run_dtree(n, m, lam, d);
                        let exact = dtree_exact_time(n as u128, m as u64, lam, d as u128);
                        assert_eq!(r.completion(), exact, "λ={lam} n={n} m={m} d={d}");
                        // The exact analysis sits below Lemma 18.
                        assert!(
                            exact
                                <= runtimes::dtree_time_bound(n as u128, m as u64, lam, d as u128)
                        );
                    }
                }
            }
        }
        assert_eq!(dtree_exact_time(1, 5, Latency::from_int(2), 3), Time::ZERO);
    }

    #[test]
    fn order_preserved_along_every_path() {
        let r = run_dtree(40, 6, Latency::from_ratio(5, 2), 3);
        r.verify().unwrap();
    }
}
