//! Gossiping (all-to-all broadcast) in the postal model (Section 5
//! extension).
//!
//! Every processor starts with one value and all processors must learn
//! all `n` values. This module composes two primitives the paper
//! provides the theory for:
//!
//! 1. **Gather** — each processor `p_i` sends its value directly to the
//!    root at time `i − 1`; the staggered start times make the root's
//!    input port exactly saturated (one receive per unit, no overlap),
//!    finishing at `(n−2) + λ`.
//! 2. **Pipelined broadcast** — the root then broadcasts the `n` values
//!    as a stream using Algorithm PIPELINE (Lemmas 14/16), adding exactly
//!    `T_PL(n, n, λ)`.
//!
//! Total: `(n−2) + λ + T_PL(n, n, λ)` — within a constant factor of the
//! trivial `max(f_λ(n), n−1)` gossip lower bound. (Beating it requires
//! the non-order-preserving machinery of the authors' follow-up paper
//! \[2\], which is out of scope.)

use crate::multi::MultiPacket;
use crate::pipeline::PipelineProgram;
use postal_model::{runtimes, Latency, Time};
use postal_sim::prelude::*;
use std::collections::HashMap;

/// Gossip payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GossipPacket {
    /// Phase 1: a value travelling to the root.
    Gather {
        /// The contributed value.
        value: u64,
    },
    /// Phase 2: stream packet `msg` (1-based; value of processor
    /// `msg − 1`) with its PIPELINE range delegation.
    Stream {
        /// Message index within the stream.
        msg: u32,
        /// PIPELINE range delegation.
        range_size: u64,
        /// The value being disseminated.
        value: u64,
    },
}

/// Adapter that lets the inner [`PipelineProgram`] (which speaks
/// [`MultiPacket`]) drive a [`GossipPacket`] context, attaching values.
struct StreamCtx<'a, 'b> {
    inner: &'a mut dyn Context<GossipPacket>,
    values: &'b HashMap<u32, u64>,
}

impl Context<MultiPacket> for StreamCtx<'_, '_> {
    fn me(&self) -> ProcId {
        self.inner.me()
    }
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn now(&self) -> Time {
        self.inner.now()
    }
    fn send(&mut self, dst: ProcId, payload: MultiPacket) {
        let value = *self
            .values
            .get(&payload.msg)
            .expect("a forwarded stream value must have been learned");
        self.inner.send(
            dst,
            GossipPacket::Stream {
                msg: payload.msg,
                range_size: payload.range_size,
                value,
            },
        );
    }
    fn wake_at(&mut self, t: Time) {
        self.inner.wake_at(t);
    }
}

/// Per-processor gossip program.
pub struct GossipProgram {
    value: u64,
    n: usize,
    pipeline: PipelineProgram,
    /// msg index → value, filled by gathering (root) or stream arrivals.
    learned: HashMap<u32, u64>,
    gathered: usize,
    is_root: bool,
}

impl GossipProgram {
    /// Creates the program for one processor holding `value`.
    pub fn new(me: ProcId, n: usize, value: u64, latency: Latency) -> GossipProgram {
        let is_root = me == ProcId::ROOT;
        let mut learned = HashMap::new();
        // Every processor knows its own value; message index is
        // 1 + origin index.
        learned.insert(me.0 + 1, value);
        GossipProgram {
            value,
            n,
            pipeline: PipelineProgram::new(latency, n as u32, is_root.then_some(n as u64)),
            learned,
            gathered: 1, // own value
            is_root,
        }
    }
}

impl Program<GossipPacket> for GossipProgram {
    fn on_start(&mut self, ctx: &mut dyn Context<GossipPacket>) {
        if self.n == 1 {
            return;
        }
        if !self.is_root {
            // Staggered gather slot: p_i transmits during [i−1, i].
            ctx.wake_at(Time::from_int(ctx.me().index() as i128 - 1));
        }
    }

    fn on_wake(&mut self, ctx: &mut dyn Context<GossipPacket>) {
        ctx.send(ProcId::ROOT, GossipPacket::Gather { value: self.value });
    }

    fn on_receive(
        &mut self,
        ctx: &mut dyn Context<GossipPacket>,
        from: ProcId,
        packet: GossipPacket,
    ) {
        match packet {
            GossipPacket::Gather { value } => {
                debug_assert!(self.is_root, "only the root gathers");
                self.learned.insert(from.0 + 1, value);
                self.gathered += 1;
                if self.gathered == self.n {
                    // Everything collected: start the pipelined broadcast.
                    let mut stream_ctx = StreamCtx {
                        inner: ctx,
                        values: &self.learned,
                    };
                    self.pipeline.on_start(&mut stream_ctx);
                }
            }
            GossipPacket::Stream {
                msg,
                range_size,
                value,
            } => {
                self.learned.insert(msg, value);
                let mut stream_ctx = StreamCtx {
                    inner: ctx,
                    values: &self.learned,
                };
                self.pipeline
                    .on_receive(&mut stream_ctx, from, MultiPacket { msg, range_size });
            }
        }
    }
}

/// The outcome of a gossip run.
#[derive(Debug)]
pub struct GossipOutcome {
    /// The simulation report.
    pub report: RunReport<GossipPacket>,
    /// `final_knowledge[p][i]` is `Some(v)` if processor `p` ends up
    /// knowing processor `i`'s value `v` (own values included).
    pub final_knowledge: Vec<Vec<Option<u64>>>,
}

impl GossipOutcome {
    /// True if every processor learned every value correctly.
    pub fn complete(&self, values: &[u64]) -> bool {
        self.final_knowledge
            .iter()
            .all(|known| known.iter().zip(values).all(|(k, v)| k.as_ref() == Some(v)))
    }
}

/// Runs gossip over `values` (one per processor) at latency λ.
///
/// # Panics
/// Panics if `values` is empty.
pub fn run_gossip(values: &[u64], latency: Latency) -> GossipOutcome {
    let n = values.len();
    assert!(n >= 1, "gossip needs at least one processor");
    let programs = programs_from(n, |id| {
        Box::new(GossipProgram::new(id, n, values[id.index()], latency))
            as Box<dyn Program<GossipPacket>>
    });
    let model = Uniform(latency);
    let report = Simulation::new(n, &model)
        .run(programs)
        .expect("gossip cannot diverge");

    // Reconstruct what each processor ends up knowing from the trace.
    let mut final_knowledge: Vec<Vec<Option<u64>>> = (0..n)
        .map(|i| {
            let mut known = vec![None; n];
            known[i] = Some(values[i]);
            known
        })
        .collect();
    for t in report.trace.transfers() {
        match t.payload {
            GossipPacket::Gather { value } => {
                final_knowledge[t.dst.index()][t.src.index()] = Some(value);
            }
            GossipPacket::Stream { msg, value, .. } => {
                final_knowledge[t.dst.index()][(msg - 1) as usize] = Some(value);
            }
        }
    }
    GossipOutcome {
        report,
        final_knowledge,
    }
}

/// The closed-form running time of this gossip composition:
/// `(n−2) + λ + T_PL(n, n, λ)` for `n ≥ 2`, else 0.
pub fn gossip_time(n: u128, latency: Latency) -> Time {
    if n <= 1 {
        return Time::ZERO;
    }
    Time::from_int(n as i128 - 2)
        + latency.as_time()
        + runtimes::pipeline_time(n, n as u64, latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everyone_learns_everything() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
        ] {
            for n in [1usize, 2, 3, 5, 14, 25] {
                let values: Vec<u64> = (0..n as u64).map(|i| 100 + i * 3).collect();
                let outcome = run_gossip(&values, lam);
                outcome.report.assert_model_clean();
                assert!(outcome.complete(&values), "λ={lam} n={n}");
            }
        }
    }

    #[test]
    fn matches_closed_form() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
        ] {
            for n in [2usize, 3, 5, 14, 25] {
                let values: Vec<u64> = vec![7; n];
                let outcome = run_gossip(&values, lam);
                assert_eq!(
                    outcome.report.completion,
                    gossip_time(n as u128, lam),
                    "λ={lam} n={n}"
                );
            }
        }
    }

    #[test]
    fn singleton_gossip_is_trivial() {
        let outcome = run_gossip(&[42], Latency::from_int(2));
        assert_eq!(outcome.report.completion, Time::ZERO);
        assert!(outcome.complete(&[42]));
    }

    #[test]
    fn gather_saturates_root_port_without_overlap() {
        // The staggered schedule keeps the root's input port exactly
        // busy: n−1 consecutive receives, zero violations.
        let values: Vec<u64> = (0..12).collect();
        let outcome = run_gossip(&values, Latency::from_ratio(5, 2));
        outcome.report.assert_model_clean();
        let gathers = outcome
            .report
            .trace
            .received_by(ProcId::ROOT)
            .filter(|t| matches!(t.payload, GossipPacket::Gather { .. }))
            .count();
        assert_eq!(gathers, 11);
    }
}
