//! Extensions beyond the paper's core results, following its Section 5
//! ("Further Research") agenda:
//!
//! * [`adaptive`] — "explore time-changing values of λ and design
//!   algorithms that adapt to changing λ";
//! * [`hier`] — "investigate hierarchies of latency parameters that may
//!   be used to model subsystems within a larger system";
//! * [`combine`] — the combining problem (the paper's reference \[6\]),
//!   solved optimally by time-reversing the broadcast tree;
//! * [`allreduce`] — combine + broadcast in exactly `2·f_λ(n)`;
//! * [`alltoall`] — complete exchange via round-robin rotation, optimal
//!   at `(n−2) + λ`;
//! * [`gossip`] — gossiping, composed from gather + pipelined broadcast;
//! * [`scatter`] / [`gather`] — the personalized one-to-all and
//!   all-to-one collectives, where staggered direct schedules are
//!   provably optimal.

pub mod adaptive;
pub mod allreduce;
pub mod alltoall;
pub mod combine;
pub mod gather;
pub mod gossip;
pub mod hier;
pub mod scatter;
