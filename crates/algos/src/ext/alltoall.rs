//! Complete exchange (personalized all-to-all, MPI_Alltoall) in the
//! postal model.
//!
//! Every processor holds a distinct item for every other processor —
//! `n(n−1)` atomic messages in total, none of which can be combined or
//! relayed usefully (they are pairwise distinct). Each processor must
//! therefore *send* `n−1` messages through its one output port and
//! *receive* `n−1` through its one input port, so no schedule can finish
//! before `(n−2) + λ` (last send starts at `n−2`, plus door-to-door λ).
//!
//! The classic round-robin rotation attains the bound exactly: in round
//! `k = 0, …, n−2`, processor `i` sends its item for processor
//! `(i + k + 1) mod n`. Each round is a perfect matching (a fixed-point-
//! free rotation), so every input port receives exactly one message per
//! unit — the schedule keeps all `2n` ports fully busy and is strict-
//! mode clean despite being the densest traffic pattern the model
//! admits.
//!
//! `T_alltoall(n, λ) = (n−2) + λ`, simultaneously optimal for every
//! processor's send port and receive port.

use postal_model::{Latency, Time};
use postal_sim::prelude::*;

/// An exchanged item: `(origin, value)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exchange {
    /// The sending processor's index.
    pub origin: u32,
    /// The personalized value for the destination.
    pub value: u64,
}

/// Per-processor complete-exchange program: one rotation send per round.
pub struct AllToAllProgram {
    /// `items[j]` is this processor's value for processor `j` (entry for
    /// itself unused).
    items: Vec<u64>,
}

impl Program<Exchange> for AllToAllProgram {
    fn on_start(&mut self, ctx: &mut dyn Context<Exchange>) {
        let n = ctx.n() as u32;
        let me = ctx.me().0;
        // All rounds issued at once: the output port serializes them at
        // one per unit, which is exactly the round schedule.
        for k in 0..n.saturating_sub(1) {
            let dst = (me + k + 1) % n;
            ctx.send(
                ProcId(dst),
                Exchange {
                    origin: me,
                    value: self.items[dst as usize],
                },
            );
        }
    }

    fn on_receive(&mut self, _ctx: &mut dyn Context<Exchange>, _from: ProcId, _p: Exchange) {}
}

/// The outcome of a complete exchange.
#[derive(Debug)]
pub struct AllToAllOutcome {
    /// The simulation report.
    pub report: RunReport<Exchange>,
    /// `received[i][j]` is `Some(v)` once `p_i` holds `p_j`'s item for it.
    pub received: Vec<Vec<Option<u64>>>,
}

/// Runs the optimal round-robin complete exchange. `items[i][j]` is
/// `p_i`'s personalized value for `p_j`. Completes in exactly
/// `(n−2) + λ` and is strict-mode clean.
///
/// # Panics
/// Panics if `items` is empty or not square.
pub fn run_alltoall(items: &[Vec<u64>], latency: Latency) -> AllToAllOutcome {
    let n = items.len();
    assert!(n >= 1, "complete exchange needs at least one processor");
    assert!(
        items.iter().all(|row| row.len() == n),
        "items must be an n×n matrix"
    );
    let programs = programs_from(n, |id| {
        Box::new(AllToAllProgram {
            items: items[id.index()].clone(),
        }) as Box<dyn Program<Exchange>>
    });
    let model = Uniform(latency);
    let report = Simulation::new(n, &model)
        .run(programs)
        .expect("complete exchange cannot diverge");

    let mut received: Vec<Vec<Option<u64>>> = vec![vec![None; n]; n];
    for (i, row) in received.iter_mut().enumerate() {
        row[i] = Some(items[i][i]);
    }
    for t in report.trace.transfers() {
        received[t.dst.index()][t.payload.origin as usize] = Some(t.payload.value);
    }
    AllToAllOutcome { report, received }
}

/// The complete-exchange lower bound `(n−2) + λ` (attained by
/// [`run_alltoall`]): each port must move `n−1` atomic messages.
pub fn alltoall_lower_bound(n: u128, latency: Latency) -> Time {
    crate::ext::scatter::scatter_lower_bound(n, latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n: usize) -> Vec<Vec<u64>> {
        (0..n)
            .map(|i| (0..n).map(|j| (100 * i + j) as u64).collect())
            .collect()
    }

    #[test]
    fn attains_the_per_port_lower_bound_exactly() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_int(6),
        ] {
            for n in [1usize, 2, 3, 8, 20] {
                let o = run_alltoall(&matrix(n), lam);
                o.report.assert_model_clean();
                assert_eq!(
                    o.report.completion,
                    alltoall_lower_bound(n as u128, lam),
                    "λ={lam} n={n}"
                );
            }
        }
    }

    #[test]
    fn everyone_receives_everything_personalized() {
        let n = 9;
        let items = matrix(n);
        let o = run_alltoall(&items, Latency::from_ratio(5, 2));
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    o.received[i][j],
                    Some(items[j][i]),
                    "p{i} should hold p{j}'s item for it"
                );
            }
        }
    }

    #[test]
    fn rotation_keeps_every_port_saturated() {
        // The densest legal traffic pattern: every processor's input port
        // is busy every unit from λ−1 to completion, with zero strict-
        // mode violations.
        let lam = Latency::from_int(3);
        let n = 10usize;
        let o = run_alltoall(&matrix(n), lam);
        o.report.assert_model_clean();
        assert_eq!(o.report.messages(), n * (n - 1));
        for i in 0..n as u32 {
            let mut finishes: Vec<Time> = o
                .report
                .trace
                .received_by(ProcId(i))
                .map(|t| t.recv_finish)
                .collect();
            finishes.sort();
            // Receives at λ, λ+1, …, λ+n−2: perfectly back-to-back.
            for (k, f) in finishes.iter().enumerate() {
                assert_eq!(*f, lam.as_time() + Time::from_int(k as i128), "p{i}");
            }
        }
    }

    #[test]
    fn singleton_exchange_is_trivial() {
        let o = run_alltoall(&matrix(1), Latency::from_int(2));
        assert_eq!(o.report.completion, Time::ZERO);
        assert_eq!(o.received[0][0], Some(0));
    }
}
