//! Combining (global reduction) via the time-reversed broadcast tree.
//!
//! The paper credits Cidon, Gopal and Kutten \[6\] with the combining
//! problem in a postal-like model and builds BCAST by the same approach.
//! Combining is the time reversal of broadcasting: if a broadcast
//! schedule has an edge "p sends to q during `[s, s+1]`, q receives
//! during `[s+λ−1, s+λ]`", then reflecting every instant `t ↦ T − t`
//! (with `T = f_λ(n)`) yields a valid postal schedule in which q sends
//! during `[T−s−λ, T−s−λ+1]` and p receives during `[T−s−1, T−s]` — the
//! port constraints are symmetric under reversal. Running the reversed
//! generalized-Fibonacci tree therefore combines `n` values into `p_0`
//! in exactly `f_λ(n)` time, which is optimal (a combining algorithm run
//! backwards is a broadcast, so Lemma 5 applies).
//!
//! Values are combined with addition here; any commutative, associative
//! reduction works identically.

use crate::fib_tree::{BroadcastTree, TreeNode};
use postal_model::{Latency, Time};
use postal_sim::prelude::*;

/// The payload of a combining message: a partial sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partial(pub u64);

/// The reversed-tree plan for one processor.
#[derive(Debug, Clone)]
struct Plan {
    /// Parent to send the accumulated value to (`None` for the root).
    parent: Option<ProcId>,
    /// When to send it: `T − ready`, where `ready` is this node's receive
    /// time in the forward broadcast tree.
    send_at: Time,
    /// How many child contributions to expect first.
    children: usize,
}

/// Per-processor combining program.
pub struct CombineProgram {
    plan: Plan,
    acc: u64,
    received: usize,
    sent: bool,
}

impl Program<Partial> for CombineProgram {
    fn on_start(&mut self, ctx: &mut dyn Context<Partial>) {
        if self.plan.parent.is_some() {
            ctx.wake_at(self.plan.send_at);
        }
    }

    fn on_receive(&mut self, _ctx: &mut dyn Context<Partial>, _from: ProcId, p: Partial) {
        self.acc += p.0;
        self.received += 1;
    }

    fn on_wake(&mut self, ctx: &mut dyn Context<Partial>) {
        assert_eq!(
            self.received,
            self.plan.children,
            "reversed schedule must deliver all child contributions before \
             the send slot ({:?} at {})",
            ctx.me(),
            ctx.now()
        );
        assert!(!self.sent, "combining sends exactly once");
        self.sent = true;
        let parent = self.plan.parent.expect("only non-roots wake");
        ctx.send(parent, Partial(self.acc));
    }
}

/// The outcome of a combining run.
#[derive(Debug)]
pub struct CombineOutcome {
    /// The simulation report.
    pub report: RunReport<Partial>,
    /// The total accumulated at the root (root's own value + the two
    /// partial sums... i.e. everything).
    pub root_total: u64,
}

/// Builds the combining programs for the given values (one per
/// processor; `values[0]` belongs to `p_0`).
///
/// # Panics
/// Panics if `values` is empty.
pub fn combine_programs(values: &[u64], latency: Latency) -> Vec<Box<dyn Program<Partial>>> {
    let n = values.len();
    assert!(n >= 1, "combining needs at least one value");
    let tree = BroadcastTree::build(n as u64, latency);
    let horizon = tree.completion();

    let mut plans: Vec<Plan> = vec![
        Plan {
            parent: None,
            send_at: Time::ZERO,
            children: 0,
        };
        n
    ];
    collect_plans(&tree.root, None, horizon, &mut plans);

    let mut programs: Vec<Box<dyn Program<Partial>>> = Vec::with_capacity(n);
    for (i, plan) in plans.iter().enumerate() {
        programs.push(Box::new(CombineProgram {
            plan: plan.clone(),
            acc: values[i],
            received: 0,
            sent: false,
        }));
    }
    programs
}

/// Combines `values` (one per processor, `values[0]` belonging to `p_0`)
/// into `p_0` along the reversed Fibonacci tree. Completes in exactly
/// `f_λ(n)` and is model-clean.
///
/// ```
/// use postal_algos::ext::combine::run_combine;
/// use postal_model::{Latency, Time};
///
/// let outcome = run_combine(&[1, 2, 3, 4, 5], Latency::from_int(2));
/// assert_eq!(outcome.root_total, 15);
/// assert_eq!(outcome.report.completion, Time::from_int(4)); // f_2(5)
/// ```
///
/// # Panics
/// Panics if `values` is empty.
pub fn run_combine(values: &[u64], latency: Latency) -> CombineOutcome {
    let n = values.len();
    let programs = combine_programs(values, latency);
    let model = Uniform(latency);
    let report = Simulation::new(n, &model)
        .run(programs)
        .expect("combining cannot diverge");

    // The root's total is its own value plus everything it received.
    let root_total = values[0]
        + report
            .trace
            .received_by(ProcId::ROOT)
            .map(|t| t.payload.0)
            .sum::<u64>();
    CombineOutcome { report, root_total }
}

fn collect_plans(node: &TreeNode, parent: Option<ProcId>, horizon: Time, out: &mut [Plan]) {
    out[node.proc.index()] = Plan {
        parent,
        send_at: horizon - node.ready,
        children: node.children.len(),
    };
    for child in &node.children {
        collect_plans(child, Some(node.proc), horizon, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::runtimes;

    #[test]
    fn combines_sum_in_optimal_time() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
        ] {
            for n in [1usize, 2, 3, 5, 14, 50] {
                let values: Vec<u64> = (0..n as u64).map(|i| i * i + 1).collect();
                let expected: u64 = values.iter().sum();
                let outcome = run_combine(&values, lam);
                outcome.report.assert_model_clean();
                assert_eq!(outcome.root_total, expected, "λ={lam} n={n}");
                let expected_time = if n == 1 {
                    Time::ZERO
                } else {
                    runtimes::bcast_time(n as u128, lam)
                };
                assert_eq!(outcome.report.completion, expected_time, "λ={lam} n={n}");
            }
        }
    }

    #[test]
    fn figure1_reversal() {
        // Combining 14 values at λ = 5/2 finishes at 15/2, mirroring
        // Figure 1 exactly.
        let values = vec![1u64; 14];
        let outcome = run_combine(&values, Latency::from_ratio(5, 2));
        outcome.report.assert_model_clean();
        assert_eq!(outcome.root_total, 14);
        assert_eq!(outcome.report.completion, Time::new(15, 2));
    }

    #[test]
    fn message_count_is_n_minus_one() {
        let outcome = run_combine(&[7; 23], Latency::from_int(2));
        assert_eq!(outcome.report.messages(), 22);
    }

    #[test]
    fn every_processor_sends_exactly_once_except_root() {
        let outcome = run_combine(&[1; 20], Latency::from_ratio(5, 2));
        for i in 1..20usize {
            assert_eq!(
                outcome.report.trace.sent_by(ProcId::from(i)).len(),
                1,
                "p{i}"
            );
        }
        assert_eq!(outcome.report.trace.sent_by(ProcId::ROOT).len(), 0);
    }
}
