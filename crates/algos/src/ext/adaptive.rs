//! Broadcasting under time-varying latency (Section 5 extension).
//!
//! The paper assumes a single system-wide λ and asks, as further research,
//! for algorithms that "adapt to changing λ". This module provides two
//! strategies over a piecewise-constant latency profile:
//!
//! * [`run_static_under_profile`] — plain BCAST whose tree was computed
//!   for one *assumed* λ, executed while the actual latency follows the
//!   profile. When the assumption is wrong the schedule loses either time
//!   (assumed λ too large ⇒ too-shallow tree) or model cleanliness
//!   (assumed λ too small ⇒ receive-port overlaps), so these runs use the
//!   queued port mode.
//! * [`run_adaptive`] — a greedy adaptive BCAST: a processor responsible
//!   for a range re-evaluates the *current* λ before every single send
//!   and picks that instant's optimal Fibonacci split. Decisions are made
//!   one send at a time via timer wake-ups instead of being frozen at
//!   range-acquisition time.
//!
//! The adaptive strategy uses the profile as an oracle for the current λ;
//! a deployed system would estimate it from acknowledgements. The oracle
//! isolates the scheduling question from the estimation question.

use crate::bcast::{bcast_programs, BcastPayload};
use postal_model::{GenFib, Latency, Time};
use postal_sim::prelude::*;
use std::collections::HashMap;

/// Runs a λ0-optimal BCAST tree while the real latency follows `profile`.
/// Queued port mode: wrong assumptions may cause receive contention,
/// which delays instead of faulting.
pub fn run_static_under_profile(
    n: usize,
    assumed: Latency,
    profile: &TimeVarying,
) -> RunReport<BcastPayload> {
    Simulation::new(n, profile)
        .port_mode(PortMode::Queued)
        .run(bcast_programs(n, assumed))
        .expect("static broadcast cannot diverge")
}

/// The adaptive broadcast payload: the delegated range size.
pub type AdaptivePayload = BcastPayload;

/// Per-processor adaptive BCAST program.
pub struct AdaptiveProgram {
    profile: TimeVarying,
    /// One Fibonacci evaluator per λ value seen (profiles have few steps).
    fibs: HashMap<Latency, GenFib>,
    /// Remaining range this processor is responsible for (itself
    /// included); sends are decided one at a time.
    pending: u64,
    /// `Some(n)` on the originator.
    root_range: Option<u64>,
}

impl AdaptiveProgram {
    /// Creates the program for one processor; `root_range` is `Some(n)`
    /// on `p_0`.
    pub fn new(profile: TimeVarying, root_range: Option<u64>) -> AdaptiveProgram {
        AdaptiveProgram {
            profile,
            fibs: HashMap::new(),
            pending: 1,
            root_range,
        }
    }

    /// Performs the one send due now (if any) and schedules the next
    /// decision one unit later.
    fn step(&mut self, ctx: &mut dyn Context<BcastPayload>) {
        if self.pending <= 1 {
            return;
        }
        let lam = self.profile.at(ctx.now());
        let fib = self.fibs.entry(lam).or_insert_with(|| GenFib::new(lam));
        let j = fib.bcast_split(self.pending as u128) as u64;
        // Standard orientation: keep [0, j), delegate [j, pending).
        let me = ctx.me().index() as u64;
        ctx.send(
            ProcId::from((me + j) as usize),
            BcastPayload {
                range_size: self.pending - j,
            },
        );
        self.pending = j;
        if self.pending > 1 {
            ctx.wake_at(ctx.now() + Time::ONE);
        }
    }
}

impl Program<BcastPayload> for AdaptiveProgram {
    fn on_start(&mut self, ctx: &mut dyn Context<BcastPayload>) {
        if let Some(n) = self.root_range {
            self.pending = n;
            self.step(ctx);
        }
    }

    fn on_receive(
        &mut self,
        ctx: &mut dyn Context<BcastPayload>,
        _from: ProcId,
        payload: BcastPayload,
    ) {
        self.pending = payload.range_size;
        self.step(ctx);
    }

    fn on_wake(&mut self, ctx: &mut dyn Context<BcastPayload>) {
        self.step(ctx);
    }
}

/// Builds the adaptive programs for MPS(n, λ(t)).
pub fn adaptive_programs(n: usize, profile: &TimeVarying) -> Vec<Box<dyn Program<BcastPayload>>> {
    programs_from(n, |id| {
        Box::new(AdaptiveProgram::new(
            profile.clone(),
            (id == ProcId::ROOT).then_some(n as u64),
        ))
    })
}

/// Runs the adaptive broadcast under `profile` (queued ports: adaptivity
/// is greedy, not clairvoyant, so contention can still occur when λ
/// changes mid-flight).
pub fn run_adaptive(n: usize, profile: &TimeVarying) -> RunReport<BcastPayload> {
    Simulation::new(n, profile)
        .port_mode(PortMode::Queued)
        .run(adaptive_programs(n, profile))
        .expect("adaptive broadcast cannot diverge")
}

/// Checks that a broadcast run delivered the message to all `n`
/// processors exactly once.
pub fn delivered_everywhere(report: &RunReport<BcastPayload>, n: usize) -> bool {
    (1..n).all(|i| report.trace.received_by(ProcId::from(i)).count() == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::runtimes;

    fn constant(lam: Latency) -> TimeVarying {
        TimeVarying::new(vec![(Time::ZERO, lam)])
    }

    #[test]
    fn adaptive_equals_bcast_on_constant_profile() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
        ] {
            for n in [1usize, 2, 5, 14, 60] {
                let r = run_adaptive(n, &constant(lam));
                assert!(delivered_everywhere(&r, n));
                assert_eq!(
                    r.completion,
                    runtimes::bcast_time(n as u128, lam),
                    "λ={lam} n={n}"
                );
            }
        }
    }

    #[test]
    fn static_with_correct_assumption_is_optimal() {
        let lam = Latency::from_ratio(5, 2);
        let r = run_static_under_profile(14, lam, &constant(lam));
        assert!(delivered_everywhere(&r, 14));
        assert_eq!(r.completion, runtimes::bcast_time(14, lam));
    }

    #[test]
    fn everyone_delivered_under_changing_profile() {
        let profile = TimeVarying::new(vec![
            (Time::ZERO, Latency::from_int(4)),
            (Time::from_int(3), Latency::TELEPHONE),
            (Time::from_int(8), Latency::from_ratio(5, 2)),
        ]);
        for n in [2usize, 9, 33, 100] {
            let r = run_adaptive(n, &profile);
            assert!(delivered_everywhere(&r, n), "n={n}");
            let s = run_static_under_profile(n, Latency::from_int(4), &profile);
            assert!(delivered_everywhere(&s, n), "n={n}");
        }
    }

    #[test]
    fn adaptive_beats_stale_assumption_when_latency_drops() {
        // λ starts at 8 but drops to 1 at t = 2: a static λ=8 tree keeps
        // its conservatively shallow shape (root over-delegates), while
        // the adaptive tree switches to aggressive binomial splitting.
        let profile = TimeVarying::new(vec![
            (Time::ZERO, Latency::from_int(8)),
            (Time::from_int(2), Latency::TELEPHONE),
        ]);
        let n = 200;
        let adaptive = run_adaptive(n, &profile).completion;
        let stale = run_static_under_profile(n, Latency::from_int(8), &profile).completion;
        assert!(
            adaptive < stale,
            "adaptive {adaptive} should beat stale {stale}"
        );
    }

    #[test]
    fn adaptive_avoids_overload_when_latency_rises() {
        // λ rises mid-broadcast: the static λ=1 tree's dense schedule
        // now has deep relay chains; adaptive re-plans with the large λ.
        let profile = TimeVarying::new(vec![
            (Time::ZERO, Latency::TELEPHONE),
            (Time::from_int(2), Latency::from_int(6)),
        ]);
        let n = 300;
        let adaptive = run_adaptive(n, &profile).completion;
        let stale = run_static_under_profile(n, Latency::TELEPHONE, &profile).completion;
        assert!(
            adaptive <= stale,
            "adaptive {adaptive} should not lose to stale {stale}"
        );
    }

    #[test]
    fn singleton_is_instant() {
        let r = run_adaptive(1, &constant(Latency::from_int(3)));
        assert_eq!(r.completion, Time::ZERO);
    }
}
