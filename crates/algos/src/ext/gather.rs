//! Gather (personalized all-to-one): every processor holds one distinct
//! item; the root must collect them all.
//!
//! Gather is the time reversal of scatter, and the same argument makes
//! the staggered direct schedule optimal: the root's input port must
//! absorb `n−1` distinct atomic messages, one unit each, so it cannot
//! finish before `(n−2) + λ` (the first receive cannot *finish* before
//! λ, and n−2 more must follow at unit spacing). Having `p_i` start its
//! send at time `i−1` achieves exactly that: the root's input port runs
//! back-to-back with zero idle and zero contention.

use postal_model::{Latency, Time};
use postal_sim::prelude::*;

/// A gathered item: the sender's contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contribution(pub u64);

/// Per-processor gather program: wake at the staggered slot and send.
pub struct GatherProgram {
    value: u64,
    is_root: bool,
}

impl Program<Contribution> for GatherProgram {
    fn on_start(&mut self, ctx: &mut dyn Context<Contribution>) {
        if !self.is_root && ctx.n() > 1 {
            ctx.wake_at(Time::from_int(ctx.me().index() as i128 - 1));
        }
    }

    fn on_wake(&mut self, ctx: &mut dyn Context<Contribution>) {
        ctx.send(ProcId::ROOT, Contribution(self.value));
    }

    fn on_receive(&mut self, _ctx: &mut dyn Context<Contribution>, _f: ProcId, _p: Contribution) {}
}

/// The outcome of a gather run.
#[derive(Debug)]
pub struct GatherOutcome {
    /// The simulation report.
    pub report: RunReport<Contribution>,
    /// `collected[i]` is `Some(v)` once the root received `p_i`'s item
    /// (`collected[0]` is the root's own value).
    pub collected: Vec<Option<u64>>,
}

/// Runs the optimal staggered gather of `values` (one per processor)
/// into `p_0`. Completes in exactly `(n−2) + λ` and is model-clean.
///
/// # Panics
/// Panics if `values` is empty.
pub fn run_gather(values: &[u64], latency: Latency) -> GatherOutcome {
    let n = values.len();
    assert!(n >= 1, "gather needs at least one processor");
    let programs = programs_from(n, |id| {
        Box::new(GatherProgram {
            value: values[id.index()],
            is_root: id == ProcId::ROOT,
        }) as Box<dyn Program<Contribution>>
    });
    let model = Uniform(latency);
    let report = Simulation::new(n, &model)
        .run(programs)
        .expect("gather cannot diverge");
    let mut collected = vec![None; n];
    collected[0] = Some(values[0]);
    for t in report.trace.received_by(ProcId::ROOT) {
        collected[t.src.index()] = Some(t.payload.0);
    }
    GatherOutcome { report, collected }
}

/// The gather lower bound `(n−2) + λ` (attained by [`run_gather`]).
pub fn gather_lower_bound(n: u128, latency: Latency) -> Time {
    crate::ext::scatter::scatter_lower_bound(n, latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attains_the_lower_bound_exactly() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_int(6),
        ] {
            for n in [1usize, 2, 3, 10, 50] {
                let values: Vec<u64> = (0..n as u64).map(|i| i + 5).collect();
                let o = run_gather(&values, lam);
                o.report.assert_model_clean();
                assert_eq!(
                    o.report.completion,
                    gather_lower_bound(n as u128, lam),
                    "λ={lam} n={n}"
                );
                for (i, c) in o.collected.iter().enumerate() {
                    assert_eq!(*c, Some(values[i]), "p{i}");
                }
            }
        }
    }

    #[test]
    fn root_input_port_is_saturated() {
        // The root's receive finishes are exactly λ, λ+1, …, λ+n−2.
        let lam = Latency::from_ratio(5, 2);
        let o = run_gather(&[9; 6], lam);
        let mut finishes: Vec<Time> = o
            .report
            .trace
            .received_by(ProcId::ROOT)
            .map(|t| t.recv_finish)
            .collect();
        finishes.sort();
        let expected: Vec<Time> = (0..5).map(|k| lam.as_time() + Time::from_int(k)).collect();
        assert_eq!(finishes, expected);
    }

    #[test]
    fn gather_is_scatter_reversed() {
        // Same optimal time for the dual problems.
        for lam in [Latency::TELEPHONE, Latency::from_int(3)] {
            for n in [2u128, 7, 20] {
                assert_eq!(
                    gather_lower_bound(n, lam),
                    crate::ext::scatter::scatter_lower_bound(n, lam)
                );
            }
        }
    }
}
