//! Scatter (personalized one-to-all) in the postal model (Section 5
//! extension: "other problems that involve global communication").
//!
//! The root holds a *distinct* message for every other processor. Unlike
//! broadcast, relaying cannot help: each of the `n−1` items is distinct,
//! so each must leave the root in its own atomic send. The root's output
//! port therefore cannot finish before `n−2` (its last send starts then),
//! and that last item still needs λ units door-to-door — direct delivery
//! is already optimal:
//!
//! `T_scatter(n, λ) = (n−2) + λ` for `n ≥ 2`.
//!
//! This is the one collective where the latency-blind STAR strategy is
//! provably unbeatable, a useful contrast to broadcast where it is
//! exponentially worse than BCAST.

use postal_model::{Latency, Time};
use postal_sim::prelude::*;

/// A scatter item: the personalized value for its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Item(pub u64);

/// Root program: send item `i` directly to `p_i`, in index order.
pub struct ScatterRoot {
    items: Vec<u64>,
}

impl ScatterRoot {
    /// Creates the root program; `items[i]` goes to `p_i` (`items[0]`
    /// stays home).
    pub fn new(items: Vec<u64>) -> ScatterRoot {
        ScatterRoot { items }
    }
}

impl Program<Item> for ScatterRoot {
    fn on_start(&mut self, ctx: &mut dyn Context<Item>) {
        for (i, &v) in self.items.iter().enumerate().skip(1) {
            ctx.send(ProcId::from(i), Item(v));
        }
    }
    fn on_receive(&mut self, _ctx: &mut dyn Context<Item>, _from: ProcId, _p: Item) {}
}

/// Runs the optimal direct scatter: `items[i]` is delivered to `p_i`
/// (`items[0]` stays at the root).
///
/// # Panics
/// Panics if `items` is empty.
pub fn run_scatter(items: &[u64], latency: Latency) -> RunReport<Item> {
    let n = items.len();
    assert!(n >= 1, "scatter needs at least one processor");
    let mut programs: Vec<Box<dyn Program<Item>>> = Vec::with_capacity(n);
    programs.push(Box::new(ScatterRoot {
        items: items.to_vec(),
    }));
    for _ in 1..n {
        programs.push(Box::new(Idle));
    }
    let model = Uniform(latency);
    Simulation::new(n, &model)
        .run(programs)
        .expect("scatter cannot diverge")
}

/// The scatter lower bound `(n−2) + λ` (see module docs), which
/// [`run_scatter`] attains exactly.
pub fn scatter_lower_bound(n: u128, latency: Latency) -> Time {
    if n <= 1 {
        return Time::ZERO;
    }
    Time::from_int(n as i128 - 2) + latency.as_time()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attains_the_lower_bound_exactly() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_int(7),
        ] {
            for n in [1usize, 2, 3, 10, 64] {
                let items: Vec<u64> = (0..n as u64).map(|i| i * 11).collect();
                let report = run_scatter(&items, lam);
                report.assert_model_clean();
                assert_eq!(
                    report.completion,
                    scatter_lower_bound(n as u128, lam),
                    "λ={lam} n={n}"
                );
            }
        }
    }

    #[test]
    fn each_processor_gets_its_own_item() {
        let items: Vec<u64> = (0..20u64).map(|i| 1000 + i).collect();
        let report = run_scatter(&items, Latency::from_ratio(5, 2));
        for (i, item) in items.iter().enumerate().skip(1) {
            let got: Vec<u64> = report
                .trace
                .received_by(ProcId::from(i))
                .map(|t| t.payload.0)
                .collect();
            assert_eq!(got, vec![*item], "p{i}");
        }
    }

    #[test]
    fn root_port_is_the_bottleneck() {
        // n−1 sends back-to-back from t = 0.
        let report = run_scatter(&[0, 1, 2, 3, 4], Latency::from_int(3));
        let sends = report.trace.sent_by(ProcId::ROOT);
        let starts: Vec<Time> = sends.iter().map(|t| t.send_start).collect();
        assert_eq!(starts, (0..4).map(Time::from_int).collect::<Vec<_>>());
    }
}
