//! Broadcasting in a two-level latency hierarchy (Section 5 extension).
//!
//! The paper proposes "hierarchies of latency parameters ... to model
//! subsystems within a larger system": think racks in a cluster, with a
//! fast intra-cluster latency `λ_local` and a slow inter-cluster latency
//! `λ_remote`.
//!
//! [`run_hierarchical`] broadcasts in two overlapping phases:
//!
//! 1. **Leader phase** — BCAST over the cluster leaders (the first
//!    processor of each cluster) using the λ_remote-optimal Fibonacci
//!    cascade;
//! 2. **Local phase** — each leader, as soon as its leader-phase sends
//!    are issued, broadcasts within its own cluster using the
//!    λ_local-optimal cascade (its output port naturally serializes the
//!    two phases).
//!
//! The baseline [`run_flat_under_hierarchy`] runs a single flat BCAST
//! whose tree assumes λ_remote everywhere — correct but blind to
//! locality. For clusters with strong locality the hierarchical algorithm
//! wins clearly (the experiment binary `exp_extensions` quantifies this).

use crate::cascade::{cascade, Orientation};
use postal_model::{GenFib, Latency};
use postal_sim::prelude::*;

/// Payload for hierarchical broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierPacket {
    /// Leader-phase packet: the receiver leads `leader_range` clusters
    /// (its own included).
    Leader {
        /// Number of clusters delegated (receiver's included).
        leader_range: u64,
    },
    /// Local-phase packet: the receiver is responsible for `range_size`
    /// processors within its cluster.
    Local {
        /// Number of processors delegated (receiver's included).
        range_size: u64,
    },
}

/// Per-processor hierarchical broadcast program.
pub struct HierProgram {
    cluster_size: u64,
    n: u64,
    remote_fib: GenFib,
    local_fib: GenFib,
    is_root: bool,
}

impl HierProgram {
    /// Creates the program for one processor of a block-clustered system.
    pub fn new(
        n: u64,
        cluster_size: u64,
        local: Latency,
        remote: Latency,
        is_root: bool,
    ) -> HierProgram {
        assert!(cluster_size >= 1);
        HierProgram {
            cluster_size,
            n,
            remote_fib: GenFib::new(remote),
            local_fib: GenFib::new(local),
            is_root,
        }
    }

    /// Size of the cluster this processor belongs to (the last block can
    /// be short).
    fn my_cluster_len(&self, me: u64) -> u64 {
        let cluster_start = (me / self.cluster_size) * self.cluster_size;
        self.cluster_size.min(self.n - cluster_start)
    }

    /// Leader-phase sends: delegate sub-ranges of clusters to other
    /// leaders, then start the local phase.
    fn lead(&self, ctx: &mut dyn Context<HierPacket>, leader_range: u64) {
        let me = ctx.me().index() as u64;
        debug_assert_eq!(me % self.cluster_size, 0, "only leaders lead");
        for send in cascade(&self.remote_fib, leader_range, Orientation::Standard) {
            let target_leader = me + send.offset * self.cluster_size;
            ctx.send(
                ProcId::from(target_leader as usize),
                HierPacket::Leader {
                    leader_range: send.size,
                },
            );
        }
        // Local phase within my own cluster, queued behind the leader
        // sends on the same output port.
        self.broadcast_local(ctx, self.my_cluster_len(me));
    }

    fn broadcast_local(&self, ctx: &mut dyn Context<HierPacket>, range_size: u64) {
        let me = ctx.me().index() as u64;
        for send in cascade(&self.local_fib, range_size, Orientation::Standard) {
            ctx.send(
                ProcId::from((me + send.offset) as usize),
                HierPacket::Local {
                    range_size: send.size,
                },
            );
        }
    }
}

impl Program<HierPacket> for HierProgram {
    fn on_start(&mut self, ctx: &mut dyn Context<HierPacket>) {
        if self.is_root {
            let clusters = self.n.div_ceil(self.cluster_size);
            self.lead(ctx, clusters);
        }
    }

    fn on_receive(&mut self, ctx: &mut dyn Context<HierPacket>, _from: ProcId, packet: HierPacket) {
        match packet {
            HierPacket::Leader { leader_range } => self.lead(ctx, leader_range),
            HierPacket::Local { range_size } => self.broadcast_local(ctx, range_size),
        }
    }
}

/// Runs the two-phase hierarchical broadcast over block clusters of size
/// `cluster_size` and returns the report.
///
/// # Panics
/// Panics if `cluster_size == 0`.
pub fn run_hierarchical(
    n: usize,
    cluster_size: usize,
    local: Latency,
    remote: Latency,
) -> RunReport<HierPacket> {
    let model = Hierarchical::blocks(n, cluster_size, local, remote);
    let programs = programs_from(n, |id| {
        Box::new(HierProgram::new(
            n as u64,
            cluster_size as u64,
            local,
            remote,
            id == ProcId::ROOT,
        )) as Box<dyn Program<HierPacket>>
    });
    Simulation::new(n, &model)
        .run(programs)
        .expect("hierarchical broadcast cannot diverge")
}

/// Baseline: a flat BCAST tree computed for λ_remote, executed over the
/// hierarchy (queued mode: local messages arriving early can contend).
pub fn run_flat_under_hierarchy(
    n: usize,
    cluster_size: usize,
    local: Latency,
    remote: Latency,
) -> RunReport<crate::bcast::BcastPayload> {
    let model = Hierarchical::blocks(n, cluster_size, local, remote);
    Simulation::new(n, &model)
        .port_mode(PortMode::Queued)
        .run(crate::bcast::bcast_programs(n, remote))
        .expect("flat broadcast cannot diverge")
}

/// True if every non-root processor received the message at least once.
pub fn delivered_everywhere<P>(report: &RunReport<P>, n: usize) -> bool {
    (1..n).all(|i| report.trace.received_by(ProcId::from(i)).count() >= 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::{runtimes, Time};

    #[test]
    fn delivers_to_everyone_exactly_once() {
        for (n, cs) in [(16usize, 4usize), (20, 4), (30, 7), (9, 3), (5, 8), (12, 1)] {
            let r = run_hierarchical(n, cs, Latency::TELEPHONE, Latency::from_int(6));
            assert!(delivered_everywhere(&r, n), "n={n} cs={cs}");
            for i in 1..n {
                assert_eq!(
                    r.trace.received_by(ProcId::from(i)).count(),
                    1,
                    "n={n} cs={cs} p{i}"
                );
            }
        }
    }

    #[test]
    fn degenerate_single_cluster_is_local_bcast() {
        let local = Latency::from_ratio(5, 2);
        let r = run_hierarchical(14, 14, local, Latency::from_int(6));
        r.assert_model_clean();
        assert_eq!(r.completion, runtimes::bcast_time(14, local));
    }

    #[test]
    fn degenerate_unit_clusters_is_remote_bcast() {
        let remote = Latency::from_int(4);
        let r = run_hierarchical(20, 1, Latency::TELEPHONE, remote);
        r.assert_model_clean();
        assert_eq!(r.completion, runtimes::bcast_time(20, remote));
    }

    #[test]
    fn hierarchy_beats_flat_for_strong_locality() {
        // 8 clusters of 8, local λ = 1, remote λ = 8.
        let (n, cs) = (64usize, 8usize);
        let local = Latency::TELEPHONE;
        let remote = Latency::from_int(8);
        let hier = run_hierarchical(n, cs, local, remote);
        let flat = run_flat_under_hierarchy(n, cs, local, remote);
        assert!(delivered_everywhere(&hier, n));
        assert!(delivered_everywhere(&flat, n));
        assert!(
            hier.completion < flat.completion,
            "hier {} vs flat {}",
            hier.completion,
            flat.completion
        );
    }

    #[test]
    fn hierarchical_run_is_model_clean() {
        // Leader and local phases must not collide on any input port.
        for (n, cs) in [(64usize, 8usize), (40, 5), (50, 9)] {
            let r = run_hierarchical(n, cs, Latency::from_ratio(3, 2), Latency::from_int(5));
            r.assert_model_clean();
        }
    }

    #[test]
    fn singleton() {
        let r = run_hierarchical(1, 4, Latency::TELEPHONE, Latency::from_int(2));
        assert_eq!(r.completion, Time::ZERO);
    }
}
