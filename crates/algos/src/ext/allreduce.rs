//! All-reduce: every processor ends up with the reduction of all values.
//!
//! Composed from the two optimal primitives this crate already has:
//! combine (time-reversed Fibonacci tree, done at `f_λ(n)`) followed by
//! BCAST of the result (another `f_λ(n)`), for a total of exactly
//! `2·f_λ(n)`. The root's last combine receive finishes exactly at
//! `f_λ(n)`, so the broadcast phase starts with zero idle time.
//!
//! (A matching lower bound of `2·f_λ(n)` does not follow from the paper;
//! combining and broadcasting *can* in principle be interleaved. This
//! composition is the natural baseline an MPI implementation would call
//! reduce-then-bcast.)

use crate::cascade::{cascade, Orientation};
use crate::fib_tree::{BroadcastTree, TreeNode};
use postal_model::{GenFib, Latency, Time};
use postal_sim::prelude::*;

/// All-reduce payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArPacket {
    /// Combine phase: a partial sum travelling root-ward.
    Partial(u64),
    /// Broadcast phase: the final total, with a BCAST range delegation.
    Result {
        /// The reduced total.
        total: u64,
        /// BCAST range delegated to the receiver.
        range_size: u64,
    },
}

/// Per-processor all-reduce program.
pub struct AllReduceProgram {
    fib: GenFib,
    value: u64,
    /// Combine-phase plan (from the reversed broadcast tree).
    parent: Option<ProcId>,
    send_at: Time,
    children: usize,
    /// Runtime state.
    acc: u64,
    received: usize,
    n: u64,
    /// Result learned (set when the broadcast phase reaches us).
    result: Option<u64>,
}

impl AllReduceProgram {
    fn broadcast_result(&mut self, ctx: &mut dyn Context<ArPacket>, total: u64, range: u64) {
        self.result = Some(total);
        let me = ctx.me().index() as u64;
        for send in cascade(&self.fib, range, Orientation::Standard) {
            ctx.send(
                ProcId::from((me + send.offset) as usize),
                ArPacket::Result {
                    total,
                    range_size: send.size,
                },
            );
        }
    }
}

impl Program<ArPacket> for AllReduceProgram {
    fn on_start(&mut self, ctx: &mut dyn Context<ArPacket>) {
        if self.n == 1 {
            self.result = Some(self.value);
            return;
        }
        if self.parent.is_some() {
            ctx.wake_at(self.send_at);
        }
    }

    fn on_receive(&mut self, ctx: &mut dyn Context<ArPacket>, _from: ProcId, p: ArPacket) {
        match p {
            ArPacket::Partial(v) => {
                self.acc += v;
                self.received += 1;
                // Root: when the last partial lands, start the broadcast.
                if self.parent.is_none() && self.received == self.children {
                    let total = self.acc;
                    let n = self.n;
                    self.broadcast_result(ctx, total, n);
                }
            }
            ArPacket::Result { total, range_size } => {
                self.broadcast_result(ctx, total, range_size);
            }
        }
    }

    fn on_wake(&mut self, ctx: &mut dyn Context<ArPacket>) {
        assert_eq!(
            self.received, self.children,
            "reversed schedule delivers all children before the send slot"
        );
        let parent = self.parent.expect("only non-roots wake");
        ctx.send(parent, ArPacket::Partial(self.acc));
    }
}

/// The outcome of an all-reduce run.
#[derive(Debug)]
pub struct AllReduceOutcome {
    /// The simulation report.
    pub report: RunReport<ArPacket>,
    /// The totals each processor ended up with (root's included).
    pub totals: Vec<Option<u64>>,
}

/// Runs all-reduce (sum) over `values` at latency λ. Completes in
/// exactly `2·f_λ(n)` and is model-clean.
///
/// # Panics
/// Panics if `values` is empty.
pub fn run_allreduce(values: &[u64], latency: Latency) -> AllReduceOutcome {
    let n = values.len();
    assert!(n >= 1, "all-reduce needs at least one value");
    let tree = BroadcastTree::build(n as u64, latency);
    let horizon = tree.completion();

    struct Plan {
        parent: Option<ProcId>,
        send_at: Time,
        children: usize,
    }
    let mut plans: Vec<Plan> = (0..n)
        .map(|_| Plan {
            parent: None,
            send_at: Time::ZERO,
            children: 0,
        })
        .collect();
    fn collect(node: &TreeNode, parent: Option<ProcId>, horizon: Time, out: &mut [Plan]) {
        out[node.proc.index()] = Plan {
            parent,
            send_at: horizon - node.ready,
            children: node.children.len(),
        };
        for child in &node.children {
            collect(child, Some(node.proc), horizon, out);
        }
    }
    collect(&tree.root, None, horizon, &mut plans);

    let mut programs: Vec<Box<dyn Program<ArPacket>>> = Vec::with_capacity(n);
    for (i, plan) in plans.iter().enumerate() {
        programs.push(Box::new(AllReduceProgram {
            fib: GenFib::new(latency),
            value: values[i],
            parent: plan.parent,
            send_at: plan.send_at,
            children: plan.children,
            acc: values[i],
            received: 0,
            n: n as u64,
            result: None,
        }));
    }
    let model = Uniform(latency);
    let report = Simulation::new(n, &model)
        .run(programs)
        .expect("all-reduce cannot diverge");

    // Reconstruct final knowledge from the trace: a processor knows the
    // total once it receives (or, for the root, assembles) a Result.
    let expected: u64 = values.iter().sum();
    let mut totals: Vec<Option<u64>> = vec![None; n];
    totals[0] = Some(expected); // the root assembles it
    for t in report.trace.transfers() {
        if let ArPacket::Result { total, .. } = t.payload {
            totals[t.dst.index()] = Some(total);
        }
    }
    if n == 1 {
        totals[0] = Some(values[0]);
    }
    AllReduceOutcome { report, totals }
}

/// The closed-form all-reduce time of this composition: `2·f_λ(n)`.
pub fn allreduce_time(n: u128, latency: Latency) -> Time {
    postal_model::runtimes::bcast_time(n, latency).mul_int(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_in_exactly_twice_bcast_time() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
        ] {
            for n in [1usize, 2, 3, 5, 14, 40] {
                let values: Vec<u64> = (1..=n as u64).collect();
                let o = run_allreduce(&values, lam);
                o.report.assert_model_clean();
                assert_eq!(
                    o.report.completion,
                    allreduce_time(n as u128, lam),
                    "λ={lam} n={n}"
                );
            }
        }
    }

    #[test]
    fn every_processor_learns_the_total() {
        let values: Vec<u64> = (0..20).map(|i| i * 3 + 1).collect();
        let expected: u64 = values.iter().sum();
        let o = run_allreduce(&values, Latency::from_ratio(5, 2));
        for (i, t) in o.totals.iter().enumerate() {
            assert_eq!(*t, Some(expected), "p{i}");
        }
    }

    #[test]
    fn message_count_is_two_n_minus_two() {
        // n−1 partials up, n−1 results down.
        let o = run_allreduce(&[1; 17], Latency::from_int(2));
        assert_eq!(o.report.messages(), 32);
    }

    #[test]
    fn singleton_allreduce() {
        let o = run_allreduce(&[99], Latency::from_int(3));
        assert_eq!(o.report.completion, Time::ZERO);
        assert_eq!(o.totals, vec![Some(99)]);
    }
}
