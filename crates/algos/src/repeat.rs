//! Algorithm REPEAT — broadcast `m` messages by `m` overlapped iterations
//! of BCAST (Section 4.2, Lemma 10).
//!
//! The originator runs one BCAST per message; every other processor runs
//! its BCAST role once per received message. Lemma 10's analysis has the
//! originator start iteration `i+1` exactly `λ − 1` units before
//! iteration `i` terminates, i.e. at time `i·(f_λ(n) − (λ−1))`, giving
//!
//! `T_R = m·f_λ(n) − (m−1)(λ−1)`.
//!
//! Two pacings are implemented:
//!
//! * [`Pacing::PaperExact`] — the originator starts iteration `i+1` at
//!   exactly `i·(f_λ(n) − λ + 1)` (timer-driven). Reproduces Lemma 10
//!   *with equality* for every `n`, `m`, λ.
//! * [`Pacing::Greedy`] — the originator starts iteration `i+1` the
//!   moment its output port is free, i.e. immediately after the last send
//!   of iteration `i`. Since the originator's cascade has `k ≤ f−λ+1`
//!   sends, this never loses to the paper's schedule and is *strictly
//!   faster* whenever the originator is not on the critical path (e.g.
//!   n = 5, λ = 5/2: greedy finishes at 8 versus Lemma 10's 17/2) —
//!   a small sharpening of the paper's analysis that falls out of the
//!   event-driven implementation. Completion is
//!   `(m−1)·k + f_λ(n)` where `k` is the originator's cascade length.
//!
//! Both pacings preserve message order and are free of receive-port
//! conflicts (verified in strict mode).

use crate::cascade::{cascade, CascadeSend, Orientation};
use crate::multi::{run_multi, MultiPacket, MultiReport};
use postal_model::ratio::Ratio;
use postal_model::{GenFib, Latency, Time};
use postal_sim::prelude::*;

/// How the originator paces successive BCAST iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pacing {
    /// Start iteration `i+1` at `i·(f_λ(n) − λ + 1)`, as in Lemma 10's
    /// analysis. Matches `T_R = m·f_λ(n) − (m−1)(λ−1)` exactly.
    #[default]
    PaperExact,
    /// Start iteration `i+1` as soon as the output port frees up; never
    /// slower than [`Pacing::PaperExact`], often slightly faster.
    Greedy,
}

/// Per-processor REPEAT program.
pub struct RepeatProgram {
    fib: GenFib,
    latency: Latency,
    pacing: Pacing,
    /// `Some((n, m))` on the originator.
    root: Option<(u64, u32)>,
    /// Next message index the originator will start (PaperExact pacing).
    next_msg: u32,
    /// Cascade cache: every iteration delegates the same ranges.
    sends: Option<Vec<CascadeSend>>,
}

impl RepeatProgram {
    /// Creates the program for one processor; `root` is `Some((n, m))`
    /// for `p_0`, `None` elsewhere.
    pub fn new(latency: Latency, pacing: Pacing, root: Option<(u64, u32)>) -> RepeatProgram {
        RepeatProgram {
            fib: GenFib::new(latency),
            latency,
            pacing,
            root,
            next_msg: 1,
            sends: None,
        }
    }

    fn sends_for(&mut self, range_size: u64) -> Vec<CascadeSend> {
        self.sends
            .get_or_insert_with(|| cascade(&self.fib, range_size, Orientation::Standard))
            .clone()
    }

    fn forward(&mut self, ctx: &mut dyn Context<MultiPacket>, msg: u32, range_size: u64) {
        let me = ctx.me().index() as u64;
        for send in self.sends_for(range_size) {
            ctx.send(
                ProcId::from((me + send.offset) as usize),
                MultiPacket {
                    msg,
                    range_size: send.size,
                },
            );
        }
    }

    /// The Lemma 10 iteration period `f_λ(n) − (λ − 1)`.
    fn period(&self, n: u64) -> Time {
        self.fib.index(n as u128) - Time(self.latency.value() - Ratio::ONE)
    }

    /// Originator: start iteration `next_msg` now, and schedule the next.
    fn start_iteration(&mut self, ctx: &mut dyn Context<MultiPacket>) {
        let (n, m) = self.root.expect("only the originator iterates");
        if n <= 1 || self.next_msg > m {
            return;
        }
        match self.pacing {
            Pacing::Greedy => {
                // Issue everything at once; the output port back-to-backs
                // all m iterations with no idle time.
                for msg in 1..=m {
                    self.forward(ctx, msg, n);
                }
                self.next_msg = m + 1;
            }
            Pacing::PaperExact => {
                let msg = self.next_msg;
                self.forward(ctx, msg, n);
                self.next_msg += 1;
                if self.next_msg <= m {
                    let start = self.period(n).mul_int((self.next_msg - 1) as i128);
                    ctx.wake_at(start);
                }
            }
        }
    }
}

impl Program<MultiPacket> for RepeatProgram {
    fn on_start(&mut self, ctx: &mut dyn Context<MultiPacket>) {
        if self.root.is_some() {
            self.start_iteration(ctx);
        }
    }

    fn on_wake(&mut self, ctx: &mut dyn Context<MultiPacket>) {
        self.start_iteration(ctx);
    }

    fn on_receive(
        &mut self,
        ctx: &mut dyn Context<MultiPacket>,
        _from: ProcId,
        packet: MultiPacket,
    ) {
        self.forward(ctx, packet.msg, packet.range_size);
    }
}

/// Builds the REPEAT programs for broadcasting `m` messages in MPS(n, λ).
pub fn repeat_programs(
    n: usize,
    m: u32,
    latency: Latency,
    pacing: Pacing,
) -> Vec<Box<dyn Program<MultiPacket>>> {
    programs_from(n, |id| {
        Box::new(RepeatProgram::new(
            latency,
            pacing,
            (id == ProcId::ROOT).then_some((n as u64, m)),
        ))
    })
}

/// Runs REPEAT with the paper's pacing; completion equals Lemma 10's
/// `m·f_λ(n) − (m−1)(λ−1)` exactly.
pub fn run_repeat(n: usize, m: u32, latency: Latency) -> MultiReport {
    run_multi(
        n,
        m,
        latency,
        repeat_programs(n, m, latency, Pacing::PaperExact),
    )
}

/// Runs REPEAT with greedy pacing (the event-driven sharpening; see
/// module docs).
pub fn run_repeat_greedy(n: usize, m: u32, latency: Latency) -> MultiReport {
    run_multi(
        n,
        m,
        latency,
        repeat_programs(n, m, latency, Pacing::Greedy),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::runtimes;

    #[test]
    fn matches_lemma10_exactly() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(3, 2),
            Latency::from_int(2),
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
        ] {
            for n in [2usize, 3, 5, 14, 40] {
                for m in [1u32, 2, 3, 7] {
                    let r = run_repeat(n, m, lam);
                    r.verify().unwrap();
                    assert_eq!(
                        r.completion(),
                        runtimes::repeat_time(n as u128, m as u64, lam),
                        "λ={lam} n={n} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn greedy_never_loses_to_paper_pacing() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_int(3),
        ] {
            for n in [2usize, 3, 5, 14, 40] {
                for m in [1u32, 2, 5] {
                    let greedy = run_repeat_greedy(n, m, lam);
                    greedy.verify().unwrap();
                    let paper = runtimes::repeat_time(n as u128, m as u64, lam);
                    assert!(
                        greedy.completion() <= paper,
                        "λ={lam} n={n} m={m}: greedy {} > paper {paper}",
                        greedy.completion()
                    );
                }
            }
        }
    }

    #[test]
    fn greedy_strictly_beats_lemma10_off_critical_path() {
        // n = 5, λ = 5/2: the originator's cascade is 3 sends but
        // f − (λ−1) = 7/2; greedy reuses the idle half unit per
        // iteration.
        let lam = Latency::from_ratio(5, 2);
        let greedy = run_repeat_greedy(5, 2, lam);
        greedy.verify().unwrap();
        assert_eq!(greedy.completion(), Time::from_int(8));
        assert_eq!(runtimes::repeat_time(5, 2, lam), Time::new(17, 2));
    }

    #[test]
    fn one_message_is_bcast() {
        let lam = Latency::from_ratio(5, 2);
        for run in [run_repeat(14, 1, lam), run_repeat_greedy(14, 1, lam)] {
            run.verify().unwrap();
            assert_eq!(run.completion(), runtimes::bcast_time(14, lam));
        }
    }

    #[test]
    fn message_count_is_m_times_bcast() {
        let r = run_repeat(20, 4, Latency::from_int(2));
        assert_eq!(r.report.messages(), 4 * 19);
    }

    #[test]
    fn iterations_overlap_but_never_collide() {
        // The crux of Lemma 10: copies of M_{i+1} sent during the tail of
        // iteration i arrive after iteration i is done — strict mode
        // proves there is no receive overlap, for both pacings.
        run_repeat(64, 8, Latency::from_ratio(5, 2))
            .verify()
            .unwrap();
        run_repeat_greedy(64, 8, Latency::from_ratio(5, 2))
            .verify()
            .unwrap();
    }

    #[test]
    fn singleton_system() {
        for r in [
            run_repeat(1, 5, Latency::from_int(2)),
            run_repeat_greedy(1, 5, Latency::from_int(2)),
        ] {
            r.verify().unwrap();
            assert_eq!(r.completion(), Time::ZERO);
        }
    }
}
