//! SVG rendering of broadcast trees — the paper's Figure 1 as a
//! standalone vector image.
//!
//! The drawing follows the paper's layout: time flows downward (the
//! vertical axis is model time, with a ruled grid per unit), each
//! processor is a labelled node placed at the moment it learns the
//! message, and each transfer is an edge from the sender's timeline to
//! the receiver's node. No external crates: the SVG is assembled
//! directly, and tests assert on its structure.

use crate::fib_tree::{BroadcastTree, TreeNode};
use postal_model::Time;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Horizontal pixels per processor column.
    pub col_width: f64,
    /// Vertical pixels per time unit.
    pub unit_height: f64,
    /// Node circle radius.
    pub radius: f64,
}

impl Default for SvgOptions {
    fn default() -> SvgOptions {
        SvgOptions {
            col_width: 56.0,
            unit_height: 48.0,
            radius: 13.0,
        }
    }
}

/// Renders the broadcast tree as an SVG document string.
pub fn tree_to_svg(tree: &BroadcastTree, opts: SvgOptions) -> String {
    let n = tree.n as usize;
    let margin = 40.0;
    let width = margin * 2.0 + opts.col_width * n as f64;
    let horizon = tree.completion().to_f64().max(1.0);
    let height = margin * 2.0 + opts.unit_height * horizon + 20.0;

    let x = |proc: u32| margin + opts.col_width * (proc as f64 + 0.5);
    let y = |t: f64| margin + opts.unit_height * t;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}">"#
    );
    let _ = writeln!(
        svg,
        r##"<rect width="100%" height="100%" fill="white"/>
<text x="{:.1}" y="22" font-family="sans-serif" font-size="14" fill="#333">Generalized Fibonacci broadcast tree: n = {}, λ = {}, completes at t = {}</text>"##,
        margin,
        tree.n,
        tree.latency,
        tree.completion()
    );

    // Time grid.
    let mut t = 0.0;
    while t <= horizon + 1e-9 {
        let yy = y(t);
        let _ = writeln!(
            svg,
            r##"<line x1="{:.1}" y1="{yy:.1}" x2="{:.1}" y2="{yy:.1}" stroke="#ddd" stroke-width="1"/>
<text x="6" y="{:.1}" font-family="sans-serif" font-size="10" fill="#888">t={t:.0}</text>"##,
            margin,
            width - margin,
            yy + 3.0
        );
        t += 1.0;
    }

    // Edges, then nodes (so nodes draw on top).
    draw_edges(&mut svg, &tree.root, &x, &y, tree.latency.as_time());
    draw_nodes(&mut svg, &tree.root, &x, &y, opts.radius);

    svg.push_str("</svg>\n");
    svg
}

fn draw_edges(
    svg: &mut String,
    node: &TreeNode,
    x: &dyn Fn(u32) -> f64,
    y: &dyn Fn(f64) -> f64,
    latency: Time,
) {
    for child in &node.children {
        let send_time = (child.ready - latency).to_f64();
        let _ = writeln!(
            svg,
            r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#4477aa" stroke-width="1.5" marker-end="none"/>"##,
            x(node.proc.0),
            y(send_time),
            x(child.proc.0),
            y(child.ready.to_f64()),
        );
        draw_edges(svg, child, x, y, latency);
    }
}

fn draw_nodes(
    svg: &mut String,
    node: &TreeNode,
    x: &dyn Fn(u32) -> f64,
    y: &dyn Fn(f64) -> f64,
    radius: f64,
) {
    let cx = x(node.proc.0);
    let cy = y(node.ready.to_f64());
    let _ = writeln!(
        svg,
        r##"<circle cx="{cx:.1}" cy="{cy:.1}" r="{radius:.1}" fill="#eef4fb" stroke="#4477aa" stroke-width="1.5"/>
<text x="{cx:.1}" y="{:.1}" font-family="sans-serif" font-size="10" text-anchor="middle" fill="#223">p{}</text>"##,
        cy + 3.5,
        node.proc.0
    );
    for child in &node.children {
        draw_nodes(svg, child, x, y, radius);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::Latency;

    #[test]
    fn figure1_svg_structure() {
        let tree = BroadcastTree::build(14, Latency::from_ratio(5, 2));
        let svg = tree_to_svg(&tree, SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 14 node circles, 13 edges.
        assert_eq!(svg.matches("<circle").count(), 14);
        assert_eq!(
            svg.matches(r##"stroke="#4477aa" stroke-width="1.5" marker-end"##)
                .count(),
            13
        );
        // Every processor labelled.
        for i in 0..14 {
            assert!(svg.contains(&format!(">p{i}</text>")), "missing p{i}");
        }
        // Title mentions the completion time.
        assert!(svg.contains("completes at t = 15/2"));
    }

    #[test]
    fn singleton_tree_renders() {
        let tree = BroadcastTree::build(1, Latency::TELEPHONE);
        let svg = tree_to_svg(&tree, SvgOptions::default());
        assert_eq!(svg.matches("<circle").count(), 1);
    }

    #[test]
    fn grid_spans_the_horizon() {
        let tree = BroadcastTree::build(32, Latency::from_int(2));
        let svg = tree_to_svg(&tree, SvgOptions::default());
        let horizon = tree.completion().to_f64() as usize;
        for t in 0..=horizon {
            assert!(
                svg.contains(&format!(">t={t}</text>")),
                "missing grid t={t}"
            );
        }
    }
}
