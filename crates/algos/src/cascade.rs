//! The BCAST send cascade.
//!
//! Algorithm BCAST (Section 3) is recursive on ranges: the processor
//! responsible for a contiguous range of `s` processors computes
//! `j = F_λ(f_λ(s) − 1)`, delegates the sub-range of size `s − j` starting
//! at offset `j` to the processor at that offset, and recurses on the
//! first `j` processors — of which it is itself the first. Unrolling the
//! recursion at one processor yields its *cascade*: the ordered list of
//! (offset, delegated-size) sends it performs, one per time unit.
//!
//! Two orientations are provided:
//!
//! * [`Orientation::Standard`] — the originator keeps the larger piece
//!   (`j`, paid for by the `1 + T(j)` branch of Lemma 4) and delegates the
//!   smaller (`s − j`, paid for by `λ + T(s − j)`). This is BCAST itself,
//!   and the orientation used by PACK and PIPELINE-1.
//! * [`Orientation::Swapped`] — used by PIPELINE-2 (`m ≥ λ`), where the
//!   paper notes the algorithm "results in changing the responsibilities
//!   of the sender and the receiver ... for each sender–receiver pair": in
//!   normalized time the *recipient* of a stream is the party free after
//!   one unit, so the recipient receives the larger piece `j` and the
//!   sender keeps the smaller `s − j`.

use postal_model::GenFib;

/// Which side of each split keeps the larger piece.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Sender keeps the larger piece (BCAST, PACK, PIPELINE-1).
    Standard,
    /// Receiver gets the larger piece (PIPELINE-2).
    Swapped,
}

/// One send in a cascade: delegate `size` processors starting at relative
/// offset `offset` (offsets are relative to the cascading processor, which
/// sits at offset 0 of its own range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CascadeSend {
    /// Offset of the delegate within the sender's range (`1 ≤ offset`).
    pub offset: u64,
    /// Number of processors the delegate becomes responsible for
    /// (including itself).
    pub size: u64,
}

/// Computes the full send cascade for a processor responsible for `size`
/// processors (itself included), in send order.
///
/// The returned sends partition `{1, …, size−1}`: every processor in the
/// range except the sender itself is covered by exactly one delegated
/// sub-range.
///
/// ```
/// use postal_algos::{cascade, Orientation};
/// use postal_model::{GenFib, Latency};
///
/// // Figure 1's root: first delegate sits at offset 9 and inherits 5
/// // processors.
/// let fib = GenFib::new(Latency::from_ratio(5, 2));
/// let sends = cascade(&fib, 14, Orientation::Standard);
/// assert_eq!((sends[0].offset, sends[0].size), (9, 5));
/// assert_eq!(sends.len(), 6); // the root transmits for 6 units
/// ```
///
/// # Panics
/// Panics if `size == 0`.
pub fn cascade(fib: &GenFib, size: u64, orientation: Orientation) -> Vec<CascadeSend> {
    assert!(size >= 1, "a range must contain at least the sender");
    let mut sends = Vec::new();
    let mut s = size as u128;
    // `base` is the current range's start offset relative to the original
    // sender; the sender always sits at `base` itself in Standard
    // orientation. In Swapped orientation the sender keeps the *front*
    // block, so base stays 0 and the delegate block is taken off the back.
    match orientation {
        Orientation::Standard => {
            while s > 1 {
                let j = fib.bcast_split(s);
                // Delegate [j, s) — the smaller piece — and keep [0, j).
                sends.push(CascadeSend {
                    offset: j as u64,
                    size: (s - j) as u64,
                });
                s = j;
            }
        }
        Orientation::Swapped => {
            while s > 1 {
                let j = fib.bcast_split(s);
                // Delegate the *larger* piece [s−j, s) of size j; keep
                // [0, s−j).
                sends.push(CascadeSend {
                    offset: (s - j) as u64,
                    size: j as u64,
                });
                s -= j;
            }
        }
    }
    sends
}

/// Verifies that a cascade partitions the non-sender part of the range
/// (used by tests and debug assertions).
pub fn covers_range(sends: &[CascadeSend], size: u64) -> bool {
    let mut covered = vec![false; size as usize];
    covered[0] = true; // the sender itself
    for s in sends {
        for off in s.offset..s.offset + s.size {
            let idx = off as usize;
            if idx >= size as usize || covered[idx] {
                return false;
            }
            covered[idx] = true;
        }
    }
    covered.into_iter().all(|c| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::Latency;

    #[test]
    fn figure1_cascade() {
        // MPS(14, 5/2): p0 sends to offset 9 (range size 5), then — now
        // responsible for 9 — to offset 6 (size 3), then 4 (size 2),
        // 3 (size 1), 2 (size 1), 1 (size 1): matching Figure 1, where p0
        // sends at t = 0, 1, 2, 3, 4, 5.
        let fib = GenFib::new(Latency::from_ratio(5, 2));
        let sends = cascade(&fib, 14, Orientation::Standard);
        assert_eq!(
            sends,
            vec![
                CascadeSend { offset: 9, size: 5 },
                CascadeSend { offset: 6, size: 3 },
                CascadeSend { offset: 4, size: 2 },
                CascadeSend { offset: 3, size: 1 },
                CascadeSend { offset: 2, size: 1 },
                CascadeSend { offset: 1, size: 1 },
            ]
        );
    }

    #[test]
    fn singleton_range_has_no_sends() {
        let fib = GenFib::new(Latency::TELEPHONE);
        assert!(cascade(&fib, 1, Orientation::Standard).is_empty());
        assert!(cascade(&fib, 1, Orientation::Swapped).is_empty());
    }

    #[test]
    fn pair_sends_once() {
        let fib = GenFib::new(Latency::from_ratio(5, 2));
        assert_eq!(
            cascade(&fib, 2, Orientation::Standard),
            vec![CascadeSend { offset: 1, size: 1 }]
        );
        assert_eq!(
            cascade(&fib, 2, Orientation::Swapped),
            vec![CascadeSend { offset: 1, size: 1 }]
        );
    }

    #[test]
    fn both_orientations_partition_the_range() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(3, 2),
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
        ] {
            let fib = GenFib::new(lam);
            for size in 1..=300u64 {
                for orientation in [Orientation::Standard, Orientation::Swapped] {
                    let sends = cascade(&fib, size, orientation);
                    assert!(
                        covers_range(&sends, size),
                        "λ={lam} size={size} {orientation:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn telephone_standard_is_binomial_halving() {
        // λ = 1: recursive halving (hypercube/binomial broadcast).
        let fib = GenFib::new(Latency::TELEPHONE);
        let sends = cascade(&fib, 16, Orientation::Standard);
        assert_eq!(
            sends,
            vec![
                CascadeSend { offset: 8, size: 8 },
                CascadeSend { offset: 4, size: 4 },
                CascadeSend { offset: 2, size: 2 },
                CascadeSend { offset: 1, size: 1 },
            ]
        );
    }

    #[test]
    fn swapped_mirrors_sizes_of_standard() {
        // The multiset of delegated sizes at the top split differs in
        // *who* keeps the big half; the first swapped send must delegate
        // the piece the standard sender would have kept... for the first
        // split: standard delegates s−j, swapped delegates j.
        let fib = GenFib::new(Latency::from_int(2));
        for size in 2..200u64 {
            let j = fib.bcast_split(size as u128) as u64;
            let std = cascade(&fib, size, Orientation::Standard);
            let swp = cascade(&fib, size, Orientation::Swapped);
            assert_eq!(std[0].size, size - j);
            assert_eq!(swp[0].size, j);
        }
    }

    #[test]
    fn covers_range_rejects_overlap_and_gap() {
        // Overlap.
        assert!(!covers_range(
            &[
                CascadeSend { offset: 1, size: 2 },
                CascadeSend { offset: 2, size: 1 }
            ],
            3
        ));
        // Gap.
        assert!(!covers_range(&[CascadeSend { offset: 2, size: 1 }], 3));
        // Out of range.
        assert!(!covers_range(&[CascadeSend { offset: 1, size: 5 }], 3));
    }
}
