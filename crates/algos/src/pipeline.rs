//! Algorithm PIPELINE — broadcast `m` messages as a pipelined stream
//! (Section 4.2, Lemmas 14 and 16).
//!
//! Like PACK, each processor sends the whole stream to one recipient and
//! then recursively broadcasts it to a sub-range — but recipients start
//! forwarding packets *as they arrive* instead of waiting for the whole
//! stream. Normalizing time by the stream length yields BCAST at a
//! modified latency, in two regimes:
//!
//! * **PIPELINE-1** (`m ≤ λ`): normalized latency `λ' = λ/m`; the sender
//!   of a stream frees up (after `m` units) before its recipient can
//!   forward (after `λ`), so the usual BCAST orientation applies — the
//!   sender keeps the larger sub-range. `T_PL1 = m·f_{λ/m}(n) + (m−1)`.
//! * **PIPELINE-2** (`m ≥ λ`): normalized latency `λ' = m/λ`; now the
//!   *recipient* can forward (after `λ`) before the sender finishes
//!   (after `m`), so — as the paper puts it — the algorithm "results in
//!   changing the responsibilities of the sender and the receiver":
//!   the recipient gets the larger sub-range.
//!   `T_PL2 = λ·f_{m/λ}(n) + (λ−1)`.
//!
//! Mechanically both regimes run the same program: forward each arriving
//! packet immediately to the first cascade target, and once the stream is
//! complete, replay it from the buffer to each remaining target. Only the
//! cascade orientation differs.

use crate::cascade::{cascade, CascadeSend, Orientation};
use crate::multi::{run_multi, MultiPacket, MultiReport};
use postal_model::ratio::Ratio;
use postal_model::runtimes::{pipeline_regime, PipelineRegime};
use postal_model::{GenFib, Latency};
use postal_sim::prelude::*;

/// Per-processor PIPELINE program (either regime).
pub struct PipelineProgram {
    /// Fibonacci evaluator at the normalized latency λ'.
    fib: GenFib,
    orientation: Orientation,
    m: u32,
    /// `Some(n)` on the originator.
    root_range: Option<u64>,
    received: u32,
    targets: Option<Vec<CascadeSend>>,
}

impl PipelineProgram {
    /// Creates the program for one processor; `root_range` is `Some(n)`
    /// on `p_0`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(latency: Latency, m: u32, root_range: Option<u64>) -> PipelineProgram {
        assert!(m >= 1, "at least one message must be broadcast");
        let lam = latency.value();
        let m_r = Ratio::from_int(m as i128);
        let (normalized, orientation) = match pipeline_regime(m as u64, latency) {
            PipelineRegime::Short => (
                Latency::new(lam / m_r).expect("m ≤ λ keeps λ/m ≥ 1"),
                Orientation::Standard,
            ),
            PipelineRegime::Long => (
                Latency::new(m_r / lam).expect("m ≥ λ keeps m/λ ≥ 1"),
                Orientation::Swapped,
            ),
        };
        PipelineProgram {
            fib: GenFib::new(normalized),
            orientation,
            m,
            root_range,
            received: 0,
            targets: None,
        }
    }

    fn compute_targets(&mut self, range_size: u64) -> &[CascadeSend] {
        self.targets
            .get_or_insert_with(|| cascade(&self.fib, range_size, self.orientation))
    }

    fn send_stream(ctx: &mut dyn Context<MultiPacket>, target: CascadeSend, m: u32) {
        let me = ctx.me().index() as u64;
        for msg in 1..=m {
            ctx.send(
                ProcId::from((me + target.offset) as usize),
                MultiPacket {
                    msg,
                    range_size: target.size,
                },
            );
        }
    }
}

impl Program<MultiPacket> for PipelineProgram {
    fn on_start(&mut self, ctx: &mut dyn Context<MultiPacket>) {
        if let Some(n) = self.root_range {
            let m = self.m;
            for target in self.compute_targets(n).to_vec() {
                Self::send_stream(ctx, target, m);
            }
        }
    }

    fn on_receive(
        &mut self,
        ctx: &mut dyn Context<MultiPacket>,
        _from: ProcId,
        packet: MultiPacket,
    ) {
        self.received += 1;
        let targets = self.compute_targets(packet.range_size).to_vec();
        // Forward the arriving packet to the first target immediately:
        // this is the pipelining. Arrivals come one per unit, so the
        // output port is always free for the forward.
        if let Some(first) = targets.first() {
            let me = ctx.me().index() as u64;
            ctx.send(
                ProcId::from((me + first.offset) as usize),
                MultiPacket {
                    msg: packet.msg,
                    range_size: first.size,
                },
            );
        }
        // Stream complete: replay it from the buffer to the remaining
        // targets, back-to-back.
        if self.received == self.m {
            for target in targets.into_iter().skip(1) {
                Self::send_stream(ctx, target, self.m);
            }
        }
    }
}

/// Builds the PIPELINE programs for broadcasting `m` messages in
/// MPS(n, λ); the regime is selected automatically from `m` and λ.
pub fn pipeline_programs(n: usize, m: u32, latency: Latency) -> Vec<Box<dyn Program<MultiPacket>>> {
    programs_from(n, |id| {
        Box::new(PipelineProgram::new(
            latency,
            m,
            (id == ProcId::ROOT).then_some(n as u64),
        ))
    })
}

/// Runs PIPELINE and returns the verified-ready report.
pub fn run_pipeline(n: usize, m: u32, latency: Latency) -> MultiReport {
    run_multi(n, m, latency, pipeline_programs(n, m, latency))
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::runtimes;

    #[test]
    fn matches_lemma14_in_short_regime() {
        // m ≤ λ throughout.
        for (lam, ms) in [
            (Latency::from_int(4), vec![1u32, 2, 3, 4]),
            (Latency::from_ratio(5, 2), vec![1, 2]),
            (Latency::from_int(8), vec![1, 2, 4, 8]),
        ] {
            for n in [2usize, 3, 5, 14, 40] {
                for &m in &ms {
                    let r = run_pipeline(n, m, lam);
                    r.verify().unwrap();
                    assert_eq!(
                        r.completion(),
                        runtimes::pipeline1_time(n as u128, m as u64, lam).unwrap(),
                        "λ={lam} n={n} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_lemma16_in_long_regime() {
        // m ≥ λ throughout.
        for (lam, ms) in [
            (Latency::TELEPHONE, vec![1u32, 2, 5, 9]),
            (Latency::from_int(2), vec![2, 3, 4, 8]),
            (Latency::from_ratio(5, 2), vec![3, 5, 10]),
            (Latency::from_ratio(3, 2), vec![2, 6]),
        ] {
            for n in [2usize, 3, 5, 14, 40] {
                for &m in &ms {
                    let r = run_pipeline(n, m, lam);
                    r.verify().unwrap();
                    assert_eq!(
                        r.completion(),
                        runtimes::pipeline2_time(n as u128, m as u64, lam).unwrap(),
                        "λ={lam} n={n} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn worked_example_n5_m3_lambda2() {
        // Hand-checked PIPELINE-2 case: λ' = 3/2, f_{3/2}(5) = 7/2, so
        // T = 2·(7/2) + 1 = 8.
        let r = run_pipeline(5, 3, Latency::from_int(2));
        r.verify().unwrap();
        assert_eq!(r.completion(), postal_model::Time::from_int(8));
    }

    #[test]
    fn one_message_is_bcast_in_both_regimes() {
        for lam in [Latency::TELEPHONE, Latency::from_ratio(5, 2)] {
            let r = run_pipeline(14, 1, lam);
            r.verify().unwrap();
            assert_eq!(r.completion(), runtimes::bcast_time(14, lam));
        }
    }

    #[test]
    fn regimes_agree_at_m_equals_lambda() {
        let lam = Latency::from_int(3);
        let r = run_pipeline(20, 3, lam);
        r.verify().unwrap();
        assert_eq!(
            runtimes::pipeline1_time(20, 3, lam).unwrap(),
            runtimes::pipeline2_time(20, 3, lam).unwrap()
        );
        assert_eq!(r.completion(), runtimes::pipeline_time(20, 3, lam));
    }

    #[test]
    fn pipeline_beats_pack_for_long_streams() {
        // Section 4.2: exploiting stream non-atomicity makes PIPELINE
        // more efficient than PACK.
        let lam = Latency::from_int(4);
        let (n, m) = (64usize, 32u32);
        let pl = run_pipeline(n, m, lam).completion();
        let pk = crate::pack::run_pack(n, m, lam).completion();
        assert!(pl < pk, "pipeline {pl} vs pack {pk}");
    }

    #[test]
    fn singleton_system() {
        let r = run_pipeline(1, 6, Latency::from_int(2));
        r.verify().unwrap();
        assert_eq!(r.completion(), postal_model::Time::ZERO);
    }
}
