//! FLOOD — the greedy schedule behind Lemma 5, made executable.
//!
//! The optimality proof of Algorithm BCAST (Lemma 5) defines `N(t)` as
//! the maximum number of processors reachable in `t` units and argues
//! `N(t) = N(t−1) + N(t−λ)`, i.e. `N = F_λ`: the best any algorithm can
//! do is have *every* informed processor send to a *new* processor every
//! unit of time. This module implements exactly that greedy flood as a
//! schedule generator, giving a machine-checkable version of the
//! argument:
//!
//! * the number of informed processors at every lattice instant `t`
//!   equals `min(F_λ(t), n)` ([`FloodOutcome::informed_curve_matches`]);
//! * the completion time is `f_λ(n)`, independently re-deriving
//!   Theorem 6's optimality without the Fibonacci tree construction;
//! * the generated schedule passes the postal-model validator.
//!
//! FLOOD and BCAST reach the same completion time with different
//! schedules: BCAST is range-recursive (and therefore needs no global
//! coordination), while FLOOD assigns targets from a shared frontier —
//! fine for a precomputed schedule, impossible for an online distributed
//! algorithm. The pair demonstrates *why* the paper wants the tree: it
//! decentralizes the flood without losing a single time unit.

use postal_model::schedule::{Schedule, TimedSend};
use postal_model::{GenFib, Latency, Time};
use std::collections::VecDeque;

/// The result of generating a flood schedule.
#[derive(Debug)]
pub struct FloodOutcome {
    /// The generated schedule.
    pub schedule: Schedule,
    /// `informed[k]` = number of processors informed at tick `k`
    /// (index 0 = time 0), up to and including the completion tick.
    pub informed: Vec<u64>,
    /// The latency used.
    pub latency: Latency,
}

impl FloodOutcome {
    /// Checks the Lemma 5 identity: informed(k ticks) = min(F_λ, n).
    pub fn informed_curve_matches(&self, n: u64) -> bool {
        let fib = GenFib::new(self.latency);
        self.informed
            .iter()
            .enumerate()
            .all(|(k, &count)| count as u128 == fib.value_at_ticks(k as i128).min(n as u128))
    }

    /// Completion time of the flood.
    pub fn completion(&self) -> Time {
        self.schedule.completion()
    }
}

/// Generates the greedy flood schedule for MPS(n, λ): every informed
/// processor sends to the next uninformed processor every unit of time
/// until none remain.
///
/// ```
/// use postal_algos::flood_schedule;
/// use postal_model::{Latency, Time};
///
/// let flood = flood_schedule(14, Latency::from_ratio(5, 2));
/// assert_eq!(flood.completion(), Time::new(15, 2)); // = f_λ(14)
/// assert!(flood.informed_curve_matches(14));        // Lemma 5
/// ```
///
/// # Panics
/// Panics if `n == 0`.
pub fn flood_schedule(n: u64, latency: Latency) -> FloodOutcome {
    assert!(n >= 1, "flooding needs at least one processor");
    let q = latency.ticks_per_unit();
    let p = latency.lambda_ticks();

    // Frontier of uninformed processors, taken in index order.
    let mut uninformed: VecDeque<u32> = (1..n as u32).collect();
    // Informed processors with the tick at which their port frees.
    // Processor 0 is informed at tick 0 with a free port.
    let mut informed: Vec<(u32, i128)> = vec![(0, 0)];
    // (inform_tick, proc): sorted by construction (arrivals are issued
    // in nondecreasing send-tick order and latency is constant).
    let mut pending: VecDeque<(i128, u32)> = VecDeque::new();
    let mut sends: Vec<TimedSend> = Vec::with_capacity(n as usize - 1);
    let mut informed_curve: Vec<u64> = Vec::new();

    let mut tick: i128 = 0;
    while !uninformed.is_empty() || !pending.is_empty() {
        // Arrivals first: processors informed exactly at this tick.
        while let Some(&(at, proc)) = pending.front() {
            if at > tick {
                break;
            }
            pending.pop_front();
            informed.push((proc, at));
        }
        // Every informed processor with a free port sends to a fresh
        // target (in the order they became informed, for determinism).
        for (proc, out_free) in informed.iter_mut() {
            if *out_free > tick {
                continue;
            }
            let Some(target) = uninformed.pop_front() else {
                break;
            };
            sends.push(TimedSend {
                src: *proc,
                dst: target,
                send_start: Time(postal_model::Ratio::new(tick, q)),
            });
            *out_free = tick + q;
            pending.push_back((tick + p, target));
        }
        informed_curve.push(informed.len() as u64);
        tick += 1;
    }
    // Record the final plateau tick (everyone informed).
    informed_curve.push(informed.len() as u64);

    FloodOutcome {
        schedule: Schedule::new(n as u32, latency, sends),
        informed: informed_curve,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::runtimes;

    const LAMBDAS: &[(i128, i128)] = &[(1, 1), (3, 2), (2, 1), (5, 2), (7, 3), (4, 1)];

    #[test]
    fn flood_completes_in_optimal_time() {
        for &(pp, qq) in LAMBDAS {
            let lam = Latency::from_ratio(pp, qq);
            for n in [1u64, 2, 3, 5, 14, 50, 200] {
                let flood = flood_schedule(n, lam);
                let expected = if n == 1 {
                    Time::ZERO
                } else {
                    runtimes::bcast_time(n as u128, lam)
                };
                assert_eq!(flood.completion(), expected, "λ={lam} n={n}");
            }
        }
    }

    #[test]
    fn informed_curve_is_the_generalized_fibonacci_function() {
        // Lemma 5, executably: greedy flooding informs exactly F_λ(t)
        // processors by time t (capped at n).
        for &(pp, qq) in LAMBDAS {
            let lam = Latency::from_ratio(pp, qq);
            for n in [2u64, 5, 14, 100] {
                let flood = flood_schedule(n, lam);
                assert!(
                    flood.informed_curve_matches(n),
                    "λ={lam} n={n}: curve {:?}",
                    flood.informed
                );
            }
        }
    }

    #[test]
    fn flood_schedule_is_model_valid() {
        for &(pp, qq) in LAMBDAS {
            let lam = Latency::from_ratio(pp, qq);
            for n in [1u64, 2, 14, 64] {
                let flood = flood_schedule(n, lam);
                postal_verify::assert_broadcast_clean(
                    &flood.schedule,
                    &format!("flood λ={lam} n={n}"),
                );
                assert_eq!(flood.schedule.len(), n as usize - 1);
            }
        }
    }

    #[test]
    fn flood_replays_exactly_on_the_engine() {
        let lam = Latency::from_ratio(5, 2);
        let flood = flood_schedule(30, lam);
        let report = crate::replay::replay(&flood.schedule);
        report.assert_model_clean();
        assert_eq!(report.completion, flood.completion());
    }

    #[test]
    fn flood_and_bcast_agree_on_time_but_not_shape() {
        // Same optimal completion; different sender multiset (the flood
        // reassigns targets globally).
        let lam = Latency::from_ratio(5, 2);
        let n = 14;
        let flood = flood_schedule(n, lam);
        let bcast = crate::fib_tree::BroadcastTree::build(n, lam);
        assert_eq!(flood.completion(), bcast.completion());
    }
}
