//! Shared machinery for the multi-message broadcasting algorithms
//! (Section 4).
//!
//! All multi-message algorithms carry the same payload: which of the `m`
//! messages a packet is, plus the delegated range size for algorithms that
//! delegate ranges. A [`MultiReport`] wraps the simulation report with
//! broadcast-specific verification: completeness (everyone got all `m`
//! messages exactly once) and the paper's order-preservation property.

use postal_sim::prelude::*;

/// A packet of a multi-message broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiPacket {
    /// Message index, `1 ..= m`.
    pub msg: u32,
    /// Delegated range size (receiver included); algorithms with static
    /// structure (DTREE) carry their tree implicitly and set this to 0.
    pub range_size: u64,
}

/// The result of running a multi-message broadcast.
#[derive(Debug)]
pub struct MultiReport {
    /// The underlying simulation report.
    pub report: RunReport<MultiPacket>,
    /// Number of processors.
    pub n: usize,
    /// Number of messages broadcast.
    pub m: u32,
}

/// A verification failure in a multi-message broadcast run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BroadcastDefect {
    /// A processor did not receive some message exactly once.
    WrongMultiplicity {
        /// The processor.
        proc: ProcId,
        /// The message index.
        msg: u32,
        /// Number of copies received.
        copies: usize,
    },
    /// A processor received messages out of index order.
    OrderViolation {
        /// The processor.
        proc: ProcId,
    },
    /// The strict postal model was violated (overlapping receives).
    ModelViolation {
        /// Number of port overlaps.
        count: usize,
    },
}

impl MultiReport {
    /// Completion time (the paper's running time).
    pub fn completion(&self) -> postal_model::Time {
        self.report.completion
    }

    /// Full verification: model-clean, complete, and order-preserving.
    ///
    /// # Errors
    /// Returns the first defect found.
    pub fn verify(&self) -> Result<(), BroadcastDefect> {
        if !self.report.violations.is_empty() {
            return Err(BroadcastDefect::ModelViolation {
                count: self.report.violations.len(),
            });
        }
        // Every non-root processor receives every message exactly once.
        for i in 1..self.n {
            let p = ProcId::from(i);
            let mut counts = vec![0usize; self.m as usize + 1];
            for t in self.report.trace.received_by(p) {
                counts[t.payload.msg as usize] += 1;
            }
            for msg in 1..=self.m {
                if counts[msg as usize] != 1 {
                    return Err(BroadcastDefect::WrongMultiplicity {
                        proc: p,
                        msg,
                        copies: counts[msg as usize],
                    });
                }
            }
        }
        // Order preservation: receive order respects message index order.
        self.report
            .trace
            .check_order_preserving(self.n, |p: &MultiPacket| Some(p.msg))
            .map_err(|proc| BroadcastDefect::OrderViolation { proc })
    }

    /// Verification that tolerates model violations (for queued-mode or
    /// adversarial runs): completeness and order only.
    pub fn verify_delivery(&self) -> Result<(), BroadcastDefect> {
        let clean = MultiReport {
            report: RunReport {
                completion: self.report.completion,
                trace: self.report.trace.clone(),
                violations: Vec::new(),
                edge_violations: Vec::new(),
                proc_stats: self.report.proc_stats.clone(),
                events: self.report.events,
            },
            n: self.n,
            m: self.m,
        };
        clean.verify()
    }
}

/// Runs a multi-message algorithm's programs under a uniform λ in strict
/// mode.
///
/// # Panics
/// Panics if the simulation diverges (paper algorithms cannot).
pub fn run_multi(
    n: usize,
    m: u32,
    latency: postal_model::Latency,
    programs: Vec<Box<dyn Program<MultiPacket>>>,
) -> MultiReport {
    let model = Uniform(latency);
    let report = Simulation::new(n, &model)
        .run(programs)
        .expect("multi-message broadcast cannot diverge");
    MultiReport { report, n, m }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::Latency;

    /// Root sends each message once to p1 (n = 2 broadcast).
    struct Pair {
        m: u32,
    }

    impl Program<MultiPacket> for Pair {
        fn on_start(&mut self, ctx: &mut dyn Context<MultiPacket>) {
            for msg in 1..=self.m {
                ctx.send(ProcId(1), MultiPacket { msg, range_size: 1 });
            }
        }
        fn on_receive(
            &mut self,
            _ctx: &mut dyn Context<MultiPacket>,
            _from: ProcId,
            _p: MultiPacket,
        ) {
        }
    }

    fn pair_run(m: u32, lam: Latency) -> MultiReport {
        let programs: Vec<Box<dyn Program<MultiPacket>>> =
            vec![Box::new(Pair { m }), Box::new(Idle)];
        run_multi(2, m, lam, programs)
    }

    #[test]
    fn complete_ordered_pair_broadcast_verifies() {
        let r = pair_run(3, Latency::from_int(2));
        r.verify().unwrap();
        // Last send starts at m−1 = 2, finishes receiving at 2 + λ = 4.
        assert_eq!(r.completion(), postal_model::Time::from_int(4));
    }

    #[test]
    fn missing_message_is_detected() {
        // m claims 4 but only 3 are sent.
        let programs: Vec<Box<dyn Program<MultiPacket>>> =
            vec![Box::new(Pair { m: 3 }), Box::new(Idle)];
        let r = run_multi(2, 4, Latency::from_int(2), programs);
        assert_eq!(
            r.verify(),
            Err(BroadcastDefect::WrongMultiplicity {
                proc: ProcId(1),
                msg: 4,
                copies: 0
            })
        );
    }

    #[test]
    fn out_of_order_is_detected() {
        struct Backwards;
        impl Program<MultiPacket> for Backwards {
            fn on_start(&mut self, ctx: &mut dyn Context<MultiPacket>) {
                for msg in [2u32, 1] {
                    ctx.send(ProcId(1), MultiPacket { msg, range_size: 1 });
                }
            }
            fn on_receive(
                &mut self,
                _ctx: &mut dyn Context<MultiPacket>,
                _f: ProcId,
                _p: MultiPacket,
            ) {
            }
        }
        let programs: Vec<Box<dyn Program<MultiPacket>>> =
            vec![Box::new(Backwards), Box::new(Idle)];
        let r = run_multi(2, 2, Latency::from_int(2), programs);
        assert_eq!(
            r.verify(),
            Err(BroadcastDefect::OrderViolation { proc: ProcId(1) })
        );
    }

    #[test]
    fn model_violation_is_reported_first() {
        struct TwoSenders(u32);
        impl Program<MultiPacket> for TwoSenders {
            fn on_start(&mut self, ctx: &mut dyn Context<MultiPacket>) {
                ctx.send(
                    ProcId(2),
                    MultiPacket {
                        msg: self.0,
                        range_size: 1,
                    },
                );
            }
            fn on_receive(
                &mut self,
                _ctx: &mut dyn Context<MultiPacket>,
                _f: ProcId,
                _p: MultiPacket,
            ) {
            }
        }
        let programs: Vec<Box<dyn Program<MultiPacket>>> = vec![
            Box::new(TwoSenders(1)),
            Box::new(TwoSenders(2)),
            Box::new(Idle),
        ];
        let r = run_multi(3, 2, Latency::from_int(2), programs);
        assert_eq!(
            r.verify(),
            Err(BroadcastDefect::ModelViolation { count: 1 })
        );
        // verify_delivery ignores the overlap but still checks content:
        // p1 got nothing, which for n=3, m=2 is a multiplicity defect.
        assert!(matches!(
            r.verify_delivery(),
            Err(BroadcastDefect::WrongMultiplicity { .. })
        ));
    }
}
