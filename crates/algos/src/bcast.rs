//! Algorithm BCAST — optimal single-message broadcast (Section 3).
//!
//! At time 0 the originator `p_0` holds message `M`. Each processor, once
//! it knows `M` and a range of processors it is responsible for, sends `M`
//! to a new processor every time unit, delegating sub-ranges chosen via
//! the generalized Fibonacci split (see [`mod@crate::cascade`]). Theorem 6:
//! the completion time is exactly `f_λ(n)`, and no algorithm can do
//! better.

use crate::cascade::{cascade, Orientation};
use postal_model::{GenFib, Latency};
use postal_sim::prelude::*;

/// The payload of a BCAST transfer: the delegated range size. The
/// receiver becomes responsible for processors `me .. me + range_size`
/// (itself included); the message content itself is abstract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcastPayload {
    /// Number of processors (including the receiver) in the delegated
    /// range.
    pub range_size: u64,
}

/// Per-processor BCAST program.
///
/// Ranges are interpreted *cyclically*: a processor responsible for a
/// range sends to `(me + offset) mod n`, so the same program broadcasts
/// optimally from any originator, not just `p_0` (the paper fixes the
/// originator at `p_0` without loss of generality; the rotation makes
/// that explicit).
pub struct BcastProgram {
    fib: GenFib,
    /// `Some(n)` on the originator; `None` elsewhere (they learn their
    /// range from the payload).
    root_range: Option<u64>,
}

impl BcastProgram {
    /// Creates the program for one processor. `root_range` is `Some(n)`
    /// for the originator and `None` for everyone else.
    pub fn new(latency: Latency, root_range: Option<u64>) -> BcastProgram {
        BcastProgram {
            fib: GenFib::new(latency),
            root_range,
        }
    }

    fn broadcast_range(&self, ctx: &mut dyn Context<BcastPayload>, range_size: u64) {
        let me = ctx.me().index() as u64;
        let n = ctx.n() as u64;
        for send in cascade(&self.fib, range_size, Orientation::Standard) {
            ctx.send(
                ProcId::from(((me + send.offset) % n) as usize),
                BcastPayload {
                    range_size: send.size,
                },
            );
        }
    }
}

impl Program<BcastPayload> for BcastProgram {
    fn on_start(&mut self, ctx: &mut dyn Context<BcastPayload>) {
        if let Some(n) = self.root_range {
            self.broadcast_range(ctx, n);
        }
    }

    fn on_receive(
        &mut self,
        ctx: &mut dyn Context<BcastPayload>,
        _from: ProcId,
        payload: BcastPayload,
    ) {
        self.broadcast_range(ctx, payload.range_size);
    }
}

/// Builds the `n` BCAST programs for MPS(n, λ).
pub fn bcast_programs(n: usize, latency: Latency) -> Vec<Box<dyn Program<BcastPayload>>> {
    programs_from(n, |id| {
        Box::new(BcastProgram::new(
            latency,
            (id == ProcId::ROOT).then_some(n as u64),
        ))
    })
}

/// Runs BCAST in a strict-mode simulation of MPS(n, λ) and returns the
/// report. The completion time equals `f_λ(n)` (Theorem 6) and the run is
/// free of port violations.
///
/// # Panics
/// Panics if the simulation fails (it cannot for valid `n`).
pub fn run_bcast(n: usize, latency: Latency) -> RunReport<BcastPayload> {
    let model = Uniform(latency);
    Simulation::new(n, &model)
        .run(bcast_programs(n, latency))
        .expect("BCAST simulation cannot diverge")
}

/// Builds BCAST programs with an arbitrary originator `root`; target
/// indices wrap around mod `n`.
///
/// # Panics
/// Panics if `root ≥ n`.
pub fn bcast_programs_from(
    root: usize,
    n: usize,
    latency: Latency,
) -> Vec<Box<dyn Program<BcastPayload>>> {
    assert!(root < n, "originator must be one of the n processors");
    programs_from(n, |id| {
        Box::new(BcastProgram::new(
            latency,
            (id.index() == root).then_some(n as u64),
        ))
    })
}

/// Runs BCAST from an arbitrary originator; completion is `f_λ(n)`
/// regardless of the root (the system is symmetric).
///
/// # Panics
/// Panics if `root ≥ n` or the simulation fails.
pub fn run_bcast_from(root: usize, n: usize, latency: Latency) -> RunReport<BcastPayload> {
    let model = Uniform(latency);
    Simulation::new(n, &model)
        .run(bcast_programs_from(root, n, latency))
        .expect("BCAST simulation cannot diverge")
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::{runtimes, Time};

    #[test]
    fn figure1_completion_time() {
        let report = run_bcast(14, Latency::from_ratio(5, 2));
        report.assert_model_clean();
        assert_eq!(report.completion, Time::new(15, 2));
        // n − 1 transfers: everyone hears the message exactly once.
        assert_eq!(report.messages(), 13);
    }

    #[test]
    fn every_processor_receives_exactly_once() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(3, 2),
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
        ] {
            for n in [1usize, 2, 3, 7, 14, 33, 100] {
                let report = run_bcast(n, lam);
                report.assert_model_clean();
                let first = report.trace.first_receipt_times(n);
                assert!(first[0].is_none(), "the originator never receives");
                for (i, t) in first.iter().enumerate().skip(1) {
                    assert!(t.is_some(), "λ={lam} n={n}: p{i} never got the message");
                }
                assert_eq!(report.messages(), n - 1);
            }
        }
    }

    #[test]
    fn completion_matches_theorem6_exactly() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(3, 2),
            Latency::from_int(2),
            Latency::from_ratio(5, 2),
            Latency::from_ratio(7, 3),
            Latency::from_int(5),
            Latency::from_int(10),
        ] {
            for n in 1..=128usize {
                let report = run_bcast(n, lam);
                report.assert_model_clean();
                assert_eq!(
                    report.completion,
                    runtimes::bcast_time(n as u128, lam),
                    "λ={lam} n={n}"
                );
            }
        }
    }

    #[test]
    fn telephone_model_is_binomial_broadcast() {
        // λ = 1 ⇒ completion ⌈log₂ n⌉.
        for (n, expected) in [
            (2usize, 1i128),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (1024, 10),
        ] {
            let report = run_bcast(n, Latency::TELEPHONE);
            assert_eq!(report.completion, Time::from_int(expected), "n={n}");
        }
    }

    #[test]
    fn no_processor_receives_twice() {
        let report = run_bcast(100, Latency::from_ratio(5, 2));
        for i in 1..100usize {
            assert_eq!(report.trace.received_by(ProcId::from(i)).count(), 1);
        }
    }

    #[test]
    fn arbitrary_root_is_equally_optimal() {
        let lam = Latency::from_ratio(5, 2);
        for n in [2usize, 5, 14, 33] {
            for root in [0usize, 1, n / 2, n - 1] {
                let report = run_bcast_from(root, n, lam);
                report.assert_model_clean();
                assert_eq!(
                    report.completion,
                    runtimes::bcast_time(n as u128, lam),
                    "root={root} n={n}"
                );
                // Everyone except the originator receives exactly once.
                let first = report.trace.first_receipt_times(n);
                for (i, t) in first.iter().enumerate() {
                    assert_eq!(t.is_some(), i != root, "root={root} p{i}");
                }
            }
        }
    }

    #[test]
    fn rotated_tree_is_an_exact_rotation() {
        // The root-r broadcast is the root-0 broadcast with all ids
        // shifted by r mod n.
        let lam = Latency::from_int(2);
        let n = 21usize;
        let r = 8usize;
        let base = run_bcast(n, lam);
        let rotated = run_bcast_from(r, n, lam);
        let mut base_edges: Vec<(u32, u32, postal_model::Time)> = base
            .trace
            .transfers()
            .iter()
            .map(|t| {
                (
                    (t.src.0 + r as u32) % n as u32,
                    (t.dst.0 + r as u32) % n as u32,
                    t.send_start,
                )
            })
            .collect();
        let mut rot_edges: Vec<(u32, u32, postal_model::Time)> = rotated
            .trace
            .transfers()
            .iter()
            .map(|t| (t.src.0, t.dst.0, t.send_start))
            .collect();
        base_edges.sort();
        rot_edges.sort();
        assert_eq!(base_edges, rot_edges);
    }

    #[test]
    fn single_processor_broadcast_is_empty() {
        let report = run_bcast(1, Latency::from_int(3));
        assert_eq!(report.completion, Time::ZERO);
        assert_eq!(report.messages(), 0);
    }
}
