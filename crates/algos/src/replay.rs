//! Schedule extraction and replay.
//!
//! [`crate::fib_tree::BroadcastTree::to_schedule`] (defined here as an
//! extension trait to keep `fib_tree` focused) turns the static
//! broadcast tree into an explicit [`Schedule`], which can be validated
//! mechanically against the postal model's rules and replayed on the
//! event-driven engine by [`ReplayProgram`] — a third, independent path
//! to the same timing, used to cross-check the tree builder, the
//! validator, and the engine against each other.

use postal_model::schedule::{Schedule, TimedSend};
use postal_model::Latency;
use postal_sim::prelude::*;

/// Extension: extract the explicit timed-send schedule of a broadcast
/// tree.
pub trait ToSchedule {
    /// The schedule equivalent of this structure.
    fn to_schedule(&self) -> Schedule;
}

impl ToSchedule for crate::fib_tree::BroadcastTree {
    fn to_schedule(&self) -> Schedule {
        let mut sends = Vec::new();
        collect(&self.root, self.latency, &mut sends);
        return Schedule::new(self.n as u32, self.latency, sends);

        fn collect(node: &crate::fib_tree::TreeNode, latency: Latency, out: &mut Vec<TimedSend>) {
            for child in &node.children {
                out.push(TimedSend {
                    src: node.proc.0,
                    dst: child.proc.0,
                    // The child became ready at send + λ.
                    send_start: child.ready - latency.as_time(),
                });
                collect(child, latency, out);
            }
        }
    }
}

/// Replays a fixed schedule on the engine using timer wake-ups: each
/// processor sends exactly what the schedule says, when it says.
///
/// The replay ignores received payloads (the schedule already encodes
/// causality); [`replay`] checks afterwards that the engine observed
/// exactly the scheduled transfers.
pub struct ReplayProgram {
    /// This processor's sends, ordered by time.
    my_sends: Vec<TimedSend>,
    next: usize,
}

impl Program<()> for ReplayProgram {
    fn on_start(&mut self, ctx: &mut dyn Context<()>) {
        if let Some(first) = self.my_sends.first() {
            ctx.wake_at(first.send_start);
        }
    }

    fn on_receive(&mut self, _ctx: &mut dyn Context<()>, _from: ProcId, _p: ()) {}

    fn on_wake(&mut self, ctx: &mut dyn Context<()>) {
        let s = self.my_sends[self.next];
        debug_assert_eq!(
            s.send_start,
            ctx.now(),
            "replay wake must fire exactly at the scheduled send time"
        );
        ctx.send(ProcId(s.dst), ());
        self.next += 1;
        if let Some(next) = self.my_sends.get(self.next) {
            ctx.wake_at(next.send_start);
        }
    }
}

/// Replays `schedule` on the discrete-event engine (strict mode) and
/// returns the report. The report's completion equals
/// `schedule.completion()` and is violation-free iff the schedule's
/// ports validate.
pub fn replay(schedule: &Schedule) -> RunReport<()> {
    let n = schedule.n() as usize;
    let mut per_proc: Vec<Vec<TimedSend>> = vec![Vec::new(); n];
    for s in schedule.sends() {
        per_proc[s.src as usize].push(*s);
    }
    let mut programs: Vec<Box<dyn Program<()>>> = Vec::with_capacity(n);
    for sends in per_proc {
        programs.push(Box::new(ReplayProgram {
            my_sends: sends,
            next: 0,
        }));
    }
    let model = Uniform(schedule.latency());
    Simulation::new(n, &model)
        .run(programs)
        .expect("schedule replay cannot diverge")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib_tree::BroadcastTree;
    use postal_model::{runtimes, Time};

    #[test]
    fn tree_schedule_validates_as_broadcast() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_ratio(7, 3),
            Latency::from_int(4),
        ] {
            for n in [1u64, 2, 5, 14, 60, 200] {
                let schedule = BroadcastTree::build(n, lam).to_schedule();
                postal_verify::assert_broadcast_clean(&schedule, &format!("tree λ={lam} n={n}"));
                assert_eq!(
                    schedule.completion(),
                    if n == 1 {
                        Time::ZERO
                    } else {
                        runtimes::bcast_time(n as u128, lam)
                    },
                    "λ={lam} n={n}"
                );
                assert_eq!(schedule.len(), n as usize - 1);
            }
        }
    }

    #[test]
    fn replay_reproduces_tree_timing_exactly() {
        let lam = Latency::from_ratio(5, 2);
        let schedule = BroadcastTree::build(33, lam).to_schedule();
        let report = replay(&schedule);
        report.assert_model_clean();
        assert_eq!(report.completion, schedule.completion());
        assert_eq!(report.messages(), schedule.len());
        // Transfer-by-transfer agreement.
        let mut scheduled: Vec<(u32, u32, Time)> = schedule
            .sends()
            .iter()
            .map(|s| (s.src, s.dst, s.send_start))
            .collect();
        let mut observed: Vec<(u32, u32, Time)> = report
            .trace
            .transfers()
            .iter()
            .map(|t| (t.src.0, t.dst.0, t.send_start))
            .collect();
        scheduled.sort();
        observed.sort();
        assert_eq!(scheduled, observed);
    }

    #[test]
    fn replay_flags_an_invalid_schedule() {
        // Two senders hitting one destination simultaneously: ports
        // invalid, and the strict engine flags it too.
        use postal_model::schedule::TimedSend;
        let lam = Latency::from_int(2);
        let bad = Schedule::new(
            3,
            lam,
            vec![
                TimedSend {
                    src: 0,
                    dst: 2,
                    send_start: Time::ZERO,
                },
                TimedSend {
                    src: 1,
                    dst: 2,
                    send_start: Time::ZERO,
                },
            ],
        );
        use postal_verify::{lint_schedule, LintCode, LintOptions};
        let diags = lint_schedule(&bad, &LintOptions::ports_only());
        assert!(diags.iter().any(|d| d.code == LintCode::InputWindowOverlap));
        let report = replay(&bad);
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn empty_schedule_replays_to_nothing() {
        let s = Schedule::new(1, Latency::TELEPHONE, vec![]);
        let report = replay(&s);
        assert_eq!(report.messages(), 0);
        assert_eq!(report.completion, Time::ZERO);
    }
}
