//! Algorithm PACK — broadcast `m` messages as one "long message"
//! (Section 4.2, Lemma 12).
//!
//! The originator packs the `m` messages and runs BCAST on the pack; each
//! recipient first receives all `m` atomic packets and only then forwards
//! the pack along its own cascade. To stay optimal, the cascade is
//! computed with the *normalized* latency `λ' = 1 + (λ−1)/m`: in units of
//! "one pack-send = m atomic sends" the system behaves exactly like
//! MPS(n, λ'), giving `T_PK = m·f_{λ'}(n)`.

use crate::cascade::{cascade, CascadeSend, Orientation};
use crate::multi::{run_multi, MultiPacket, MultiReport};
use postal_model::{runtimes, GenFib, Latency};
use postal_sim::prelude::*;

/// Per-processor PACK program.
pub struct PackProgram {
    /// Fibonacci evaluator at the normalized latency λ'.
    fib: GenFib,
    m: u32,
    /// `Some(n)` on the originator.
    root_range: Option<u64>,
    /// Packets of the pack received so far.
    received: u32,
    /// Range this processor is responsible for (learned from packet 1).
    range_size: Option<u64>,
}

impl PackProgram {
    /// Creates the program for one processor; `root_range` is `Some(n)`
    /// on `p_0`.
    pub fn new(latency: Latency, m: u32, root_range: Option<u64>) -> PackProgram {
        assert!(m >= 1);
        PackProgram {
            fib: GenFib::new(runtimes::pack_normalized_latency(m as u64, latency)),
            m,
            root_range,
            received: 0,
            range_size: None,
        }
    }

    /// Sends the whole pack along the cascade: for each delegate, all `m`
    /// packets back-to-back.
    fn forward_pack(&self, ctx: &mut dyn Context<MultiPacket>, range_size: u64) {
        let me = ctx.me().index() as u64;
        let sends: Vec<CascadeSend> = cascade(&self.fib, range_size, Orientation::Standard);
        for send in sends {
            for msg in 1..=self.m {
                ctx.send(
                    ProcId::from((me + send.offset) as usize),
                    MultiPacket {
                        msg,
                        range_size: send.size,
                    },
                );
            }
        }
    }
}

impl Program<MultiPacket> for PackProgram {
    fn on_start(&mut self, ctx: &mut dyn Context<MultiPacket>) {
        if let Some(n) = self.root_range {
            self.forward_pack(ctx, n);
        }
    }

    fn on_receive(
        &mut self,
        ctx: &mut dyn Context<MultiPacket>,
        _from: ProcId,
        packet: MultiPacket,
    ) {
        self.received += 1;
        self.range_size.get_or_insert(packet.range_size);
        debug_assert_eq!(
            self.range_size,
            Some(packet.range_size),
            "all packets of a pack delegate the same range"
        );
        if self.received == self.m {
            // Pack complete: forward it (PACK never forwards early).
            let range = self.range_size.expect("range recorded with packet 1");
            self.forward_pack(ctx, range);
        }
    }
}

/// Builds the PACK programs for broadcasting `m` messages in MPS(n, λ).
pub fn pack_programs(n: usize, m: u32, latency: Latency) -> Vec<Box<dyn Program<MultiPacket>>> {
    programs_from(n, |id| {
        Box::new(PackProgram::new(
            latency,
            m,
            (id == ProcId::ROOT).then_some(n as u64),
        ))
    })
}

/// Runs PACK and returns the verified-ready report.
pub fn run_pack(n: usize, m: u32, latency: Latency) -> MultiReport {
    run_multi(n, m, latency, pack_programs(n, m, latency))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_lemma12_exactly() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(3, 2),
            Latency::from_int(2),
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
            Latency::from_int(9),
        ] {
            for n in [2usize, 3, 5, 14, 40] {
                for m in [1u32, 2, 3, 7] {
                    let r = run_pack(n, m, lam);
                    r.verify().unwrap();
                    assert_eq!(
                        r.completion(),
                        runtimes::pack_time(n as u128, m as u64, lam),
                        "λ={lam} n={n} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn one_message_is_bcast() {
        let lam = Latency::from_ratio(5, 2);
        let r = run_pack(14, 1, lam);
        r.verify().unwrap();
        assert_eq!(r.completion(), runtimes::bcast_time(14, lam));
    }

    #[test]
    fn pack_near_optimal_for_small_m_large_lambda() {
        // Section 4.2's claim: for small m and large λ, PACK approaches the
        // Lemma 8 lower bound within a factor ~2 (and beats REPEAT).
        let lam = Latency::from_int(16);
        let (n, m) = (64usize, 2u32);
        let pack = run_pack(n, m, lam).completion();
        let repeat = crate::repeat::run_repeat(n, m, lam).completion();
        let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam);
        assert!(pack < repeat);
        assert!(pack.to_f64() / lb.to_f64() < 2.5);
    }

    #[test]
    fn packets_arrive_consecutively() {
        // Every non-root processor receives its m packets in m consecutive
        // time units (the pack is atomic end-to-end).
        let r = run_pack(14, 3, Latency::from_ratio(5, 2));
        r.verify().unwrap();
        for i in 1..14usize {
            let times: Vec<postal_model::Time> = r
                .report
                .trace
                .received_by(ProcId::from(i))
                .map(|t| t.recv_finish)
                .collect();
            assert_eq!(times.len(), 3);
            for w in times.windows(2) {
                assert_eq!(w[1] - w[0], postal_model::Time::ONE, "p{i}");
            }
        }
    }

    #[test]
    fn singleton_system() {
        let r = run_pack(1, 4, Latency::from_int(3));
        r.verify().unwrap();
        assert_eq!(r.completion(), postal_model::Time::ZERO);
    }
}
