//! Property tests for the `i64` fixed-point time fast path.
//!
//! The lint engine's hot comparisons run on [`FastTime`] (half-units in
//! an `i64`) whenever λ and every send start sit on the half-integer
//! lattice, with a transparent exact-`Ratio` fallback otherwise. These
//! properties pin the contract:
//!
//! * on random half-integer-λ schedules, the fast path agrees with the
//!   exact path on **every** comparison, every index predicate, and
//!   every emitted diagnostic (byte for byte);
//! * arithmetic on random lattice values matches [`Time`] exactly,
//!   through `Display`;
//! * overflow-adjacent values force the exact fallback rather than
//!   wrapping, and results remain exact.

use postal_model::lint::reference::lint_schedule_reference;
use postal_model::lint::{lint_schedule, LintOptions, ScheduleIndex};
use postal_model::schedule::{Schedule, TimedSend};
use postal_model::time::FIXED_LIMIT;
use postal_model::{FastTime, Latency, Time};
use proptest::prelude::*;

/// Random half-integer λ: k/2 with 2 ≤ k ≤ 16 (so 1 ≤ λ ≤ 8).
fn arb_half_lambda() -> impl Strategy<Value = Latency> {
    (2i128..=16).prop_map(|k| Latency::from_ratio(k, 2))
}

/// Random half-integer-lattice schedules over up to 8 processors.
fn arb_half_schedule() -> impl Strategy<Value = Schedule> {
    (
        arb_half_lambda(),
        2u32..=8,
        collection::vec((0u32..8, 0u32..8, 0i128..=48), 0..24),
    )
        .prop_map(|(lam, n, raw)| {
            let sends = raw
                .into_iter()
                .map(|(src, dst, half)| TimedSend {
                    src: src % n,
                    dst: dst % n,
                    send_start: Time::new(half, 2),
                })
                .collect();
            Schedule::new(n, lam, sends)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fast_lane_predicates_agree_with_exact_arithmetic(s in arb_half_schedule()) {
        let idx = ScheduleIndex::build(&s);
        prop_assert!(idx.has_fast_lane(), "half-integer schedule must take the fast lane");
        let arena = idx.arena();
        for i in 0..arena.len() {
            for j in 0..arena.len() {
                prop_assert_eq!(
                    idx.lt_one_apart(i, j),
                    arena[j].send_start < arena[i].send_start + Time::ONE,
                    "lt_one_apart({}, {})", i, j
                );
            }
            let exact_informed = match idx.first_receipt(arena[i].src) {
                Some(t) => t <= arena[i].send_start,
                None => false,
            };
            prop_assert_eq!(idx.sender_informed(i), exact_informed, "sender_informed({})", i);
        }
    }

    #[test]
    fn diagnostics_agree_byte_for_byte_on_the_lattice(s in arb_half_schedule(), m in 1u64..=4) {
        for opts in [
            LintOptions::broadcast_of(m),
            LintOptions::ports_only(),
        ] {
            let fast = lint_schedule(&s, &opts);
            let slow = lint_schedule_reference(&s, &opts);
            prop_assert_eq!(&fast, &slow);
            for (a, b) in fast.iter().zip(&slow) {
                prop_assert_eq!(&a.message, &b.message);
                prop_assert_eq!(a.to_string(), b.to_string());
            }
        }
    }

    #[test]
    fn fast_time_arithmetic_matches_time(a in -1000i64..=1000, b in -1000i64..=1000) {
        let (ta, tb) = (Time::from_half_units(a), Time::from_half_units(b));
        let (fa, fb) = (FastTime::from_time(ta), FastTime::from_time(tb));
        prop_assert!(fa.is_fixed() && fb.is_fixed());
        prop_assert_eq!((fa + fb).to_time(), ta + tb);
        prop_assert_eq!((fa - fb).to_time(), ta - tb);
        prop_assert_eq!(fa.cmp(&fb), ta.cmp(&tb));
        prop_assert_eq!(fa.max(fb).to_time(), ta.max(tb));
        prop_assert_eq!(fa.min(fb).to_time(), ta.min(tb));
        prop_assert_eq!(fa.to_string(), ta.to_string());
    }

    #[test]
    fn overflow_adjacent_values_fall_back_not_wrap(delta in 0i64..=8, step in 1i64..=1000) {
        // h sits within `step` of the fixed-point ceiling: one more add
        // must promote to the exact representation, not wrap.
        let h = FIXED_LIMIT - delta;
        let big = FastTime::from_time(Time::from_half_units(h));
        let inc = FastTime::from_time(Time::from_half_units(step));
        prop_assert!(big.is_fixed());
        let sum = big + inc;
        prop_assert_eq!(sum.is_fixed(), h + step <= FIXED_LIMIT);
        prop_assert_eq!(sum.to_time(), Time::from_half_units(h) + Time::from_half_units(step));
        // Subtracting back demotes to fixed again, exactly.
        let back = sum - inc;
        prop_assert!(back.is_fixed());
        prop_assert_eq!(back.to_time(), Time::from_half_units(h));
        prop_assert_eq!(back, big);
    }

    #[test]
    fn off_lattice_schedules_skip_the_lane_but_lint_identically(
        s in arb_half_schedule(), third in 1i128..=5
    ) {
        // Push one send off the half-integer lattice (numerator chosen
        // ≢ 0 mod 3 so the fraction never reduces): the lane must
        // disengage and the exact path must still match the reference.
        let mut sends: Vec<TimedSend> = s.sends().to_vec();
        sends.push(TimedSend { src: 0, dst: 1, send_start: Time::new(3 * third + 1, 3) });
        let off = Schedule::new(s.n(), s.latency(), sends);
        prop_assert!(!ScheduleIndex::build(&off).has_fast_lane());
        let opts = LintOptions::default();
        prop_assert_eq!(
            lint_schedule(&off, &opts),
            lint_schedule_reference(&off, &opts)
        );
    }

    #[test]
    fn oversized_times_disable_the_lane_entirely(s in arb_half_schedule()) {
        // One overflow-adjacent start disables the all-or-nothing lane;
        // diagnostics still match the reference through the exact path.
        let mut sends: Vec<TimedSend> = s.sends().to_vec();
        sends.push(TimedSend {
            src: 0,
            dst: 1,
            send_start: Time::from_half_units(FIXED_LIMIT) + Time::ONE,
        });
        let huge = Schedule::new(s.n(), s.latency(), sends);
        prop_assert!(!ScheduleIndex::build(&huge).has_fast_lane());
        let opts = LintOptions::default();
        prop_assert_eq!(
            lint_schedule(&huge, &opts),
            lint_schedule_reference(&huge, &opts)
        );
    }
}
