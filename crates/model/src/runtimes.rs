//! Closed-form running times for every broadcasting algorithm in the paper,
//! plus the multi-message lower bounds.
//!
//! All results are *exact* rational times, so the simulator crates can
//! assert equality (not approximation) against them:
//!
//! * Theorem 6 — BCAST: `T_B(n, λ) = f_λ(n)`.
//! * Lemma 8 / Corollary 9 — lower bound `T ≥ (m−1) + f_λ(n)`.
//! * Lemma 10 — REPEAT: `T_R = m·f_λ(n) − (m−1)(λ−1)`.
//! * Lemma 12 — PACK: `T_PK = m·f_{1+(λ−1)/m}(n)`.
//! * Lemma 14 — PIPELINE-1 (m ≤ λ): `T_PL1 = m·f_{λ/m}(n) + (m−1)`.
//! * Lemma 16 — PIPELINE-2 (m ≥ λ): `T_PL2 = λ·f_{m/λ}(n) + (λ−1)`.
//! * Lemma 18 — DTREE(d): `T_DT ≤ d(m−1) + (d−1+λ)·⌈log_d n⌉` (an upper
//!   bound; exact times come from simulation). The degenerate degrees have
//!   exact closed forms: `d = 1` (LINE) `(m−1) + (n−1)λ` and `d = n−1`
//!   (STAR) `m(n−1) − 1 + λ`.

use crate::fib::GenFib;
use crate::latency::{Latency, LatencyError};
use crate::ratio::Ratio;
use crate::time::Time;

/// Theorem 6: the optimal single-message broadcast time `T_B(n, λ) = f_λ(n)`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn bcast_time(n: u128, latency: Latency) -> Time {
    GenFib::new(latency).index(n)
}

/// Lemma 8: any algorithm broadcasting `m` messages in MPS(n, λ) needs at
/// least `(m−1) + f_λ(n)` time.
///
/// # Panics
/// Panics if `n == 0` or `m == 0`.
pub fn multi_lower_bound(n: u128, m: u64, latency: Latency) -> Time {
    assert!(m >= 1, "at least one message must be broadcast");
    bcast_time(n, latency) + Time::from_int(m as i128 - 1)
}

/// Corollary 9(1): `T ≥ m − 1 + λ·log n / log(⌈λ⌉+1)` (weaker than
/// [`multi_lower_bound`] but in closed form).
pub fn multi_lower_bound_log(n: u128, m: u64, latency: Latency) -> f64 {
    (m as f64 - 1.0) + crate::bounds::index_lower_bound(n, latency)
}

/// Lemma 10: REPEAT broadcasts `m` messages by `m` overlapped iterations of
/// BCAST: `T_R = m·f_λ(n) − (m−1)(λ−1)`.
///
/// # Panics
/// Panics if `n == 0` or `m == 0`.
pub fn repeat_time(n: u128, m: u64, latency: Latency) -> Time {
    assert!(m >= 1, "at least one message must be broadcast");
    let f = bcast_time(n, latency);
    if n == 1 {
        // Nothing to send; every iteration is empty.
        return Time::ZERO;
    }
    let lam_minus_1 = latency.value() - Ratio::ONE;
    f.mul_int(m as i128) - Time(lam_minus_1.mul_int(m as i128 - 1))
}

/// The normalized latency used by PACK: `λ' = 1 + (λ−1)/m` (the paper's
/// renormalization of a length-`m` long message).
pub fn pack_normalized_latency(m: u64, latency: Latency) -> Latency {
    assert!(m >= 1);
    let lam = latency.value();
    let lp = Ratio::ONE + (lam - Ratio::ONE) / Ratio::from_int(m as i128);
    Latency::new(lp).expect("1 + (λ−1)/m ≥ 1 always holds for λ ≥ 1")
}

/// Lemma 12: PACK treats the `m` messages as one long message:
/// `T_PK = m·f_{1+(λ−1)/m}(n)`.
///
/// # Panics
/// Panics if `n == 0` or `m == 0`.
pub fn pack_time(n: u128, m: u64, latency: Latency) -> Time {
    let lp = pack_normalized_latency(m, latency);
    GenFib::new(lp).index(n).mul_int(m as i128)
}

/// Which PIPELINE regime applies (Section 4.2): PIPELINE-1 when `m ≤ λ`
/// (stream shorter than the latency), PIPELINE-2 when `m ≥ λ`. At `m = λ`
/// the two formulas agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineRegime {
    /// `m ≤ λ`: the stream-sender frees up before its recipient can forward.
    Short,
    /// `m ≥ λ`: the recipient can forward before the sender finishes.
    Long,
}

/// Determines the PIPELINE regime for a given `m` and λ.
pub fn pipeline_regime(m: u64, latency: Latency) -> PipelineRegime {
    if Ratio::from_int(m as i128) <= latency.value() {
        PipelineRegime::Short
    } else {
        PipelineRegime::Long
    }
}

/// Lemma 14: PIPELINE-1 (`m ≤ λ`): `T_PL1 = m·f_{λ/m}(n) + (m−1)`.
///
/// # Errors
/// Returns an error if `m > λ` (the normalized latency λ/m would fall
/// below 1; use [`pipeline2_time`] or [`pipeline_time`]).
///
/// # Panics
/// Panics if `n == 0` or `m == 0`.
pub fn pipeline1_time(n: u128, m: u64, latency: Latency) -> Result<Time, LatencyError> {
    assert!(m >= 1, "at least one message must be broadcast");
    let lp = Latency::new(latency.value() / Ratio::from_int(m as i128))?;
    Ok(GenFib::new(lp).index(n).mul_int(m as i128) + Time::from_int(m as i128 - 1))
}

/// Lemma 16: PIPELINE-2 (`m ≥ λ`): `T_PL2 = λ·f_{m/λ}(n) + (λ−1)`.
///
/// # Errors
/// Returns an error if `m < λ` (the normalized latency m/λ would fall
/// below 1; use [`pipeline1_time`] or [`pipeline_time`]).
///
/// # Panics
/// Panics if `n == 0` or `m == 0`.
pub fn pipeline2_time(n: u128, m: u64, latency: Latency) -> Result<Time, LatencyError> {
    assert!(m >= 1, "at least one message must be broadcast");
    let lam = latency.value();
    let lp = Latency::new(Ratio::from_int(m as i128) / lam)?;
    let f = GenFib::new(lp).index(n);
    Ok(Time(f.as_ratio() * lam) + Time(lam - Ratio::ONE))
}

/// PIPELINE with the regime chosen automatically (Section 4.2).
///
/// # Panics
/// Panics if `n == 0` or `m == 0`.
pub fn pipeline_time(n: u128, m: u64, latency: Latency) -> Time {
    match pipeline_regime(m, latency) {
        PipelineRegime::Short => pipeline1_time(n, m, latency).expect("m ≤ λ guarantees λ/m ≥ 1"),
        PipelineRegime::Long => pipeline2_time(n, m, latency).expect("m ≥ λ guarantees m/λ ≥ 1"),
    }
}

/// `⌈log_d n⌉` computed exactly with integer arithmetic.
///
/// # Panics
/// Panics if `d < 2` or `n == 0`.
pub fn ceil_log(n: u128, d: u128) -> u32 {
    assert!(d >= 2, "logarithm base must be at least 2");
    assert!(n >= 1, "logarithm argument must be at least 1");
    let mut power: u128 = 1;
    let mut e = 0u32;
    while power < n {
        power = power.saturating_mul(d);
        e += 1;
    }
    e
}

/// Lemma 18: the DTREE(d) upper bound
/// `T_DT ≤ d(m−1) + (d−1+λ)·⌈log_d n⌉` for `2 ≤ d ≤ n−1`.
///
/// For `d = 1` (LINE) the bound formula degenerates; the exact LINE time
/// `(m−1) + (n−1)λ` is returned instead (see [`line_time`]).
///
/// # Panics
/// Panics if `n == 0`, `m == 0`, or `d == 0`.
pub fn dtree_time_bound(n: u128, m: u64, latency: Latency, d: u128) -> Time {
    assert!(m >= 1 && d >= 1 && n >= 1);
    if n == 1 {
        return Time::ZERO;
    }
    if d == 1 {
        return line_time(n, m, latency);
    }
    let height = ceil_log(n, d) as i128;
    let per_level = Time::from_int(d as i128 - 1) + latency.as_time();
    Time::from_int(d as i128 * (m as i128 - 1)) + per_level.mul_int(height)
}

/// Exact running time of DTREE(1), the LINE algorithm: a pipeline chain
/// where node `i` receives message `M_m` at `(m−1) + i·λ`, giving
/// `T_LINE = (m−1) + (n−1)λ`.
///
/// # Panics
/// Panics if `n == 0` or `m == 0`.
pub fn line_time(n: u128, m: u64, latency: Latency) -> Time {
    assert!(m >= 1 && n >= 1);
    if n == 1 {
        return Time::ZERO;
    }
    Time::from_int(m as i128 - 1) + Time(latency.value().mul_int(n as i128 - 1))
}

/// Exact running time of DTREE(n−1), the STAR algorithm: the root sends
/// each message to all `n−1` children in turn, so the last send starts at
/// `m(n−1) − 1` and `T_STAR = m(n−1) − 1 + λ`.
///
/// # Panics
/// Panics if `n == 0` or `m == 0`.
pub fn star_time(n: u128, m: u64, latency: Latency) -> Time {
    assert!(m >= 1 && n >= 1);
    if n == 1 {
        return Time::ZERO;
    }
    Time::from_int(m as i128 * (n as i128 - 1) - 1) + latency.as_time()
}

/// The paper's latency-matched degree choice for DTREE: `d = ⌈λ⌉ + 1`
/// (Section 4.3), clamped to the valid range `[1, n−1]`.
pub fn latency_matched_degree(n: u128, latency: Latency) -> u128 {
    let d = (latency.ceil() + 1) as u128;
    d.min(n.saturating_sub(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::ratio;

    const L52: fn() -> Latency = || Latency::from_ratio(5, 2);

    #[test]
    fn bcast_matches_figure1() {
        assert_eq!(bcast_time(14, L52()), Time::new(15, 2));
        assert_eq!(bcast_time(1, L52()), Time::ZERO);
    }

    #[test]
    fn repeat_reduces_to_bcast_for_one_message() {
        for lam in [Latency::TELEPHONE, L52(), Latency::from_int(4)] {
            for n in [1u128, 2, 5, 14, 100] {
                assert_eq!(repeat_time(n, 1, lam), bcast_time(n, lam));
            }
        }
    }

    #[test]
    fn repeat_closed_form() {
        // T_R = m·f_λ(n) − (m−1)(λ−1) with f_{5/2}(14) = 15/2, m = 4:
        // 4·15/2 − 3·3/2 = 30 − 9/2 = 51/2.
        assert_eq!(repeat_time(14, 4, L52()), Time::new(51, 2));
        // Telephone model: λ−1 = 0, so REPEAT is exactly m·f.
        assert_eq!(repeat_time(16, 3, Latency::TELEPHONE), Time::from_int(12));
    }

    #[test]
    fn pack_normalization() {
        // λ' = 1 + (λ−1)/m: for λ = 5/2, m = 3, λ' = 1 + (3/2)/3 = 3/2.
        assert_eq!(pack_normalized_latency(3, L52()), Latency::from_ratio(3, 2));
        // m = 1 leaves λ unchanged, and PACK degenerates to BCAST.
        assert_eq!(pack_normalized_latency(1, L52()), L52());
        assert_eq!(pack_time(14, 1, L52()), bcast_time(14, L52()));
    }

    #[test]
    fn pipeline_regime_selection() {
        assert_eq!(pipeline_regime(2, L52()), PipelineRegime::Short);
        assert_eq!(pipeline_regime(3, L52()), PipelineRegime::Long);
        // m = λ exactly: Short by convention, and the formulas agree.
        let lam = Latency::from_int(4);
        assert_eq!(pipeline_regime(4, lam), PipelineRegime::Short);
        assert_eq!(
            pipeline1_time(20, 4, lam).unwrap(),
            pipeline2_time(20, 4, lam).unwrap()
        );
    }

    #[test]
    fn pipeline_reduces_to_bcast_for_one_message() {
        for lam in [Latency::TELEPHONE, L52(), Latency::from_int(4)] {
            for n in [1u128, 2, 5, 14, 100] {
                assert_eq!(pipeline_time(n, 1, lam), bcast_time(n, lam), "n={n}");
            }
        }
    }

    #[test]
    fn pipeline_regime_errors() {
        assert!(pipeline1_time(10, 5, Latency::from_int(2)).is_err());
        assert!(pipeline2_time(10, 1, Latency::from_int(2)).is_err());
    }

    #[test]
    fn pipeline2_closed_form_example() {
        // λ = 2, m = 4: λ' = 2, T = 2·f_2(n) + 1.
        let lam = Latency::from_int(2);
        let f = GenFib::new(Latency::from_int(2)).index(10); // Fibonacci: f_2(10)=6
        assert_eq!(f, Time::from_int(6));
        assert_eq!(pipeline2_time(10, 4, lam).unwrap(), Time::from_int(13));
        assert_eq!(pipeline_time(10, 4, lam), Time::from_int(13));
    }

    #[test]
    fn ceil_log_exact() {
        assert_eq!(ceil_log(1, 2), 0);
        assert_eq!(ceil_log(2, 2), 1);
        assert_eq!(ceil_log(3, 2), 2);
        assert_eq!(ceil_log(8, 2), 3);
        assert_eq!(ceil_log(9, 2), 4);
        assert_eq!(ceil_log(27, 3), 3);
        assert_eq!(ceil_log(28, 3), 4);
        assert_eq!(ceil_log(1_000_000, 10), 6);
    }

    #[test]
    fn star_below_lemma18_bound_at_max_degree() {
        // The exact star time is bounded by Lemma 18 with d = n−1; the
        // bound's ⌈log_{n−1} n⌉ = 2 for n ≥ 3 makes it strict there, while
        // n = 2 is tight.
        for lam in [Latency::TELEPHONE, L52(), Latency::from_int(3)] {
            for n in [2u128, 3, 5, 10] {
                for m in [1u64, 2, 5] {
                    let bound = dtree_time_bound(n, m, lam, n - 1);
                    let exact = star_time(n, m, lam);
                    assert!(exact <= bound, "n={n} m={m} λ={lam}");
                    if n == 2 {
                        assert_eq!(exact, bound);
                    }
                }
            }
        }
    }

    #[test]
    fn line_time_closed_form() {
        assert_eq!(
            line_time(5, 3, L52()),
            Time::from_int(2) + Time::from_int(10)
        );
        assert_eq!(line_time(1, 3, L52()), Time::ZERO);
        assert_eq!(dtree_time_bound(5, 3, L52(), 1), line_time(5, 3, L52()));
    }

    #[test]
    fn lower_bound_below_all_algorithms() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(3, 2),
            L52(),
            Latency::from_int(4),
        ] {
            for n in [2u128, 5, 14, 64, 200] {
                for m in [1u64, 2, 3, 8, 20] {
                    let lb = multi_lower_bound(n, m, lam);
                    for (name, t) in [
                        ("repeat", repeat_time(n, m, lam)),
                        ("pack", pack_time(n, m, lam)),
                        ("pipeline", pipeline_time(n, m, lam)),
                        ("line", line_time(n, m, lam)),
                        ("star", star_time(n, m, lam)),
                    ] {
                        assert!(t >= lb, "{name}: T={t} < lb={lb} at n={n} m={m} λ={lam}");
                    }
                    // And the log-form Corollary 9 bound is weaker still.
                    assert!(multi_lower_bound_log(n, m, lam) <= lb.to_f64() + 1e-9);
                }
            }
        }
    }

    #[test]
    fn latency_matched_degree_clamps() {
        assert_eq!(latency_matched_degree(100, L52()), 4); // ⌈5/2⌉+1 = 4
        assert_eq!(latency_matched_degree(3, Latency::from_int(10)), 2); // clamp to n−1
        assert_eq!(latency_matched_degree(2, Latency::from_int(10)), 1);
        assert_eq!(latency_matched_degree(100, Latency::TELEPHONE), 2);
    }

    #[test]
    fn single_processor_is_instant() {
        let lam = L52();
        assert_eq!(repeat_time(1, 5, lam), Time::ZERO);
        assert_eq!(star_time(1, 5, lam), Time::ZERO);
        assert_eq!(line_time(1, 5, lam), Time::ZERO);
        assert_eq!(dtree_time_bound(1, 5, lam, 3), Time::ZERO);
    }

    #[test]
    fn pack_beats_repeat_for_large_latency_small_m() {
        // Section 4.2: PACK is near-optimal for small m, large λ.
        let lam = Latency::from_int(20);
        let (n, m) = (64u128, 3u64);
        assert!(pack_time(n, m, lam) < repeat_time(n, m, lam));
    }

    #[test]
    fn pipeline_beats_pack_for_large_m() {
        let lam = Latency::from_int(4);
        let (n, m) = (64u128, 64u64);
        assert!(pipeline_time(n, m, lam) < pack_time(n, m, lam));
    }

    #[test]
    fn repeat_time_uses_exact_rational_lambda() {
        // Non-integer λ exercises the (m−1)(λ−1) term's rational path.
        let lam = Latency::from_ratio(7, 3);
        let f = GenFib::new(lam).index(10);
        let expected = f.mul_int(3) - Time(ratio(4, 3).mul_int(2));
        assert_eq!(repeat_time(10, 3, lam), expected);
    }

    use crate::fib::GenFib;
}
