//! The schedule lint engine: every validity and quality rule the paper
//! states about postal-model schedules, as machine-checked diagnostics
//! with stable codes.
//!
//! The engine reports **all** findings, each tagged with a stable code,
//! a severity, the offending [`TimedSend`]s, and the paper rule it
//! violates:
//!
//! | code | severity | rule |
//! |---|---|---|
//! | `P0001` | error | output-port overlap (two sends < 1 unit apart) |
//! | `P0002` | error | input-window overlap (receive windows `[s+λ−1, s+λ]` collide) |
//! | `P0003` | error | causality violation (sends before fully receiving) |
//! | `P0004` | error | malformed send (self-send, index ≥ n, negative time) |
//! | `P0005` | error | uninformed processor (broadcast never reaches it) |
//! | `P0006` | warn  | idle-port waste (an informed port idles while someone is uninformed) |
//! | `P0007` | warn/info | optimality gap against `f_λ(n)` / the Lemma 8 bound |
//! | `P0008` | error | deadlock (an execution ends with messages still in flight) |
//! | `P0009` | error | lost flight (a send with no matching receive) |
//! | `P0010` | error | nondeterministic completion (interleaving-dependent running time) |
//! | `P0011` | error | λ-window violation (a receive lands outside `[s+λ−1, s+λ]`) |
//! | `P0012` | error | dead send (a send whose receiver provably never reads it) |
//! | `P0013` | error | unreachable processor (no abstract path from the originator) |
//! | `P0014` | warn/error | symbolic optimality gap over a λ-range (vs the family envelope / Lemma 8) |
//! | `P0015` | error | DTREE degree-bound violation (fan-out or the Lemma 18 envelope) |
//! | `P0016` | error | unbounded wait (a receive with no abstractly-reachable matching send) |
//! | `P0017` | error | non-edge send (a transfer crosses a pair that is not an edge of the topology) |
//! | `P0018` | warn/error | topology optimality gap against the BFS bound `(m−1) + λ·ecc(originator)` |
//! | `P0019` | error | topology partition (a processor unreachable from the originator in the graph) |
//!
//! `P0001`–`P0007` are produced by [`lint_schedule`] over a static
//! schedule. `P0008`–`P0011` are whole-state-space properties — they
//! quantify over *every* admissible interleaving, not one observed
//! schedule — and are produced by the `postal-mc` model checker, which
//! reuses this module's stable codes, [`Diagnostic`] shape, and the
//! `postal-verify` renderer. `P0012`–`P0016` are *symbolic* properties
//! over a whole λ-interval, produced by the `postal-abs` abstract
//! interpreter without running a simulation; each carries a witness
//! λ sub-interval in [`Diagnostic::witness`]. `P0017`–`P0019` are
//! *topology-grounded* properties checked against a sparse
//! [`crate::topology::Topology`] oracle by [`lint_schedule_with_topology`]
//! (and the streaming equivalent); on the complete graph they are
//! vacuous by construction, so complete-graph output is byte-identical
//! to the plain linter.
//!
//! The engine is the single source of truth for schedule validity: the
//! `postal-verify` crate layers trace analysis, race detection, and
//! rendering on top, and `postal-mc` layers interleaving exploration on
//! top of both.
//!
//! ## Architecture
//!
//! [`lint_schedule`] is a thin wrapper over the streaming, single-sweep
//! [`PassManager`]: the schedule's sends are bucketed **once** into a
//! shared [`ScheduleIndex`] (CSR-style per-src/per-dst slices over a
//! single well-formed-send arena, plus first-receipt times and an `i64`
//! fixed-point fast lane for half-integer λ), and every `P0001`–`P0007`
//! check is a [`LintPass`] driven over that index in one sweep — no
//! per-check `HashMap` rebuilds or cloned send vectors. The seed
//! engine is retained verbatim as
//! [`reference::lint_schedule_reference`]; the differential test suite
//! asserts the two produce byte-identical diagnostics over the full
//! acceptance grid.
//!
//! The [`stream`] module carries the suite one step further: a
//! [`StreamingLint`] engine runs the same `P0001`–`P0007` checks over a
//! send *stream* — fed live by the simulator or by a JSONL log — with
//! O(n) memory and no materialized schedule at all, again pinned
//! byte-identical to the batch output. See the [`stream`] module docs
//! for the watermark/finalization protocol.

use crate::ratio::Interval;
use crate::schedule::{Schedule, TimedSend};
use crate::time::Time;
use std::fmt;

pub mod index;
pub mod passes;
pub mod reference;
pub mod stream;

pub use index::ScheduleIndex;
pub use passes::{LintPass, PassContext, PassManager, PassStage};
pub use stream::{
    lint_schedule_streaming, lint_schedule_streaming_with_topology, StreamContext, StreamEvent,
    StreamIndex, StreamingLint, StreamingLintPass,
};

/// Stable diagnostic codes, one per paper rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `P0001` — two sends from one processor start less than 1 unit
    /// apart, violating the single-output-port rule.
    OutputPortOverlap,
    /// `P0002` — two receive windows `[s+λ−1, s+λ]` at one processor
    /// overlap, violating the single-input-port rule.
    InputWindowOverlap,
    /// `P0003` — a non-originator sends the message before the time it
    /// has fully received it.
    CausalityViolation,
    /// `P0004` — a structurally malformed send: self-send, endpoint
    /// index ≥ n, or negative start time.
    MalformedSend,
    /// `P0005` — a broadcast schedule never informs some processor.
    UninformedProcessor,
    /// `P0006` — an informed processor's output port sits idle for a
    /// full unit while some processor is still uninformed and would be
    /// informed strictly earlier by a send in that gap.
    IdlePortWaste,
    /// `P0007` — the schedule's completion time is above the optimal
    /// `f_λ(n)` (single message) or the Lemma 8 lower bound
    /// `(m−1) + f_λ(n)` (multiple messages) — or *below* it, which is
    /// impossible for a valid schedule and reported as an error.
    OptimalityGap,
    /// `P0008` — deadlock: an admissible execution reaches a state where
    /// messages remain in flight but no event can ever fire (e.g. a
    /// stalled input port, or a worker thread that exits early on the
    /// threaded substrate). Emitted by the `postal-mc` model checker.
    Deadlock,
    /// `P0009` — lost flight: an execution contains a send event with no
    /// matching receive — the postal model loses no messages, so the
    /// run under analysis dropped one. Emitted by `postal-mc`.
    LostFlight,
    /// `P0010` — nondeterministic completion: the running time differs
    /// across admissible interleavings (or from the reference
    /// discrete-event run), so the algorithm's timing depends on how
    /// concurrent receives land within their λ-windows. Emitted by
    /// `postal-mc`.
    NondeterministicCompletion,
    /// `P0011` — λ-window violation: a receive completes before
    /// `send + λ` or starts before its arrival instant `send + λ − 1`,
    /// breaking the fixed-latency discipline. Emitted by `postal-mc`.
    LatencyWindowViolation,
    /// `P0012` — dead send: the abstract interpretation proves a send is
    /// issued but its receiver never reads it anywhere in the λ-range
    /// under analysis. Emitted by the `postal-abs` abstract interpreter.
    DeadSend,
    /// `P0013` — unreachable processor: no abstract message path from
    /// the originator reaches the processor for any λ in the range, so
    /// it can never participate in the broadcast. Emitted by
    /// `postal-abs`.
    UnreachableProcessor,
    /// `P0014` — symbolic optimality gap: the abstract completion
    /// interval exceeds the algorithm family's proven envelope somewhere
    /// in the λ-range (warn), or falls *below* the Lemma 8 lower bound
    /// `(m−1) + f_λ(n)` — impossible for a sound analysis of a valid
    /// broadcast, reported as an error. Generalizes the concrete
    /// single-point `P0007`. Emitted by `postal-abs`.
    SymbolicOptimalityGap,
    /// `P0015` — DTREE degree-bound violation: a tree-family workload's
    /// observed fan-out exceeds its declared degree `d`, or its abstract
    /// completion exceeds Lemma 18's envelope
    /// `d(m−1) + (d−1+λ)·⌈log_d n⌉` somewhere in the λ-range. Emitted by
    /// `postal-abs`.
    DegreeBoundViolation,
    /// `P0016` — unbounded wait: a processor registers a receive that no
    /// abstractly-reachable send can ever match, so it would wait
    /// forever for any λ in the range. Emitted by `postal-abs`.
    UnboundedWait,
    /// `P0017` — non-edge send: a transfer connects two processors that
    /// are not adjacent in the communication graph, so it cannot happen
    /// on the target topology. Emitted by the topology-aware passes of
    /// [`lint_schedule_with_topology`].
    NonEdgeSend,
    /// `P0018` — topology optimality gap: the schedule's completion time
    /// is above the graph-theoretic lower bound
    /// `(m−1) + λ·ecc(originator)` obtained by static BFS over the
    /// topology (warn/info), or *below* it, which is impossible on the
    /// graph and reported as an error. The sparse-graph analogue of
    /// `P0007`/`P0014`'s Lemma 8 gap. Never emitted for the complete
    /// graph, where the stronger `f_λ(n)` bound of `P0007` applies.
    TopologyOptimalityGap,
    /// `P0019` — topology partition: a processor has no path from the
    /// originator in the communication graph, so *no* schedule can
    /// inform it. Root-cause-suppresses the timing-level `P0005`/`P0013`
    /// for the same processor, the way `P0012` silences downstream
    /// findings.
    TopologyPartitionUnreachable,
}

impl LintCode {
    /// The stable textual code, e.g. `"P0001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::OutputPortOverlap => "P0001",
            LintCode::InputWindowOverlap => "P0002",
            LintCode::CausalityViolation => "P0003",
            LintCode::MalformedSend => "P0004",
            LintCode::UninformedProcessor => "P0005",
            LintCode::IdlePortWaste => "P0006",
            LintCode::OptimalityGap => "P0007",
            LintCode::Deadlock => "P0008",
            LintCode::LostFlight => "P0009",
            LintCode::NondeterministicCompletion => "P0010",
            LintCode::LatencyWindowViolation => "P0011",
            LintCode::DeadSend => "P0012",
            LintCode::UnreachableProcessor => "P0013",
            LintCode::SymbolicOptimalityGap => "P0014",
            LintCode::DegreeBoundViolation => "P0015",
            LintCode::UnboundedWait => "P0016",
            LintCode::NonEdgeSend => "P0017",
            LintCode::TopologyOptimalityGap => "P0018",
            LintCode::TopologyPartitionUnreachable => "P0019",
        }
    }

    /// Parses a textual code back to the enum.
    pub fn parse(s: &str) -> Option<LintCode> {
        Some(match s {
            "P0001" => LintCode::OutputPortOverlap,
            "P0002" => LintCode::InputWindowOverlap,
            "P0003" => LintCode::CausalityViolation,
            "P0004" => LintCode::MalformedSend,
            "P0005" => LintCode::UninformedProcessor,
            "P0006" => LintCode::IdlePortWaste,
            "P0007" => LintCode::OptimalityGap,
            "P0008" => LintCode::Deadlock,
            "P0009" => LintCode::LostFlight,
            "P0010" => LintCode::NondeterministicCompletion,
            "P0011" => LintCode::LatencyWindowViolation,
            "P0012" => LintCode::DeadSend,
            "P0013" => LintCode::UnreachableProcessor,
            "P0014" => LintCode::SymbolicOptimalityGap,
            "P0015" => LintCode::DegreeBoundViolation,
            "P0016" => LintCode::UnboundedWait,
            "P0017" => LintCode::NonEdgeSend,
            "P0018" => LintCode::TopologyOptimalityGap,
            "P0019" => LintCode::TopologyPartitionUnreachable,
            _ => return None,
        })
    }

    /// The paper rule the code enforces, quoted or paraphrased.
    pub fn paper_rule(self) -> &'static str {
        match self {
            LintCode::OutputPortOverlap => {
                "a processor \"can send a new message to a new processor every unit of \
                 time\", never faster: consecutive send starts at one output port must \
                 be >= 1 unit apart (model definition, Section 2)"
            }
            LintCode::InputWindowOverlap => {
                "a message sent at time t occupies its receiver's input port during \
                 [t+lambda-1, t+lambda]; a single input port cannot overlap two such \
                 windows (model definition, Section 2)"
            }
            LintCode::CausalityViolation => {
                "in a broadcast, a processor other than the originator can start \
                 forwarding the message only at or after the time it has fully received \
                 it (causality; used throughout Lemmas 3-5)"
            }
            LintCode::MalformedSend => {
                "sends connect two distinct processors drawn from p_0..p_{n-1} at a \
                 nonnegative time; the postal model has no self-sends (Section 2)"
            }
            LintCode::UninformedProcessor => {
                "a broadcast schedule must deliver the originator's message to all n-1 \
                 other processors (problem statement, Section 1)"
            }
            LintCode::IdlePortWaste => {
                "in an optimal schedule every informed processor keeps its output port \
                 busy while uninformed processors remain (the greedy argument of \
                 Lemmas 3-5)"
            }
            LintCode::OptimalityGap => {
                "broadcasting a single message takes exactly f_lambda(n) time \
                 (Theorem 6); broadcasting m messages takes at least \
                 (m-1) + f_lambda(n) time (Lemma 8)"
            }
            LintCode::Deadlock => {
                "an event-driven algorithm acts when it starts and whenever a \
                 message arrives; every admissible execution of MPS(n, lambda) \
                 must reach quiescence with no message still in flight \
                 (model definition, Section 2)"
            }
            LintCode::LostFlight => {
                "a message sent through an output port is fully received at its \
                 destination's input port lambda units after the send started; \
                 the postal model loses no messages (model definition, Section 2)"
            }
            LintCode::NondeterministicCompletion => {
                "the running time of a broadcasting algorithm is when the last \
                 processor finishes receiving; for BCAST this is exactly \
                 f_lambda(n) in every admissible interleaving (Theorem 6)"
            }
            LintCode::LatencyWindowViolation => {
                "a message sent at time t occupies its receiver's input port \
                 exactly during [t+lambda-1, t+lambda]; no receive may start \
                 before t+lambda-1 or complete before t+lambda \
                 (model definition, Section 2)"
            }
            LintCode::DeadSend => {
                "a message sent through an output port is fully received \
                 lambda units later; a send whose receiver provably never \
                 reads it does useless work for every lambda in the range \
                 (model definition, Section 2)"
            }
            LintCode::UnreachableProcessor => {
                "a broadcast must deliver the originator's message to all n-1 \
                 other processors; a processor no abstract message path \
                 reaches stays uninformed for every lambda in the range \
                 (problem statement, Section 1)"
            }
            LintCode::SymbolicOptimalityGap => {
                "broadcasting m messages takes at least (m-1) + f_lambda(n) \
                 time (Lemma 8), and each paper algorithm family has a proven \
                 closed-form envelope (Theorem 6, Lemmas 10-18); the abstract \
                 completion interval must respect both across the whole \
                 lambda range"
            }
            LintCode::DegreeBoundViolation => {
                "DTREE(d) broadcasts m messages within \
                 d(m-1) + (d-1+lambda)*ceil(log_d n) time with every node \
                 sending to at most d children (Lemma 18, Section 4.3)"
            }
            LintCode::UnboundedWait => {
                "an event-driven algorithm acts when it starts and whenever a \
                 message arrives; a receive no abstractly-reachable send can \
                 match waits forever, for every lambda in the range \
                 (model definition, Section 2)"
            }
            LintCode::NonEdgeSend => {
                "in a sparse message-passing system a processor can send only \
                 to its neighbors in the communication graph; a transfer \
                 across a non-edge cannot happen on the target topology \
                 (sparse extension of the complete-graph MPS(n, lambda), \
                 Section 2; minimum-broadcast-graph constructions after \
                 arXiv:1312.1523)"
            }
            LintCode::TopologyOptimalityGap => {
                "a message reaching a processor at graph distance d from the \
                 originator traverses d edges and each hop costs lambda, so \
                 broadcasting m messages over a sparse topology takes at \
                 least (m-1) + lambda*ecc(originator) time (static BFS lower \
                 bound; the sparse-graph analogue of Lemma 8)"
            }
            LintCode::TopologyPartitionUnreachable => {
                "a broadcast must deliver the originator's message to all n-1 \
                 other processors; a processor with no path from the \
                 originator in the communication graph can never be informed, \
                 by any schedule (problem statement, Section 1, over a sparse \
                 topology)"
            }
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, not wrong.
    Info,
    /// Suspicious: valid but wasteful or suboptimal.
    Warn,
    /// A violation of the postal model's rules.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: LintCode,
    /// How bad it is.
    pub severity: Severity,
    /// The processor at fault, when one is identifiable.
    pub proc: Option<u32>,
    /// The offending sends, in schedule order (empty when the finding
    /// is about an absence, e.g. `P0005`).
    pub sends: Vec<TimedSend>,
    /// A time that makes the finding concrete: the first-receipt time
    /// for `P0003`, the expected optimum for `P0007`.
    pub related_time: Option<Time>,
    /// Human-readable one-line explanation with exact numbers.
    pub message: String,
    /// For the symbolic codes `P0012`–`P0016`: the λ sub-interval over
    /// which the finding holds. `None` for the concrete codes
    /// `P0001`–`P0011`, which are tied to a single λ.
    pub witness: Option<Interval>,
}

impl Diagnostic {
    /// The paper rule this diagnostic enforces.
    pub fn rule(&self) -> &'static str {
        self.code.paper_rule()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// What to lint a schedule *as*.
#[derive(Debug, Clone, Copy)]
pub struct LintOptions {
    /// Treat the schedule as a broadcast from `originator` and check
    /// causality (`P0003`), coverage (`P0005`), port waste (`P0006`)
    /// and optimality (`P0007`). When `false` only the port and shape
    /// rules (`P0001`, `P0002`, `P0004`) apply.
    pub broadcast: bool,
    /// The broadcast originator (the paper's `p_0`).
    pub originator: u32,
    /// Number of distinct messages the schedule carries, for the
    /// `P0007` multi-message bound. The schedule type does not track
    /// message identity, so this is caller-supplied context.
    pub messages: u64,
}

impl Default for LintOptions {
    fn default() -> LintOptions {
        LintOptions {
            broadcast: true,
            originator: 0,
            messages: 1,
        }
    }
}

impl LintOptions {
    /// Port/shape rules only (`P0001`, `P0002`, `P0004`).
    pub fn ports_only() -> LintOptions {
        LintOptions {
            broadcast: false,
            ..LintOptions::default()
        }
    }

    /// Broadcast rules with `m` messages.
    pub fn broadcast_of(messages: u64) -> LintOptions {
        LintOptions {
            messages: messages.max(1),
            ..LintOptions::default()
        }
    }
}

/// Runs every applicable lint over `schedule`, returning all findings in
/// deterministic order (by code, then processor, then time).
///
/// Equivalent to driving [`PassManager::standard`]: one
/// [`ScheduleIndex`] build, one sweep of every `P0001`--`P0007` pass.
pub fn lint_schedule(schedule: &Schedule, opts: &LintOptions) -> Vec<Diagnostic> {
    PassManager::standard().run(schedule, opts)
}

/// [`lint_schedule`] plus the topology-grounded passes `P0017`–`P0019`
/// checked against `topology` (see [`PassManager::standard_with_topology`]).
///
/// On the complete graph the topology passes are vacuous, so the output
/// is byte-identical to [`lint_schedule`] — pinned by the differential
/// suite in `tests/topology_differential.rs`.
pub fn lint_schedule_with_topology(
    schedule: &Schedule,
    opts: &LintOptions,
    topology: &crate::topology::Topology,
) -> Vec<Diagnostic> {
    PassManager::standard_with_topology(topology).run(schedule, opts)
}

/// The deterministic report order: by code, then processor, then the
/// first offending send's start (or the related time).
pub(crate) fn diag_order(d: &Diagnostic) -> (LintCode, u32, Time) {
    (
        d.code,
        d.proc.unwrap_or(u32::MAX),
        d.sends
            .first()
            .map(|s| s.send_start)
            .or(d.related_time)
            .unwrap_or(Time::ZERO),
    )
}

/// True when no diagnostic reaches `threshold`.
pub fn is_clean(diags: &[Diagnostic], threshold: Severity) -> bool {
    diags.iter().all(|d| d.severity < threshold)
}

/// The most severe level present, if any finding exists.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::Latency;

    fn send(src: u32, dst: u32, num: i128, den: i128) -> TimedSend {
        TimedSend {
            src,
            dst,
            send_start: Time::new(num, den),
        }
    }

    fn lam52() -> Latency {
        Latency::from_ratio(5, 2)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<LintCode> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn optimal_two_hop_is_clean_at_error() {
        let s = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1), send(0, 2, 1, 1)]);
        let diags = lint_schedule(&s, &LintOptions::default());
        assert!(is_clean(&diags, Severity::Error), "{diags:?}");
    }

    #[test]
    fn p0001_all_overlaps_reported() {
        let s = Schedule::new(
            4,
            lam52(),
            vec![
                send(0, 1, 0, 1),
                send(0, 2, 1, 2),
                send(0, 3, 3, 4), // 1/4 after previous: second overlap
            ],
        );
        let diags = lint_schedule(&s, &LintOptions::ports_only());
        let overlaps: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::OutputPortOverlap)
            .collect();
        assert_eq!(overlaps.len(), 2);
        assert_eq!(overlaps[0].sends.len(), 2);
        assert_eq!(overlaps[0].proc, Some(0));
    }

    #[test]
    fn p0002_reports_window_bounds() {
        let s = Schedule::new(3, lam52(), vec![send(0, 2, 0, 1), send(1, 2, 1, 2)]);
        let diags = lint_schedule(&s, &LintOptions::ports_only());
        assert_eq!(codes(&diags), vec![LintCode::InputWindowOverlap]);
        assert_eq!(diags[0].proc, Some(2));
        assert!(diags[0].message.contains("overlap"), "{}", diags[0].message);
    }

    #[test]
    fn p0003_reports_first_knowledge_time() {
        let s = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1), send(1, 2, 1, 1)]);
        let diags = lint_schedule(&s, &LintOptions::default());
        assert_eq!(codes(&diags), vec![LintCode::CausalityViolation]);
        assert_eq!(diags[0].related_time, Some(Time::new(5, 2)));
    }

    #[test]
    fn p0004_classifies_shapes() {
        let s = Schedule::new(
            2,
            lam52(),
            vec![send(0, 5, 0, 1), send(1, 1, 2, 1), send(0, 1, -1, 1)],
        );
        let diags = lint_schedule(&s, &LintOptions::ports_only());
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| d.code == LintCode::MalformedSend));
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("out of range")));
        assert!(msgs.iter().any(|m| m.contains("self-send")));
        assert!(msgs.iter().any(|m| m.contains("negative")));
    }

    #[test]
    fn p0005_uninformed_detected() {
        let s = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1)]);
        let diags = lint_schedule(&s, &LintOptions::default());
        assert_eq!(codes(&diags), vec![LintCode::UninformedProcessor]);
        assert_eq!(diags[0].proc, Some(2));
    }

    #[test]
    fn p0006_flags_lazy_originator() {
        // p0 informs p1 at λ = 5/2 but then idles; p1 informs p2 only at
        // 5/2 + 5/2 = 5. Sending from p0 at t = 1 would have reached p2
        // at 7/2 < 5: wasteful.
        let s = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1), send(1, 2, 5, 2)]);
        let diags = lint_schedule(&s, &LintOptions::default());
        assert!(
            diags
                .iter()
                .any(|d| d.code == LintCode::IdlePortWaste && d.proc == Some(0)),
            "{diags:?}"
        );
    }

    #[test]
    fn p0006_silent_on_optimal_star() {
        // n = 2: single send, nothing wasted.
        let s = Schedule::new(2, lam52(), vec![send(0, 1, 0, 1)]);
        let diags = lint_schedule(&s, &LintOptions::default());
        assert!(
            !diags.iter().any(|d| d.code == LintCode::IdlePortWaste),
            "{diags:?}"
        );
    }

    #[test]
    fn p0007_warns_on_suboptimal_and_errs_on_impossible() {
        // Line broadcast on 3 processors at λ = 1: completes at 2·λ = 2;
        // optimal f_1(3) is 2 as well (binomial). Use λ = 5/2 line:
        // completes at 5; optimal is 7/2.
        let line = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1), send(1, 2, 5, 2)]);
        let diags = lint_schedule(&line, &LintOptions::default());
        let gap: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::OptimalityGap)
            .collect();
        assert_eq!(gap.len(), 1);
        assert_eq!(gap[0].severity, Severity::Warn);
        assert_eq!(gap[0].related_time, Some(Time::new(7, 2)));

        // "Impossibly fast": claim a 3-broadcast finished in λ time by
        // informing both from p0 back-to-back — wait, that IS optimal
        // for... no: f_{5/2}(3) = 7/2; two sends at 0 and 1 complete at
        // 1 + 5/2 = 7/2 exactly. Drop p2's receive to one send plus a
        // fake early send to p2 — that trips ports instead. The only
        // way below the bound with clean ports is a shorter horizon,
        // which coverage prevents; assert the error path directly on a
        // 2-processor schedule with a doctored latency mismatch.
        let fast = Schedule::new(2, Latency::from_int(3), vec![send(0, 1, 0, 1)]);
        // completion = 3 = f_3(2): exactly optimal, no gap diagnostic.
        let diags = lint_schedule(&fast, &LintOptions::default());
        assert!(
            !diags.iter().any(|d| d.code == LintCode::OptimalityGap),
            "{diags:?}"
        );
    }

    #[test]
    fn p0007_multi_message_is_info() {
        // m = 2 on n = 2 at λ = 2: sends at 0 and 2 complete at 4;
        // bound is (m−1) + f_λ(n) = 1 + 2 = 3 → info gap of 1.
        let s = Schedule::new(
            2,
            Latency::from_int(2),
            vec![send(0, 1, 0, 1), send(0, 1, 2, 1)],
        );
        let diags = lint_schedule(&s, &LintOptions::broadcast_of(2));
        let gap: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::OptimalityGap)
            .collect();
        assert_eq!(gap.len(), 1, "{diags:?}");
        assert_eq!(gap[0].severity, Severity::Info);
    }

    #[test]
    fn quality_lints_suppressed_while_errors_present() {
        // Causality broken AND idle waste present: only the error shows.
        let s = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1), send(1, 2, 1, 1)]);
        let diags = lint_schedule(&s, &LintOptions::default());
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn severity_ordering_and_helpers() {
        assert!(Severity::Info < Severity::Warn && Severity::Warn < Severity::Error);
        assert_eq!(LintCode::parse("P0003"), Some(LintCode::CausalityViolation));
        assert_eq!(LintCode::parse("P9999"), None);
        for code in [
            LintCode::OutputPortOverlap,
            LintCode::InputWindowOverlap,
            LintCode::CausalityViolation,
            LintCode::MalformedSend,
            LintCode::UninformedProcessor,
            LintCode::IdlePortWaste,
            LintCode::OptimalityGap,
            LintCode::Deadlock,
            LintCode::LostFlight,
            LintCode::NondeterministicCompletion,
            LintCode::LatencyWindowViolation,
            LintCode::DeadSend,
            LintCode::UnreachableProcessor,
            LintCode::SymbolicOptimalityGap,
            LintCode::DegreeBoundViolation,
            LintCode::UnboundedWait,
            LintCode::NonEdgeSend,
            LintCode::TopologyOptimalityGap,
            LintCode::TopologyPartitionUnreachable,
        ] {
            assert_eq!(LintCode::parse(code.as_str()), Some(code));
            assert!(!code.paper_rule().is_empty());
        }
    }
}
