//! Model time.
//!
//! Postal-model time is measured in *units*: one unit is the time a
//! processor spends sending (or receiving) one atomic message. [`Time`] is a
//! thin newtype over [`Ratio`] so that times and arbitrary rationals cannot
//! be mixed up in signatures; all times in this workspace are exact.
//!
//! For the lint hot path there is a second, faster representation:
//! [`FastTime`] holds the same value as an `i64` count of *half-units*
//! whenever the value lies on the half-integer lattice (which covers
//! every integer and half-integer λ the paper uses), and falls back to
//! the exact [`Ratio`] form otherwise. Both representations are exact;
//! they differ only in speed.

use crate::ratio::Ratio;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or duration of) model time, in postal-model units.
///
/// `Time` is allowed to be negative in intermediate arithmetic (e.g. when
/// computing `f_λ(n) − λ`), but all schedule times produced by the crates in
/// this workspace are non-negative.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub Ratio);

impl Time {
    /// Time zero.
    pub const ZERO: Time = Time(Ratio::ZERO);
    /// One time unit (the cost of one send or one receive).
    pub const ONE: Time = Time(Ratio::ONE);

    /// Creates a time from an integer number of units.
    pub const fn from_int(units: i128) -> Time {
        Time(Ratio::from_int(units))
    }

    /// Creates a time of `num/den` units.
    pub fn new(num: i128, den: i128) -> Time {
        Time(Ratio::new(num, den))
    }

    /// The underlying exact rational value, in units.
    pub const fn as_ratio(self) -> Ratio {
        self.0
    }

    /// Approximate value in units, for display and plotting.
    pub fn to_f64(self) -> f64 {
        self.0.to_f64()
    }

    /// Returns `true` if this time is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0.is_zero()
    }

    /// Maximum of two times.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Minimum of two times.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Multiplies this time by an integer factor.
    pub fn mul_int(self, k: i128) -> Time {
        Time(self.0.mul_int(k))
    }

    /// Multiplies this time by a rational factor.
    pub fn scale(self, k: Ratio) -> Time {
        Time(self.0 * k)
    }

    /// The value as an `i64` count of half-units, when it lies on the
    /// half-integer lattice and is small enough for overflow-free
    /// fixed-point arithmetic (see [`FastTime`]). `None` otherwise.
    pub fn to_half_units(self) -> Option<i64> {
        let half = match self.0.denom() {
            1 => self.0.numer().checked_mul(2)?,
            2 => self.0.numer(),
            _ => return None,
        };
        let half = i64::try_from(half).ok()?;
        (half.abs() <= FIXED_LIMIT).then_some(half)
    }

    /// The time worth `half` half-units (`from_half_units(5)` = 5/2).
    pub fn from_half_units(half: i64) -> Time {
        Time::new(half as i128, 2)
    }
}

/// Largest magnitude (in half-units) [`FastTime`] keeps in fixed-point
/// form. The headroom guarantees that adding two in-range values can
/// never overflow an `i64`, so a single comparison or sum needs no
/// checked arithmetic.
pub const FIXED_LIMIT: i64 = i64::MAX / 4;

/// A dual-representation time: `i64` fixed-point in half-units with a
/// transparent exact-[`Ratio`] fallback.
///
/// Every value is exact in either form; `Fixed` is just cheaper. The
/// representation is canonical — any value that fits the half-unit
/// lattice within [`FIXED_LIMIT`] is held as `Fixed`, so derived
/// equality and hashing agree with value equality. Arithmetic promotes
/// to `Exact` when a result leaves the fixed-point domain and demotes
/// back when it re-enters it.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct FastTime(Repr);

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Repr {
    /// Count of half-units; |value| ≤ [`FIXED_LIMIT`].
    Fixed(i64),
    /// Exact fallback for values off the lattice or out of range.
    Exact(Time),
}

impl FastTime {
    /// Time zero.
    pub const ZERO: FastTime = FastTime(Repr::Fixed(0));
    /// One time unit (two half-units).
    pub const ONE: FastTime = FastTime(Repr::Fixed(2));

    /// Converts an exact time, picking the fixed-point form when the
    /// value lies on the half-integer lattice within range.
    pub fn from_time(t: Time) -> FastTime {
        match t.to_half_units() {
            Some(h) => FastTime(Repr::Fixed(h)),
            None => FastTime(Repr::Exact(t)),
        }
    }

    /// The exact time this value denotes. Lossless for both forms.
    pub fn to_time(self) -> Time {
        match self.0 {
            Repr::Fixed(h) => Time::from_half_units(h),
            Repr::Exact(t) => t,
        }
    }

    /// True when held in the `i64` fixed-point form.
    pub fn is_fixed(self) -> bool {
        matches!(self.0, Repr::Fixed(_))
    }

    /// The `i64` half-unit count when the value is held in fixed-point
    /// form, `None` for the exact fallback. Because the representation
    /// is canonical, `None` means the value genuinely lies off the
    /// half-integer lattice (or beyond [`FIXED_LIMIT`]) — a calendar
    /// queue keyed on half-ticks can therefore route on this accessor
    /// alone, with no risk of a `Fixed` and an `Exact` value denoting
    /// the same instant.
    pub fn as_half_units(self) -> Option<i64> {
        match self.0 {
            Repr::Fixed(h) => Some(h),
            Repr::Exact(_) => None,
        }
    }

    /// The fixed-point value worth `half` half-units.
    ///
    /// # Panics
    /// Panics if `|half| > FIXED_LIMIT` — such a value must be built via
    /// [`FastTime::from_time`] so it lands in the exact fallback form.
    pub fn from_half_units(half: i64) -> FastTime {
        assert!(
            half.abs() <= FIXED_LIMIT,
            "half-unit count {half} outside the fixed-point range"
        );
        FastTime(Repr::Fixed(half))
    }

    /// Maximum of two values.
    pub fn max(self, other: FastTime) -> FastTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Minimum of two values.
    pub fn min(self, other: FastTime) -> FastTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl From<Time> for FastTime {
    fn from(t: Time) -> FastTime {
        FastTime::from_time(t)
    }
}

impl Add for FastTime {
    type Output = FastTime;
    fn add(self, rhs: FastTime) -> FastTime {
        match (self.0, rhs.0) {
            // In-range operands cannot overflow (|a| + |b| ≤ i64::MAX/2);
            // an out-of-range *sum* re-enters via from_time's range check.
            (Repr::Fixed(a), Repr::Fixed(b)) if (a + b).abs() <= FIXED_LIMIT => {
                FastTime(Repr::Fixed(a + b))
            }
            _ => FastTime::from_time(self.to_time() + rhs.to_time()),
        }
    }
}

impl Sub for FastTime {
    type Output = FastTime;
    fn sub(self, rhs: FastTime) -> FastTime {
        match (self.0, rhs.0) {
            (Repr::Fixed(a), Repr::Fixed(b)) if (a - b).abs() <= FIXED_LIMIT => {
                FastTime(Repr::Fixed(a - b))
            }
            _ => FastTime::from_time(self.to_time() - rhs.to_time()),
        }
    }
}

impl Ord for FastTime {
    fn cmp(&self, other: &FastTime) -> Ordering {
        match (self.0, other.0) {
            (Repr::Fixed(a), Repr::Fixed(b)) => a.cmp(&b),
            _ => self.to_time().cmp(&other.to_time()),
        }
    }
}

impl PartialOrd for FastTime {
    fn partial_cmp(&self, other: &FastTime) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for FastTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Repr::Fixed(h) => write!(f, "fast[{h}/2]"),
            Repr::Exact(t) => write!(f, "exact[{}]", t.0),
        }
    }
}

impl fmt::Display for FastTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_time())
    }
}

impl From<Ratio> for Time {
    fn from(r: Ratio) -> Time {
        Time(r)
    }
}

impl From<i128> for Time {
    fn from(n: i128) -> Time {
        Time::from_int(n)
    }
}

impl From<u32> for Time {
    fn from(n: u32) -> Time {
        Time::from_int(n as i128)
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Add<Ratio> for Time {
    type Output = Time;
    fn add(self, rhs: Ratio) -> Time {
        Time(self.0 + rhs)
    }
}

impl Sub<Ratio> for Time {
    type Output = Time;
    fn sub(self, rhs: Ratio) -> Time {
        Time(self.0 - rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::ratio;

    #[test]
    fn construction_and_accessors() {
        let t = Time::new(5, 2);
        assert_eq!(t.as_ratio(), ratio(5, 2));
        assert!((t.to_f64() - 2.5).abs() < 1e-15);
        assert!(Time::ZERO.is_zero());
        assert!(!Time::ONE.is_zero());
    }

    #[test]
    fn arithmetic() {
        let a = Time::new(5, 2);
        let b = Time::ONE;
        assert_eq!(a + b, Time::new(7, 2));
        assert_eq!(a - b, Time::new(3, 2));
        assert_eq!(a + ratio(1, 2), Time::from_int(3));
        assert_eq!(a - ratio(1, 2), Time::from_int(2));
        let mut c = a;
        c += b;
        c -= Time::new(1, 2);
        assert_eq!(c, Time::from_int(3));
    }

    #[test]
    fn ordering_and_extrema() {
        let a = Time::new(5, 2);
        let b = Time::from_int(3);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn scaling() {
        assert_eq!(Time::new(5, 2).mul_int(2), Time::from_int(5));
        assert_eq!(Time::from_int(3).scale(ratio(1, 3)), Time::ONE);
    }

    #[test]
    fn display() {
        assert_eq!(Time::new(15, 2).to_string(), "15/2");
        assert_eq!(format!("{:?}", Time::from_int(4)), "t=4");
    }

    #[test]
    fn half_unit_conversion() {
        assert_eq!(Time::new(5, 2).to_half_units(), Some(5));
        assert_eq!(Time::from_int(3).to_half_units(), Some(6));
        assert_eq!(Time::new(-7, 2).to_half_units(), Some(-7));
        assert_eq!(Time::new(1, 3).to_half_units(), None);
        assert_eq!(Time::from_int(i64::MAX as i128).to_half_units(), None);
        assert_eq!(Time::from_half_units(5), Time::new(5, 2));
        assert_eq!(Time::from_half_units(-4), Time::from_int(-2));
    }

    #[test]
    fn fast_time_round_trips_and_stays_fixed_on_the_lattice() {
        for (num, den) in [(0, 1), (5, 2), (-3, 2), (7, 1), (1_000_000, 2)] {
            let t = Time::new(num, den);
            let f = FastTime::from_time(t);
            assert!(f.is_fixed(), "{t:?}");
            assert_eq!(f.to_time(), t);
        }
        let third = FastTime::from_time(Time::new(1, 3));
        assert!(!third.is_fixed());
        assert_eq!(third.to_time(), Time::new(1, 3));
    }

    #[test]
    fn fast_time_arithmetic_and_ordering_match_time() {
        let vals = [
            Time::ZERO,
            Time::ONE,
            Time::new(5, 2),
            Time::new(-3, 2),
            Time::new(1, 3),
            Time::new(22, 7),
        ];
        for &a in &vals {
            for &b in &vals {
                let (fa, fb) = (FastTime::from_time(a), FastTime::from_time(b));
                assert_eq!((fa + fb).to_time(), a + b);
                assert_eq!((fa - fb).to_time(), a - b);
                assert_eq!(fa.cmp(&fb), a.cmp(&b));
                assert_eq!(fa == fb, a == b);
                assert_eq!(fa.max(fb).to_time(), a.max(b));
                assert_eq!(fa.min(fb).to_time(), a.min(b));
            }
        }
    }

    #[test]
    fn fast_time_half_unit_accessors() {
        assert_eq!(
            FastTime::from_time(Time::new(5, 2)).as_half_units(),
            Some(5)
        );
        assert_eq!(
            FastTime::from_time(Time::from_int(-3)).as_half_units(),
            Some(-6)
        );
        assert_eq!(FastTime::from_time(Time::new(1, 3)).as_half_units(), None);
        assert_eq!(
            FastTime::from_half_units(7),
            FastTime::from_time(Time::new(7, 2))
        );
        assert!(FastTime::from_half_units(FIXED_LIMIT).is_fixed());
    }

    #[test]
    #[should_panic(expected = "outside the fixed-point range")]
    fn fast_time_from_half_units_rejects_out_of_range() {
        let _ = FastTime::from_half_units(FIXED_LIMIT + 1);
    }

    #[test]
    fn fast_time_overflow_adjacent_values_fall_back_exactly() {
        // Just inside the fixed-point range...
        let edge = FastTime::from_time(Time::from_half_units(FIXED_LIMIT));
        assert!(edge.is_fixed());
        // ...and one unit past it: promoted to the exact form, with the
        // value still exact.
        let over = edge + FastTime::ONE;
        assert!(!over.is_fixed());
        assert_eq!(
            over.to_time(),
            Time::from_half_units(FIXED_LIMIT) + Time::ONE
        );
        // Coming back under the limit demotes to fixed again.
        let back = over - FastTime::ONE;
        assert!(back.is_fixed());
        assert_eq!(back, edge);
    }
}
