//! Model time.
//!
//! Postal-model time is measured in *units*: one unit is the time a
//! processor spends sending (or receiving) one atomic message. [`Time`] is a
//! thin newtype over [`Ratio`] so that times and arbitrary rationals cannot
//! be mixed up in signatures; all times in this workspace are exact.

use crate::ratio::Ratio;
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or duration of) model time, in postal-model units.
///
/// `Time` is allowed to be negative in intermediate arithmetic (e.g. when
/// computing `f_λ(n) − λ`), but all schedule times produced by the crates in
/// this workspace are non-negative.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub Ratio);

impl Time {
    /// Time zero.
    pub const ZERO: Time = Time(Ratio::ZERO);
    /// One time unit (the cost of one send or one receive).
    pub const ONE: Time = Time(Ratio::ONE);

    /// Creates a time from an integer number of units.
    pub const fn from_int(units: i128) -> Time {
        Time(Ratio::from_int(units))
    }

    /// Creates a time of `num/den` units.
    pub fn new(num: i128, den: i128) -> Time {
        Time(Ratio::new(num, den))
    }

    /// The underlying exact rational value, in units.
    pub const fn as_ratio(self) -> Ratio {
        self.0
    }

    /// Approximate value in units, for display and plotting.
    pub fn to_f64(self) -> f64 {
        self.0.to_f64()
    }

    /// Returns `true` if this time is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0.is_zero()
    }

    /// Maximum of two times.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Minimum of two times.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Multiplies this time by an integer factor.
    pub fn mul_int(self, k: i128) -> Time {
        Time(self.0.mul_int(k))
    }

    /// Multiplies this time by a rational factor.
    pub fn scale(self, k: Ratio) -> Time {
        Time(self.0 * k)
    }
}

impl From<Ratio> for Time {
    fn from(r: Ratio) -> Time {
        Time(r)
    }
}

impl From<i128> for Time {
    fn from(n: i128) -> Time {
        Time::from_int(n)
    }
}

impl From<u32> for Time {
    fn from(n: u32) -> Time {
        Time::from_int(n as i128)
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Add<Ratio> for Time {
    type Output = Time;
    fn add(self, rhs: Ratio) -> Time {
        Time(self.0 + rhs)
    }
}

impl Sub<Ratio> for Time {
    type Output = Time;
    fn sub(self, rhs: Ratio) -> Time {
        Time(self.0 - rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::ratio;

    #[test]
    fn construction_and_accessors() {
        let t = Time::new(5, 2);
        assert_eq!(t.as_ratio(), ratio(5, 2));
        assert!((t.to_f64() - 2.5).abs() < 1e-15);
        assert!(Time::ZERO.is_zero());
        assert!(!Time::ONE.is_zero());
    }

    #[test]
    fn arithmetic() {
        let a = Time::new(5, 2);
        let b = Time::ONE;
        assert_eq!(a + b, Time::new(7, 2));
        assert_eq!(a - b, Time::new(3, 2));
        assert_eq!(a + ratio(1, 2), Time::from_int(3));
        assert_eq!(a - ratio(1, 2), Time::from_int(2));
        let mut c = a;
        c += b;
        c -= Time::new(1, 2);
        assert_eq!(c, Time::from_int(3));
    }

    #[test]
    fn ordering_and_extrema() {
        let a = Time::new(5, 2);
        let b = Time::from_int(3);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn scaling() {
        assert_eq!(Time::new(5, 2).mul_int(2), Time::from_int(5));
        assert_eq!(Time::from_int(3).scale(ratio(1, 3)), Time::ONE);
    }

    #[test]
    fn display() {
        assert_eq!(Time::new(15, 2).to_string(), "15/2");
        assert_eq!(format!("{:?}", Time::from_int(4)), "t=4");
    }
}
