//! Communication topologies for sparse message-passing systems.
//!
//! The postal model MPS(n, λ) of the paper assumes a *complete*
//! communication graph: any processor may send to any other. Real
//! fleets are sparse. This module introduces the [`Topology`] oracle —
//! a formula-backed graph over the processors `0..n` exposing
//! [`Topology::is_edge`], [`Topology::degree`], [`Topology::neighbors`]
//! and a BFS distance/eccentricity oracle — together with the compact
//! [`TopologySpec`] string codec used by `postal-cli --topology`:
//!
//! | spec          | graph                                             |
//! |---------------|---------------------------------------------------|
//! | `complete`    | the paper's MPS(n, λ): every pair is an edge      |
//! | `ring`        | bidirectional cycle `0 – 1 – … – (n−1) – 0`       |
//! | `torus:RxC`   | 2-D wraparound grid, `R·C = n`                    |
//! | `hypercube:D` | D-dimensional binary hypercube, `2^D = n`         |
//! | `mbg:N`       | bounded-degree broadcast graph (Knödel graph       |
//! |               | `W_{⌊log₂N⌋,N}`, even `N`), after arXiv:1312.1523 |
//!
//! Every topology is *formula-backed*: adjacency is decided
//! arithmetically from the spec, so a `Topology` is a few words of
//! `Copy` data with no adjacency lists — `is_edge` is O(1) (O(log n)
//! for `mbg`) and the whole oracle is free to embed in lint passes.
//!
//! The graph-theoretic broadcast lower bound used by lint code `P0018`
//! is `(m−1) + λ·ecc(originator)`: a message reaching a processor at
//! BFS distance `d` traverses `d` edges and each hop costs λ, the
//! sparse-graph analogue of the paper's Lemma 8 bound
//! `(m−1) + f_λ(n)`. See `docs/topology.md` for the derivation.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

/// BFS distance sentinel: the processor cannot be reached at all.
pub const UNREACHABLE: u32 = u32::MAX;

/// A parsed `--topology` spec — the codec half of the subsystem.
///
/// A spec is *shape* only; it is bound to a concrete processor count by
/// [`TopologySpec::instantiate`], which validates that the shape fits
/// (`torus:RxC` needs `R·C = n`, `hypercube:D` needs `2^D = n`,
/// `mbg:N` needs `N = n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TopologySpec {
    /// The paper's complete graph: every ordered pair is an edge.
    Complete,
    /// A bidirectional ring over however many processors are present.
    Ring,
    /// A 2-D torus with the given number of rows and columns.
    Torus {
        /// Grid rows (`R` in `torus:RxC`).
        rows: u32,
        /// Grid columns (`C` in `torus:RxC`).
        cols: u32,
    },
    /// A binary hypercube of the given dimension.
    Hypercube {
        /// Dimension (`D` in `hypercube:D`); the graph has `2^D` nodes.
        dim: u32,
    },
    /// A bounded-degree minimum-broadcast-graph construction: the
    /// Knödel graph `W_{⌊log₂N⌋,N}` on an even number of processors.
    Mbg {
        /// Processor count (`N` in `mbg:N`); must be even and ≥ 2.
        n: u32,
    },
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySpec::Complete => write!(f, "complete"),
            TopologySpec::Ring => write!(f, "ring"),
            TopologySpec::Torus { rows, cols } => write!(f, "torus:{rows}x{cols}"),
            TopologySpec::Hypercube { dim } => write!(f, "hypercube:{dim}"),
            TopologySpec::Mbg { n } => write!(f, "mbg:{n}"),
        }
    }
}

/// A malformed spec string or a shape/processor-count mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyError {
    message: String,
}

impl TopologyError {
    fn new(message: String) -> TopologyError {
        TopologyError { message }
    }
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TopologyError {}

fn parse_dim(spec: &str, what: &str, text: &str) -> Result<u32, TopologyError> {
    text.parse::<u32>().map_err(|_| {
        TopologyError::new(format!(
            "topology '{spec}': {what} '{text}' is not a number"
        ))
    })
}

impl FromStr for TopologySpec {
    type Err = TopologyError;

    fn from_str(s: &str) -> Result<TopologySpec, TopologyError> {
        match s {
            "complete" => return Ok(TopologySpec::Complete),
            "ring" => return Ok(TopologySpec::Ring),
            _ => {}
        }
        if let Some(dims) = s.strip_prefix("torus:") {
            let Some((r, c)) = dims.split_once('x') else {
                return Err(TopologyError::new(format!(
                    "topology '{s}': expected torus:RxC (e.g. torus:4x8)"
                )));
            };
            let rows = parse_dim(s, "row count", r)?;
            let cols = parse_dim(s, "column count", c)?;
            if rows == 0 || cols == 0 {
                return Err(TopologyError::new(format!(
                    "topology '{s}': torus dimensions must be at least 1"
                )));
            }
            return Ok(TopologySpec::Torus { rows, cols });
        }
        if let Some(d) = s.strip_prefix("hypercube:") {
            let dim = parse_dim(s, "dimension", d)?;
            if dim > 30 {
                return Err(TopologyError::new(format!(
                    "topology '{s}': dimension {dim} exceeds the 2^30-processor cap"
                )));
            }
            return Ok(TopologySpec::Hypercube { dim });
        }
        if let Some(num) = s.strip_prefix("mbg:") {
            let n = parse_dim(s, "processor count", num)?;
            if n < 2 || n % 2 != 0 {
                return Err(TopologyError::new(format!(
                    "topology '{s}': the Knödel construction needs an even \
                     processor count of at least 2"
                )));
            }
            return Ok(TopologySpec::Mbg { n });
        }
        Err(TopologyError::new(format!(
            "unknown topology '{s}': expected complete, ring, torus:RxC, \
             hypercube:D, or mbg:N"
        )))
    }
}

impl TopologySpec {
    /// Binds the spec to `n` processors, validating the shape fits.
    ///
    /// # Errors
    /// Returns [`TopologyError`] when the spec's implied size disagrees
    /// with `n` (e.g. `torus:4x8` over anything but 32 processors) or
    /// `n == 0`.
    pub fn instantiate(&self, n: u32) -> Result<Topology, TopologyError> {
        if n == 0 {
            return Err(TopologyError::new(format!(
                "topology '{self}': a system needs at least 1 processor"
            )));
        }
        let implied = match *self {
            TopologySpec::Complete | TopologySpec::Ring => n,
            TopologySpec::Torus { rows, cols } => rows
                .checked_mul(cols)
                .ok_or_else(|| TopologyError::new(format!("topology '{self}': R*C overflows")))?,
            TopologySpec::Hypercube { dim } => 1u32 << dim,
            TopologySpec::Mbg { n } => n,
        };
        if implied != n {
            return Err(TopologyError::new(format!(
                "topology '{self}' describes {implied} processor(s) but the \
                 system has {n}"
            )));
        }
        Ok(Topology { spec: *self, n })
    }
}

/// A concrete communication graph over the processors `0..n`.
///
/// Built by [`TopologySpec::instantiate`]. All queries are answered
/// arithmetically from the spec — the oracle stores no adjacency and is
/// `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    spec: TopologySpec,
    n: u32,
}

/// Ring adjacency within one cyclic dimension of size `k`.
fn cycle_adjacent(a: u32, b: u32, k: u32) -> bool {
    if a == b {
        return false;
    }
    let diff = a.abs_diff(b);
    diff == 1 || diff == k - 1
}

impl Topology {
    /// The complete graph on `n` processors — the paper's MPS(n, λ).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn complete(n: u32) -> Topology {
        TopologySpec::Complete
            .instantiate(n)
            .expect("complete graph fits any n >= 1")
    }

    /// Number of processors.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The spec this topology was built from (for messages/rendering).
    pub fn spec(&self) -> TopologySpec {
        self.spec
    }

    /// `true` for the complete graph, where every lint falls back to
    /// the paper's complete-graph rules and the topology passes are
    /// vacuous by construction.
    pub fn is_complete(&self) -> bool {
        matches!(self.spec, TopologySpec::Complete)
    }

    /// Whether `{u, v}` is an edge. Out-of-range endpoints and
    /// self-loops are never edges.
    pub fn is_edge(&self, u: u32, v: u32) -> bool {
        if u >= self.n || v >= self.n || u == v {
            return false;
        }
        match self.spec {
            TopologySpec::Complete => true,
            TopologySpec::Ring => cycle_adjacent(u, v, self.n),
            TopologySpec::Torus { rows, cols } => {
                let (r1, c1) = (u / cols, u % cols);
                let (r2, c2) = (v / cols, v % cols);
                (r1 == r2 && cycle_adjacent(c1, c2, cols))
                    || (c1 == c2 && cycle_adjacent(r1, r2, rows))
            }
            TopologySpec::Hypercube { .. } => (u ^ v).count_ones() == 1,
            TopologySpec::Mbg { .. } => {
                // Knödel W_{Δ,n}: vertex 2j is (1, j), vertex 2j+1 is
                // (2, j); (1, j) – (2, (j + 2^k − 1) mod n/2) for
                // 0 ≤ k < Δ = ⌊log₂ n⌋.
                if u % 2 == v % 2 {
                    return false;
                }
                let (a, b) = if u.is_multiple_of(2) { (u, v) } else { (v, u) };
                let (j, jp) = (a / 2, b / 2);
                let half = self.n / 2;
                let delta = 31 - self.n.leading_zeros();
                (0..delta).any(|k| (j + ((1u32 << k) - 1) % half) % half == jp)
            }
        }
    }

    /// The degree of processor `u` (0 when out of range).
    pub fn degree(&self, u: u32) -> u32 {
        self.neighbors(u).len() as u32
    }

    /// The neighbors of `u`, ascending and deduplicated (empty when out
    /// of range).
    pub fn neighbors(&self, u: u32) -> Vec<u32> {
        if u >= self.n {
            return Vec::new();
        }
        let mut out: Vec<u32> = match self.spec {
            TopologySpec::Complete => (0..self.n).filter(|&v| v != u).collect(),
            TopologySpec::Ring | TopologySpec::Torus { .. } => {
                let mut c = self.candidate_neighbors(u);
                c.retain(|&v| self.is_edge(u, v));
                c
            }
            // Every Knödel candidate is an edge by construction (the
            // partner formula never self-loops or leaves range), so the
            // O(Δ) is_edge re-check per candidate — O(Δ²) per node,
            // which dominates BFS at 10⁶ processors — is skipped.
            TopologySpec::Mbg { .. } => self.candidate_neighbors(u),
            TopologySpec::Hypercube { dim } => (0..dim).map(|k| u ^ (1u32 << k)).collect(),
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Small candidate set for the formula topologies whose neighbor
    /// lists need dedup/filtering (ring, torus, mbg).
    fn candidate_neighbors(&self, u: u32) -> Vec<u32> {
        match self.spec {
            TopologySpec::Ring => {
                vec![(u + 1) % self.n, (u + self.n - 1) % self.n]
            }
            TopologySpec::Torus { rows, cols } => {
                let (r, c) = (u / cols, u % cols);
                vec![
                    r * cols + (c + 1) % cols,
                    r * cols + (c + cols - 1) % cols,
                    ((r + 1) % rows) * cols + c,
                    ((r + rows - 1) % rows) * cols + c,
                ]
            }
            TopologySpec::Mbg { .. } => {
                let half = self.n / 2;
                let delta = 31 - self.n.leading_zeros();
                let j = u / 2;
                (0..delta)
                    .map(|k| {
                        let step = ((1u32 << k) - 1) % half;
                        if u.is_multiple_of(2) {
                            // (1, j) — partners are (2, j + 2^k − 1).
                            ((j + step) % half) * 2 + 1
                        } else {
                            // (2, j) — partners are (1, j − (2^k − 1)).
                            ((j + half - step) % half) * 2
                        }
                    })
                    .collect()
            }
            TopologySpec::Complete | TopologySpec::Hypercube { .. } => unreachable!(),
        }
    }

    /// BFS distances from `origin` to every processor; unreachable
    /// processors read [`UNREACHABLE`]. Returns an all-unreachable
    /// vector when `origin` is out of range.
    pub fn bfs_distances(&self, origin: u32) -> Vec<u32> {
        let mut dist = vec![UNREACHABLE; self.n as usize];
        if origin >= self.n {
            return dist;
        }
        dist[origin as usize] = 0;
        let mut queue = VecDeque::from([origin]);
        while let Some(u) = queue.pop_front() {
            let d = dist[u as usize];
            for v in self.neighbors(u) {
                if dist[v as usize] == UNREACHABLE {
                    dist[v as usize] = d + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// The eccentricity of `origin`: the largest BFS distance to any
    /// *reachable* processor (0 when `origin` is out of range or
    /// isolated). Unreachable processors are the province of `P0019`
    /// and do not poison the bound.
    pub fn eccentricity(&self, origin: u32) -> u32 {
        self.bfs_distances(origin)
            .into_iter()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(spec: &str, n: u32) -> Topology {
        spec.parse::<TopologySpec>()
            .unwrap()
            .instantiate(n)
            .unwrap()
    }

    #[test]
    fn codec_round_trips() {
        for s in ["complete", "ring", "torus:4x8", "hypercube:5", "mbg:24"] {
            let spec: TopologySpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
        }
    }

    #[test]
    fn codec_rejects_malformed_specs() {
        for s in [
            "mesh",
            "torus:4",
            "torus:0x8",
            "torus:4xq",
            "hypercube:x",
            "hypercube:31",
            "mbg:7",
            "mbg:0",
        ] {
            assert!(s.parse::<TopologySpec>().is_err(), "accepted {s}");
        }
    }

    #[test]
    fn instantiate_checks_sizes() {
        assert!("torus:4x8"
            .parse::<TopologySpec>()
            .unwrap()
            .instantiate(32)
            .is_ok());
        assert!("torus:4x8"
            .parse::<TopologySpec>()
            .unwrap()
            .instantiate(31)
            .is_err());
        assert!("hypercube:3"
            .parse::<TopologySpec>()
            .unwrap()
            .instantiate(8)
            .is_ok());
        assert!("hypercube:3"
            .parse::<TopologySpec>()
            .unwrap()
            .instantiate(9)
            .is_err());
        assert!("mbg:10"
            .parse::<TopologySpec>()
            .unwrap()
            .instantiate(10)
            .is_ok());
        assert!("mbg:10"
            .parse::<TopologySpec>()
            .unwrap()
            .instantiate(12)
            .is_err());
        assert!("ring"
            .parse::<TopologySpec>()
            .unwrap()
            .instantiate(0)
            .is_err());
    }

    /// `is_edge`, `neighbors` and `degree` must tell one story.
    fn assert_consistent(t: &Topology) {
        for u in 0..t.n() {
            let nb = t.neighbors(u);
            assert_eq!(nb.len() as u32, t.degree(u));
            for w in nb.windows(2) {
                assert!(w[0] < w[1], "neighbors not sorted/deduped");
            }
            for v in 0..t.n() {
                let listed = t.neighbors(u).contains(&v);
                assert_eq!(t.is_edge(u, v), listed, "u={u} v={v} on {}", t.spec());
                assert_eq!(t.is_edge(u, v), t.is_edge(v, u), "asymmetric edge");
            }
            assert!(!t.is_edge(u, u));
        }
    }

    #[test]
    fn all_topologies_are_self_consistent() {
        for t in [
            topo("complete", 7),
            topo("ring", 1),
            topo("ring", 2),
            topo("ring", 9),
            topo("torus:1x5", 5),
            topo("torus:2x2", 4),
            topo("torus:3x4", 12),
            topo("hypercube:0", 1),
            topo("hypercube:4", 16),
            topo("mbg:2", 2),
            topo("mbg:6", 6),
            topo("mbg:24", 24),
        ] {
            assert_consistent(&t);
        }
    }

    #[test]
    fn degrees_match_the_constructions() {
        let ring = topo("ring", 8);
        assert!((0..8).all(|u| ring.degree(u) == 2));
        let torus = topo("torus:3x4", 12);
        assert!((0..12).all(|u| torus.degree(u) == 4));
        let cube = topo("hypercube:4", 16);
        assert!((0..16).all(|u| cube.degree(u) == 4));
        // Knödel degree is the bounded Δ = ⌊log₂ n⌋.
        let mbg = topo("mbg:24", 24);
        assert!((0..24).all(|u| mbg.degree(u) <= 4));
        assert!((0..24).any(|u| mbg.degree(u) == 4));
    }

    #[test]
    fn bfs_distances_and_eccentricity() {
        let ring = topo("ring", 8);
        let d = ring.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 3, 2, 1]);
        assert_eq!(ring.eccentricity(0), 4);

        let cube = topo("hypercube:3", 8);
        assert_eq!(cube.bfs_distances(0)[7], 3);
        assert_eq!(cube.eccentricity(0), 3);

        assert_eq!(topo("complete", 5).eccentricity(2), 1);
        // torus:RxC eccentricity is ⌊R/2⌋ + ⌊C/2⌋.
        assert_eq!(topo("torus:4x6", 24).eccentricity(0), 5);
    }

    #[test]
    fn every_construction_is_connected() {
        for t in [
            topo("ring", 17),
            topo("torus:5x7", 35),
            topo("hypercube:6", 64),
            topo("mbg:2", 2),
            topo("mbg:4", 4),
            topo("mbg:30", 30),
            topo("mbg:64", 64),
        ] {
            let d = t.bfs_distances(0);
            assert!(
                d.iter().all(|&x| x != UNREACHABLE),
                "{} is disconnected",
                t.spec()
            );
        }
    }

    #[test]
    fn knodel_diameter_is_logarithmic() {
        // The broadcast-graph construction must beat the ring's linear
        // diameter by a wide margin — that is its whole point.
        let t = topo("mbg:64", 64);
        assert!(t.eccentricity(0) <= 7, "ecc = {}", t.eccentricity(0));
    }
}
