//! # postal-model
//!
//! Exact mathematical model for *"Designing Broadcasting Algorithms in the
//! Postal Model for Message-Passing Systems"* (A. Bar-Noy and S. Kipnis,
//! SPAA 1992).
//!
//! The postal model MPS(n, λ) describes a fully connected message-passing
//! system of `n` processors with *send-and-forget* communication: sending
//! or receiving one atomic message occupies a processor for one time unit,
//! and a message sent at time `t` is fully received at time `t + λ`, where
//! λ ≥ 1 is the communication latency. λ = 1 recovers the classical
//! telephone model.
//!
//! This crate provides the model's arithmetic backbone:
//!
//! * [`ratio::Ratio`] — exact rational numbers, so that non-integral λ
//!   (the paper's running example is λ = 5/2) and all derived times are
//!   represented without rounding;
//! * [`time::Time`] and [`latency::Latency`] — strongly typed model time
//!   and latency;
//! * [`fib::GenFib`] — the generalized Fibonacci function `F_λ(t)` and its
//!   index function `f_λ(n)`, the paper's central objects (Section 3);
//! * [`bounds`] — the Theorem 7 sandwich bounds and the appendix's
//!   asymptotic refinements;
//! * [`analysis`] — the characteristic growth base `b` with
//!   `b^λ = b^(λ−1) + 1` (φ for λ = 2), to machine precision;
//! * [`runtimes`] — exact closed-form running times for BCAST, REPEAT,
//!   PACK, PIPELINE-1/2 and the DTREE family, plus the Lemma 8 multi-
//!   message lower bound;
//! * [`schedule`] — explicit timed-send schedules with a mechanical
//!   validator for the model's port and causality rules;
//! * [`lint`] — the schedule lint engine behind that validator: stable
//!   codes `P0001`–`P0007` covering every validity rule plus quality
//!   checks (idle ports, optimality gaps against `f_λ(n)`);
//! * [`topology`] — sparse communication graphs (ring, torus, hypercube,
//!   bounded-degree broadcast graphs per arXiv:1312.1523) with the
//!   BFS oracle behind the topology-aware lint codes `P0017`–`P0019`;
//! * [`step_fn`] — the paper's generic step-function/index-function
//!   machinery (Claims 1–2), with `F_λ` as one instance;
//! * [`corollaries`] — the elementary upper bounds of Corollaries 11,
//!   13, 15 and 17.
//!
//! The companion crates `postal-sim` (discrete-event simulator),
//! `postal-algos` (event-driven algorithm implementations) and
//! `postal-runtime` (threaded execution substrate) consume these
//! definitions and assert the paper's equalities *exactly*.
//!
//! ## Quick example
//!
//! ```
//! use postal_model::latency::Latency;
//! use postal_model::fib::GenFib;
//! use postal_model::time::Time;
//!
//! // The paper's Figure 1: broadcasting among 14 processors at λ = 5/2
//! // takes exactly 7½ time units, and the optimal first split is j = 9.
//! let lambda = Latency::from_ratio(5, 2);
//! let fib = GenFib::new(lambda);
//! assert_eq!(fib.index(14), Time::new(15, 2));
//! assert_eq!(fib.bcast_split(14), 9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod bounds;
pub mod corollaries;
pub mod fib;
pub mod latency;
pub mod lint;
pub mod ratio;
pub mod runtimes;
pub mod schedule;
pub mod step_fn;
pub mod time;
pub mod topology;

pub use fib::GenFib;
pub use latency::Latency;
pub use ratio::{Interval, Ratio};
pub use time::{FastTime, Time};
pub use topology::{Topology, TopologyError, TopologySpec};
