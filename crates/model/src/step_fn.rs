//! Generic step functions and index functions (Claims 1 and 2).
//!
//! Section 3 of the paper develops its tools for *any* right-continuous,
//! nondecreasing, unbounded step function `G: ℝ⁺ → ℕ` with index
//! function `I_G(n) = min{t : G(t) ≥ n}`, and proves four properties
//! (Claim 1) plus an anti-monotonicity relation between functions
//! (Claim 2). This module implements the notions generically on the tick
//! lattice — `F_λ` is just one instance — so the claims themselves can
//! be property-tested over arbitrary step functions, not only the
//! generalized Fibonacci family.

use crate::ratio::Ratio;
use crate::time::Time;

/// A right-continuous, nondecreasing, unbounded step function sampled on
/// a tick lattice of resolution `1/q`.
pub trait StepFunction {
    /// Ticks per time unit.
    fn ticks_per_unit(&self) -> i128;

    /// The value at `k` ticks (must be ≥ 1, nondecreasing in `k`, and
    /// unbounded).
    fn value_at_ticks(&self, k: i128) -> u128;

    /// The value at an arbitrary nonnegative time.
    fn value(&self, t: Time) -> u128 {
        let ticks = (t.as_ratio() * Ratio::from_int(self.ticks_per_unit())).floor();
        self.value_at_ticks(ticks)
    }

    /// The index function `I_G(n) = min{t : G(t) ≥ n}`, in ticks.
    ///
    /// # Panics
    /// Panics if `n == 0`, or if the function fails to reach `n` within
    /// a very large horizon (i.e. it was not unbounded).
    fn index_ticks(&self, n: u128) -> i128 {
        assert!(n >= 1, "index functions are defined for n ≥ 1");
        if self.value_at_ticks(0) >= n {
            return 0;
        }
        // Exponential search + binary search.
        let mut hi: i128 = 1;
        while self.value_at_ticks(hi) < n {
            hi = hi.checked_mul(2).expect("step function never reached n");
            assert!(hi < 1 << 40, "step function not unbounded in practice");
        }
        let mut lo = 0i128;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.value_at_ticks(mid) >= n {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// The index function as exact time.
    fn index(&self, n: u128) -> Time {
        Time(Ratio::new(self.index_ticks(n), self.ticks_per_unit()))
    }
}

impl StepFunction for crate::fib::GenFib {
    fn ticks_per_unit(&self) -> i128 {
        crate::fib::GenFib::ticks_per_unit(self) as i128
    }
    fn value_at_ticks(&self, k: i128) -> u128 {
        crate::fib::GenFib::value_at_ticks(self, k)
    }
}

/// An explicit step function given by its per-tick values (extended by
/// doubling past the provided table, to stay unbounded).
#[derive(Debug, Clone)]
pub struct TableStep {
    q: i128,
    values: Vec<u128>,
}

impl TableStep {
    /// Builds a step function from explicit per-tick values.
    ///
    /// # Panics
    /// Panics if `values` is empty, not nondecreasing, or starts below 1.
    pub fn new(q: i128, values: Vec<u128>) -> TableStep {
        assert!(q >= 1, "tick resolution must be at least 1");
        assert!(
            !values.is_empty(),
            "a step function needs at least one value"
        );
        assert!(values[0] >= 1, "step functions here map into ℕ⁺");
        assert!(
            values.windows(2).all(|w| w[0] <= w[1]),
            "step function must be nondecreasing"
        );
        TableStep { q, values }
    }
}

impl StepFunction for TableStep {
    fn ticks_per_unit(&self) -> i128 {
        self.q
    }
    fn value_at_ticks(&self, k: i128) -> u128 {
        assert!(k >= 0, "step functions are defined on t ≥ 0");
        let k = k as usize;
        if k < self.values.len() {
            self.values[k]
        } else {
            // Extend unboundedly: double the last value per extra tick.
            let last = *self.values.last().expect("nonempty");
            let extra = (k - self.values.len() + 1) as u32;
            last.saturating_mul(2u128.saturating_pow(extra))
        }
    }
}

/// Claim 1, checked mechanically for a given function and range.
/// Returns the first counterexample as `(part, t_or_n)` if any.
pub fn check_claim1<G: StepFunction>(g: &G, max_ticks: i128, max_n: u128) -> Option<(u8, i128)> {
    // (1) I_G nondecreasing + (3) G(I_G(n)) ≥ n + (4) G(I_G(n) − ε) < n.
    let mut prev = 0i128;
    for n in 1..=max_n {
        let f = g.index_ticks(n);
        if f < prev {
            return Some((1, n as i128));
        }
        prev = f;
        if g.value_at_ticks(f) < n {
            return Some((3, n as i128));
        }
        if f > 0 && g.value_at_ticks(f - 1) >= n {
            return Some((4, n as i128));
        }
    }
    // (2) I_G(G(t)) ≤ t.
    for k in 0..=max_ticks {
        let v = g.value_at_ticks(k);
        if g.index_ticks(v) > k {
            return Some((2, k));
        }
    }
    None
}

/// Claim 2: if `G(t) ≤ H(t)` pointwise then `I_G(n) ≥ I_H(n)` pointwise.
/// Checks the hypothesis on `0..=max_ticks` and the conclusion on
/// `1..=max_n`; returns false only if the hypothesis held but the
/// conclusion failed.
pub fn check_claim2<G: StepFunction, H: StepFunction>(
    g: &G,
    h: &H,
    max_ticks: i128,
    max_n: u128,
) -> bool {
    assert_eq!(
        g.ticks_per_unit(),
        h.ticks_per_unit(),
        "claim 2 comparison requires a common lattice"
    );
    let hypothesis = (0..=max_ticks).all(|k| g.value_at_ticks(k) <= h.value_at_ticks(k));
    if !hypothesis {
        return true; // vacuous
    }
    (1..=max_n).all(|n| g.index_ticks(n) >= h.index_ticks(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::GenFib;
    use crate::latency::Latency;

    #[test]
    fn gen_fib_satisfies_claim1_generically() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
        ] {
            let g = GenFib::new(lam);
            assert_eq!(check_claim1(&g, 200, 500), None, "λ={lam}");
        }
    }

    #[test]
    fn table_step_basics() {
        let g = TableStep::new(2, vec![1, 1, 2, 3, 5, 8]);
        assert_eq!(g.value_at_ticks(0), 1);
        assert_eq!(g.value_at_ticks(4), 5);
        // Extension doubles: 8, 16, 32, …
        assert_eq!(g.value_at_ticks(6), 16);
        // Index: first tick with value ≥ 3 is tick 3 = 3/2 units.
        assert_eq!(g.index(3), Time::new(3, 2));
        assert_eq!(g.index(1), Time::ZERO);
        assert_eq!(check_claim1(&g, 40, 100), None);
    }

    #[test]
    fn example_from_the_paper() {
        // "consider G(t) = ⌊t⌋ + 1-ish": the paper's example G(t) = ⌊t⌋
        // maps into ℕ starting at... we shift by one to stay ≥ 1:
        // G(t) = ⌊t⌋ + 1 gives I_G(n) = n − 1.
        let g = TableStep::new(1, (1..=64u128).collect());
        for n in 1..=64u128 {
            assert_eq!(g.index_ticks(n), n as i128 - 1);
        }
    }

    #[test]
    fn claim2_for_fib_pair() {
        // F_{5/2} ≤ F_{3/2} pointwise (larger λ grows slower), both on
        // the q = 2 lattice ⇒ f_{5/2} ≥ f_{3/2}.
        let slow = GenFib::new(Latency::from_ratio(5, 2));
        let fast = GenFib::new(Latency::from_ratio(3, 2));
        assert!(check_claim2(&slow, &fast, 120, 400));
    }

    #[test]
    fn claim2_vacuous_when_hypothesis_fails() {
        let a = TableStep::new(1, vec![1, 5, 6]);
        let b = TableStep::new(1, vec![1, 2, 3]);
        // a ≰ b pointwise, so the check is vacuously true.
        assert!(check_claim2(&a, &b, 2, 5));
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn table_step_rejects_decreasing() {
        let _ = TableStep::new(1, vec![3, 2]);
    }
}
