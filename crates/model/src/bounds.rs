//! Analytic bounds from Theorem 7 and the paper's appendix.
//!
//! Theorem 7 sandwiches the generalized Fibonacci function and its index
//! function:
//!
//! 1. `(⌈λ⌉+1)^⌊t/2λ⌋ ≤ F_λ(t) ≤ (⌈λ⌉+1)^⌊t/λ⌋` (Lemmas 19, 21),
//! 2. `λ·log n / log(⌈λ⌉+1) ≤ f_λ(n) ≤ 2λ + 2λ·log n / log(⌈λ⌉+1)`
//!    (Lemmas 20, 22),
//! 3. `F_λ(t) ≥ (λ+1)^{t/(αλ) − 1}` for sufficiently large λ (Lemma 25),
//! 4. `f_λ(n) ≤ (1 + h(λ))·λ·log n / log(λ+1)` for sufficiently large λ and
//!    `n ≥ 2^λ`, with `h(λ) → 0` (Lemma 26),
//!
//! where `α = 1 + (ln ln(λ+1) + 1)/(ln(λ+1) − (ln ln(λ+1) + 1))`.
//!
//! Parts (1) are computed exactly in saturating `u128`; parts (2)–(4) are
//! inherently real-valued and returned as `f64`.

use crate::latency::Latency;
use crate::ratio::Ratio;
use crate::time::Time;

/// Saturating integer power `base^exp` in `u128`.
fn sat_pow(base: u128, exp: u64) -> u128 {
    let mut acc: u128 = 1;
    let mut base = base;
    let mut exp = exp;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc.saturating_mul(base);
        }
        exp >>= 1;
        if exp > 0 {
            base = base.saturating_mul(base);
        }
    }
    acc
}

/// Theorem 7(1), lower half: `(⌈λ⌉+1)^⌊t/2λ⌋ ≤ F_λ(t)` (Lemma 21). Exact.
///
/// # Panics
/// Panics if `t < 0`.
pub fn fib_lower_bound(t: Time, latency: Latency) -> u128 {
    assert!(t >= Time::ZERO, "bounds are defined for t ≥ 0");
    let base = (latency.ceil() + 1) as u128;
    let exp = (t.as_ratio() / (latency.value() * Ratio::from_int(2))).floor();
    sat_pow(base, exp as u64)
}

/// Theorem 7(1), upper half: `F_λ(t) ≤ (⌈λ⌉+1)^⌊t/λ⌋` (Lemma 19). Exact.
///
/// # Panics
/// Panics if `t < 0`.
pub fn fib_upper_bound(t: Time, latency: Latency) -> u128 {
    assert!(t >= Time::ZERO, "bounds are defined for t ≥ 0");
    let base = (latency.ceil() + 1) as u128;
    let exp = (t.as_ratio() / latency.value()).floor();
    sat_pow(base, exp as u64)
}

/// Theorem 7(2), lower half: `f_λ(n) ≥ λ·log₂ n / log₂(⌈λ⌉+1)` (Lemma 20).
///
/// # Panics
/// Panics if `n == 0`.
pub fn index_lower_bound(n: u128, latency: Latency) -> f64 {
    assert!(n >= 1, "f_λ(n) is defined for n ≥ 1");
    let lam = latency.to_f64();
    let base = (latency.ceil() + 1) as f64;
    lam * (n as f64).log2() / base.log2()
}

/// Theorem 7(2), upper half:
/// `f_λ(n) ≤ 2λ + 2λ·log₂ n / log₂(⌈λ⌉+1)` (Lemma 22).
///
/// # Panics
/// Panics if `n == 0`.
pub fn index_upper_bound(n: u128, latency: Latency) -> f64 {
    assert!(n >= 1, "f_λ(n) is defined for n ≥ 1");
    let lam = latency.to_f64();
    2.0 * lam + 2.0 * index_lower_bound(n, latency)
}

/// Lemmas 25/26 hold only "for sufficiently large λ" (they rest on the
/// unproven-for-small-λ Claims 23/24, and near λ + 1 = e the denominator of
/// α vanishes). We gate at λ ≥ 16, below which `None` is returned; the
/// bound tests in this module verify the gate empirically. The comparison
/// is exact on the latency's rational value, so λ = 16 − 1/10⁶ is still
/// rejected.
const ALPHA_MIN_LAMBDA: Ratio = Ratio::from_int(16);

/// The α of Lemma 25:
/// `α = 1 + (ln ln(λ+1) + 1)/(ln(λ+1) − (ln ln(λ+1) + 1))`.
///
/// Returns `None` when λ is below the asymptotic regime (λ < 16) or the
/// denominator is nonpositive.
pub fn lemma25_alpha(latency: Latency) -> Option<f64> {
    if latency.value() < ALPHA_MIN_LAMBDA {
        return None;
    }
    let lam = latency.to_f64();
    let inner = (lam + 1.0).ln().ln() + 1.0;
    let denom = (lam + 1.0).ln() - inner;
    if denom <= 0.0 {
        None
    } else {
        Some(1.0 + inner / denom)
    }
}

/// Theorem 7(3): the asymptotic lower bound `(λ+1)^{t/(αλ) − 1} ≤ F_λ(t)`
/// (Lemma 25). Returns `None` outside the large-λ regime where α is
/// defined.
pub fn fib_asymptotic_lower_bound(t: Time, latency: Latency) -> Option<f64> {
    let alpha = lemma25_alpha(latency)?;
    let lam = latency.to_f64();
    Some((lam + 1.0).powf(t.to_f64() / (alpha * lam) - 1.0))
}

/// Theorem 7(4): the asymptotic upper bound
/// `f_λ(n) ≤ (1 + h(λ))·λ·log n / log(λ+1)` with
/// `1 + h(λ) = α + α·log(λ+1)/log n` (the ε of Lemma 26 taken → 0).
/// Returns `None` outside the large-λ regime.
pub fn index_asymptotic_upper_bound(n: u128, latency: Latency) -> Option<f64> {
    if n < 2 {
        return Some(0.0);
    }
    let alpha = lemma25_alpha(latency)?;
    let lam = latency.to_f64();
    let log_n = (n as f64).log2();
    let log_l = (lam + 1.0).log2();
    let one_plus_h = alpha + alpha * log_l / log_n;
    Some(one_plus_h * lam * log_n / log_l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::GenFib;

    const LAMBDAS: &[(i128, i128)] = &[(1, 1), (3, 2), (2, 1), (5, 2), (4, 1), (10, 1), (7, 3)];

    #[test]
    fn sat_pow_basics() {
        assert_eq!(sat_pow(3, 0), 1);
        assert_eq!(sat_pow(3, 4), 81);
        assert_eq!(sat_pow(2, 127), 1u128 << 127);
        assert_eq!(sat_pow(2, 200), u128::MAX);
        assert_eq!(sat_pow(u128::MAX, 3), u128::MAX);
    }

    #[test]
    fn theorem7_part1_sandwiches_exact_values() {
        for &(p, q) in LAMBDAS {
            let lam = Latency::from_ratio(p, q);
            let g = GenFib::new(lam);
            for k in 0..(60 * q) {
                let t = Time::new(k, q);
                let v = g.value(t);
                let lo = fib_lower_bound(t, lam);
                let hi = fib_upper_bound(t, lam);
                assert!(lo <= v, "λ={lam} t={t}: lower {lo} > F={v}");
                assert!(v <= hi, "λ={lam} t={t}: F={v} > upper {hi}");
            }
        }
    }

    #[test]
    fn theorem7_part2_sandwiches_index() {
        for &(p, q) in LAMBDAS {
            let lam = Latency::from_ratio(p, q);
            let g = GenFib::new(lam);
            for n in 1..500u128 {
                let f = g.index(n).to_f64();
                let lo = index_lower_bound(n, lam);
                let hi = index_upper_bound(n, lam);
                assert!(lo <= f + 1e-9, "λ={lam} n={n}: lower {lo} > f_λ(n)={f}");
                assert!(f <= hi + 1e-9, "λ={lam} n={n}: f_λ(n)={f} > upper {hi}");
            }
        }
    }

    #[test]
    fn alpha_defined_only_for_large_lambda() {
        assert!(lemma25_alpha(Latency::from_int(2)).is_none());
        assert!(lemma25_alpha(Latency::from_ratio(5, 2)).is_none());
        assert!(lemma25_alpha(Latency::from_int(15)).is_none());
        assert!(lemma25_alpha(Latency::from_int(16)).is_some());
        assert!(lemma25_alpha(Latency::from_int(100)).is_some());
        let a = lemma25_alpha(Latency::from_int(1000)).unwrap();
        let b = lemma25_alpha(Latency::from_int(100_000)).unwrap();
        // α decreases toward 1 as λ grows.
        assert!(a > b && b > 1.0);
    }

    #[test]
    fn lemma25_lower_bound_holds_beyond_the_gate() {
        // Empirically verify the λ ≥ 16 gate: the Lemma 25 bound must hold
        // for every gated λ we expose.
        for lam_i in [16i128, 20, 30, 64, 200] {
            let lam = Latency::from_int(lam_i);
            let g = GenFib::new(lam);
            for t in (0..(15 * lam_i)).step_by(7) {
                let tt = Time::from_int(t);
                let lb = fib_asymptotic_lower_bound(tt, lam).unwrap();
                let v = g.value(tt) as f64;
                assert!(lb <= v * (1.0 + 1e-9), "λ={lam} t={t}: {lb} > {v}");
            }
        }
    }

    #[test]
    fn lemma26_upper_bound_holds_for_large_lambda_and_n() {
        // Lemma 26 requires n ≥ 2^λ; with λ = 100 that overflows u128, so
        // use the largest-n-representable regime and the observed slack:
        // the bound needs only to hold asymptotically, and for n = 2^120,
        // λ = 30 it already does.
        let lam = Latency::from_int(30);
        let g = GenFib::new(lam);
        let n = 1u128 << 120;
        let f = g.index(n).to_f64();
        let ub = index_asymptotic_upper_bound(n, lam).unwrap();
        assert!(f <= ub, "f={f} ub={ub}");
    }

    #[test]
    fn asymptotic_upper_bound_tighter_than_part2_for_huge_lambda() {
        // Section 5 remarks that Theorem 7's simple bounds have a factor-2
        // gap; the Lemma 26 bound removes most of it, but only once λ is
        // genuinely large — α < 2 needs roughly λ ≳ e^8.
        let lam = Latency::from_int(100_000);
        let n = 1u128 << 120;
        let simple = index_upper_bound(n, lam);
        let asym = index_asymptotic_upper_bound(n, lam).unwrap();
        assert!(asym < simple, "asym={asym} simple={simple}");
        // At moderate λ the asymptotic form is *looser* — worth pinning so
        // nobody "simplifies" the bounds module to always use it.
        let lam = Latency::from_int(50);
        let simple = index_upper_bound(n, lam);
        let asym = index_asymptotic_upper_bound(n, lam).unwrap();
        assert!(asym > simple);
    }

    #[test]
    #[should_panic(expected = "t ≥ 0")]
    fn negative_time_panics() {
        let _ = fib_lower_bound(Time::from_int(-1), Latency::TELEPHONE);
    }
}
