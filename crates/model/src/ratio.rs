//! Exact rational arithmetic for postal-model time.
//!
//! The postal model is parameterized by a real latency λ ≥ 1 that is
//! frequently non-integral (the paper's running example is λ = 5/2). Every
//! quantity the paper manipulates — send times, receive times, completion
//! times `f_λ(n)` — is of the form `a + b·λ` for integers `a, b`, so with a
//! rational λ all times are exact rationals. Using `f64` would turn the
//! paper's *equalities* (e.g. Theorem 6: `T_B(n, λ) = f_λ(n)`) into
//! approximate comparisons; [`Ratio`] keeps them exact.
//!
//! `Ratio` is a reduced fraction `num/den` with `den > 0`, stored in `i128`.
//! All operations normalize eagerly and panic on overflow (postal-model
//! quantities are tiny — at most a few million ticks — so overflow indicates
//! a logic error, not a capacity problem).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number: reduced fraction with positive denominator.
///
/// ```
/// use postal_model::ratio::{ratio, Ratio};
///
/// let half = ratio(1, 2);
/// assert_eq!(half + ratio(1, 3), ratio(5, 6));
/// assert_eq!(ratio(-4, 8), ratio(-1, 2)); // always reduced
/// assert_eq!("5/2".parse::<Ratio>().unwrap(), ratio(5, 2));
/// assert_eq!("2.5".parse::<Ratio>().unwrap(), ratio(5, 2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

/// Greatest common divisor (non-negative; `gcd(0, 0) = 0`).
pub(crate) fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates a reduced ratio `num/den`.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "Ratio denominator must be nonzero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        if g == 0 {
            return Ratio::ZERO;
        }
        Ratio {
            num: sign * (num / g),
            den: sign * (den / g),
        }
    }

    /// Creates an integer-valued ratio.
    pub const fn from_int(n: i128) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    /// The numerator of the reduced fraction (sign lives here).
    pub const fn numer(self) -> i128 {
        self.num
    }

    /// The denominator of the reduced fraction (always positive).
    pub const fn denom(self) -> i128 {
        self.den
    }

    /// Returns `true` if this ratio is an integer.
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Returns `true` if this ratio is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// The sign of the ratio: -1, 0, or 1.
    pub const fn signum(self) -> i128 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Largest integer ≤ self.
    pub fn floor(self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            // Round toward negative infinity.
            (self.num - (self.den - 1)) / self.den
        }
    }

    /// Smallest integer ≥ self.
    pub fn ceil(self) -> i128 {
        -((-self).floor())
    }

    /// Converts to `f64` (approximate; for display and plotting only).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Approximates an `f64` by a rational with denominator at most
    /// `max_den`, using continued fractions (best rational approximation).
    ///
    /// # Panics
    /// Panics if `x` is not finite or `max_den == 0`.
    pub fn approximate(x: f64, max_den: i128) -> Ratio {
        assert!(x.is_finite(), "cannot approximate a non-finite value");
        assert!(max_den >= 1, "max_den must be at least 1");
        let neg = x < 0.0;
        let mut x = x.abs();
        // Continued-fraction convergents p/q.
        let (mut p0, mut q0, mut p1, mut q1) = (0i128, 1i128, 1i128, 0i128);
        for _ in 0..64 {
            let a = x.floor();
            if a >= i128::MAX as f64 {
                break;
            }
            let a_i = a as i128;
            let p2 = match a_i.checked_mul(p1).and_then(|v| v.checked_add(p0)) {
                Some(v) => v,
                None => break,
            };
            let q2 = match a_i.checked_mul(q1).and_then(|v| v.checked_add(q0)) {
                Some(v) => v,
                None => break,
            };
            if q2 > max_den {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            let frac = x - a;
            if frac < 1e-12 {
                break;
            }
            x = 1.0 / frac;
        }
        if q1 == 0 {
            // Even the integer part exceeded limits; clamp.
            return Ratio::from_int(if neg { -(max_den) } else { max_den });
        }
        let r = Ratio::new(p1, q1);
        if neg {
            -r
        } else {
            r
        }
    }

    /// Checked multiplication by an integer.
    pub fn mul_int(self, k: i128) -> Ratio {
        Ratio::new(
            self.num.checked_mul(k).expect("Ratio overflow in mul_int"),
            self.den,
        )
    }

    /// Minimum of two ratios.
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two ratios.
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Absolute difference `|self − other|`, the symmetric gap between
    /// two rationals. Replaces the ad-hoc two-branch comparisons that
    /// used to be duplicated wherever a gap was needed.
    pub fn abs_diff(self, other: Ratio) -> Ratio {
        (self - other).abs()
    }

    /// Clamps `self` into `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: Ratio, hi: Ratio) -> Ratio {
        assert!(lo <= hi, "Ratio::clamp requires lo <= hi");
        self.max(lo).min(hi)
    }
}

/// A closed interval `[lo, hi]` of exact rationals.
///
/// The workhorse of the `postal-abs` abstract interpreter: every
/// event time there is a monotone function of λ, so propagating the
/// two endpoints through `add`/`max` interval arithmetic yields the
/// exact range of the concrete value over a λ-interval. Construction
/// checks `lo ≤ hi`, so an `Interval` is never empty or inverted.
///
/// ```
/// use postal_model::ratio::{ratio, Interval, Ratio};
///
/// let lam = Interval::new(Ratio::ONE, ratio(5, 2));
/// let shifted = lam + Interval::point(Ratio::ONE);
/// assert_eq!(shifted, Interval::new(ratio(2, 1), ratio(7, 2)));
/// assert!(shifted.contains(ratio(3, 1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: Ratio,
    hi: Ratio,
}

impl Interval {
    /// The degenerate interval `[0, 0]`.
    pub const ZERO: Interval = Interval {
        lo: Ratio::ZERO,
        hi: Ratio::ZERO,
    };

    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(lo: Ratio, hi: Ratio) -> Interval {
        assert!(lo <= hi, "Interval requires lo <= hi, got [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: Ratio) -> Interval {
        Interval { lo: x, hi: x }
    }

    /// The lower endpoint.
    pub const fn lo(self) -> Ratio {
        self.lo
    }

    /// The upper endpoint.
    pub const fn hi(self) -> Ratio {
        self.hi
    }

    /// True when both endpoints coincide.
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// The interval's width `hi − lo`.
    pub fn width(self) -> Ratio {
        self.hi - self.lo
    }

    /// True when `x ∈ [lo, hi]`.
    pub fn contains(self, x: Ratio) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// True when `other ⊆ self`.
    pub fn contains_interval(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Elementwise minimum: the range of `min(f, g)` for monotone `f, g`.
    pub fn min(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Elementwise maximum: the range of `max(f, g)` for monotone `f, g`.
    pub fn max(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The convex hull `[min(lo), max(hi)]` — the widening operator:
    /// sound but no longer exact, used where two branches of an
    /// analysis must be merged.
    pub fn widen(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The midpoint `(lo + hi) / 2` (exact — rationals are closed
    /// under halving), used to bisect a λ-range.
    pub fn midpoint(self) -> Ratio {
        (self.lo + self.hi) / Ratio::from_int(2)
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;

    /// Elementwise sum: `[a, b] + [c, d] = [a+c, b+d]`. Exact for sums
    /// of monotone functions.
    fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl From<i128> for Ratio {
    fn from(n: i128) -> Ratio {
        Ratio::from_int(n)
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Ratio {
        Ratio::from_int(n as i128)
    }
}

impl From<u64> for Ratio {
    fn from(n: u64) -> Ratio {
        Ratio::from_int(n as i128)
    }
}

impl From<i32> for Ratio {
    fn from(n: i32) -> Ratio {
        Ratio::from_int(n as i128)
    }
}

impl From<u32> for Ratio {
    fn from(n: u32) -> Ratio {
        Ratio::from_int(n as i128)
    }
}

impl From<usize> for Ratio {
    fn from(n: usize) -> Ratio {
        Ratio::from_int(n as i128)
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        // (a/b) + (c/d) = (a·(l/b) + c·(l/d)) / l with l = lcm(b, d).
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)
            .and_then(|a| {
                rhs.num
                    .checked_mul(rhs_scale)
                    .and_then(|b| a.checked_add(b))
            })
            .expect("Ratio overflow in add");
        let den = self
            .den
            .checked_mul(lhs_scale)
            .expect("Ratio overflow in add");
        Ratio::new(num, den)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        // Cross-reduce before multiplying to delay overflow.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .expect("Ratio overflow in mul");
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .expect("Ratio overflow in mul");
        Ratio::new(num, den)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    fn div(self, rhs: Ratio) -> Ratio {
        assert!(!rhs.is_zero(), "Ratio division by zero");
        self * Ratio::new(rhs.den, rhs.num)
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl SubAssign for Ratio {
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = *self - rhs;
    }
}

impl MulAssign for Ratio {
    fn mul_assign(&mut self, rhs: Ratio) {
        *self = *self * rhs;
    }
}

impl DivAssign for Ratio {
    fn div_assign(&mut self, rhs: Ratio) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // a/b vs c/d  ⇔  a·d vs c·b  (b, d > 0). Cross-reduce first.
        let g_num = gcd(self.num, other.num);
        let g_den = gcd(self.den, other.den);
        let (an, ad) = (self.num / g_num.max(1), self.den / g_den);
        let (bn, bd) = (other.num / g_num.max(1), other.den / g_den);
        let lhs = an.checked_mul(bd).expect("Ratio overflow in cmp");
        let rhs = bn.checked_mul(ad).expect("Ratio overflow in cmp");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error parsing a [`Ratio`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatioError(String);

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ratio: {}", self.0)
    }
}

impl std::error::Error for ParseRatioError {}

impl FromStr for Ratio {
    type Err = ParseRatioError;

    /// Parses `"3"`, `"5/2"`, or a decimal such as `"2.5"`.
    fn from_str(s: &str) -> Result<Ratio, ParseRatioError> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let num: i128 = n.trim().parse().map_err(|_| ParseRatioError(s.into()))?;
            let den: i128 = d.trim().parse().map_err(|_| ParseRatioError(s.into()))?;
            if den == 0 {
                return Err(ParseRatioError(s.into()));
            }
            return Ok(Ratio::new(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let neg = int_part.trim_start().starts_with('-');
            let int: i128 = if int_part.is_empty() || int_part == "-" {
                0
            } else {
                int_part.parse().map_err(|_| ParseRatioError(s.into()))?
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseRatioError(s.into()));
            }
            let frac: i128 = frac_part.parse().map_err(|_| ParseRatioError(s.into()))?;
            let scale = 10i128
                .checked_pow(frac_part.len() as u32)
                .ok_or_else(|| ParseRatioError(s.into()))?;
            let frac_ratio = Ratio::new(frac, scale);
            let int_ratio = Ratio::from_int(int);
            return Ok(if neg {
                int_ratio - frac_ratio
            } else {
                int_ratio + frac_ratio
            });
        }
        let n: i128 = s.parse().map_err(|_| ParseRatioError(s.into()))?;
        Ok(Ratio::from_int(n))
    }
}

/// Convenience constructor: `ratio(5, 2)` is 5/2.
pub fn ratio(num: i128, den: i128) -> Ratio {
    Ratio::new(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_on_construction() {
        assert_eq!(Ratio::new(4, 8), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-4, 8), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(4, -8), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(-4, -8), Ratio::new(1, 2));
        assert_eq!(Ratio::new(0, 7), Ratio::ZERO);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        let half = ratio(1, 2);
        let third = ratio(1, 3);
        assert_eq!(half + third, ratio(5, 6));
        assert_eq!(half - third, ratio(1, 6));
        assert_eq!(half * third, ratio(1, 6));
        assert_eq!(half / third, ratio(3, 2));
        assert_eq!(-half, ratio(-1, 2));
    }

    #[test]
    fn assign_ops() {
        let mut x = ratio(5, 2);
        x += Ratio::ONE;
        assert_eq!(x, ratio(7, 2));
        x -= ratio(1, 2);
        assert_eq!(x, Ratio::from_int(3));
        x *= ratio(2, 3);
        assert_eq!(x, Ratio::from_int(2));
        x /= ratio(4, 1);
        assert_eq!(x, ratio(1, 2));
    }

    #[test]
    fn ordering() {
        assert!(ratio(1, 2) < ratio(2, 3));
        assert!(ratio(-1, 2) < ratio(1, 3));
        assert!(ratio(5, 2) > Ratio::from_int(2));
        assert_eq!(ratio(3, 6).cmp(&ratio(1, 2)), Ordering::Equal);
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(ratio(5, 2).floor(), 2);
        assert_eq!(ratio(5, 2).ceil(), 3);
        assert_eq!(ratio(-5, 2).floor(), -3);
        assert_eq!(ratio(-5, 2).ceil(), -2);
        assert_eq!(Ratio::from_int(4).floor(), 4);
        assert_eq!(Ratio::from_int(4).ceil(), 4);
        assert_eq!(Ratio::ZERO.floor(), 0);
        assert_eq!(Ratio::ZERO.ceil(), 0);
    }

    #[test]
    fn parse_forms() {
        assert_eq!("5/2".parse::<Ratio>().unwrap(), ratio(5, 2));
        assert_eq!("2.5".parse::<Ratio>().unwrap(), ratio(5, 2));
        assert_eq!("3".parse::<Ratio>().unwrap(), Ratio::from_int(3));
        assert_eq!("-1.25".parse::<Ratio>().unwrap(), ratio(-5, 4));
        assert_eq!(" 7 / 4 ".parse::<Ratio>().unwrap(), ratio(7, 4));
        assert!("1/0".parse::<Ratio>().is_err());
        assert!("abc".parse::<Ratio>().is_err());
        assert!("1.2e3".parse::<Ratio>().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(ratio(5, 2).to_string(), "5/2");
        assert_eq!(Ratio::from_int(-3).to_string(), "-3");
        assert_eq!(Ratio::ZERO.to_string(), "0");
    }

    #[test]
    fn approximate_recovers_simple_fractions() {
        assert_eq!(Ratio::approximate(2.5, 1000), ratio(5, 2));
        assert_eq!(Ratio::approximate(0.333333333333, 1000), ratio(1, 3));
        assert_eq!(Ratio::approximate(-1.25, 1000), ratio(-5, 4));
        assert_eq!(Ratio::approximate(7.0, 1000), Ratio::from_int(7));
        // π with a small denominator bound gives the classic 22/7.
        assert_eq!(Ratio::approximate(std::f64::consts::PI, 10), ratio(22, 7));
    }

    #[test]
    fn to_f64_roundtrip() {
        assert!((ratio(5, 2).to_f64() - 2.5).abs() < 1e-15);
        assert!((ratio(-1, 3).to_f64() + 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn min_max_abs_signum() {
        assert_eq!(ratio(1, 2).min(ratio(1, 3)), ratio(1, 3));
        assert_eq!(ratio(1, 2).max(ratio(1, 3)), ratio(1, 2));
        assert_eq!(ratio(-5, 2).abs(), ratio(5, 2));
        assert_eq!(ratio(-5, 2).signum(), -1);
        assert_eq!(Ratio::ZERO.signum(), 0);
        assert_eq!(ratio(5, 2).signum(), 1);
    }

    #[test]
    fn gcd_properties() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(0, 0), 0);
    }

    #[test]
    fn abs_diff_is_symmetric_and_nonnegative() {
        assert_eq!(ratio(5, 2).abs_diff(Ratio::ONE), ratio(3, 2));
        assert_eq!(Ratio::ONE.abs_diff(ratio(5, 2)), ratio(3, 2));
        assert_eq!(ratio(-1, 2).abs_diff(ratio(1, 2)), Ratio::ONE);
        assert_eq!(ratio(7, 3).abs_diff(ratio(7, 3)), Ratio::ZERO);
    }

    #[test]
    fn clamp_pins_to_the_range() {
        let (lo, hi) = (Ratio::ONE, ratio(5, 2));
        assert_eq!(ratio(1, 2).clamp(lo, hi), lo);
        assert_eq!(ratio(7, 2).clamp(lo, hi), hi);
        assert_eq!(ratio(3, 2).clamp(lo, hi), ratio(3, 2));
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn clamp_rejects_inverted_range() {
        let _ = Ratio::ONE.clamp(ratio(5, 2), Ratio::ONE);
    }

    #[test]
    fn interval_construction_and_accessors() {
        let i = Interval::new(Ratio::ONE, ratio(5, 2));
        assert_eq!(i.lo(), Ratio::ONE);
        assert_eq!(i.hi(), ratio(5, 2));
        assert_eq!(i.width(), ratio(3, 2));
        assert!(!i.is_point());
        assert!(Interval::point(ratio(2, 1)).is_point());
        assert_eq!(Interval::ZERO, Interval::point(Ratio::ZERO));
        assert_eq!(i.to_string(), "[1, 5/2]");
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_interval_panics() {
        let _ = Interval::new(ratio(5, 2), Ratio::ONE);
    }

    #[test]
    fn interval_arithmetic_is_elementwise() {
        let a = Interval::new(Ratio::ONE, ratio(2, 1));
        let b = Interval::new(ratio(1, 2), ratio(5, 2));
        assert_eq!(a + b, Interval::new(ratio(3, 2), ratio(9, 2)));
        assert_eq!(a.max(b), Interval::new(Ratio::ONE, ratio(5, 2)));
        assert_eq!(a.min(b), Interval::new(ratio(1, 2), ratio(2, 1)));
    }

    #[test]
    fn interval_containment_and_widening() {
        let a = Interval::new(Ratio::ONE, ratio(2, 1));
        let b = Interval::new(ratio(3, 1), ratio(4, 1));
        assert!(a.contains(ratio(3, 2)));
        assert!(!a.contains(ratio(5, 2)));
        let hull = a.widen(b);
        assert_eq!(hull, Interval::new(Ratio::ONE, ratio(4, 1)));
        assert!(hull.contains_interval(a) && hull.contains_interval(b));
        assert!(!a.contains_interval(hull));
        assert_eq!(a.midpoint(), ratio(3, 2));
    }
}
