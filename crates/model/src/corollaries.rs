//! Corollaries 9, 11, 13, 15 and 17: the paper's closed-form *upper
//! bounds* on each multi-message algorithm, derived from Theorem 7(2).
//!
//! These are looser than the exact Lemma times in [`crate::runtimes`] —
//! their value is that they are elementary formulas in `n`, `m`, λ with
//! no Fibonacci evaluation. Every function here is verified (in tests
//! and in the `postal-bench` experiments) to dominate the corresponding
//! exact time across parameter sweeps.

use crate::latency::Latency;

fn log2(x: f64) -> f64 {
    x.log2()
}

/// Corollary 11: `T_R ≤ 2mλ·log n / log(λ+1) + mλ + m + λ − 1`.
pub fn repeat_upper_bound(n: u128, m: u64, latency: Latency) -> f64 {
    let (nf, mf, lam) = (n as f64, m as f64, latency.to_f64());
    2.0 * mf * lam * log2(nf) / log2(lam + 1.0) + mf * lam + mf + lam - 1.0
}

/// Corollary 13: `T_PK ≤ 2(m+λ−1)·log n / log(2 + (λ−1)/m) + 2(m+λ−1)`.
pub fn pack_upper_bound(n: u128, m: u64, latency: Latency) -> f64 {
    let (nf, mf, lam) = (n as f64, m as f64, latency.to_f64());
    let base = 2.0 + (lam - 1.0) / mf;
    2.0 * (mf + lam - 1.0) * log2(nf) / log2(base) + 2.0 * (mf + lam - 1.0)
}

/// Corollary 15 (`m ≤ λ`):
/// `T_PL1 ≤ 2λ + 2λ·log n / log(1 + λ/m) + (m − 1)`.
pub fn pipeline1_upper_bound(n: u128, m: u64, latency: Latency) -> f64 {
    let (nf, mf, lam) = (n as f64, m as f64, latency.to_f64());
    2.0 * lam + 2.0 * lam * log2(nf) / log2(1.0 + lam / mf) + (mf - 1.0)
}

/// Corollary 17 (`m ≥ λ`):
/// `T_PL2 ≤ 2m·log n / log(1 + m/λ) + 2m + λ − 1`.
pub fn pipeline2_upper_bound(n: u128, m: u64, latency: Latency) -> f64 {
    let (nf, mf, lam) = (n as f64, m as f64, latency.to_f64());
    2.0 * mf * log2(nf) / log2(1.0 + mf / lam) + 2.0 * mf + lam - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtimes;

    const LAMBDAS: &[(i128, i128)] = &[(1, 1), (3, 2), (2, 1), (5, 2), (4, 1), (10, 1)];

    fn sweep() -> impl Iterator<Item = (u128, u64, Latency)> {
        LAMBDAS.iter().flat_map(|&(p, q)| {
            let lam = Latency::from_ratio(p, q);
            [2u128, 5, 14, 64, 300]
                .into_iter()
                .flat_map(move |n| [1u64, 2, 4, 8, 20].into_iter().map(move |m| (n, m, lam)))
        })
    }

    #[test]
    fn corollary11_dominates_lemma10() {
        for (n, m, lam) in sweep() {
            let exact = runtimes::repeat_time(n, m, lam).to_f64();
            let bound = repeat_upper_bound(n, m, lam);
            assert!(
                exact <= bound + 1e-9,
                "n={n} m={m} λ={lam}: {exact} > {bound}"
            );
        }
    }

    #[test]
    fn corollary13_dominates_lemma12() {
        for (n, m, lam) in sweep() {
            let exact = runtimes::pack_time(n, m, lam).to_f64();
            let bound = pack_upper_bound(n, m, lam);
            assert!(
                exact <= bound + 1e-9,
                "n={n} m={m} λ={lam}: {exact} > {bound}"
            );
        }
    }

    #[test]
    fn corollary15_dominates_lemma14() {
        for (n, m, lam) in sweep() {
            if postal_ratio_ge(lam, m) {
                let exact = runtimes::pipeline1_time(n, m, lam).unwrap().to_f64();
                let bound = pipeline1_upper_bound(n, m, lam);
                assert!(
                    exact <= bound + 1e-9,
                    "n={n} m={m} λ={lam}: {exact} > {bound}"
                );
            }
        }
    }

    #[test]
    fn corollary17_dominates_lemma16() {
        for (n, m, lam) in sweep() {
            if !postal_ratio_ge(lam, m) || lam.value() == crate::Ratio::from_int(m as i128) {
                let exact = runtimes::pipeline2_time(n, m, lam).unwrap().to_f64();
                let bound = pipeline2_upper_bound(n, m, lam);
                assert!(
                    exact <= bound + 1e-9,
                    "n={n} m={m} λ={lam}: {exact} > {bound}"
                );
            }
        }
    }

    /// λ ≥ m?
    fn postal_ratio_ge(lam: Latency, m: u64) -> bool {
        lam.value() >= crate::Ratio::from_int(m as i128)
    }

    #[test]
    fn corollary9_is_below_lemma8() {
        // Corollary 9's log-form lower bound never exceeds the exact
        // Lemma 8 bound (it is the weaker statement).
        for (n, m, lam) in sweep() {
            let exact = runtimes::multi_lower_bound(n, m, lam).to_f64();
            let weak = runtimes::multi_lower_bound_log(n, m, lam);
            assert!(weak <= exact + 1e-9, "n={n} m={m} λ={lam}");
        }
    }
}
