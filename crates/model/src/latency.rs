//! The communication-latency parameter λ.
//!
//! Definition 2 of the paper: if processor `p` sends a message at time `t`,
//! `p` is busy sending during `[t, t+1]` and the recipient `q` is busy
//! receiving during `[t+λ−1, t+λ]`. The parameter λ ≥ 1 is the ratio between
//! door-to-door delivery time and the sender's own send time; λ = 1 recovers
//! the telephone model.
//!
//! [`Latency`] stores λ as an exact rational `p/q` (in lowest terms). All
//! postal-model event times are then multiples of the *tick* `1/q`, which is
//! what lets [`crate::fib::GenFib`] evaluate the generalized Fibonacci step
//! function `F_λ` exactly by walking the tick lattice.

use crate::ratio::Ratio;
use crate::time::Time;
use std::fmt;
use std::str::FromStr;

/// The postal-model communication latency λ ≥ 1, stored exactly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Latency(Ratio);

/// Error constructing a [`Latency`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatencyError {
    /// λ < 1 is not meaningful: delivery cannot finish before the send does.
    TooSmall(Ratio),
    /// The string could not be parsed as a rational number.
    Unparsable(String),
}

impl fmt::Display for LatencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyError::TooSmall(r) => {
                write!(f, "latency must satisfy λ ≥ 1, got {}", r)
            }
            LatencyError::Unparsable(s) => write!(f, "cannot parse latency: {}", s),
        }
    }
}

impl std::error::Error for LatencyError {}

impl Latency {
    /// λ = 1: the telephone model in a fully connected system.
    pub const TELEPHONE: Latency = Latency(Ratio::ONE);

    /// Creates a latency from an exact rational value.
    ///
    /// # Errors
    /// Returns [`LatencyError::TooSmall`] if `value < 1`.
    pub fn new(value: Ratio) -> Result<Latency, LatencyError> {
        if value < Ratio::ONE {
            Err(LatencyError::TooSmall(value))
        } else {
            Ok(Latency(value))
        }
    }

    /// Creates a latency `num/den`.
    ///
    /// # Panics
    /// Panics if `den == 0` or the value is below 1. Use [`Latency::new`]
    /// for fallible construction.
    pub fn from_ratio(num: i128, den: i128) -> Latency {
        Latency::new(Ratio::new(num, den)).expect("latency must satisfy λ ≥ 1")
    }

    /// Creates an integer latency.
    ///
    /// # Panics
    /// Panics if `value < 1`.
    pub fn from_int(value: i128) -> Latency {
        Latency::from_ratio(value, 1)
    }

    /// Approximates an `f64` latency by a rational with denominator ≤ 64.
    ///
    /// The denominator bound keeps the tick lattice coarse enough that
    /// `F_λ` tables stay small; 1/64-unit resolution is far finer than any
    /// measured latency ratio warrants.
    ///
    /// # Errors
    /// Returns an error if the value is below 1 or not finite.
    pub fn from_f64(value: f64) -> Result<Latency, LatencyError> {
        if !value.is_finite() {
            return Err(LatencyError::Unparsable(format!("{value}")));
        }
        Latency::new(Ratio::approximate(value, 64))
    }

    /// The exact rational value of λ.
    pub const fn value(self) -> Ratio {
        self.0
    }

    /// λ as a [`Time`] duration.
    pub fn as_time(self) -> Time {
        Time(self.0)
    }

    /// λ as a [`crate::time::FastTime`] duration: fixed-point `i64`
    /// half-units for every integer and half-integer λ (the paper's
    /// whole grid), the exact rational fallback otherwise. The
    /// simulator's hot path adds this to fixed-point send times, so an
    /// on-lattice λ never touches `Ratio` arithmetic per message.
    pub fn as_fast_time(self) -> crate::time::FastTime {
        crate::time::FastTime::from_time(Time(self.0))
    }

    /// The numerator `p` of λ = p/q in lowest terms: λ measured in ticks.
    pub fn lambda_ticks(self) -> i128 {
        self.0.numer()
    }

    /// The denominator `q` of λ = p/q in lowest terms: ticks per time unit.
    pub fn ticks_per_unit(self) -> i128 {
        self.0.denom()
    }

    /// ⌈λ⌉, used throughout Theorem 7.
    pub fn ceil(self) -> i128 {
        self.0.ceil()
    }

    /// ⌊λ⌋.
    pub fn floor(self) -> i128 {
        self.0.floor()
    }

    /// Approximate value as `f64` (display/plotting only).
    pub fn to_f64(self) -> f64 {
        self.0.to_f64()
    }

    /// Returns `true` for the telephone model λ = 1.
    pub fn is_telephone(self) -> bool {
        self.0 == Ratio::ONE
    }
}

impl fmt::Debug for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ={}", self.0)
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl FromStr for Latency {
    type Err = LatencyError;

    fn from_str(s: &str) -> Result<Latency, LatencyError> {
        let r: Ratio = s
            .parse()
            .map_err(|_| LatencyError::Unparsable(s.to_string()))?;
        Latency::new(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::ratio;

    #[test]
    fn construction() {
        let l = Latency::from_ratio(5, 2);
        assert_eq!(l.value(), ratio(5, 2));
        assert_eq!(l.lambda_ticks(), 5);
        assert_eq!(l.ticks_per_unit(), 2);
        assert_eq!(l.ceil(), 3);
        assert_eq!(l.floor(), 2);
    }

    #[test]
    fn fast_time_form_follows_the_lattice() {
        assert_eq!(
            Latency::from_ratio(5, 2).as_fast_time().as_half_units(),
            Some(5)
        );
        assert_eq!(Latency::from_int(3).as_fast_time().as_half_units(), Some(6));
        assert_eq!(
            Latency::from_ratio(7, 3).as_fast_time().as_half_units(),
            None
        );
        assert_eq!(
            Latency::from_ratio(7, 3).as_fast_time().to_time(),
            Time::new(7, 3)
        );
    }

    #[test]
    fn telephone_model() {
        assert!(Latency::TELEPHONE.is_telephone());
        assert!(!Latency::from_int(2).is_telephone());
        assert_eq!(Latency::TELEPHONE.lambda_ticks(), 1);
        assert_eq!(Latency::TELEPHONE.ticks_per_unit(), 1);
    }

    #[test]
    fn rejects_sub_unit_latency() {
        assert!(matches!(
            Latency::new(ratio(1, 2)),
            Err(LatencyError::TooSmall(_))
        ));
        assert!(Latency::from_f64(0.5).is_err());
        assert!(Latency::from_f64(f64::NAN).is_err());
        assert!(Latency::from_f64(f64::INFINITY).is_err());
    }

    #[test]
    #[should_panic(expected = "λ ≥ 1")]
    fn from_ratio_panics_below_one() {
        let _ = Latency::from_ratio(1, 2);
    }

    #[test]
    fn from_f64_exact_fractions() {
        assert_eq!(Latency::from_f64(2.5).unwrap(), Latency::from_ratio(5, 2));
        assert_eq!(Latency::from_f64(4.0).unwrap(), Latency::from_int(4));
        assert_eq!(Latency::from_f64(1.25).unwrap(), Latency::from_ratio(5, 4));
    }

    #[test]
    fn parse_and_display() {
        let l: Latency = "5/2".parse().unwrap();
        assert_eq!(l, Latency::from_ratio(5, 2));
        let l: Latency = "2.5".parse().unwrap();
        assert_eq!(l, Latency::from_ratio(5, 2));
        assert_eq!(l.to_string(), "5/2");
        assert!("0.5".parse::<Latency>().is_err());
        assert!("xyz".parse::<Latency>().is_err());
    }

    #[test]
    fn lattice_is_lowest_terms() {
        let l = Latency::from_ratio(10, 4); // reduces to 5/2
        assert_eq!(l.lambda_ticks(), 5);
        assert_eq!(l.ticks_per_unit(), 2);
    }
}
