//! The streaming lint engine: the `P0001`–`P0007` suite as an
//! online analysis over a send stream, with bounded memory and no
//! materialized schedule.
//!
//! The batch [`PassManager`](super::PassManager) needs the whole
//! [`Schedule`] in memory before it can build
//! its [`ScheduleIndex`](super::ScheduleIndex). At n = 10⁶ that schedule
//! *is* the scale bottleneck — the simulator itself runs in flat arrays.
//! [`StreamingLint`] removes it: callers push sends one at a time
//! ([`StreamingLint::observe_send`]), advance a **watermark**
//! ([`StreamingLint::advance_watermark`]) as simulated time progresses,
//! and collect the final report from [`StreamingLint::finish`]. Memory
//! is O(n + pending + findings), independent of the total send count.
//!
//! ## How order is recovered
//!
//! The batch engine's output contract is tied to *canonical schedule
//! order* — sends sorted by `(send_start, src, dst)`. A live event
//! stream is ordered by simulation time instead, and a send is observed
//! when it is *issued*, which can precede its start time (output-port
//! serialization). The engine therefore parks observed sends in a
//! pending min-heap keyed on `(send_start, src, dst)` and **finalizes**
//! — pops and feeds to the passes — every send whose key is strictly
//! below the watermark. As long as the caller only advances the
//! watermark to times `t` such that every send starting before `t` has
//! already been observed (true for the engine's clock and for
//! timestamp-sorted logs), finalization order is exactly canonical
//! order, and each pass sees precisely the sweep the batch engine would
//! run. A send observed *late* — starting below the current watermark —
//! sets [`StreamingLint::out_of_order`]; callers should treat the
//! report as unreliable and fall back to batch mode.
//!
//! Two pending heaps keep the hot path on machine integers: an `i64`
//! half-unit lane for on-lattice starts (every grid the paper uses) and
//! an exact-[`Time`] lane for the rest, merged by exact comparison at
//! pop time.
//!
//! ## Online vs `finish`-time passes
//!
//! * `P0001`/`P0002` keep one previous send per output/input port and
//!   emit overlaps online.
//! * `P0003` decides violations online (a receipt informing a send can
//!   never be observed after the send is finalized — see
//!   [`StreamingCausalityPass`]) but renders messages at `finish`, when
//!   first-receipt times are final.
//! * `P0004` buffers malformed sends and replays them in schedule order
//!   at `finish`.
//! * `P0005`/`P0007` are pure `finish`-time checks over the running
//!   first-receipt table and completion maximum.
//! * `P0006` tracks one port cursor and the first idle gap per
//!   processor online, and resolves the gap against the coverage
//!   horizon at `finish`.
//!
//! The staged semantics (shape → broadcast → quality, with quality
//! suppressed by any error) and the final stable sort replicate
//! [`PassManager::run_with_index`](super::PassManager::run_with_index)
//! exactly; `tests/lint_stream_differential.rs` pins the streamed
//! diagnostics byte-identical (rendered and JSON) to the batch output
//! over the full acceptance grid.

use super::passes::PassStage;
use super::{diag_order, Diagnostic, LintCode, LintOptions, Severity};
use crate::fib::GenFib;
use crate::latency::Latency;
use crate::runtimes;
use crate::schedule::{Schedule, TimedSend};
use crate::time::{FastTime, Time};
use crate::topology::{Topology, UNREACHABLE};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::mem::size_of;

/// Sentinel for "no value" in a [`TimeSlots`] half-unit lane. Larger
/// than any representable half-unit value.
const EMPTY: i64 = i64::MAX;
/// Sentinel for "value lives in the exact side table".
const EXACT: i64 = i64::MAX - 1;

/// Per-processor time storage: an `i64` half-unit lane with an exact
/// side table for off-lattice values. Costs 8 bytes per processor plus
/// one hash entry per processor that ever held an off-lattice time
/// (none on the paper's half-integer grids).
struct TimeSlots {
    half: Vec<i64>,
    exact: HashMap<u32, Time>,
}

impl TimeSlots {
    fn new(n: usize) -> TimeSlots {
        TimeSlots {
            half: vec![EMPTY; n],
            exact: HashMap::new(),
        }
    }

    fn get(&self, p: u32) -> Option<Time> {
        match self.half[p as usize] {
            EMPTY => None,
            EXACT => self.exact.get(&p).copied(),
            h => Some(Time::from_half_units(h)),
        }
    }

    fn put(&mut self, p: u32, t: Time) {
        match t.to_half_units() {
            Some(h) if self.half[p as usize] != EXACT => self.half[p as usize] = h,
            _ => {
                self.half[p as usize] = EXACT;
                self.exact.insert(p, t);
            }
        }
    }

    /// Lowers slot `p` toward `h` half-units without leaving the
    /// integer lane (`EMPTY` is `i64::MAX`, so the bare `min` covers
    /// the unset case).
    fn set_min_half(&mut self, p: u32, h: i64) {
        let slot = &mut self.half[p as usize];
        if *slot == EXACT {
            let t = Time::from_half_units(h);
            let e = self.exact.get_mut(&p).expect("EXACT slot has an entry");
            if t < *e {
                *e = t;
            }
        } else if h < *slot {
            *slot = h;
        }
    }

    /// Lowers slot `p` toward `t`.
    fn set_min(&mut self, p: u32, t: Time) {
        match t.to_half_units() {
            Some(h) => self.set_min_half(p, h),
            None => match self.get(p) {
                Some(c) if c <= t => {}
                _ => self.put(p, t),
            },
        }
    }

    fn memory_bytes(&self) -> usize {
        self.half.capacity() * size_of::<i64>()
            + self.exact.capacity() * (size_of::<(u32, Time)>() + size_of::<u64>())
    }
}

/// The running per-stream state every streaming pass shares: processor
/// count, λ, per-processor first-receipt times (updated as sends are
/// observed — the minimum is order-independent) and the running
/// completion maximum over *all* observed sends, malformed included
/// (mirroring [`Schedule::completion`]).
pub struct StreamIndex {
    n: u32,
    latency: Latency,
    lam_half: Option<i64>,
    first_receipt: TimeSlots,
    completion_half: i64,
    completion_exact: Option<Time>,
    sends: u64,
    malformed: u64,
}

impl StreamIndex {
    fn new(n: u32, latency: Latency) -> StreamIndex {
        StreamIndex {
            n,
            latency,
            lam_half: latency.as_time().to_half_units(),
            first_receipt: TimeSlots::new(n as usize),
            completion_half: i64::MIN,
            completion_exact: None,
            sends: 0,
            malformed: 0,
        }
    }

    /// Folds one observed send into the running aggregates.
    fn record(&mut self, s: &TimedSend, well_formed: bool) {
        let half = match (self.lam_half, s.send_start.to_half_units()) {
            // Both ≤ FIXED_LIMIT = i64::MAX/4 in magnitude: no overflow.
            (Some(l), Some(h)) => Some(h + l),
            _ => None,
        };
        match half {
            Some(h) => self.completion_half = self.completion_half.max(h),
            None => {
                let rf = s.recv_finish(self.latency);
                self.completion_exact = Some(match self.completion_exact {
                    Some(c) => c.max(rf),
                    None => rf,
                });
            }
        }
        if well_formed {
            self.sends += 1;
            match half {
                Some(h) => self.first_receipt.set_min_half(s.dst, h),
                None => self
                    .first_receipt
                    .set_min(s.dst, s.recv_finish(self.latency)),
            }
        } else {
            self.malformed += 1;
        }
    }

    /// Processor count of the stream under lint.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// λ of the stream under lint.
    pub fn latency(&self) -> Latency {
        self.latency
    }

    /// When processor `p` first finishes receiving anything *observed
    /// so far*, if ever. Final once the stream ends.
    pub fn first_receipt(&self, p: u32) -> Option<Time> {
        self.first_receipt.get(p)
    }

    /// The latest receive finish over every observed send (malformed
    /// included), or zero for an empty stream — the streaming image of
    /// [`Schedule::completion`].
    pub fn completion(&self) -> Time {
        let fast =
            (self.completion_half != i64::MIN).then(|| Time::from_half_units(self.completion_half));
        match (fast, self.completion_exact) {
            (Some(a), Some(b)) => a.max(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => Time::ZERO,
        }
    }

    /// Well-formed sends observed so far.
    pub fn sends_observed(&self) -> u64 {
        self.sends
    }

    /// Malformed sends observed so far.
    pub fn malformed_observed(&self) -> u64 {
        self.malformed
    }

    /// Currently reserved heap bytes, by container capacity.
    pub fn memory_bytes(&self) -> usize {
        self.first_receipt.memory_bytes()
    }
}

/// One unit of streamed input, handed to every registered pass.
pub enum StreamEvent<'a> {
    /// A well-formed send, finalized in canonical
    /// `(send_start, src, dst)` order — the batch arena sweep order.
    Send(&'a TimedSend),
    /// A structurally malformed send (`P0004` material), delivered at
    /// observation time in stream order.
    Malformed(&'a TimedSend),
}

/// What a streaming pass may look at alongside each event: the shared
/// running index and the caller's options.
pub struct StreamContext<'a> {
    /// The shared running aggregates.
    pub index: &'a StreamIndex,
    /// What the stream is being linted as.
    pub opts: &'a LintOptions,
}

/// One incremental check over the send stream: the streaming
/// counterpart of [`LintPass`](super::LintPass).
///
/// `on_event` is called once per observed send — malformed sends at
/// observation time, well-formed sends on finalization in canonical
/// order — and `finish` once at end of stream. A pass must emit its
/// `finish` diagnostics in the batch engine's canonical *emission*
/// order for its code; the engine's final stable sort then reproduces
/// the batch report byte for byte.
pub trait StreamingLintPass {
    /// Short stable name, matching the batch pass it mirrors.
    fn name(&self) -> &'static str;
    /// When in the staged sweep this pass's findings land.
    fn stage(&self) -> PassStage;
    /// Consumes one streamed send.
    fn on_event(&mut self, cx: &StreamContext<'_>, ev: &StreamEvent<'_>);
    /// Appends this pass's findings to `out` at end of stream.
    fn finish(&mut self, cx: &StreamContext<'_>, out: &mut Vec<Diagnostic>);
    /// Currently reserved heap bytes, by container capacity.
    fn memory_bytes(&self) -> usize {
        0
    }
}

/// The streaming lint engine: feeds observed sends through the
/// registered [`StreamingLintPass`]es with bounded memory.
///
/// See the [module docs](self) for the watermark/finalization protocol
/// and the pass-by-pass incremental strategy.
pub struct StreamingLint {
    opts: LintOptions,
    index: StreamIndex,
    passes: Vec<Box<dyn StreamingLintPass + Send>>,
    /// Pending sends on the half-unit lattice, keyed
    /// `(start_half, src, dst)`.
    pending_fast: BinaryHeap<Reverse<(i64, u32, u32)>>,
    /// Pending off-lattice sends, keyed `(start, src, dst)`.
    pending_exact: BinaryHeap<Reverse<(Time, u32, u32)>>,
    watermark: Time,
    watermark_half: Option<i64>,
    out_of_order: bool,
}

impl StreamingLint {
    /// Creates an engine over `MPS(n, λ)` with the standard pass suite
    /// — the streaming image of
    /// [`PassManager::standard`](super::PassManager::standard). When
    /// `opts.broadcast` is off only the shape passes are registered,
    /// matching the batch staging.
    pub fn new(n: u32, latency: Latency, opts: LintOptions) -> StreamingLint {
        let mut passes: Vec<Box<dyn StreamingLintPass + Send>> = vec![
            Box::new(StreamingMalformedPass::new()),
            Box::new(StreamingOutputPortPass::new(n as usize)),
            Box::new(StreamingInputWindowPass::new(n as usize)),
        ];
        if opts.broadcast {
            passes.push(Box::new(StreamingCausalityPass::new()));
            passes.push(Box::new(StreamingCoveragePass));
            passes.push(Box::new(StreamingIdlePortPass::new(n as usize)));
            passes.push(Box::new(StreamingOptimalityPass));
        }
        StreamingLint {
            opts,
            index: StreamIndex::new(n, latency),
            passes,
            pending_fast: BinaryHeap::new(),
            pending_exact: BinaryHeap::new(),
            watermark: Time::ZERO,
            watermark_half: Some(0),
            out_of_order: false,
        }
    }

    /// [`StreamingLint::new`] plus the topology-grounded passes — the
    /// streaming image of
    /// [`PassManager::standard_with_topology`](super::PassManager::standard_with_topology),
    /// with identical registration order per stage. On the complete
    /// graph the extra passes are vacuous and the output is
    /// byte-identical to [`StreamingLint::new`]'s.
    pub fn with_topology(
        n: u32,
        latency: Latency,
        opts: LintOptions,
        topology: &Topology,
    ) -> StreamingLint {
        let topo = *topology;
        let mut engine = StreamingLint::new(n, latency, opts);
        engine
            .passes
            .push(Box::new(StreamingNonEdgePass::new(topo)));
        if opts.broadcast {
            engine
                .passes
                .push(Box::new(StreamingTopologyReachabilityPass { topo }));
            engine
                .passes
                .push(Box::new(StreamingTopologyOptimalityPass { topo }));
        }
        engine
    }

    /// Observes one send. Malformed sends are classified and dispatched
    /// immediately; well-formed sends are parked until the watermark
    /// passes their start time.
    pub fn observe_send(&mut self, src: u32, dst: u32, send_start: Time) {
        let s = TimedSend {
            src,
            dst,
            send_start,
        };
        let n = self.index.n;
        let well_formed = src < n && dst < n && src != dst && send_start >= Time::ZERO;
        self.index.record(&s, well_formed);
        if !well_formed {
            let cx = StreamContext {
                index: &self.index,
                opts: &self.opts,
            };
            let ev = StreamEvent::Malformed(&s);
            for pass in &mut self.passes {
                pass.on_event(&cx, &ev);
            }
            return;
        }
        if send_start < self.watermark {
            // The watermark already passed this start: finalization
            // order can no longer be canonical.
            self.out_of_order = true;
        }
        match send_start.to_half_units() {
            Some(h) => self.pending_fast.push(Reverse((h, src, dst))),
            None => self.pending_exact.push(Reverse((send_start, src, dst))),
        }
    }

    /// Raises the watermark to `t` (never lowers it) and finalizes
    /// every pending send starting strictly before it. The caller
    /// guarantees that all sends starting before `t` have been
    /// observed; the engine's simulation clock and the timestamps of a
    /// sorted event log both satisfy this.
    pub fn advance_watermark(&mut self, t: Time) {
        if t > self.watermark {
            self.watermark_half = t.to_half_units();
            self.watermark = t;
        }
        // Integer-only fast path: all pending on-lattice, watermark
        // on-lattice.
        if self.pending_exact.is_empty() {
            if let Some(w) = self.watermark_half {
                while let Some(&Reverse((h, src, dst))) = self.pending_fast.peek() {
                    if h >= w {
                        return;
                    }
                    self.pending_fast.pop();
                    self.dispatch_send(TimedSend {
                        src,
                        dst,
                        send_start: Time::from_half_units(h),
                    });
                }
                return;
            }
        }
        while let Some((key, s)) = self.peek_min() {
            if key >= self.watermark {
                return;
            }
            self.pop_min();
            self.dispatch_send(s);
        }
    }

    /// The smaller of the two heap tops, by exact key. A fast-lane and
    /// an exact-lane entry can never carry the same start time (a time
    /// either has a half-unit form or it does not), so the merge is
    /// unambiguous.
    fn peek_min(&self) -> Option<(Time, TimedSend)> {
        let fast = self.pending_fast.peek().map(|&Reverse((h, src, dst))| {
            (
                Time::from_half_units(h),
                TimedSend {
                    src,
                    dst,
                    send_start: Time::from_half_units(h),
                },
            )
        });
        let exact = self.pending_exact.peek().map(|&Reverse((t, src, dst))| {
            (
                t,
                TimedSend {
                    src,
                    dst,
                    send_start: t,
                },
            )
        });
        match (fast, exact) {
            (Some(f), Some(e)) => {
                let fk = (f.0, f.1.src, f.1.dst);
                let ek = (e.0, e.1.src, e.1.dst);
                Some(if fk < ek { f } else { e })
            }
            (Some(f), None) => Some(f),
            (None, Some(e)) => Some(e),
            (None, None) => None,
        }
    }

    fn pop_min(&mut self) {
        match (self.pending_fast.peek(), self.pending_exact.peek()) {
            (Some(&Reverse((h, fs, fd))), Some(&Reverse((t, es, ed)))) => {
                if (Time::from_half_units(h), fs, fd) < (t, es, ed) {
                    self.pending_fast.pop();
                } else {
                    self.pending_exact.pop();
                }
            }
            (Some(_), None) => {
                self.pending_fast.pop();
            }
            (None, Some(_)) => {
                self.pending_exact.pop();
            }
            (None, None) => {}
        }
    }

    fn dispatch_send(&mut self, s: TimedSend) {
        let cx = StreamContext {
            index: &self.index,
            opts: &self.opts,
        };
        let ev = StreamEvent::Send(&s);
        for pass in &mut self.passes {
            pass.on_event(&cx, &ev);
        }
    }

    /// True when a send was observed after the watermark had already
    /// passed its start: the streamed report is unreliable and the
    /// caller should fall back to batch linting.
    pub fn out_of_order(&self) -> bool {
        self.out_of_order
    }

    /// The running aggregates (processor count, λ, first receipts,
    /// completion).
    pub fn index(&self) -> &StreamIndex {
        &self.index
    }

    /// Sends observed but not yet finalized.
    pub fn pending_len(&self) -> usize {
        self.pending_fast.len() + self.pending_exact.len()
    }

    /// Currently reserved linter heap bytes, by container capacity:
    /// pending heaps, the shared index, and every pass's state. This is
    /// the number the `exp_stream_lint` budget gates.
    pub fn memory_bytes(&self) -> usize {
        self.pending_fast.capacity() * size_of::<Reverse<(i64, u32, u32)>>()
            + self.pending_exact.capacity() * size_of::<Reverse<(Time, u32, u32)>>()
            + self.index.memory_bytes()
            + self.passes.iter().map(|p| p.memory_bytes()).sum::<usize>()
    }

    /// Finalizes every pending send, runs each pass's `finish` in the
    /// batch engine's staged order, and returns the report.
    ///
    /// The staging replicates
    /// [`PassManager::run_with_index`](super::PassManager::run_with_index):
    /// shape findings first (returned unsorted when the stream is not
    /// linted as a broadcast — the engine's historical ports-only
    /// contract), then broadcast validity, then — only when no error
    /// was found — the quality lints, with one final stable sort into
    /// report order.
    pub fn finish(mut self) -> Vec<Diagnostic> {
        // Drain: everything still pending is final now.
        while let Some((_, s)) = self.peek_min() {
            self.pop_min();
            self.dispatch_send(s);
        }
        let mut passes = std::mem::take(&mut self.passes);
        let cx = StreamContext {
            index: &self.index,
            opts: &self.opts,
        };
        let mut diags = Vec::new();
        let mut run_stage = |stage: PassStage, out: &mut Vec<Diagnostic>| {
            for pass in &mut passes {
                if pass.stage() == stage {
                    pass.finish(&cx, out);
                }
            }
        };
        run_stage(PassStage::Shape, &mut diags);
        if !self.opts.broadcast {
            return diags;
        }
        run_stage(PassStage::Broadcast, &mut diags);
        if diags.iter().any(|d| d.severity == Severity::Error) {
            diags.sort_by_key(diag_order);
            return diags;
        }
        run_stage(PassStage::Quality, &mut diags);
        diags.sort_by_key(diag_order);
        diags
    }
}

/// Drives [`StreamingLint`] over a materialized schedule: the
/// differential harness for pinning streamed output byte-identical to
/// [`lint_schedule`](super::lint_schedule).
pub fn lint_schedule_streaming(schedule: &Schedule, opts: &LintOptions) -> Vec<Diagnostic> {
    let mut lint = StreamingLint::new(schedule.n(), schedule.latency(), *opts);
    for s in schedule.sends() {
        lint.advance_watermark(s.send_start);
        lint.observe_send(s.src, s.dst, s.send_start);
    }
    lint.finish()
}

/// [`lint_schedule_streaming`] with the topology-grounded passes of
/// [`StreamingLint::with_topology`]: the streaming counterpart of
/// [`lint_schedule_with_topology`](super::lint_schedule_with_topology),
/// pinned byte-identical to it by `tests/topology_differential.rs`.
pub fn lint_schedule_streaming_with_topology(
    schedule: &Schedule,
    opts: &LintOptions,
    topology: &Topology,
) -> Vec<Diagnostic> {
    let mut lint = StreamingLint::with_topology(schedule.n(), schedule.latency(), *opts, topology);
    for s in schedule.sends() {
        lint.advance_watermark(s.send_start);
        lint.observe_send(s.src, s.dst, s.send_start);
    }
    lint.finish()
}

/// Whether `b` starts less than one unit after `a` — the shared
/// `P0001`/`P0002` window condition, on machine integers whenever both
/// starts sit on the half-unit lattice.
fn lt_one_apart(a: Time, b: Time) -> bool {
    match (a.to_half_units(), b.to_half_units()) {
        (Some(x), Some(y)) => y < x + 2,
        _ => b < a + Time::ONE,
    }
}

/// `P0004`, streaming: malformed sends buffer at observation and
/// replay in schedule order at `finish`.
pub struct StreamingMalformedPass {
    found: Vec<TimedSend>,
}

impl StreamingMalformedPass {
    /// Creates the pass with an empty buffer.
    pub fn new() -> StreamingMalformedPass {
        StreamingMalformedPass { found: Vec::new() }
    }
}

impl Default for StreamingMalformedPass {
    fn default() -> StreamingMalformedPass {
        StreamingMalformedPass::new()
    }
}

impl StreamingLintPass for StreamingMalformedPass {
    fn name(&self) -> &'static str {
        "malformed-send"
    }

    fn stage(&self) -> PassStage {
        PassStage::Shape
    }

    fn on_event(&mut self, _cx: &StreamContext<'_>, ev: &StreamEvent<'_>) {
        if let StreamEvent::Malformed(s) = ev {
            self.found.push(**s);
        }
    }

    fn finish(&mut self, cx: &StreamContext<'_>, out: &mut Vec<Diagnostic>) {
        // Schedule order: `Schedule::new` sorts by (start, src, dst)
        // and the batch index preserves that order in its malformed
        // partition.
        self.found.sort_by_key(|s| (s.send_start, s.src, s.dst));
        let n = cx.index.n();
        let lam = cx.index.latency();
        for s in &self.found {
            let what = if s.src == s.dst {
                "self-send"
            } else if s.src >= n || s.dst >= n {
                "endpoint out of range"
            } else {
                "negative start time"
            };
            out.push(Diagnostic {
                code: LintCode::MalformedSend,
                severity: Severity::Error,
                witness: None,
                proc: Some(s.src),
                sends: vec![*s],
                related_time: None,
                message: format!(
                    "{what}: p{} -> p{} at t = {} in MPS({n}, {lam})",
                    s.src, s.dst, s.send_start
                ),
            });
        }
    }

    fn memory_bytes(&self) -> usize {
        self.found.capacity() * size_of::<TimedSend>()
    }
}

/// `P0001`, streaming: one previous send per output port; overlaps are
/// detected online and grouped by processor at `finish`.
pub struct StreamingOutputPortPass {
    prev_start: TimeSlots,
    prev_dst: Vec<u32>,
    found: Vec<(u32, Diagnostic)>,
}

impl StreamingOutputPortPass {
    /// Creates the pass for `n` processors.
    pub fn new(n: usize) -> StreamingOutputPortPass {
        StreamingOutputPortPass {
            prev_start: TimeSlots::new(n),
            prev_dst: vec![0; n],
            found: Vec::new(),
        }
    }
}

impl StreamingLintPass for StreamingOutputPortPass {
    fn name(&self) -> &'static str {
        "output-port"
    }

    fn stage(&self) -> PassStage {
        PassStage::Shape
    }

    fn on_event(&mut self, _cx: &StreamContext<'_>, ev: &StreamEvent<'_>) {
        let StreamEvent::Send(b) = ev else {
            return;
        };
        let src = b.src;
        if let Some(a_start) = self.prev_start.get(src) {
            if lt_one_apart(a_start, b.send_start) {
                let a = TimedSend {
                    src,
                    dst: self.prev_dst[src as usize],
                    send_start: a_start,
                };
                self.found.push((
                    src,
                    Diagnostic {
                        code: LintCode::OutputPortOverlap,
                        severity: Severity::Error,
                        witness: None,
                        proc: Some(src),
                        sends: vec![a, **b],
                        related_time: None,
                        message: format!(
                            "p{src} starts sends at t = {} and t = {} ({} < 1 unit apart)",
                            a.send_start,
                            b.send_start,
                            b.send_start - a.send_start,
                        ),
                    },
                ));
            }
        }
        self.prev_start.put(src, b.send_start);
        self.prev_dst[src as usize] = b.dst;
    }

    fn finish(&mut self, _cx: &StreamContext<'_>, out: &mut Vec<Diagnostic>) {
        // The batch pass emits per src in ascending order; the stable
        // sort keeps each processor's overlaps in detection (= bucket)
        // order.
        self.found.sort_by_key(|(src, _)| *src);
        out.extend(self.found.drain(..).map(|(_, d)| d));
    }

    fn memory_bytes(&self) -> usize {
        self.prev_start.memory_bytes()
            + self.prev_dst.capacity() * size_of::<u32>()
            + self.found.capacity() * size_of::<(u32, Diagnostic)>()
    }
}

/// `P0002`, streaming: one previous receive window per input port;
/// overlaps are detected online and grouped by processor at `finish`.
pub struct StreamingInputWindowPass {
    prev_start: TimeSlots,
    prev_src: Vec<u32>,
    found: Vec<(u32, Diagnostic)>,
}

impl StreamingInputWindowPass {
    /// Creates the pass for `n` processors.
    pub fn new(n: usize) -> StreamingInputWindowPass {
        StreamingInputWindowPass {
            prev_start: TimeSlots::new(n),
            prev_src: vec![0; n],
            found: Vec::new(),
        }
    }
}

impl StreamingLintPass for StreamingInputWindowPass {
    fn name(&self) -> &'static str {
        "input-window"
    }

    fn stage(&self) -> PassStage {
        PassStage::Shape
    }

    fn on_event(&mut self, cx: &StreamContext<'_>, ev: &StreamEvent<'_>) {
        let StreamEvent::Send(b) = ev else {
            return;
        };
        let dst = b.dst;
        if let Some(a_start) = self.prev_start.get(dst) {
            // Receive finishes are send starts shifted by the constant
            // λ, so the window condition is the same
            // less-than-one-unit-apart comparison.
            if lt_one_apart(a_start, b.send_start) {
                let a = TimedSend {
                    src: self.prev_src[dst as usize],
                    dst,
                    send_start: a_start,
                };
                let lam = cx.index.latency();
                let (f0, f1) = (a.recv_finish(lam), b.recv_finish(lam));
                self.found.push((
                    dst,
                    Diagnostic {
                        code: LintCode::InputWindowOverlap,
                        severity: Severity::Error,
                        witness: None,
                        proc: Some(dst),
                        sends: vec![a, **b],
                        related_time: None,
                        message: format!(
                            "p{dst}'s receive windows [{}, {}] and [{}, {}] overlap",
                            f0 - Time::ONE,
                            f0,
                            f1 - Time::ONE,
                            f1,
                        ),
                    },
                ));
            }
        }
        self.prev_start.put(dst, b.send_start);
        self.prev_src[dst as usize] = b.src;
    }

    fn finish(&mut self, _cx: &StreamContext<'_>, out: &mut Vec<Diagnostic>) {
        self.found.sort_by_key(|(dst, _)| *dst);
        out.extend(self.found.drain(..).map(|(_, d)| d));
    }

    fn memory_bytes(&self) -> usize {
        self.prev_start.memory_bytes()
            + self.prev_src.capacity() * size_of::<u32>()
            + self.found.capacity() * size_of::<(u32, Diagnostic)>()
    }
}

/// `P0003`, streaming: the violation *decision* is made online — when a
/// send is finalized at watermark `w > start`, every receipt finishing
/// at or before `start` has already been observed (its informing send
/// started at least λ earlier), so "the sender did not hold the message
/// yet" is final. The message *text* needs the sender's eventual
/// first-receipt time, so violations buffer in finalization (= arena)
/// order and render at `finish`.
pub struct StreamingCausalityPass {
    found: Vec<TimedSend>,
}

impl StreamingCausalityPass {
    /// Creates the pass with an empty buffer.
    pub fn new() -> StreamingCausalityPass {
        StreamingCausalityPass { found: Vec::new() }
    }
}

impl Default for StreamingCausalityPass {
    fn default() -> StreamingCausalityPass {
        StreamingCausalityPass::new()
    }
}

impl StreamingLintPass for StreamingCausalityPass {
    fn name(&self) -> &'static str {
        "causality"
    }

    fn stage(&self) -> PassStage {
        PassStage::Broadcast
    }

    fn on_event(&mut self, cx: &StreamContext<'_>, ev: &StreamEvent<'_>) {
        let StreamEvent::Send(s) = ev else {
            return;
        };
        if s.src == cx.opts.originator {
            return;
        }
        let informed = matches!(cx.index.first_receipt(s.src), Some(t) if t <= s.send_start);
        if !informed {
            self.found.push(**s);
        }
    }

    fn finish(&mut self, cx: &StreamContext<'_>, out: &mut Vec<Diagnostic>) {
        for s in &self.found {
            let knows_at = cx.index.first_receipt(s.src);
            out.push(Diagnostic {
                code: LintCode::CausalityViolation,
                severity: Severity::Error,
                witness: None,
                proc: Some(s.src),
                sends: vec![*s],
                related_time: knows_at,
                message: match knows_at {
                    Some(t) => format!(
                        "p{} sends at t = {} but first holds the message at t = {}",
                        s.src, s.send_start, t
                    ),
                    None => format!(
                        "p{} sends at t = {} but never receives the message",
                        s.src, s.send_start
                    ),
                },
            });
        }
    }

    fn memory_bytes(&self) -> usize {
        self.found.capacity() * size_of::<TimedSend>()
    }
}

/// `P0005`, streaming: a pure `finish`-time sweep of the running
/// first-receipt table.
pub struct StreamingCoveragePass;

impl StreamingLintPass for StreamingCoveragePass {
    fn name(&self) -> &'static str {
        "coverage"
    }

    fn stage(&self) -> PassStage {
        PassStage::Broadcast
    }

    fn on_event(&mut self, _cx: &StreamContext<'_>, _ev: &StreamEvent<'_>) {}

    fn finish(&mut self, cx: &StreamContext<'_>, out: &mut Vec<Diagnostic>) {
        let idx = cx.index;
        for p in 0..idx.n() {
            if p != cx.opts.originator && idx.first_receipt(p).is_none() {
                out.push(Diagnostic {
                    code: LintCode::UninformedProcessor,
                    severity: Severity::Error,
                    witness: None,
                    proc: Some(p),
                    sends: Vec::new(),
                    related_time: None,
                    message: format!("p{p} never receives the broadcast message"),
                });
            }
        }
    }
}

/// `P0006`, streaming: tracks each output port's busy cursor and its
/// *first* idle gap online, and resolves that gap against the coverage
/// horizon at `finish`.
///
/// Only the first gap matters: the batch pass reports the earliest gap
/// whose hypothetical delivery beats some processor's actual receipt,
/// and that test is monotone — the receipt it compares against does not
/// depend on the gap, so if the earliest gap fails the test every later
/// (larger) gap fails too.
///
/// The per-processor informed time is read from the running
/// first-receipt table when the port's first send finalizes. In an
/// error-free run that value is already final (causality holds, so the
/// informing receipt precedes the first send, and later receipts finish
/// strictly later); in a run with errors the quality stage is
/// suppressed and the state is never read.
pub struct StreamingIdlePortPass {
    cursor: TimeSlots,
    first_gap: HashMap<u32, Time>,
}

impl StreamingIdlePortPass {
    /// Creates the pass for `n` processors.
    pub fn new(n: usize) -> StreamingIdlePortPass {
        StreamingIdlePortPass {
            cursor: TimeSlots::new(n),
            first_gap: HashMap::new(),
        }
    }
}

impl StreamingLintPass for StreamingIdlePortPass {
    fn name(&self) -> &'static str {
        "idle-port"
    }

    fn stage(&self) -> PassStage {
        PassStage::Quality
    }

    fn on_event(&mut self, cx: &StreamContext<'_>, ev: &StreamEvent<'_>) {
        let StreamEvent::Send(s) = ev else {
            return;
        };
        let src = s.src;
        let start = FastTime::from_time(s.send_start);
        let cur = match self.cursor.get(src) {
            Some(c) => FastTime::from_time(c),
            None => {
                // First send from this port: the cursor opens at the
                // processor's informed time (garbage-tolerant when the
                // sender is not yet informed — that is a P0003 error
                // and suppresses this stage).
                let informed_at = if src == cx.opts.originator {
                    Some(FastTime::ZERO)
                } else {
                    cx.index.first_receipt(src).map(FastTime::from_time)
                };
                informed_at.unwrap_or(start)
            }
        };
        if start > cur {
            self.first_gap.entry(src).or_insert_with(|| cur.to_time());
        }
        self.cursor
            .put(src, cur.max(start + FastTime::ONE).to_time());
    }

    fn finish(&mut self, cx: &StreamContext<'_>, out: &mut Vec<Diagnostic>) {
        let idx = cx.index;
        let n = idx.n();
        let lam = FastTime::from_time(idx.latency().as_time());

        // The coverage horizon and the two latest first-receipts
        // (distinct processors): enough to answer "does any processor
        // other than `src` first receive after time x?" in O(1).
        let mut completion_of_coverage = FastTime::ZERO;
        let mut latest: Option<(Time, u32)> = None;
        let mut second: Option<(Time, u32)> = None;
        for p in 0..n {
            let Some(t) = idx.first_receipt(p) else {
                continue;
            };
            completion_of_coverage = completion_of_coverage.max(FastTime::from_time(t));
            if latest.is_none_or(|(lt, lp)| (t, p) > (lt, lp)) {
                second = latest;
                latest = Some((t, p));
            } else if second.is_none_or(|(st, sp)| (t, p) > (st, sp)) {
                second = Some((t, p));
            }
        }
        let receipt_after = |x: FastTime, src: u32| -> Option<(Time, u32)> {
            match latest {
                Some((t, q)) if q != src && FastTime::from_time(t) > x => Some((t, q)),
                Some((_, q)) if q == src => second.filter(|&(t, _)| FastTime::from_time(t) > x),
                _ => None,
            }
        };

        for src in 0..n {
            let informed_at = if src == cx.opts.originator {
                Some(FastTime::ZERO)
            } else {
                idx.first_receipt(src).map(FastTime::from_time)
            };
            let Some(informed_at) = informed_at else {
                continue;
            };
            // The candidate gap: the first recorded idle gap, else the
            // open-ended gap after the last send (the port's whole
            // informed life, for a port that never sent).
            let gap = match self.cursor.get(src) {
                None => (informed_at < completion_of_coverage).then_some(informed_at),
                Some(c) => match self.first_gap.get(&src) {
                    Some(&g) => Some(FastTime::from_time(g)),
                    None => {
                        let c = FastTime::from_time(c);
                        (c < completion_of_coverage).then_some(c)
                    }
                },
            };
            let Some(g) = gap else {
                continue;
            };
            let hypothetical = g + lam;
            // An uninformed-at-g processor whose eventual receipt
            // is strictly later than the hypothetical delivery.
            if let Some((t, q)) = receipt_after(hypothetical, src) {
                out.push(Diagnostic {
                    code: LintCode::IdlePortWaste,
                    severity: Severity::Warn,
                    witness: None,
                    proc: Some(src),
                    sends: Vec::new(),
                    related_time: Some(g.to_time()),
                    message: format!(
                        "p{src} is informed and idle from t = {g} although a send then \
                         would reach p{q} at t = {hypothetical}, earlier than its actual \
                         receipt at t = {t}"
                    ),
                });
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.cursor.memory_bytes()
            + self.first_gap.capacity() * (size_of::<(u32, Time)>() + size_of::<u64>())
    }
}

/// `P0007`, streaming: a pure `finish`-time check of the running
/// completion maximum against `f_λ(n)` / the Lemma 8 bound.
pub struct StreamingOptimalityPass;

impl StreamingLintPass for StreamingOptimalityPass {
    fn name(&self) -> &'static str {
        "optimality"
    }

    fn stage(&self) -> PassStage {
        PassStage::Quality
    }

    fn on_event(&mut self, _cx: &StreamContext<'_>, _ev: &StreamEvent<'_>) {}

    fn finish(&mut self, cx: &StreamContext<'_>, out: &mut Vec<Diagnostic>) {
        let n = cx.index.n();
        let lam = cx.index.latency();
        // Only sensible when there is something to broadcast to.
        if n < 2 {
            return;
        }
        let completion = cx.index.completion();
        let m = cx.opts.messages.max(1);
        let optimal = if m == 1 {
            GenFib::new(lam).index(n as u128)
        } else {
            runtimes::multi_lower_bound(n as u128, m, lam)
        };
        if completion < optimal {
            out.push(Diagnostic {
                code: LintCode::OptimalityGap,
                severity: Severity::Error,
                witness: None,
                proc: None,
                sends: Vec::new(),
                related_time: Some(optimal),
                message: format!(
                    "completes at t = {completion}, beating the proven lower bound {optimal} \
                     for {m} message(s) in MPS({n}, {lam}) — the schedule cannot be a full \
                     broadcast"
                ),
            });
        } else if completion > optimal {
            let (severity, bound_name) = if m == 1 {
                (Severity::Warn, "the optimum f_lambda(n)")
            } else {
                // The Lemma 8 bound is not always attainable, so a gap
                // against it is informational, not a defect.
                (
                    Severity::Info,
                    "the Lemma 8 lower bound (m-1) + f_lambda(n)",
                )
            };
            out.push(Diagnostic {
                code: LintCode::OptimalityGap,
                severity,
                witness: None,
                proc: None,
                sends: Vec::new(),
                related_time: Some(optimal),
                message: format!(
                    "completes at t = {completion}; {bound_name} is {optimal} \
                     (gap {} units)",
                    completion - optimal
                ),
            });
        }
    }
}

/// `P0017`, streaming: well-formed sends arrive in canonical arena
/// order (the finalization protocol's guarantee), so non-edge findings
/// are detected online and appended verbatim at `finish` — the same
/// order the batch pass produces by sweeping the arena.
pub struct StreamingNonEdgePass {
    topo: Topology,
    found: Vec<Diagnostic>,
}

impl StreamingNonEdgePass {
    /// Creates the pass over the given communication graph.
    pub fn new(topo: Topology) -> StreamingNonEdgePass {
        StreamingNonEdgePass {
            topo,
            found: Vec::new(),
        }
    }
}

impl StreamingLintPass for StreamingNonEdgePass {
    fn name(&self) -> &'static str {
        "non-edge"
    }

    fn stage(&self) -> PassStage {
        PassStage::Shape
    }

    fn on_event(&mut self, _cx: &StreamContext<'_>, ev: &StreamEvent<'_>) {
        let StreamEvent::Send(s) = ev else {
            return;
        };
        if self.topo.is_complete() || self.topo.is_edge(s.src, s.dst) {
            return;
        }
        let spec = self.topo.spec();
        self.found.push(Diagnostic {
            code: LintCode::NonEdgeSend,
            severity: Severity::Error,
            witness: None,
            proc: Some(s.src),
            sends: vec![**s],
            related_time: None,
            message: format!(
                "p{} sends to p{} at t = {}, but p{}-p{} is not an edge \
                 of the {spec} topology",
                s.src, s.dst, s.send_start, s.src, s.dst
            ),
        });
    }

    fn finish(&mut self, _cx: &StreamContext<'_>, out: &mut Vec<Diagnostic>) {
        out.append(&mut self.found);
    }

    fn memory_bytes(&self) -> usize {
        self.found.capacity() * size_of::<Diagnostic>()
    }
}

/// `P0019`, streaming: a pure `finish`-time BFS over the topology,
/// root-cause-suppressing the `P0005`s the coverage pass (registered
/// earlier in the Broadcast stage) already emitted for partitioned
/// processors — identical logic to the batch pass.
pub struct StreamingTopologyReachabilityPass {
    /// The communication graph to check reachability over.
    pub topo: Topology,
}

impl StreamingLintPass for StreamingTopologyReachabilityPass {
    fn name(&self) -> &'static str {
        "topology-reachability"
    }

    fn stage(&self) -> PassStage {
        PassStage::Broadcast
    }

    fn on_event(&mut self, _cx: &StreamContext<'_>, _ev: &StreamEvent<'_>) {}

    fn finish(&mut self, cx: &StreamContext<'_>, out: &mut Vec<Diagnostic>) {
        if self.topo.is_complete() {
            return;
        }
        let n = cx.index.n();
        let orig = cx.opts.originator;
        let spec = self.topo.spec();
        let dist = self.topo.bfs_distances(orig);
        let cut: Vec<u32> = (0..n)
            .filter(|&p| {
                p != orig && dist.get(p as usize).copied().unwrap_or(UNREACHABLE) == UNREACHABLE
            })
            .collect();
        if cut.is_empty() {
            return;
        }
        let mut suppressed: Vec<u32> = Vec::new();
        out.retain(|d| {
            let cover = d.code == LintCode::UninformedProcessor
                && d.proc.is_some_and(|p| cut.binary_search(&p).is_ok());
            if cover {
                suppressed.push(d.proc.unwrap_or(u32::MAX));
            }
            !cover
        });
        for p in cut {
            let note = if suppressed.contains(&p) {
                " (suppresses the timing-level P0005)"
            } else {
                ""
            };
            out.push(Diagnostic {
                code: LintCode::TopologyPartitionUnreachable,
                severity: Severity::Error,
                witness: None,
                proc: Some(p),
                sends: Vec::new(),
                related_time: None,
                message: format!(
                    "p{p} has no path from the originator p{orig} in the {spec} \
                     topology — no schedule can inform it{note}"
                ),
            });
        }
    }
}

/// `P0018`, streaming: a pure `finish`-time check of the running
/// completion maximum against the BFS bound `(m−1) + λ·ecc(originator)`
/// — identical arithmetic to the batch pass.
pub struct StreamingTopologyOptimalityPass {
    /// The communication graph whose eccentricity grounds the bound.
    pub topo: Topology,
}

impl StreamingLintPass for StreamingTopologyOptimalityPass {
    fn name(&self) -> &'static str {
        "topology-optimality"
    }

    fn stage(&self) -> PassStage {
        PassStage::Quality
    }

    fn on_event(&mut self, _cx: &StreamContext<'_>, _ev: &StreamEvent<'_>) {}

    fn finish(&mut self, cx: &StreamContext<'_>, out: &mut Vec<Diagnostic>) {
        let n = cx.index.n();
        if self.topo.is_complete() || n < 2 {
            return;
        }
        let lam = cx.index.latency();
        let spec = self.topo.spec();
        let orig = cx.opts.originator;
        let completion = cx.index.completion();
        let m = cx.opts.messages.max(1);
        let ecc = self.topo.eccentricity(orig);
        let bound = Time::from_int(m as i128 - 1) + lam.as_time().mul_int(ecc as i128);
        if completion < bound {
            out.push(Diagnostic {
                code: LintCode::TopologyOptimalityGap,
                severity: Severity::Error,
                witness: None,
                proc: None,
                sends: Vec::new(),
                related_time: Some(bound),
                message: format!(
                    "completes at t = {completion}, beating the {spec} topology \
                     lower bound {bound} for {m} message(s) from p{orig} — some \
                     transfer must bypass the graph"
                ),
            });
        } else if completion > bound {
            // Like the Lemma 8 bound, λ·ecc is not always attainable:
            // a gap is suspect for one message, informational beyond.
            let severity = if m == 1 {
                Severity::Warn
            } else {
                Severity::Info
            };
            out.push(Diagnostic {
                code: LintCode::TopologyOptimalityGap,
                severity,
                witness: None,
                proc: None,
                sends: Vec::new(),
                related_time: Some(bound),
                message: format!(
                    "completes at t = {completion}; the {spec} topology lower \
                     bound (m-1) + lambda*ecc(p{orig}) is {bound} (gap {} units)",
                    completion - bound
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{lint_schedule, PassManager};
    use super::*;

    fn send(src: u32, dst: u32, num: i128, den: i128) -> TimedSend {
        TimedSend {
            src,
            dst,
            send_start: Time::new(num, den),
        }
    }

    fn lam52() -> Latency {
        Latency::from_ratio(5, 2)
    }

    /// A messy schedule exercising every pass at once.
    fn messy() -> Schedule {
        Schedule::new(
            5,
            lam52(),
            vec![
                send(0, 1, 0, 1),
                send(0, 2, 1, 2), // P0001 + P0002 pressure
                send(1, 3, 1, 1), // P0003: p1 not yet informed
                send(2, 2, 0, 1), // P0004 self-send
                send(0, 7, 2, 1), // P0004 out of range
                                  // p4 never informed: P0005
            ],
        )
    }

    #[test]
    fn streaming_matches_batch_on_a_messy_schedule() {
        for opts in [
            LintOptions::default(),
            LintOptions::ports_only(),
            LintOptions::broadcast_of(3),
        ] {
            assert_eq!(
                lint_schedule_streaming(&messy(), &opts),
                PassManager::standard().run(&messy(), &opts),
                "{opts:?}"
            );
        }
    }

    #[test]
    fn streaming_matches_batch_on_clean_and_lazy_broadcasts() {
        // Optimal two-hop (clean), then a lazy line (P0006 + P0007).
        for sends in [
            vec![send(0, 1, 0, 1), send(0, 2, 1, 1)],
            vec![send(0, 1, 0, 1), send(1, 2, 5, 2)],
        ] {
            let s = Schedule::new(3, lam52(), sends);
            let opts = LintOptions::default();
            assert_eq!(lint_schedule_streaming(&s, &opts), lint_schedule(&s, &opts));
        }
    }

    #[test]
    fn streaming_matches_batch_off_the_half_unit_lattice() {
        // λ = 4/3 keeps every receive window off-lattice; the exact
        // pending lane and exact slots must agree with batch.
        let s = Schedule::new(
            3,
            Latency::from_ratio(4, 3),
            vec![send(0, 1, 0, 1), send(0, 2, 1, 3), send(1, 2, 2, 1)],
        );
        for opts in [LintOptions::default(), LintOptions::ports_only()] {
            assert_eq!(lint_schedule_streaming(&s, &opts), lint_schedule(&s, &opts));
        }
    }

    #[test]
    fn observation_order_within_a_watermark_step_is_immaterial() {
        // Three same-instant sends observed in reverse processor order:
        // the pending heap restores canonical order before any pass
        // sees them.
        let sends = [send(2, 3, 0, 1), send(1, 2, 0, 1), send(0, 1, 0, 1)];
        let mut lint = StreamingLint::new(4, Latency::from_int(2), LintOptions::ports_only());
        for s in &sends {
            lint.observe_send(s.src, s.dst, s.send_start);
        }
        assert_eq!(lint.pending_len(), 3);
        let streamed = lint.finish();
        let batch = lint_schedule(
            &Schedule::new(4, Latency::from_int(2), sends.to_vec()),
            &LintOptions::ports_only(),
        );
        assert_eq!(streamed, batch);
    }

    #[test]
    fn late_send_sets_the_out_of_order_flag() {
        let mut lint = StreamingLint::new(4, Latency::from_int(2), LintOptions::default());
        lint.observe_send(0, 1, Time::ZERO);
        lint.advance_watermark(Time::from_int(3));
        assert!(!lint.out_of_order());
        lint.observe_send(0, 2, Time::ONE); // starts below the watermark
        assert!(lint.out_of_order());
    }

    #[test]
    fn a_send_starting_at_the_watermark_is_not_late() {
        let mut lint = StreamingLint::new(3, Latency::from_int(2), LintOptions::default());
        lint.advance_watermark(Time::ZERO);
        lint.observe_send(0, 1, Time::ZERO);
        lint.advance_watermark(Time::ONE);
        lint.observe_send(0, 2, Time::ONE);
        assert!(!lint.out_of_order());
    }

    #[test]
    fn zero_event_stream_reports_coverage_errors_only() {
        let diags = StreamingLint::new(4, lam52(), LintOptions::default()).finish();
        assert_eq!(diags.len(), 3);
        assert!(diags
            .iter()
            .all(|d| d.code == LintCode::UninformedProcessor));
        let batch = lint_schedule(
            &Schedule::new(4, lam52(), Vec::new()),
            &LintOptions::default(),
        );
        assert_eq!(diags, batch);
        // n = 1 with nothing to inform is clean.
        assert!(StreamingLint::new(1, lam52(), LintOptions::default())
            .finish()
            .is_empty());
    }

    #[test]
    fn index_tracks_completion_and_counts() {
        let mut lint = StreamingLint::new(3, lam52(), LintOptions::default());
        lint.observe_send(0, 1, Time::ZERO);
        lint.observe_send(1, 1, Time::ONE); // malformed self-send
        assert_eq!(lint.index().sends_observed(), 1);
        assert_eq!(lint.index().malformed_observed(), 1);
        // Completion counts malformed sends too, like
        // Schedule::completion: 1 + 5/2 = 7/2.
        assert_eq!(lint.index().completion(), Time::new(7, 2));
        assert!(lint.memory_bytes() > 0);
    }

    #[test]
    fn time_slots_mix_lattice_and_exact_values() {
        let mut slots = TimeSlots::new(2);
        assert_eq!(slots.get(0), None);
        slots.set_min(0, Time::new(5, 2));
        assert_eq!(slots.get(0), Some(Time::new(5, 2)));
        // An off-lattice minimum migrates the slot to the side table...
        slots.set_min(0, Time::new(1, 3));
        assert_eq!(slots.get(0), Some(Time::new(1, 3)));
        // ...and later lattice values keep comparing exactly.
        slots.set_min(0, Time::new(1, 4));
        assert_eq!(slots.get(0), Some(Time::new(1, 4)));
        slots.set_min(0, Time::from_int(7));
        assert_eq!(slots.get(0), Some(Time::new(1, 4)));
        slots.put(1, Time::new(1, 3));
        slots.put(1, Time::from_int(2));
        assert_eq!(slots.get(1), Some(Time::from_int(2)));
    }
}
