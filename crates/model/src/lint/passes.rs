//! The single-sweep pass manager driving every `P0001`–`P0007` check.
//!
//! A [`PassManager`] builds one [`ScheduleIndex`] and runs each
//! registered [`LintPass`] over it, in three stages that reproduce the
//! engine's staged semantics exactly:
//!
//! 1. **Shape** (`P0004`, `P0001`, `P0002`) — always run; for
//!    non-broadcast lints ([`LintOptions::ports_only`]) the sweep stops
//!    here and returns the findings in emission order (the engine's
//!    historical contract).
//! 2. **Broadcast** (`P0003`, `P0005`) — run when
//!    [`LintOptions::broadcast`] is set. Any error so far suppresses
//!    the quality stage: a broken schedule's completion time is
//!    meaningless.
//! 3. **Quality** (`P0006`, `P0007`) — warnings and notes about
//!    schedules that are valid but wasteful.
//!
//! Passes emit into one shared diagnostic vector; the manager sorts it
//! once at the end (broadcast mode only, matching the seed engine).
//! Output is byte-identical to
//! [`reference::lint_schedule_reference`](super::reference::lint_schedule_reference),
//! which the differential suite asserts over the full acceptance grid.

use super::index::ScheduleIndex;
use super::{diag_order, Diagnostic, LintCode, LintOptions, Severity};
use crate::fib::GenFib;
use crate::runtimes;
use crate::schedule::Schedule;
use crate::time::{FastTime, Time};
use crate::topology::{Topology, UNREACHABLE};

/// When in the sweep a pass runs (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassStage {
    /// Port and shape rules; always run.
    Shape,
    /// Broadcast validity rules; run when `opts.broadcast`.
    Broadcast,
    /// Quality lints; run only when no error was found.
    Quality,
}

/// Everything a pass may look at: the one-time index, the raw schedule
/// (for `completion`), and the caller's options.
pub struct PassContext<'a> {
    /// The shared CSR index over the schedule's sends.
    pub index: &'a ScheduleIndex,
    /// The schedule under lint.
    pub schedule: &'a Schedule,
    /// What to lint the schedule as.
    pub opts: &'a LintOptions,
}

/// One check over the shared [`ScheduleIndex`].
///
/// A pass must emit its diagnostics in the engine's canonical
/// *emission* order (by processor, then bucket order) — the manager
/// relies on stable sorting to keep equal-key diagnostics in emission
/// order, which is part of the byte-identical output contract.
pub trait LintPass {
    /// Short stable name, e.g. `"output-port"`.
    fn name(&self) -> &'static str;
    /// When in the sweep this pass runs.
    fn stage(&self) -> PassStage;
    /// Appends this pass's findings to `out`.
    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>);
}

/// Drives a configured sequence of [`LintPass`]es in one sweep over a
/// schedule.
pub struct PassManager {
    passes: Vec<Box<dyn LintPass>>,
}

impl PassManager {
    /// The full engine: `P0004`, `P0001`, `P0002`, `P0003`, `P0005`,
    /// `P0006`, `P0007`, in canonical emission order.
    pub fn standard() -> PassManager {
        PassManager {
            passes: vec![
                Box::new(MalformedSendPass),
                Box::new(OutputPortPass),
                Box::new(InputWindowPass),
                Box::new(CausalityPass),
                Box::new(CoveragePass),
                Box::new(IdlePortPass),
                Box::new(OptimalityPass),
            ],
        }
    }

    /// [`PassManager::standard`] plus the topology-grounded passes:
    /// `P0017` (Shape, after `P0002`), `P0019` (Broadcast, after
    /// `P0005`, which it root-cause-suppresses), and `P0018` (Quality,
    /// after `P0007`). On the complete graph all three are vacuous —
    /// every pair is an edge, every processor is reachable, and the
    /// BFS bound defers to the stronger `f_λ(n)` of `P0007` — so the
    /// output is byte-identical to [`PassManager::standard`].
    ///
    /// `topology` must be instantiated for the schedule's processor
    /// count (out-of-range processors read as non-edges/unreachable).
    pub fn standard_with_topology(topology: &Topology) -> PassManager {
        let topo = *topology;
        PassManager {
            passes: vec![
                Box::new(MalformedSendPass),
                Box::new(OutputPortPass),
                Box::new(InputWindowPass),
                Box::new(NonEdgeSendPass { topo }),
                Box::new(CausalityPass),
                Box::new(CoveragePass),
                Box::new(TopologyReachabilityPass { topo }),
                Box::new(IdlePortPass),
                Box::new(OptimalityPass),
                Box::new(TopologyOptimalityPass { topo }),
            ],
        }
    }

    /// An empty manager, for assembling a custom pass list.
    pub fn empty() -> PassManager {
        PassManager { passes: Vec::new() }
    }

    /// Appends a pass (builder style).
    #[must_use]
    pub fn with_pass(mut self, pass: Box<dyn LintPass>) -> PassManager {
        self.passes.push(pass);
        self
    }

    /// The registered passes, in sweep order.
    pub fn passes(&self) -> &[Box<dyn LintPass>] {
        &self.passes
    }

    /// Builds the [`ScheduleIndex`] and runs the sweep.
    pub fn run(&self, schedule: &Schedule, opts: &LintOptions) -> Vec<Diagnostic> {
        let index = ScheduleIndex::build(schedule);
        self.run_with_index(&index, schedule, opts)
    }

    /// Runs the sweep over a prebuilt index (lets callers amortize the
    /// index across several option sets).
    pub fn run_with_index(
        &self,
        index: &ScheduleIndex,
        schedule: &Schedule,
        opts: &LintOptions,
    ) -> Vec<Diagnostic> {
        let cx = PassContext {
            index,
            schedule,
            opts,
        };
        let mut diags = Vec::new();
        self.run_stage(PassStage::Shape, &cx, &mut diags);
        if !opts.broadcast {
            // Historical contract: port-only lints return in emission
            // order, unsorted.
            return diags;
        }
        self.run_stage(PassStage::Broadcast, &cx, &mut diags);
        if diags.iter().any(|d| d.severity == Severity::Error) {
            diags.sort_by_key(diag_order);
            return diags;
        }
        self.run_stage(PassStage::Quality, &cx, &mut diags);
        diags.sort_by_key(diag_order);
        diags
    }

    fn run_stage(&self, stage: PassStage, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        for pass in &self.passes {
            if pass.stage() == stage {
                pass.run(cx, out);
            }
        }
    }
}

/// `P0004` — structurally malformed sends, in schedule order.
pub struct MalformedSendPass;

impl LintPass for MalformedSendPass {
    fn name(&self) -> &'static str {
        "malformed-send"
    }

    fn stage(&self) -> PassStage {
        PassStage::Shape
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        let n = cx.index.n();
        let lam = cx.index.latency();
        for s in cx.index.malformed() {
            let what = if s.src == s.dst {
                "self-send"
            } else if s.src >= n || s.dst >= n {
                "endpoint out of range"
            } else {
                "negative start time"
            };
            out.push(Diagnostic {
                code: LintCode::MalformedSend,
                severity: Severity::Error,
                witness: None,
                proc: Some(s.src),
                sends: vec![*s],
                related_time: None,
                message: format!(
                    "{what}: p{} -> p{} at t = {} in MPS({n}, {lam})",
                    s.src, s.dst, s.send_start
                ),
            });
        }
    }
}

/// `P0001` — output-port overlap: consecutive sends from one processor
/// start less than one unit apart.
pub struct OutputPortPass;

impl LintPass for OutputPortPass {
    fn name(&self) -> &'static str {
        "output-port"
    }

    fn stage(&self) -> PassStage {
        PassStage::Shape
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        let idx = cx.index;
        let arena = idx.arena();
        for src in 0..idx.n() {
            for pair in idx.by_src(src).windows(2) {
                let (i, j) = (pair[0] as usize, pair[1] as usize);
                if idx.lt_one_apart(i, j) {
                    let (a, b) = (arena[i], arena[j]);
                    out.push(Diagnostic {
                        code: LintCode::OutputPortOverlap,
                        severity: Severity::Error,
                        witness: None,
                        proc: Some(src),
                        sends: vec![a, b],
                        related_time: None,
                        message: format!(
                            "p{src} starts sends at t = {} and t = {} ({} < 1 unit apart)",
                            a.send_start,
                            b.send_start,
                            b.send_start - a.send_start,
                        ),
                    });
                }
            }
        }
    }
}

/// `P0002` — input-window overlap: two receive windows
/// `[s+λ−1, s+λ]` at one processor finish less than one unit apart.
pub struct InputWindowPass;

impl LintPass for InputWindowPass {
    fn name(&self) -> &'static str {
        "input-window"
    }

    fn stage(&self) -> PassStage {
        PassStage::Shape
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        let idx = cx.index;
        let arena = idx.arena();
        let lam = idx.latency();
        for dst in 0..idx.n() {
            for pair in idx.by_dst(dst).windows(2) {
                let (i, j) = (pair[0] as usize, pair[1] as usize);
                // Receive finishes are send starts shifted by the
                // constant λ, so the window condition is the same
                // less-than-one-unit-apart comparison.
                if idx.lt_one_apart(i, j) {
                    let (a, b) = (arena[i], arena[j]);
                    let (f0, f1) = (a.recv_finish(lam), b.recv_finish(lam));
                    out.push(Diagnostic {
                        code: LintCode::InputWindowOverlap,
                        severity: Severity::Error,
                        witness: None,
                        proc: Some(dst),
                        sends: vec![a, b],
                        related_time: None,
                        message: format!(
                            "p{dst}'s receive windows [{}, {}] and [{}, {}] overlap",
                            f0 - Time::ONE,
                            f0,
                            f1 - Time::ONE,
                            f1,
                        ),
                    });
                }
            }
        }
    }
}

/// `P0003` — causality: a non-originator must hold the message before
/// its first send of it.
pub struct CausalityPass;

impl LintPass for CausalityPass {
    fn name(&self) -> &'static str {
        "causality"
    }

    fn stage(&self) -> PassStage {
        PassStage::Broadcast
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        let idx = cx.index;
        for (i, s) in idx.arena().iter().enumerate() {
            if s.src == cx.opts.originator || idx.sender_informed(i) {
                continue;
            }
            let knows_at = idx.first_receipt(s.src);
            out.push(Diagnostic {
                code: LintCode::CausalityViolation,
                severity: Severity::Error,
                witness: None,
                proc: Some(s.src),
                sends: vec![*s],
                related_time: knows_at,
                message: match knows_at {
                    Some(t) => format!(
                        "p{} sends at t = {} but first holds the message at t = {}",
                        s.src, s.send_start, t
                    ),
                    None => format!(
                        "p{} sends at t = {} but never receives the message",
                        s.src, s.send_start
                    ),
                },
            });
        }
    }
}

/// `P0005` — coverage: every processor but the originator must receive.
pub struct CoveragePass;

impl LintPass for CoveragePass {
    fn name(&self) -> &'static str {
        "coverage"
    }

    fn stage(&self) -> PassStage {
        PassStage::Broadcast
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        let idx = cx.index;
        for p in 0..idx.n() {
            if p != cx.opts.originator && idx.first_receipt(p).is_none() {
                out.push(Diagnostic {
                    code: LintCode::UninformedProcessor,
                    severity: Severity::Error,
                    witness: None,
                    proc: Some(p),
                    sends: Vec::new(),
                    related_time: None,
                    message: format!("p{p} never receives the broadcast message"),
                });
            }
        }
    }
}

/// `P0006` — idle-port waste: an informed output port idles although a
/// send in the gap would inform someone strictly earlier.
///
/// The cursor arithmetic runs on [`FastTime`] — `i64` fixed-point on
/// the half-integer lattice, exact-`Ratio` fallback off it — so the
/// O(E) gap scan stays on machine integers for every grid λ.
pub struct IdlePortPass;

impl LintPass for IdlePortPass {
    fn name(&self) -> &'static str {
        "idle-port"
    }

    fn stage(&self) -> PassStage {
        PassStage::Quality
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        let idx = cx.index;
        let n = idx.n();
        let arena = idx.arena();
        let lam = FastTime::from_time(idx.latency().as_time());

        // The coverage horizon and the two latest first-receipts
        // (distinct processors): enough to answer "does any processor
        // other than `src` first receive after time x?" in O(1).
        let mut completion_of_coverage = FastTime::ZERO;
        let mut latest: Option<(Time, u32)> = None;
        let mut second: Option<(Time, u32)> = None;
        for p in 0..n {
            let Some(t) = idx.first_receipt(p) else {
                continue;
            };
            completion_of_coverage = completion_of_coverage.max(FastTime::from_time(t));
            if latest.is_none_or(|(lt, lp)| (t, p) > (lt, lp)) {
                second = latest;
                latest = Some((t, p));
            } else if second.is_none_or(|(st, sp)| (t, p) > (st, sp)) {
                second = Some((t, p));
            }
        }
        let receipt_after = |x: FastTime, src: u32| -> Option<(Time, u32)> {
            match latest {
                Some((t, q)) if q != src && FastTime::from_time(t) > x => Some((t, q)),
                Some((_, q)) if q == src => second.filter(|&(t, _)| FastTime::from_time(t) > x),
                _ => None,
            }
        };

        'procs: for src in 0..n {
            let informed_at = if src == cx.opts.originator {
                Some(FastTime::ZERO)
            } else {
                idx.first_receipt(src).map(FastTime::from_time)
            };
            let Some(informed_at) = informed_at else {
                continue;
            };
            // Idle gaps: [informed_at, first send), between consecutive
            // sends, and after the last send (open-ended).
            let my_sends = idx.by_src(src);
            let mut gap_starts: Vec<FastTime> = Vec::with_capacity(my_sends.len() + 1);
            let mut cursor = informed_at;
            for &i in my_sends {
                let start = FastTime::from_time(arena[i as usize].send_start);
                if start > cursor {
                    gap_starts.push(cursor);
                }
                cursor = cursor.max(start + FastTime::ONE);
            }
            if cursor < completion_of_coverage {
                gap_starts.push(cursor);
            }
            for g in gap_starts {
                let hypothetical = g + lam;
                // An uninformed-at-g processor whose eventual receipt
                // is strictly later than the hypothetical delivery.
                if let Some((t, q)) = receipt_after(hypothetical, src) {
                    out.push(Diagnostic {
                        code: LintCode::IdlePortWaste,
                        severity: Severity::Warn,
                        witness: None,
                        proc: Some(src),
                        sends: Vec::new(),
                        related_time: Some(g.to_time()),
                        message: format!(
                            "p{src} is informed and idle from t = {g} although a send then \
                             would reach p{q} at t = {hypothetical}, earlier than its actual \
                             receipt at t = {t}"
                        ),
                    });
                    continue 'procs;
                }
            }
        }
    }
}

/// `P0007` — optimality gap against `f_λ(n)` (m = 1) or the Lemma 8
/// lower bound (m > 1).
pub struct OptimalityPass;

impl LintPass for OptimalityPass {
    fn name(&self) -> &'static str {
        "optimality"
    }

    fn stage(&self) -> PassStage {
        PassStage::Quality
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        let n = cx.index.n();
        let lam = cx.index.latency();
        // Only sensible when there is something to broadcast to.
        if n < 2 {
            return;
        }
        let completion = cx.schedule.completion();
        let m = cx.opts.messages.max(1);
        let optimal = if m == 1 {
            GenFib::new(lam).index(n as u128)
        } else {
            runtimes::multi_lower_bound(n as u128, m, lam)
        };
        if completion < optimal {
            out.push(Diagnostic {
                code: LintCode::OptimalityGap,
                severity: Severity::Error,
                witness: None,
                proc: None,
                sends: Vec::new(),
                related_time: Some(optimal),
                message: format!(
                    "completes at t = {completion}, beating the proven lower bound {optimal} \
                     for {m} message(s) in MPS({n}, {lam}) — the schedule cannot be a full \
                     broadcast"
                ),
            });
        } else if completion > optimal {
            let (severity, bound_name) = if m == 1 {
                (Severity::Warn, "the optimum f_lambda(n)")
            } else {
                // The Lemma 8 bound is not always attainable, so a gap
                // against it is informational, not a defect.
                (
                    Severity::Info,
                    "the Lemma 8 lower bound (m-1) + f_lambda(n)",
                )
            };
            out.push(Diagnostic {
                code: LintCode::OptimalityGap,
                severity,
                witness: None,
                proc: None,
                sends: Vec::new(),
                related_time: Some(optimal),
                message: format!(
                    "completes at t = {completion}; {bound_name} is {optimal} \
                     (gap {} units)",
                    completion - optimal
                ),
            });
        }
    }
}

/// `P0017` — non-edge send: a transfer connects two processors that are
/// not adjacent in the communication graph. Sweeps the well-formed
/// arena in canonical order; malformed sends (`P0004`) have no defined
/// endpoints on the graph and are not re-reported here.
pub struct NonEdgeSendPass {
    /// The communication graph to check adjacency against.
    pub topo: Topology,
}

impl LintPass for NonEdgeSendPass {
    fn name(&self) -> &'static str {
        "non-edge"
    }

    fn stage(&self) -> PassStage {
        PassStage::Shape
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        if self.topo.is_complete() {
            return;
        }
        let spec = self.topo.spec();
        for s in cx.index.arena() {
            if !self.topo.is_edge(s.src, s.dst) {
                out.push(Diagnostic {
                    code: LintCode::NonEdgeSend,
                    severity: Severity::Error,
                    witness: None,
                    proc: Some(s.src),
                    sends: vec![*s],
                    related_time: None,
                    message: format!(
                        "p{} sends to p{} at t = {}, but p{}-p{} is not an edge \
                         of the {spec} topology",
                        s.src, s.dst, s.send_start, s.src, s.dst
                    ),
                });
            }
        }
    }
}

/// `P0019` — topology partition: a processor with no path from the
/// originator in the graph can never be informed, by any schedule.
/// Root-cause-suppresses the timing-level `P0005` for the same
/// processor (the graph-level fact explains the timing-level absence),
/// mirroring how `P0012` silences downstream findings in `postal-abs`.
pub struct TopologyReachabilityPass {
    /// The communication graph to check reachability over.
    pub topo: Topology,
}

impl LintPass for TopologyReachabilityPass {
    fn name(&self) -> &'static str {
        "topology-reachability"
    }

    fn stage(&self) -> PassStage {
        PassStage::Broadcast
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        if self.topo.is_complete() {
            return;
        }
        let n = cx.index.n();
        let orig = cx.opts.originator;
        let spec = self.topo.spec();
        let dist = self.topo.bfs_distances(orig);
        let cut: Vec<u32> = (0..n)
            .filter(|&p| {
                p != orig && dist.get(p as usize).copied().unwrap_or(UNREACHABLE) == UNREACHABLE
            })
            .collect();
        if cut.is_empty() {
            return;
        }
        // The graph-level finding replaces the timing-level one: drop
        // the P0005 already emitted for each partitioned processor.
        let mut suppressed: Vec<u32> = Vec::new();
        out.retain(|d| {
            let cover = d.code == LintCode::UninformedProcessor
                && d.proc.is_some_and(|p| cut.binary_search(&p).is_ok());
            if cover {
                suppressed.push(d.proc.unwrap_or(u32::MAX));
            }
            !cover
        });
        for p in cut {
            let note = if suppressed.contains(&p) {
                " (suppresses the timing-level P0005)"
            } else {
                ""
            };
            out.push(Diagnostic {
                code: LintCode::TopologyPartitionUnreachable,
                severity: Severity::Error,
                witness: None,
                proc: Some(p),
                sends: Vec::new(),
                related_time: None,
                message: format!(
                    "p{p} has no path from the originator p{orig} in the {spec} \
                     topology — no schedule can inform it{note}"
                ),
            });
        }
    }
}

/// `P0018` — topology optimality gap against the static BFS lower
/// bound `(m−1) + λ·ecc(originator)`: a message reaching a processor
/// at graph distance `d` traverses `d` edges at λ per hop. The
/// sparse-graph analogue of `P0007`'s Lemma 8 gap; never emitted for
/// the complete graph, where `P0007`'s `f_λ(n)` bound is stronger.
pub struct TopologyOptimalityPass {
    /// The communication graph whose eccentricity grounds the bound.
    pub topo: Topology,
}

impl LintPass for TopologyOptimalityPass {
    fn name(&self) -> &'static str {
        "topology-optimality"
    }

    fn stage(&self) -> PassStage {
        PassStage::Quality
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        let n = cx.index.n();
        if self.topo.is_complete() || n < 2 {
            return;
        }
        let lam = cx.index.latency();
        let spec = self.topo.spec();
        let orig = cx.opts.originator;
        let completion = cx.schedule.completion();
        let m = cx.opts.messages.max(1);
        let ecc = self.topo.eccentricity(orig);
        let bound = Time::from_int(m as i128 - 1) + lam.as_time().mul_int(ecc as i128);
        if completion < bound {
            out.push(Diagnostic {
                code: LintCode::TopologyOptimalityGap,
                severity: Severity::Error,
                witness: None,
                proc: None,
                sends: Vec::new(),
                related_time: Some(bound),
                message: format!(
                    "completes at t = {completion}, beating the {spec} topology \
                     lower bound {bound} for {m} message(s) from p{orig} — some \
                     transfer must bypass the graph"
                ),
            });
        } else if completion > bound {
            // Like the Lemma 8 bound, λ·ecc is not always attainable:
            // a gap is suspect for one message, informational beyond.
            let severity = if m == 1 {
                Severity::Warn
            } else {
                Severity::Info
            };
            out.push(Diagnostic {
                code: LintCode::TopologyOptimalityGap,
                severity,
                witness: None,
                proc: None,
                sends: Vec::new(),
                related_time: Some(bound),
                message: format!(
                    "completes at t = {completion}; the {spec} topology lower \
                     bound (m-1) + lambda*ecc(p{orig}) is {bound} (gap {} units)",
                    completion - bound
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::reference::lint_schedule_reference;
    use super::*;
    use crate::latency::Latency;
    use crate::schedule::TimedSend;

    fn send(src: u32, dst: u32, num: i128, den: i128) -> TimedSend {
        TimedSend {
            src,
            dst,
            send_start: Time::new(num, den),
        }
    }

    /// A messy schedule exercising every pass at once.
    fn messy() -> Schedule {
        Schedule::new(
            5,
            Latency::from_ratio(5, 2),
            vec![
                send(0, 1, 0, 1),
                send(0, 2, 1, 2), // P0001 + P0002 pressure
                send(1, 3, 1, 1), // P0003: p1 not yet informed
                send(2, 2, 0, 1), // P0004 self-send
                send(0, 7, 2, 1), // P0004 out of range
                                  // p4 never informed: P0005
            ],
        )
    }

    #[test]
    fn manager_matches_reference_on_a_messy_schedule() {
        for opts in [
            LintOptions::default(),
            LintOptions::ports_only(),
            LintOptions::broadcast_of(3),
        ] {
            let fast = PassManager::standard().run(&messy(), &opts);
            let slow = lint_schedule_reference(&messy(), &opts);
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn manager_matches_reference_off_the_half_integer_lattice() {
        // λ = 4/3 disables the fast lane; the exact path must agree.
        let s = Schedule::new(
            3,
            Latency::from_ratio(4, 3),
            vec![send(0, 1, 0, 1), send(0, 2, 1, 3), send(1, 2, 2, 1)],
        );
        for opts in [LintOptions::default(), LintOptions::ports_only()] {
            assert_eq!(
                PassManager::standard().run(&s, &opts),
                lint_schedule_reference(&s, &opts)
            );
        }
    }

    fn topo(spec: &str, n: u32) -> Topology {
        spec.parse::<crate::topology::TopologySpec>()
            .unwrap()
            .instantiate(n)
            .unwrap()
    }

    #[test]
    fn topology_passes_are_vacuous_on_complete() {
        let complete = Topology::complete(5);
        for opts in [
            LintOptions::default(),
            LintOptions::ports_only(),
            LintOptions::broadcast_of(3),
        ] {
            assert_eq!(
                PassManager::standard_with_topology(&complete).run(&messy(), &opts),
                PassManager::standard().run(&messy(), &opts),
            );
        }
    }

    #[test]
    fn p0017_fires_on_a_ring_chord() {
        // 0 -> 2 is a chord of the 4-ring; 0 -> 1 is an edge.
        let s = Schedule::new(
            4,
            Latency::from_int(2),
            vec![send(0, 1, 0, 1), send(0, 2, 1, 1)],
        );
        let diags = PassManager::standard_with_topology(&topo("ring", 4))
            .run(&s, &LintOptions::ports_only());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::NonEdgeSend);
        assert_eq!(diags[0].proc, Some(0));
        assert_eq!(
            diags[0].message,
            "p0 sends to p2 at t = 1, but p0-p2 is not an edge of the ring topology"
        );
    }

    #[test]
    fn p0018_warns_on_a_gap_and_errors_below_the_bound() {
        // Ring of 3 = triangle, ecc = 1, bound = λ = 1; the two-hop line
        // completes at 2 → warn with gap 1. (f_1(3) = 2, so P0007 stays
        // silent — the graph bound is the only finding.)
        let lam = Latency::from_int(1);
        let s = Schedule::new(3, lam, vec![send(0, 1, 0, 1), send(1, 2, 1, 1)]);
        let diags =
            PassManager::standard_with_topology(&topo("ring", 3)).run(&s, &LintOptions::default());
        assert_eq!(
            diags.iter().map(|d| d.code).collect::<Vec<_>>(),
            vec![LintCode::TopologyOptimalityGap]
        );
        assert_eq!(diags[0].severity, Severity::Warn);
        assert_eq!(diags[0].related_time, Some(Time::from_int(1)));

        // Beating λ·ecc requires bypassing the graph; drive the pass
        // alone so the P0017 error does not suppress the quality stage.
        let fast = Schedule::new(
            4,
            Latency::from_ratio(5, 2),
            vec![send(0, 1, 0, 1), send(0, 3, 1, 1), send(0, 2, 2, 1)],
        );
        let only = PassManager::empty().with_pass(Box::new(TopologyOptimalityPass {
            topo: topo("ring", 4),
        }));
        let diags = only.run(&fast, &LintOptions::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::TopologyOptimalityGap);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn p0019_suppresses_p0005_for_partitioned_processors() {
        // A 2-ring oracle against a 3-processor schedule: p2 is outside
        // the graph entirely, the degenerate image of a partition. The
        // timing-level P0005 must fold into the graph-level P0019.
        let s = Schedule::new(3, Latency::from_int(2), vec![send(0, 1, 0, 1)]);
        let diags =
            PassManager::standard_with_topology(&topo("ring", 2)).run(&s, &LintOptions::default());
        assert_eq!(
            diags.iter().map(|d| d.code).collect::<Vec<_>>(),
            vec![LintCode::TopologyPartitionUnreachable]
        );
        assert_eq!(diags[0].proc, Some(2));
        assert!(
            diags[0]
                .message
                .ends_with("(suppresses the timing-level P0005)"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn custom_manager_runs_a_subset() {
        let only_ports = PassManager::empty()
            .with_pass(Box::new(MalformedSendPass))
            .with_pass(Box::new(OutputPortPass));
        let diags = only_ports.run(&messy(), &LintOptions::ports_only());
        assert!(diags.iter().all(|d| matches!(
            d.code,
            LintCode::MalformedSend | LintCode::OutputPortOverlap
        )));
        assert_eq!(only_ports.passes().len(), 2);
        assert_eq!(only_ports.passes()[1].name(), "output-port");
        assert_eq!(only_ports.passes()[1].stage(), PassStage::Shape);
    }
}
