//! The retained seed lint engine, kept verbatim as a differential
//! oracle for the single-sweep [`PassManager`](super::PassManager).
//!
//! This is the original `lint_schedule` implementation: one
//! `HashMap<u32, Vec<TimedSend>>` grouping pass per check, with the
//! per-destination clone-and-sort the fast engine eliminates. It is
//! O(E) extra memory per check and was never a bottleneck at the seed
//! envelope (n ≤ 64), but it does not scale to million-send schedules.
//! It stays in the tree for one purpose: the differential test suite
//! (`tests/lint_differential.rs`) asserts the pass manager
//! produces **byte-identical** diagnostics to this function over the
//! full acceptance grid, so any behavioral drift in the fast engine is
//! caught against a frozen, obviously-correct baseline.
//!
//! Do not optimize this module; its value is that it never changes.

use super::{diag_order, Diagnostic, LintCode, LintOptions, Severity};
use crate::fib::GenFib;
use crate::runtimes;
use crate::schedule::{Schedule, TimedSend};
use crate::time::Time;
use std::collections::HashMap;

/// Runs every applicable lint over `schedule` with the seed engine.
/// Same contract and output as [`lint_schedule`](super::lint_schedule);
/// quadratic-ish constants, kept as the differential oracle.
pub fn lint_schedule_reference(schedule: &Schedule, opts: &LintOptions) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = schedule.n();
    let lam = schedule.latency();
    let sends = schedule.sends();

    // P0004 — malformed sends. Malformed sends are excluded from the
    // remaining checks so one root cause yields one diagnostic.
    let mut well_formed: Vec<TimedSend> = Vec::with_capacity(sends.len());
    for s in sends {
        if s.src >= n || s.dst >= n || s.src == s.dst || s.send_start < Time::ZERO {
            let what = if s.src == s.dst {
                "self-send"
            } else if s.src >= n || s.dst >= n {
                "endpoint out of range"
            } else {
                "negative start time"
            };
            diags.push(Diagnostic {
                code: LintCode::MalformedSend,
                severity: Severity::Error,
                witness: None,
                proc: Some(s.src),
                sends: vec![*s],
                related_time: None,
                message: format!(
                    "{what}: p{} -> p{} at t = {} in MPS({n}, {lam})",
                    s.src, s.dst, s.send_start
                ),
            });
        } else {
            well_formed.push(*s);
        }
    }

    // P0001 — output-port overlap: consecutive send starts < 1 apart.
    let mut by_src: HashMap<u32, Vec<TimedSend>> = HashMap::new();
    for s in &well_formed {
        by_src.entry(s.src).or_default().push(*s);
    }
    let mut srcs: Vec<u32> = by_src.keys().copied().collect();
    srcs.sort_unstable();
    for src in &srcs {
        let list = &by_src[src];
        for pair in list.windows(2) {
            if pair[1].send_start < pair[0].send_start + Time::ONE {
                diags.push(Diagnostic {
                    code: LintCode::OutputPortOverlap,
                    severity: Severity::Error,
                    witness: None,
                    proc: Some(*src),
                    sends: vec![pair[0], pair[1]],
                    related_time: None,
                    message: format!(
                        "p{src} starts sends at t = {} and t = {} ({} < 1 unit apart)",
                        pair[0].send_start,
                        pair[1].send_start,
                        pair[1].send_start - pair[0].send_start,
                    ),
                });
            }
        }
    }

    // P0002 — input-window overlap: receive finishes < 1 apart.
    let mut by_dst: HashMap<u32, Vec<TimedSend>> = HashMap::new();
    for s in &well_formed {
        by_dst.entry(s.dst).or_default().push(*s);
    }
    let mut dsts: Vec<u32> = by_dst.keys().copied().collect();
    dsts.sort_unstable();
    for dst in &dsts {
        let mut list = by_dst[dst].clone();
        list.sort_by_key(|s| (s.recv_finish(lam), s.src));
        for pair in list.windows(2) {
            let (f0, f1) = (pair[0].recv_finish(lam), pair[1].recv_finish(lam));
            if f1 < f0 + Time::ONE {
                diags.push(Diagnostic {
                    code: LintCode::InputWindowOverlap,
                    severity: Severity::Error,
                    witness: None,
                    proc: Some(*dst),
                    sends: vec![pair[0], pair[1]],
                    related_time: None,
                    message: format!(
                        "p{dst}'s receive windows [{}, {}] and [{}, {}] overlap",
                        f0 - Time::ONE,
                        f0,
                        f1 - Time::ONE,
                        f1,
                    ),
                });
            }
        }
    }

    if !opts.broadcast {
        return diags;
    }

    // First-receipt times over well-formed sends.
    let mut knows: HashMap<u32, Time> = HashMap::new();
    for s in &well_formed {
        let r = s.recv_finish(lam);
        knows
            .entry(s.dst)
            .and_modify(|t| *t = (*t).min(r))
            .or_insert(r);
    }

    // P0003 — causality: senders other than the originator must know
    // the message before their first send.
    for s in &well_formed {
        if s.src == opts.originator {
            continue;
        }
        match knows.get(&s.src) {
            Some(&t) if t <= s.send_start => {}
            other => {
                let knows_at = other.copied();
                diags.push(Diagnostic {
                    code: LintCode::CausalityViolation,
                    severity: Severity::Error,
                    witness: None,
                    proc: Some(s.src),
                    sends: vec![*s],
                    related_time: knows_at,
                    message: match knows_at {
                        Some(t) => format!(
                            "p{} sends at t = {} but first holds the message at t = {}",
                            s.src, s.send_start, t
                        ),
                        None => format!(
                            "p{} sends at t = {} but never receives the message",
                            s.src, s.send_start
                        ),
                    },
                });
            }
        }
    }

    // P0005 — coverage: everyone but the originator must be informed.
    for p in 0..n {
        if p != opts.originator && !knows.contains_key(&p) {
            diags.push(Diagnostic {
                code: LintCode::UninformedProcessor,
                severity: Severity::Error,
                witness: None,
                proc: Some(p),
                sends: Vec::new(),
                related_time: None,
                message: format!("p{p} never receives the broadcast message"),
            });
        }
    }

    // The quality lints below reason about completion; they are only
    // meaningful once the schedule is actually a valid broadcast.
    if diags.iter().any(|d| d.severity == Severity::Error) {
        diags.sort_by_key(diag_order);
        return diags;
    }

    // P0006 — idle-port waste. A send by p in an idle gap starting at g
    // would inform an uninformed processor q at g + λ; if q's actual
    // first receipt is later than that, the gap is provably wasteful
    // (q's input port is necessarily free — it has received nothing).
    // One finding per processor keeps the signal readable.
    let completion_of_coverage = knows.values().copied().max().unwrap_or(Time::ZERO);
    // The two latest first-receipts (distinct processors): enough to
    // answer "does any processor other than `src` first receive after
    // time x?" in O(1), keeping the whole pass linear.
    let mut latest: Option<(Time, u32)> = None;
    let mut second: Option<(Time, u32)> = None;
    for (&p, &t) in &knows {
        if latest.is_none_or(|(lt, lp)| (t, p) > (lt, lp)) {
            second = latest;
            latest = Some((t, p));
        } else if second.is_none_or(|(st, sp)| (t, p) > (st, sp)) {
            second = Some((t, p));
        }
    }
    let receipt_after = |x: Time, src: u32| -> Option<(Time, u32)> {
        match latest {
            Some((t, q)) if q != src && t > x => Some((t, q)),
            Some((_, q)) if q == src => second.filter(|&(t, _)| t > x),
            _ => None,
        }
    };
    'procs: for src in 0..n {
        let informed_at = if src == opts.originator {
            Some(Time::ZERO)
        } else {
            knows.get(&src).copied()
        };
        let Some(informed_at) = informed_at else {
            continue;
        };
        let my_sends = by_src.get(&src).map(Vec::as_slice).unwrap_or(&[]);
        // Idle gaps: [informed_at, first send), between consecutive
        // sends, and after the last send (open-ended).
        let mut gap_starts: Vec<Time> = Vec::with_capacity(my_sends.len() + 1);
        let mut cursor = informed_at;
        for s in my_sends {
            if s.send_start > cursor {
                gap_starts.push(cursor);
            }
            cursor = cursor.max(s.send_start + Time::ONE);
        }
        if cursor < completion_of_coverage {
            gap_starts.push(cursor);
        }
        for g in gap_starts {
            let hypothetical = g + lam.as_time();
            // An uninformed-at-g processor whose eventual receipt is
            // strictly later than the hypothetical delivery.
            if let Some((t, q)) = receipt_after(hypothetical, src) {
                diags.push(Diagnostic {
                    code: LintCode::IdlePortWaste,
                    severity: Severity::Warn,
                    witness: None,
                    proc: Some(src),
                    sends: Vec::new(),
                    related_time: Some(g),
                    message: format!(
                        "p{src} is informed and idle from t = {g} although a send then \
                         would reach p{q} at t = {hypothetical}, earlier than its actual \
                         receipt at t = {t}"
                    ),
                });
                continue 'procs;
            }
        }
    }

    // P0007 — optimality gap. Only sensible when there is something to
    // broadcast to (n >= 2).
    if n >= 2 {
        let completion = schedule.completion();
        let m = opts.messages.max(1);
        let optimal = if m == 1 {
            GenFib::new(lam).index(n as u128)
        } else {
            runtimes::multi_lower_bound(n as u128, m, lam)
        };
        if completion < optimal {
            diags.push(Diagnostic {
                code: LintCode::OptimalityGap,
                severity: Severity::Error,
                witness: None,
                proc: None,
                sends: Vec::new(),
                related_time: Some(optimal),
                message: format!(
                    "completes at t = {completion}, beating the proven lower bound {optimal} \
                     for {m} message(s) in MPS({n}, {lam}) — the schedule cannot be a full \
                     broadcast"
                ),
            });
        } else if completion > optimal {
            let (severity, bound_name) = if m == 1 {
                (Severity::Warn, "the optimum f_lambda(n)")
            } else {
                // The Lemma 8 bound is not always attainable, so a gap
                // against it is informational, not a defect.
                (
                    Severity::Info,
                    "the Lemma 8 lower bound (m-1) + f_lambda(n)",
                )
            };
            diags.push(Diagnostic {
                code: LintCode::OptimalityGap,
                severity,
                witness: None,
                proc: None,
                sends: Vec::new(),
                related_time: Some(optimal),
                message: format!(
                    "completes at t = {completion}; {bound_name} is {optimal} \
                     (gap {} units)",
                    completion - optimal
                ),
            });
        }
    }

    diags.sort_by_key(diag_order);
    diags
}
