//! The shared send index every lint pass sweeps over.
//!
//! [`ScheduleIndex::build`] buckets a schedule's sends **once** into a
//! CSR (compressed-sparse-row) layout: a single arena of well-formed
//! sends in schedule order, plus per-src and per-dst index slices into
//! it. [`Schedule::new`] already sorts sends by
//! `(send_start, src, dst)`, so every CSR bucket comes out in exactly
//! the order the checks need — per-src buckets ascend by send start
//! (the `P0001` window order), and per-dst buckets ascend by
//! `(recv_finish, src)` (the `P0002` window order; `recv_finish` is
//! `send_start + λ`, a constant shift, so the orders coincide). The
//! seed engine's per-destination clone-and-sort was therefore a no-op,
//! and the index simply drops it.
//!
//! When λ and every send start lie on the half-integer lattice (all
//! integer and half-integer λ, i.e. every grid the paper uses), the
//! index also carries an `i64` **fast lane** — send starts in
//! half-units — so the hot window and causality comparisons run on
//! machine integers instead of reduced 128-bit rationals. The lane is
//! all-or-nothing: one off-lattice or out-of-range value and every
//! comparison transparently falls back to exact [`Time`] arithmetic.
//! Agreement of the two paths is property-tested in
//! `crates/model/tests/fast_time_props.rs`.

use crate::latency::Latency;
use crate::schedule::{Schedule, TimedSend};
use crate::time::Time;

/// Sentinel for "never receives" in the fast lane's first-receipt
/// array. Larger than any in-range half-unit value.
const NEVER: i64 = i64::MAX;

/// The `i64` half-unit mirror of the arena, present only when every
/// time in the schedule fits the fixed-point domain.
pub(crate) struct FastLane {
    /// Send starts in half-units, aligned with the arena.
    pub(crate) start: Vec<i64>,
    /// Per-processor first receipt in half-units ([`NEVER`] if none).
    pub(crate) first_receipt: Vec<i64>,
}

/// One-time CSR bucketing of a schedule's sends, shared by every pass
/// in a [`PassManager`](super::PassManager) sweep.
pub struct ScheduleIndex {
    n: u32,
    latency: Latency,
    arena: Vec<TimedSend>,
    malformed: Vec<TimedSend>,
    src_start: Vec<u32>,
    src_idx: Vec<u32>,
    dst_start: Vec<u32>,
    dst_idx: Vec<u32>,
    first_receipt: Vec<Option<Time>>,
    fast: Option<FastLane>,
}

impl ScheduleIndex {
    /// Builds the index: one partition of the sends into well-formed
    /// arena and malformed remainder, one counting-sort per endpoint
    /// axis, one first-receipt scan, and (when representable) the
    /// fixed-point lane. O(E + n) time and memory.
    pub fn build(schedule: &Schedule) -> ScheduleIndex {
        let n = schedule.n();
        let nn = n as usize;
        let lam = schedule.latency();

        let mut arena: Vec<TimedSend> = Vec::with_capacity(schedule.len());
        let mut malformed: Vec<TimedSend> = Vec::new();
        for s in schedule.sends() {
            if s.src >= n || s.dst >= n || s.src == s.dst || s.send_start < Time::ZERO {
                malformed.push(*s);
            } else {
                arena.push(*s);
            }
        }
        assert!(
            arena.len() <= u32::MAX as usize,
            "schedule exceeds the 2^32-send index capacity"
        );

        // Counting sort into CSR: counts, prefix sums, then scatter.
        // The scatter preserves arena (= schedule) order within each
        // bucket, which is exactly the order the window checks need.
        let mut src_start = vec![0u32; nn + 1];
        let mut dst_start = vec![0u32; nn + 1];
        for s in &arena {
            src_start[s.src as usize + 1] += 1;
            dst_start[s.dst as usize + 1] += 1;
        }
        for p in 0..nn {
            src_start[p + 1] += src_start[p];
            dst_start[p + 1] += dst_start[p];
        }
        let mut src_idx = vec![0u32; arena.len()];
        let mut dst_idx = vec![0u32; arena.len()];
        let mut src_fill: Vec<u32> = src_start[..nn].to_vec();
        let mut dst_fill: Vec<u32> = dst_start[..nn].to_vec();
        for (i, s) in arena.iter().enumerate() {
            let a = &mut src_fill[s.src as usize];
            src_idx[*a as usize] = i as u32;
            *a += 1;
            let b = &mut dst_fill[s.dst as usize];
            dst_idx[*b as usize] = i as u32;
            *b += 1;
        }

        let mut first_receipt: Vec<Option<Time>> = vec![None; nn];
        for s in &arena {
            let r = s.recv_finish(lam);
            let e = &mut first_receipt[s.dst as usize];
            *e = Some(match *e {
                Some(t) => t.min(r),
                None => r,
            });
        }

        let fast = Self::build_fast_lane(&arena, lam, nn);

        ScheduleIndex {
            n,
            latency: lam,
            arena,
            malformed,
            src_start,
            src_idx,
            dst_start,
            dst_idx,
            first_receipt,
            fast,
        }
    }

    /// The all-or-nothing fixed-point lane: `Some` only when λ and
    /// every send start are representable in half-units within the
    /// overflow-safe range.
    fn build_fast_lane(arena: &[TimedSend], lam: Latency, nn: usize) -> Option<FastLane> {
        let lambda = lam.as_time().to_half_units()?;
        let mut start = Vec::with_capacity(arena.len());
        for s in arena {
            start.push(s.send_start.to_half_units()?);
        }
        let mut first_receipt = vec![NEVER; nn];
        for (s, &h) in arena.iter().zip(&start) {
            let e = &mut first_receipt[s.dst as usize];
            *e = (*e).min(h + lambda);
        }
        Some(FastLane {
            start,
            first_receipt,
        })
    }

    /// Processor count of the indexed schedule.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// λ of the indexed schedule.
    pub fn latency(&self) -> Latency {
        self.latency
    }

    /// The well-formed sends, in schedule order.
    pub fn arena(&self) -> &[TimedSend] {
        &self.arena
    }

    /// The malformed sends (`P0004` material), in schedule order.
    pub fn malformed(&self) -> &[TimedSend] {
        &self.malformed
    }

    /// Arena indices of `src`'s sends, ascending by send start.
    pub fn by_src(&self, src: u32) -> &[u32] {
        let p = src as usize;
        &self.src_idx[self.src_start[p] as usize..self.src_start[p + 1] as usize]
    }

    /// Arena indices of `dst`'s receives, ascending by
    /// `(recv_finish, src)`.
    pub fn by_dst(&self, dst: u32) -> &[u32] {
        let p = dst as usize;
        &self.dst_idx[self.dst_start[p] as usize..self.dst_start[p + 1] as usize]
    }

    /// When processor `p` first finishes receiving anything, if ever.
    pub fn first_receipt(&self, p: u32) -> Option<Time> {
        self.first_receipt[p as usize]
    }

    /// True when the `i64` fixed-point lane is active (λ and every send
    /// start on the half-integer lattice).
    pub fn has_fast_lane(&self) -> bool {
        self.fast.is_some()
    }

    /// Whether arena sends `i` and `j` start less than one unit apart
    /// (`start[j] < start[i] + 1`). This single comparison is both the
    /// `P0001` output-port condition on per-src neighbors and the
    /// `P0002` input-window condition on per-dst neighbors (receive
    /// finishes are starts shifted by the constant λ).
    pub fn lt_one_apart(&self, i: usize, j: usize) -> bool {
        match &self.fast {
            Some(lane) => lane.start[j] < lane.start[i] + 2,
            None => self.arena[j].send_start < self.arena[i].send_start + Time::ONE,
        }
    }

    /// Whether the sender of arena send `i` holds the message by the
    /// send's start (the `P0003` causality condition). `false` means
    /// the send is a causality violation.
    pub fn sender_informed(&self, i: usize) -> bool {
        let src = self.arena[i].src as usize;
        match &self.fast {
            Some(lane) => lane.first_receipt[src] <= lane.start[i],
            None => match self.first_receipt[src] {
                Some(t) => t <= self.arena[i].send_start,
                None => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::Latency;

    fn send(src: u32, dst: u32, num: i128, den: i128) -> TimedSend {
        TimedSend {
            src,
            dst,
            send_start: Time::new(num, den),
        }
    }

    #[test]
    fn buckets_preserve_schedule_order_and_partition_malformed() {
        let s = Schedule::new(
            3,
            Latency::from_ratio(5, 2),
            vec![
                send(0, 1, 0, 1),
                send(0, 2, 1, 1),
                send(1, 2, 7, 2),
                send(1, 1, 0, 1),  // self-send: malformed
                send(0, 9, 0, 1),  // out of range: malformed
                send(0, 1, -1, 1), // negative: malformed
            ],
        );
        let idx = ScheduleIndex::build(&s);
        assert_eq!(idx.arena().len(), 3);
        assert_eq!(idx.malformed().len(), 3);
        assert_eq!(idx.by_src(0).len(), 2);
        assert_eq!(idx.by_src(1).len(), 1);
        assert_eq!(idx.by_src(2).len(), 0);
        assert_eq!(idx.by_dst(2).len(), 2);
        // Per-src bucket ascends by send start.
        let starts: Vec<Time> = idx
            .by_src(0)
            .iter()
            .map(|&i| idx.arena()[i as usize].send_start)
            .collect();
        assert_eq!(starts, vec![Time::ZERO, Time::ONE]);
        // Per-dst bucket ascends by recv finish.
        let finishes: Vec<Time> = idx
            .by_dst(2)
            .iter()
            .map(|&i| idx.arena()[i as usize].recv_finish(s.latency()))
            .collect();
        assert!(finishes.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(idx.first_receipt(1), Some(Time::new(5, 2)));
        assert_eq!(idx.first_receipt(0), None);
    }

    #[test]
    fn fast_lane_engages_on_half_integer_lambda_only() {
        let half = Schedule::new(2, Latency::from_ratio(5, 2), vec![send(0, 1, 3, 2)]);
        assert!(ScheduleIndex::build(&half).has_fast_lane());

        let thirds = Schedule::new(2, Latency::from_ratio(4, 3), vec![send(0, 1, 0, 1)]);
        assert!(!ScheduleIndex::build(&thirds).has_fast_lane());

        let off_lattice_send = Schedule::new(2, Latency::from_int(2), vec![send(0, 1, 1, 3)]);
        assert!(!ScheduleIndex::build(&off_lattice_send).has_fast_lane());
    }

    #[test]
    fn predicates_agree_between_lanes() {
        // Same schedule through the fixed lane and (via an off-lattice
        // dummy λ with identical starts scaled) the exact lane.
        let s = Schedule::new(
            4,
            Latency::from_ratio(5, 2),
            vec![
                send(0, 1, 0, 1),
                send(0, 2, 1, 2),
                send(0, 3, 2, 1),
                send(1, 3, 7, 2),
            ],
        );
        let fast = ScheduleIndex::build(&s);
        assert!(fast.has_fast_lane());
        let exact = {
            // Rebuild with the lane disabled by an off-lattice λ of the
            // same value is impossible (λ is exact), so compare against
            // direct Time arithmetic instead.
            fast.arena()
                .iter()
                .map(|t| t.send_start)
                .collect::<Vec<_>>()
        };
        for i in 0..exact.len() {
            for j in 0..exact.len() {
                assert_eq!(
                    fast.lt_one_apart(i, j),
                    exact[j] < exact[i] + Time::ONE,
                    "({i},{j})"
                );
            }
        }
        // p1 is informed at 5/2, sends at 7/2: causally fine. p0 is the
        // originator and never receives: its sends read as uninformed
        // (the pass exempts the originator before asking).
        assert!(fast.sender_informed(3));
        assert!(!fast.sender_informed(0));
    }
}
