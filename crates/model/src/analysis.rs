//! Asymptotic analysis of the generalized Fibonacci function.
//!
//! For t ≥ λ, `F_λ(t) = F_λ(t−1) + F_λ(t−λ)`; on the tick lattice
//! (λ = p/q) this is a linear recurrence whose growth is governed by the
//! dominant root of the characteristic equation
//!
//! ```text
//! x^p = x^(p−q) + 1            (x = growth per tick)
//! ```
//!
//! equivalently, per *unit* of time `b = x^q` satisfies
//! `b^λ = b^(λ−1) + 1`. The paper's Theorem 7 brackets this base between
//! `(⌈λ⌉+1)^(1/2λ)` and `(⌈λ⌉+1)^(1/λ)`; [`growth_base`] computes it to
//! machine precision, which makes statements like "broadcast reach grows
//! by a factor `b` per unit time" quantitative and lets tests confirm
//! that the *measured* growth of `F_λ` converges to it.

use crate::latency::Latency;

/// The per-unit growth base `b > 1` with `b^λ = b^(λ−1) + 1`, computed
/// by bisection to ~1e-12 relative precision.
///
/// Special case: λ = 1 gives exactly `b = 2` (the telephone model's
/// doubling).
///
/// ```
/// use postal_model::{analysis::growth_base, Latency};
///
/// // λ = 2: the golden ratio.
/// let phi = (1.0 + 5f64.sqrt()) / 2.0;
/// assert!((growth_base(Latency::from_int(2)) - phi).abs() < 1e-9);
/// ```
pub fn growth_base(latency: Latency) -> f64 {
    let lam = latency.to_f64();
    // g(b) = b^λ − b^(λ−1) − 1 is increasing in b for b ≥ 1.
    let g = |b: f64| b.powf(lam) - b.powf(lam - 1.0) - 1.0;
    let mut lo = 1.0f64;
    let mut hi = 2.0f64;
    debug_assert!(g(hi) >= 0.0, "b = 2 always upper-bounds the base");
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if g(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// First-order estimate of the optimal broadcast time: informed
/// processors multiply by `b = growth_base(λ)` per unit, so
/// `f_λ(n) ≈ log_b(n)`. The estimate ignores the O(λ) start-up
/// transient; see the tests for its accuracy envelope.
pub fn estimated_broadcast_time(n: u128, latency: Latency) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    (n as f64).ln() / growth_base(latency).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::GenFib;
    use crate::time::Time;

    #[test]
    fn telephone_base_is_two() {
        let b = growth_base(Latency::TELEPHONE);
        assert!((b - 2.0).abs() < 1e-10, "b = {b}");
    }

    #[test]
    fn lambda_two_base_is_golden_ratio() {
        // b² = b + 1 ⇒ b = φ.
        let b = growth_base(Latency::from_int(2));
        let phi = (1.0 + 5f64.sqrt()) / 2.0;
        assert!((b - phi).abs() < 1e-10, "b = {b}");
    }

    #[test]
    fn base_decreases_with_latency() {
        let mut prev = growth_base(Latency::TELEPHONE);
        for lam in [
            Latency::from_ratio(3, 2),
            Latency::from_int(2),
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
            Latency::from_int(16),
        ] {
            let b = growth_base(lam);
            assert!(b < prev, "λ={lam}: {b} ≥ {prev}");
            assert!(b > 1.0);
            prev = b;
        }
    }

    #[test]
    fn base_within_theorem7_bracket() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
            Latency::from_int(10),
        ] {
            let b = growth_base(lam);
            let lamf = lam.to_f64();
            let ceil1 = (lam.ceil() + 1) as f64;
            // Theorem 7(1) ⇒ (⌈λ⌉+1)^(1/2λ) ≤ b ≤ (⌈λ⌉+1)^(1/λ).
            assert!(b >= ceil1.powf(1.0 / (2.0 * lamf)) - 1e-9, "λ={lam}");
            assert!(b <= ceil1.powf(1.0 / lamf) + 1e-9, "λ={lam}");
        }
    }

    #[test]
    fn measured_growth_converges_to_base() {
        for lam in [
            Latency::from_ratio(5, 2),
            Latency::from_int(3),
            Latency::from_ratio(7, 3),
        ] {
            let g = GenFib::new(lam);
            let b = growth_base(lam);
            // Ratio F(t+10)/F(t) at large t ≈ b^10. Keep t moderate so
            // F stays far from u128 saturation for every λ tested.
            let t = 120i128;
            let r = g.value(Time::from_int(t + 10)) as f64 / g.value(Time::from_int(t)) as f64;
            let expected = b.powi(10);
            assert!(
                (r / expected - 1.0).abs() < 1e-3,
                "λ={lam}: measured {r} vs {expected}"
            );
        }
    }

    #[test]
    fn estimated_time_tracks_f_lambda() {
        for lam in [Latency::from_ratio(5, 2), Latency::from_int(4)] {
            let g = GenFib::new(lam);
            for n in [1u128 << 20, 1 << 40] {
                let est = estimated_broadcast_time(n, lam);
                let actual = g.index(n).to_f64();
                // The estimate ignores the O(λ) start-up transient; allow
                // an additive λ-scale slack plus small relative error.
                assert!(
                    (actual - est).abs() <= 2.0 * lam.to_f64() + 0.05 * actual,
                    "λ={lam} n={n}: est {est} vs actual {actual}"
                );
            }
        }
        assert_eq!(estimated_broadcast_time(1, Latency::TELEPHONE), 0.0);
    }
}
